//! # vetl — Video Extract-Transform-Load (Skyscraper reproduction)
//!
//! Facade crate bundling the whole workspace of this from-scratch Rust
//! reproduction of *"Extract-Transform-Load for Video Streams"* (Kossmann et
//! al., VLDB 2023):
//!
//! * [`skyscraper`] — the paper's contribution: content-adaptive knob tuning
//!   with throughput guarantees (offline phase, knob planner, knob switcher,
//!   multi-stream generalization, user-facing API).
//! * [`video`] — the synthetic video substrate (content process, sources,
//!   codec models, recordings).
//! * [`sim`] — task graphs, placements, hardware, the Appendix-M simulator.
//! * [`ml`] — KMeans, GMM, and the feed-forward forecaster, from scratch.
//! * [`lp`] — two-phase simplex and knapsack solvers.
//! * [`exec`] — a thread-pool actor executor (the Ray stand-in).
//! * [`workloads`] — COVID, MOT, MOSEI-HIGH/LONG and the EV example.
//! * [`baselines`] — Static, Chameleon*, VideoStorm* and the Optimum oracle.
//! * [`net`] — the framed socket front-end (TCP + Unix) serving the sharded
//!   ingest runtime to remote clients.
//!
//! See `examples/quickstart.rs` for the fastest way in, and DESIGN.md /
//! EXPERIMENTS.md for the paper-reproduction map.

pub use skyscraper;

pub use vetl_baselines as baselines;
pub use vetl_exec as exec;
pub use vetl_lp as lp;
pub use vetl_ml as ml;
pub use vetl_net as net;
pub use vetl_sim as sim;
pub use vetl_video as video;
pub use vetl_workloads as workloads;

/// Convenience prelude: the types most programs need.
pub mod prelude {
    pub use skyscraper::{
        ClassificationMode, DedupCache, DedupPolicy, DedupStats, DurabilityConfig, ForecastMode,
        IngestOptions, IngestOutcome, IngestRuntime, IngestSession, JointPlanRecord, Knob,
        KnobConfig, KnobPlan, KnobPlanner, KnobSwitcher, KnobValue, KnowledgeBase,
        MultiStreamServer, OfflineArtifacts, OfflinePipeline, RecoveredStream, RecoveryReport,
        RuntimeConfig, RuntimeMetrics, SessionCheckpoint, SkyError, Skyscraper, SkyscraperConfig,
        StepReport, StreamId, StreamMetrics, StreamStats, Workload,
    };
    pub use skyscraper::{
        Clock, FlightRecorder, ManualClock, MetricsRegistry, MetricsSnapshot, MonotonicClock, Obs,
        TraceEvent,
    };
    pub use skyscraper::{IngestService, StreamOutcome};
    pub use vetl_net::{Endpoint, NetClient, NetClientConfig, NetServer, ServerConfig};
    pub use vetl_sim::{CostModel, HardwareSpec};
    pub use vetl_video::{ContentParams, Recording, Segment, SimTime, SyntheticCamera};
    pub use vetl_workloads::{CovidWorkload, EvWorkload, MoseiVariant, MoseiWorkload, MotWorkload};
}
