//! Hostile-network & flash-crowd robustness for the ingest runtime.
//!
//! The acceptance bar of the degraded-network subsystem:
//!
//! * **Clean networks are bitwise unchanged.** With the reorder gate
//!   compiled in — disabled, or enabled on in-order input — every outcome
//!   bit matches the pre-gate runtime, across shard counts.
//! * **Within-window reordering is bitwise invisible.** A delivery schedule
//!   whose worst displacement fits the gate window produces the *same
//!   outcome bits* as the in-order run: the gate restores order and the
//!   epoch boundaries land in the same places.
//! * **Lateness and flash crowds are typed, retryable where documented,
//!   and traceless.** A rejected late segment or deferred admission leaves
//!   no state behind — the run's outcome is bitwise identical to one that
//!   never saw the rejected call.
//! * **Loss never deadlocks.** Dropped segments force the watermark
//!   forward; `finish` always completes and the gap is accounted as
//!   `lost`, never silently absorbed.
//!
//! Environment knobs (mirrored by the CI chaos matrix): `VETL_SHARDS`
//! (extra shard count, default 4) and `VETL_CHAOS_SEED` (schedule seed,
//! default 0xC0FFEE), so a failing draw replays exactly.

use std::sync::OnceLock;

use proptest::prelude::*;

use vetl::prelude::*;
use vetl::skyscraper::offline::run_offline;
use vetl::skyscraper::testkit::chaos::DeliverySchedule;
use vetl::skyscraper::testkit::{
    assert_multi_outcomes_bitwise_equal, assert_outcomes_bitwise_equal, ToyWorkload,
};
use vetl::skyscraper::{FittedModel, MultiOutcome};
use vetl::workloads::{churn_intervals, flash_crowd_opens, NetConditions};

const SHARED_BUDGET_USD: f64 = 0.5;
/// Short planning epochs (120 segments at 2 s) so runs cross many barriers.
const REPLAN_SECS: f64 = 240.0;
const QUOTA: usize = 120;
const SEED: u64 = 17;
const TOTAL_CORES: f64 = 16.0;

fn max_shards() -> usize {
    std::env::var("VETL_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4)
}

fn chaos_seed() -> u64 {
    std::env::var("VETL_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC0FFEE)
}

type Fixture = (ToyWorkload, FittedModel, Vec<Segment>);

/// One fitted stream plus 390 online segments (3¼ epochs).
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let w = ToyWorkload::new();
        let mut cam = SyntheticCamera::new(ContentParams::traffic_intersection(31), 2.0);
        let labeled = Recording::record(&mut cam, 20.0 * 60.0);
        let unlabeled = Recording::record(&mut cam, 2.0 * 86_400.0);
        let (model, _) = run_offline(
            &w,
            &labeled,
            &unlabeled,
            HardwareSpec::with_cores(16),
            &SkyscraperConfig::fast_test(),
        )
        .expect("fit");
        let online = Recording::record(&mut cam, 780.0).segments().to_vec();
        (w, model, online)
    })
}

fn config(shards: usize, cap: Option<usize>) -> RuntimeConfig {
    RuntimeConfig {
        shards,
        shared_cloud_budget_usd: SHARED_BUDGET_USD,
        seed: SEED,
        replan_interval_secs: Some(REPLAN_SECS),
        total_cores: Some(TOTAL_CORES),
        admission_epoch_cap: cap,
        ..RuntimeConfig::default()
    }
}

fn opts(window: Option<usize>) -> IngestOptions {
    IngestOptions {
        reorder_window: window,
        ..IngestOptions::default()
    }
}

/// Drive one stream through the sharded runtime in the given arrival order;
/// every push must be accepted.
fn run_runtime(shards: usize, window: Option<usize>, arrivals: &[Segment]) -> MultiOutcome {
    let (w, m, _) = fixture();
    let mut rt = IngestRuntime::new(config(shards, None));
    let id = rt
        .open_stream("cam-0".to_string(), m, w, opts(window))
        .expect("admission");
    for s in arrivals {
        rt.push(id, s).expect("accepted arrival");
    }
    rt.finish().expect("finish")
}

/// A session over `segs` with pinned ground truth, as `tests/properties.rs`
/// builds them — both sides of a bitwise comparison use this constructor.
fn session<'a>(
    model: &'a FittedModel,
    w: &'a ToyWorkload,
    options: IngestOptions,
    segs: &[Segment],
) -> IngestSession<'a, ToyWorkload> {
    let mut s =
        IngestSession::with_stream_stats(model, w, options, StreamStats::from_segments(segs));
    s.pin_ground_truth(
        segs.iter()
            .map(|x| model.ground_truth_category(w, &x.content))
            .collect(),
    );
    s
}

/// Move the stream's first segment to the front of the arrival order. The
/// gate anchors its watermark at the first arrival, so the tolerance
/// window is only well-defined for schedules where the stream head leads —
/// the session open and the first segment travel together in practice.
fn pin_first(mut sched: DeliverySchedule) -> DeliverySchedule {
    let p = sched
        .order
        .iter()
        .position(|&x| x == 0)
        .expect("lossless schedule delivers position 0");
    let first = sched.order.remove(p);
    sched.order.insert(0, first);
    sched
}

#[test]
fn clean_network_is_bitwise_unchanged_by_the_gate() {
    let (_, _, segs) = fixture();
    let sched = NetConditions::clean(chaos_seed()).delivery_schedule(segs);
    assert!(sched.is_clean(), "zero impairments must be the identity");
    assert_eq!(sched.apply(segs), *segs);
    for shards in [1, 2, max_shards()] {
        let baseline = run_runtime(shards, None, segs);
        for window in [1, 4, 64] {
            let gated = run_runtime(shards, Some(window), segs);
            assert_multi_outcomes_bitwise_equal(
                &format!("clean network, window {window}, shards {shards}"),
                &baseline,
                &gated,
            );
        }
    }
}

#[test]
fn within_window_reorder_matches_the_in_order_run_bitwise() {
    let (_, _, segs) = fixture();
    for (i, seed) in [chaos_seed(), chaos_seed() ^ 0x5DEE_CE66]
        .into_iter()
        .enumerate()
    {
        let cond = NetConditions {
            drop_prob: 0.0,
            ..NetConditions::hostile(2.0, seed)
        };
        let sched = pin_first(cond.delivery_schedule(segs));
        assert!(!sched.is_clean(), "hostile conditions must reorder");
        let window = sched.max_displacement();
        assert!(window > 0);
        for shards in [2, max_shards()] {
            let in_order = run_runtime(shards, Some(window), segs);
            let degraded = run_runtime(shards, Some(window), &sched.apply(segs));
            assert_multi_outcomes_bitwise_equal(
                &format!("degraded schedule {i} (window {window}), shards {shards}"),
                &in_order,
                &degraded,
            );
        }
    }
}

#[test]
fn late_segment_rejection_is_typed_and_traceless() {
    let (w, m, segs) = fixture();
    let window = 2usize;
    let reference = run_runtime(2, Some(window), segs);

    let mut rt = IngestRuntime::new(config(2, None));
    let id = rt
        .open_stream("cam-0".to_string(), m, w, opts(Some(window)))
        .expect("admission");
    for (i, s) in segs.iter().enumerate() {
        rt.push(id, s).expect("accepted arrival");
        if i == 9 {
            // The watermark passed this index long ago: typed rejection,
            // with the error carrying where the stream actually stands.
            match rt.push(id, &segs[3]) {
                Err(SkyError::LateSegment {
                    index,
                    expected,
                    window: win,
                }) => {
                    assert_eq!(index, segs[3].index);
                    assert_eq!(expected, segs[0].index + 10);
                    assert_eq!(win, window);
                }
                other => panic!("late arrival must be LateSegment, got {other:?}"),
            }
            assert!(
                !SkyError::LateSegment {
                    index: 0,
                    expected: 0,
                    window
                }
                .is_retryable(),
                "a late segment can never succeed on retry"
            );
        }
    }
    let with_rejection = rt.finish().expect("finish");
    assert_multi_outcomes_bitwise_equal(
        "rejected late segment leaves no trace",
        &reference,
        &with_rejection,
    );
}

#[test]
fn duplicate_of_a_held_segment_is_late() {
    let (w, m, segs) = fixture();
    let mut s = session(m, w, opts(Some(4)), &segs[..8]);
    s.push_arrival(&segs[0]).expect("anchor");
    s.push_arrival(&segs[2]).expect("held");
    assert_eq!(s.reorder_held(), 1);
    match s.push_arrival(&segs[2]) {
        Err(SkyError::LateSegment { index, .. }) => assert_eq!(index, segs[2].index),
        other => panic!("duplicate held index must be LateSegment, got {other:?}"),
    }
    s.push_arrival(&segs[1]).expect("gap fill releases");
    assert_eq!(s.reorder_held(), 0);
    assert_eq!(s.reorder_stats().lost, 0);
}

#[test]
fn flash_crowd_admissions_defer_typed_and_recover_after_dispatch() {
    let (w, m, segs) = fixture();
    // Three cameras reconnect in one synchronized burst.
    let storm = flash_crowd_opens(3, 60.0, 5.0, chaos_seed());
    assert_eq!(storm.len(), 3);

    let mut rt = IngestRuntime::new(config(2, Some(2)));
    let a = rt
        .open_stream("cam-0".to_string(), m, w, opts(None))
        .expect("first open under the cap");
    let b = rt
        .open_stream("cam-1".to_string(), m, w, opts(None))
        .expect("second open under the cap");
    let deferred = rt.open_stream("cam-2".to_string(), m, w, opts(None));
    match deferred {
        Err(ref e @ SkyError::AdmissionDeferred { pending, cap }) => {
            assert_eq!((pending, cap), (2, 2));
            assert!(e.is_retryable(), "deferral is backpressure, not failure");
        }
        other => panic!("third open must defer, got {other:?}"),
    }
    // The window reopens once segments make progress: fill both mailboxes
    // so the epoch dispatches, then retry the identical call.
    for s in &segs[..QUOTA] {
        rt.push(a, s).expect("push a");
    }
    for s in &segs[..QUOTA] {
        rt.push(b, s).expect("push b");
    }
    let c = rt
        .open_stream("cam-2".to_string(), m, w, opts(None))
        .expect("retry after dispatch succeeds");
    rt.push(c, &segs[0]).expect("admitted stream ingests");
    let out = rt.finish().expect("finish");
    assert_eq!(out.streams.len(), 3);
}

#[test]
fn multistream_server_defers_flash_crowds_the_same_way() {
    let (w, m, segs) = fixture();
    let mut server = MultiStreamServer::new(SHARED_BUDGET_USD, CostModel::default(), SEED)
        .with_replan_interval(REPLAN_SECS)
        .with_total_cores(TOTAL_CORES)
        .with_admission_cap(2);
    let a = server
        .open_stream("cam-0", m, w, IngestOptions::default())
        .expect("first open");
    server
        .open_stream("cam-1", m, w, IngestOptions::default())
        .expect("second open");
    match server.open_stream("cam-2", m, w, IngestOptions::default()) {
        Err(SkyError::AdmissionDeferred { pending, cap }) => assert_eq!((pending, cap), (2, 2)),
        other => panic!("third open must defer, got {other:?}"),
    }
    server.push(a, &segs[0]).expect("progress");
    server
        .open_stream("cam-2", m, w, IngestOptions::default())
        .expect("retry after progress succeeds");
}

#[test]
fn dropped_segments_force_the_watermark_without_deadlock() {
    let (w, m, segs) = fixture();
    let cond = NetConditions {
        drop_prob: 0.03,
        ..NetConditions::hostile(2.0, chaos_seed())
    };
    let sched = pin_first(cond.delivery_schedule(segs));
    assert!(!sched.dropped.is_empty(), "3% loss over 390 segments");
    let arrivals = sched.apply(segs);

    // Session level: every accepted arrival is processed, gaps become
    // `lost`, and late arrivals behind a forced watermark are typed.
    let mut s = session(m, w, opts(Some(4)), segs);
    let mut late = 0usize;
    for seg in &arrivals {
        match s.push_arrival(seg) {
            Ok(_) => {}
            Err(SkyError::LateSegment { .. }) => late += 1,
            Err(e) => panic!("only lateness may reject an arrival, got {e}"),
        }
    }
    s.flush_reorder_gate().expect("drain");
    let stats = s.reorder_stats();
    assert!(stats.lost > 0, "unfilled gaps must be accounted as lost");
    assert!(stats.held_peak <= 4 + 1, "holds never exceed the window");
    assert_eq!(s.segments_pushed(), arrivals.len() - late);
    let _ = s.finish();

    // Runtime level: the same hostile schedule completes end to end.
    let mut rt = IngestRuntime::new(config(2, None));
    let id = rt
        .open_stream("cam-0".to_string(), m, w, opts(Some(4)))
        .expect("admission");
    for seg in &arrivals {
        match rt.push(id, seg) {
            Ok(()) | Err(SkyError::LateSegment { .. }) => {}
            Err(e) => panic!("only lateness may reject an arrival, got {e}"),
        }
    }
    let out = rt.finish().expect("finish never deadlocks on loss");
    assert_eq!(out.streams.len(), 1);
}

#[test]
fn rolling_churn_runs_are_seed_reproducible() {
    let (w, m, segs) = fixture();
    // Sessions disconnect and reconnect on a seeded churn schedule; each
    // connected interval replays a slice of the stream as a fresh open.
    let churn = churn_intervals(780.0, 120.0, 60.0, chaos_seed());
    assert_eq!(churn, churn_intervals(780.0, 120.0, 60.0, chaos_seed()));
    let run = || -> MultiOutcome {
        let mut rt = IngestRuntime::new(config(2, None));
        for (i, &(up, down)) in churn.iter().enumerate() {
            let id = rt
                .open_stream(format!("cam-{i}"), m, w, opts(Some(4)))
                .expect("reconnect admission");
            let (a, b) = ((up / 2.0) as usize, (down / 2.0) as usize);
            for s in &segs[a..b.min(segs.len())] {
                rt.push(id, s).expect("push");
            }
            rt.close_stream(id).expect("disconnect");
        }
        rt.finish().expect("finish")
    };
    assert_multi_outcomes_bitwise_equal("same churn seed, same bits", &run(), &run());
}

proptest! {
    /// For random seeds and impairment levels, a lossless schedule whose
    /// worst displacement fits the gate window is bitwise invisible: the
    /// degraded session run matches the in-order run, with nothing lost.
    #[test]
    fn within_window_reorder_is_bitwise_invisible(
        seed in 0u64..1_000_000,
        len in 60usize..160,
        jitter in 0.5f64..8.0,
        reorder in 0.0f64..0.3,
    ) {
        let (w, m, pool) = fixture();
        let segs = &pool[..len];
        let cond = NetConditions {
            base_delay_secs: 0.05,
            jitter_secs: jitter,
            drop_prob: 0.0,
            reorder_prob: reorder,
            reorder_span: 4,
            bandwidth: Vec::new(),
            seed,
        };
        let sched = pin_first(cond.delivery_schedule(segs));
        prop_assert!(sched.dropped.is_empty());
        prop_assert_eq!(sched.fingerprint(), pin_first(cond.delivery_schedule(segs)).fingerprint());
        let window = sched.max_displacement().max(1);
        let options = opts(Some(window));

        let mut in_order = session(m, w, options.clone(), segs);
        for s in segs {
            in_order.push_arrival(s).expect("in-order arrival");
        }

        let mut degraded = session(m, w, options, segs);
        for s in &sched.apply(segs) {
            degraded.push_arrival(s).expect("within-window arrival");
        }
        prop_assert_eq!(degraded.reorder_held(), 0, "full delivery drains the gate");
        prop_assert_eq!(degraded.reorder_stats().lost, 0);

        assert_outcomes_bitwise_equal(
            "within-window reorder",
            &in_order.finish(),
            &degraded.finish(),
        );
    }
}
