//! Determinism and churn tests for the sharded ingest runtime.
//!
//! The acceptance bar of the `skyscraper::runtime` subsystem: for **any
//! shard count**, the runtime's per-stream outcomes are **bitwise
//! identical** to driving the sequential `MultiStreamServer` round-robin
//! over the same segments with the same churn points — including mid-run
//! `open_stream` / `close_stream`. The shard count used as "max" can be
//! overridden with `VETL_SHARDS` (CI runs the property at two distinct
//! counts).

use std::path::PathBuf;
use std::sync::OnceLock;

use vetl::prelude::*;
use vetl::skyscraper::offline::run_offline;
use vetl::skyscraper::testkit::{
    assert_multi_outcomes_bitwise_equal, assert_outcomes_bitwise_equal, ToyWorkload,
};
use vetl::skyscraper::{FittedModel, MultiOutcome, StepReport};

const SHARED_BUDGET_USD: f64 = 0.5;
const REPLAN_SECS: f64 = 1_800.0;
/// Segments per epoch at 2 s segments and the 1800 s cadence.
const QUOTA: usize = 900;
const SEED: u64 = 9;
const TOTAL_CORES: f64 = 16.0;

fn max_shards() -> usize {
    std::env::var("VETL_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4)
}

/// Independently fitted streams over distinct content processes, plus
/// 2 hours of online video each.
fn fixture() -> &'static Vec<(ToyWorkload, FittedModel, Vec<Segment>)> {
    static FIXTURE: OnceLock<Vec<(ToyWorkload, FittedModel, Vec<Segment>)>> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        (0..4u64)
            .map(|v| {
                let w = ToyWorkload::new();
                let mut cam =
                    SyntheticCamera::new(ContentParams::traffic_intersection(23 + v), 2.0);
                let labeled = Recording::record(&mut cam, 20.0 * 60.0);
                let unlabeled = Recording::record(&mut cam, 2.0 * 86_400.0);
                let (model, _) = run_offline(
                    &w,
                    &labeled,
                    &unlabeled,
                    HardwareSpec::with_cores(16),
                    &SkyscraperConfig::fast_test(),
                )
                .expect("fit");
                let online = Recording::record(&mut cam, 2.0 * 3_600.0)
                    .segments()
                    .to_vec();
                (w, model, online)
            })
            .collect()
    })
}

/// One churn schedule: which fixture streams open at which round, which
/// handles close at which round, and how many rounds to drive in total.
#[derive(Debug, Clone)]
struct Schedule {
    /// `(round, fixture_index, push_limit)` — admit the stream at `round`
    /// and feed it at most `push_limit` of its segments.
    opens: Vec<(usize, usize, usize)>,
    /// `(round, handle_index)` — close the handle-`index`-th opened stream.
    closes: Vec<(usize, usize)>,
    rounds: usize,
}

/// Both implementations behind one driving interface.
trait Driver<'a> {
    fn open(&mut self, id: String, model: &'a FittedModel, workload: &'a ToyWorkload) -> StreamId;
    fn push(&mut self, id: StreamId, seg: &Segment);
    fn close(&mut self, id: StreamId);
    fn done(self) -> MultiOutcome;
}

struct Sequential<'a>(MultiStreamServer<'a>);

impl<'a> Driver<'a> for Sequential<'a> {
    fn open(&mut self, id: String, model: &'a FittedModel, workload: &'a ToyWorkload) -> StreamId {
        self.0
            .open_stream(id, model, workload, IngestOptions::default())
            .expect("admission")
    }
    fn push(&mut self, id: StreamId, seg: &Segment) {
        self.0.push(id, seg).expect("sequential push");
    }
    fn close(&mut self, id: StreamId) {
        self.0.close_stream(id).expect("sequential close");
    }
    fn done(self) -> MultiOutcome {
        self.0.finish()
    }
}

struct Sharded<'a>(IngestRuntime<'a>);

impl<'a> Driver<'a> for Sharded<'a> {
    fn open(&mut self, id: String, model: &'a FittedModel, workload: &'a ToyWorkload) -> StreamId {
        self.0
            .open_stream(id, model, workload, IngestOptions::default())
            .expect("admission")
    }
    fn push(&mut self, id: StreamId, seg: &Segment) {
        // Balanced round-robin driving never overloads a mailbox: the
        // epoch dispatches on the push that completes the last quota.
        self.0.push(id, seg).expect("runtime push");
    }
    fn close(&mut self, id: StreamId) {
        self.0.close_stream(id).expect("runtime close");
    }
    fn done(self) -> MultiOutcome {
        self.0.finish().expect("runtime finish")
    }
}

/// Drive a schedule: apply churn ops at round boundaries, then push one
/// segment of every open stream per round (round-robin). Streams whose
/// segments run out are closed so they stop gating the epoch barrier.
fn run_schedule<'a, D: Driver<'a>>(mut driver: D, schedule: &Schedule) -> MultiOutcome {
    let streams = fixture();
    // (handle, segments, cursor, open)
    let mut handles: Vec<(StreamId, &'a [Segment], usize, bool)> = Vec::new();
    for round in 0..schedule.rounds {
        for &(at, fixture_idx, limit) in &schedule.opens {
            if at == round {
                let (w, m, segs) = &streams[fixture_idx];
                let id = driver.open(format!("cam-{fixture_idx}"), m, w);
                handles.push((id, &segs[..limit.min(segs.len())], 0, true));
            }
        }
        for &(at, handle_idx) in &schedule.closes {
            if at == round && handles[handle_idx].3 {
                driver.close(handles[handle_idx].0);
                handles[handle_idx].3 = false;
            }
        }
        for h in &mut handles {
            if !h.3 {
                continue;
            }
            match h.1.get(h.2) {
                Some(seg) => {
                    driver.push(h.0, seg);
                    h.2 += 1;
                }
                None => {
                    driver.close(h.0);
                    h.3 = false;
                }
            }
        }
    }
    driver.done()
}

fn sequential(schedule: &Schedule) -> MultiOutcome {
    let server = MultiStreamServer::new(SHARED_BUDGET_USD, CostModel::default(), SEED)
        .with_replan_interval(REPLAN_SECS)
        .with_total_cores(TOTAL_CORES);
    run_schedule(Sequential(server), schedule)
}

fn sharded(schedule: &Schedule, shards: usize) -> MultiOutcome {
    let rt = IngestRuntime::new(RuntimeConfig {
        shards,
        shared_cloud_budget_usd: SHARED_BUDGET_USD,
        seed: SEED,
        replan_interval_secs: Some(REPLAN_SECS),
        total_cores: Some(TOTAL_CORES),
        ..RuntimeConfig::default()
    });
    run_schedule(Sharded(rt), schedule)
}

fn assert_runtime_matches_server(schedule: &Schedule) {
    let reference = sequential(schedule);
    let mut counts = vec![1, 2, max_shards()];
    counts.sort_unstable();
    counts.dedup();
    for shards in counts {
        let out = sharded(schedule, shards);
        assert_multi_outcomes_bitwise_equal(&format!("shards={shards}"), &reference, &out);
    }
}

#[test]
fn runtime_matches_server_bitwise_without_churn() {
    let schedule = Schedule {
        opens: vec![(0, 0, 2 * QUOTA + 450), (0, 1, 2 * QUOTA + 450)],
        closes: vec![],
        rounds: 2 * QUOTA + 450,
    };
    assert_runtime_matches_server(&schedule);
}

#[test]
fn runtime_matches_server_bitwise_under_mid_run_churn() {
    // Stream 2 joins mid-epoch, stream 1 closes mid-epoch, stream 0 runs
    // out before the end: admissions, closures, and exhaustion all land
    // inside epochs, not just on their boundaries.
    let schedule = Schedule {
        opens: vec![
            (0, 0, 2 * QUOTA),
            (0, 1, 2 * QUOTA + 300),
            (QUOTA + 137, 2, QUOTA + 400),
        ],
        closes: vec![(QUOTA + 600, 1)],
        rounds: 2 * QUOTA + 500,
    };
    assert_runtime_matches_server(&schedule);
}

#[test]
fn runtime_matches_server_bitwise_with_boundary_churn() {
    // Churn exactly at epoch boundaries: a closure right when a full epoch
    // completed (the close marker leads the next epoch's mailbox) and an
    // admission at the same kind of point.
    let schedule = Schedule {
        opens: vec![
            (0, 0, 3 * QUOTA),
            (0, 1, 3 * QUOTA),
            (2 * QUOTA, 3, QUOTA / 2),
        ],
        closes: vec![(QUOTA, 1)],
        rounds: 3 * QUOTA,
    };
    assert_runtime_matches_server(&schedule);
}

/// Randomized churn property: for any admission round, closure round and
/// stream lengths, every shard count reproduces the sequential server bit
/// for bit. Hand-rolled sampling (4 deterministic cases) because each case
/// drives three full serving runs.
#[test]
fn runtime_is_bitwise_equal_for_any_shard_count() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for case in 0..4 {
        let open_at = rng.gen_range(1..(2 * QUOTA));
        let close_at = rng.gen_range(1..(2 * QUOTA));
        let len_a = rng.gen_range((QUOTA + 10)..(2 * QUOTA + 300));
        let len_c = rng.gen_range(200..(QUOTA + 200));
        let shards = rng.gen_range(2..6);
        let schedule = Schedule {
            opens: vec![(0, 0, len_a), (0, 1, 2 * QUOTA + 200), (open_at, 2, len_c)],
            closes: vec![(close_at, 0)],
            rounds: 2 * QUOTA + 200,
        };
        let reference = sequential(&schedule);
        let one = sharded(&schedule, 1);
        let many = sharded(&schedule, shards);
        assert_multi_outcomes_bitwise_equal(&format!("case {case}: shards=1"), &reference, &one);
        assert_multi_outcomes_bitwise_equal(
            &format!("case {case}: shards={shards} ({schedule:?})"),
            &reference,
            &many,
        );
    }
}

#[test]
fn rejected_mid_epoch_admission_preserves_bitwise_equivalence() {
    // Regression: a rejected admission flushes queued input (a *partial*
    // epoch) before validating. The runtime must then bound the mailboxes
    // to the remaining epoch quota, or the next dispatch overshoots the
    // epoch and replans later than the sequential server.
    let streams = fixture();
    let tight_cores = 2.0; // 2 streams fit; a third gets ⌊2/3⌋ = 0 cores
    let drive = |rt: &mut dyn FnMut(usize, &Segment)| {
        // returns nothing; rt is fed (stream v, segment) round-robin
        for i in 0..2 * QUOTA + 137 {
            for (v, (_, _, segs)) in streams.iter().take(2).enumerate() {
                rt(v, &segs[i]);
            }
        }
    };

    // Sequential reference.
    let mut server = MultiStreamServer::new(SHARED_BUDGET_USD, CostModel::default(), SEED)
        .with_replan_interval(REPLAN_SECS)
        .with_total_cores(tight_cores);
    let ids: Vec<StreamId> = streams
        .iter()
        .take(2)
        .enumerate()
        .map(|(v, (w, m, _))| {
            server
                .open_stream(format!("cam-{v}"), m, w, IngestOptions::default())
                .expect("admission")
        })
        .collect();
    let mut rejected = 0;
    let mut round = 0usize;
    drive(&mut |v, seg| {
        if v == 0 && round == 137 {
            // Mid-epoch: this admission must be rejected on both sides.
            let (w2, m2, _) = &streams[2];
            let err = server
                .open_stream("late", m2, w2, IngestOptions::default())
                .unwrap_err();
            assert!(matches!(err, SkyError::UnderProvisioned { .. }));
            rejected += 1;
        }
        server.push(ids[v], seg).expect("push");
        if v == 1 {
            round += 1;
        }
    });
    assert_eq!(rejected, 1);
    let reference = server.finish();

    for shards in [1, 3] {
        let mut rt = IngestRuntime::new(RuntimeConfig {
            shards,
            shared_cloud_budget_usd: SHARED_BUDGET_USD,
            seed: SEED,
            replan_interval_secs: Some(REPLAN_SECS),
            total_cores: Some(tight_cores),
            ..RuntimeConfig::default()
        });
        let ids: Vec<StreamId> = streams
            .iter()
            .take(2)
            .enumerate()
            .map(|(v, (w, m, _))| {
                rt.open_stream(format!("cam-{v}"), m, w, IngestOptions::default())
                    .expect("admission")
            })
            .collect();
        let mut round = 0usize;
        drive(&mut |v, seg| {
            if v == 0 && round == 137 {
                let (w2, m2, _) = &streams[2];
                let err = rt
                    .open_stream("late", m2, w2, IngestOptions::default())
                    .unwrap_err();
                assert!(matches!(err, SkyError::UnderProvisioned { .. }));
            }
            rt.push(ids[v], seg).expect("push");
            if v == 1 {
                round += 1;
            }
        });
        let out = rt.finish().expect("finish");
        assert_multi_outcomes_bitwise_equal(
            &format!("rejected admission, shards={shards}"),
            &reference,
            &out,
        );
    }
}

// ---- Runtime-specific behaviors beyond the equivalence bar. ----

#[test]
fn overloaded_mailbox_is_typed_backpressure() {
    let streams = fixture();
    let (w0, m0, s0) = &streams[0];
    let (w1, m1, _) = &streams[1];
    let mut rt = IngestRuntime::new(RuntimeConfig {
        shards: 2,
        shared_cloud_budget_usd: SHARED_BUDGET_USD,
        seed: SEED,
        replan_interval_secs: Some(REPLAN_SECS),
        total_cores: Some(TOTAL_CORES),
        ..RuntimeConfig::default()
    });
    let a = rt
        .open_stream("a", m0, w0, IngestOptions::default())
        .unwrap();
    let _b = rt
        .open_stream("b", m1, w1, IngestOptions::default())
        .unwrap();

    // Feed only stream a: the epoch cannot dispatch while b lags, so a's
    // mailbox fills to exactly one epoch quota and then pushes back.
    for seg in &s0[..QUOTA] {
        rt.push(a, seg).expect("within the epoch bound");
    }
    let err = rt.push(a, &s0[QUOTA]).unwrap_err();
    assert_eq!(
        err,
        SkyError::Overloaded {
            stream: a.index(),
            queued: QUOTA,
            capacity: QUOTA,
        }
    );
    let m = rt.metrics();
    assert_eq!(m.streams[a.index()].lag_segments, QUOTA, "lag is visible");
    assert_eq!(m.segments_processed, 0, "nothing dispatched while b lags");
}

#[test]
fn closing_mid_epoch_redistributes_shares_in_the_next_joint_plan() {
    let streams = fixture();
    let mut rt = IngestRuntime::new(RuntimeConfig {
        shards: 2,
        shared_cloud_budget_usd: 0.6,
        seed: SEED,
        replan_interval_secs: Some(REPLAN_SECS),
        total_cores: Some(TOTAL_CORES),
        ..RuntimeConfig::default()
    });
    let ids: Vec<StreamId> = streams
        .iter()
        .take(3)
        .enumerate()
        .map(|(v, (w, m, _))| {
            rt.open_stream(format!("cam-{v}"), m, w, IngestOptions::default())
                .expect("admission")
        })
        .collect();

    let before = rt.last_joint_plan().expect("admission planned").clone();
    assert_eq!(before.streams, vec![0, 1, 2]);
    assert!((before.lease_usd - 0.2).abs() < 1e-12, "0.6 / 3 streams");
    assert_eq!(before.fair_cores, (TOTAL_CORES / 3.0).floor());

    // Half an epoch in, stream 1 leaves; the others complete the epoch and
    // the next barrier replans over the survivors only.
    for i in 0..QUOTA {
        for (v, id) in ids.iter().enumerate() {
            if v == 1 && i == QUOTA / 2 {
                rt.close_stream(*id).expect("close");
            }
            if v == 1 && i >= QUOTA / 2 {
                continue;
            }
            rt.push(*id, &streams[v].2[i]).expect("push");
        }
    }
    // The barrier fires lazily with the next epoch's dispatch: feed a full
    // second epoch to the survivors.
    for i in QUOTA..2 * QUOTA {
        rt.push(ids[0], &streams[0].2[i]).expect("next epoch");
        rt.push(ids[2], &streams[2].2[i]).expect("next epoch");
    }

    let after = rt.last_joint_plan().expect("barrier planned").clone();
    assert_eq!(after.streams, vec![0, 2], "closed stream left the plan");
    assert!((after.lease_usd - 0.3).abs() < 1e-12, "0.6 / 2 streams");
    assert_eq!(after.fair_cores, (TOTAL_CORES / 2.0).floor());
    assert!(
        after.fair_cores > before.fair_cores,
        "released cores are redistributed"
    );

    let out = rt.finish().expect("finish");
    assert_eq!(out.streams.len(), 3, "closed streams keep their outcome");
    assert_eq!(out.streams[1].outcome.segments, QUOTA / 2);
}

#[test]
fn metrics_snapshot_reports_streams_and_throughput() {
    let streams = fixture();
    let (w0, m0, s0) = &streams[0];
    let (w1, m1, s1) = &streams[1];
    let mut rt = IngestRuntime::new(RuntimeConfig {
        shards: 2,
        shared_cloud_budget_usd: SHARED_BUDGET_USD,
        seed: SEED,
        replan_interval_secs: Some(REPLAN_SECS),
        total_cores: Some(TOTAL_CORES),
        ..RuntimeConfig::default()
    });
    let a = rt
        .open_stream("a", m0, w0, IngestOptions::default())
        .unwrap();
    let b = rt
        .open_stream("b", m1, w1, IngestOptions::default())
        .unwrap();
    for i in 0..QUOTA + 100 {
        rt.push(a, &s0[i]).unwrap();
        rt.push(b, &s1[i]).unwrap();
    }
    let m = rt.metrics();
    assert_eq!(m.shards, 2);
    assert_eq!(m.epoch, 2, "two admission barriers; the next is still lazy");
    assert_eq!(m.segments_processed, 2 * QUOTA, "one full epoch dispatched");
    assert_eq!(m.streams.len(), 2);
    for s in &m.streams {
        assert!(s.active);
        assert_eq!(s.segments_processed, QUOTA);
        assert_eq!(s.lag_segments, 100, "second epoch is queueing");
        assert_eq!(s.overflows, 0);
    }
    assert!(m.segs_per_sec > 0.0);
    assert!(m.wallet_left_usd <= SHARED_BUDGET_USD + 1e-9);
    assert!(m.total_cloud_usd() >= 0.0);

    rt.close_stream(a).unwrap();
    rt.close_stream(b).unwrap();
    let out = rt.finish().expect("finish");
    assert_eq!(out.streams.len(), 2);
    for s in &out.streams {
        assert_eq!(s.outcome.segments, QUOTA + 100);
        assert_eq!(s.outcome.overflows, 0);
    }
}

#[test]
fn runtime_rejects_unknown_closed_and_under_provisioned_streams() {
    let streams = fixture();
    let (w0, m0, s0) = &streams[0];
    let (w1, m1, _) = &streams[1];
    let mut rt = IngestRuntime::new(RuntimeConfig {
        shards: 1,
        total_cores: Some(1.0),
        replan_interval_secs: Some(REPLAN_SECS),
        ..RuntimeConfig::default()
    });
    let a = rt
        .open_stream("a", m0, w0, IngestOptions::default())
        .unwrap();
    // A second stream would shrink the fair share to ⌊1/2⌋ = 0 cores.
    let err = rt
        .open_stream("b", m1, w1, IngestOptions::default())
        .unwrap_err();
    assert!(matches!(err, SkyError::UnderProvisioned { .. }));
    assert_eq!(rt.n_streams(), 1);

    // Forge an id that was never admitted *here* by opening two streams on
    // a separate runtime (ids are admission-order slot indices).
    let mut rt2 = IngestRuntime::new(RuntimeConfig::default());
    let _ = rt2
        .open_stream("x", m0, w0, IngestOptions::default())
        .unwrap();
    let foreign = rt2
        .open_stream("y", m1, w1, IngestOptions::default())
        .unwrap();
    assert_eq!(
        rt.push(foreign, &s0[0]).unwrap_err(),
        SkyError::UnknownStream { id: 1 }
    );
    rt.close_stream(a).unwrap();
    assert_eq!(
        rt.push(a, &s0[0]).unwrap_err(),
        SkyError::StreamClosed { id: a.index() }
    );
    assert_eq!(
        rt.close_stream(a).unwrap_err(),
        SkyError::StreamClosed { id: a.index() }
    );
}

// ---- Batched ingest: `push_batch` == the per-segment `push` loop. ----

fn assert_step_reports_bitwise_equal(ctx: &str, a: &StepReport, b: &StepReport) {
    assert_eq!(a.seg_index, b.seg_index, "{ctx}: seg_index");
    assert_eq!(a.t_secs.to_bits(), b.t_secs.to_bits(), "{ctx}: t_secs");
    assert_eq!(a.category, b.category, "{ctx}: category");
    assert_eq!(a.config, b.config, "{ctx}: config");
    assert_eq!(a.placement, b.placement, "{ctx}: placement");
    assert_eq!(a.deviated, b.deviated, "{ctx}: deviated");
    assert_eq!(a.switched, b.switched, "{ctx}: switched");
    assert_eq!(a.replanned, b.replanned, "{ctx}: replanned");
    assert_eq!(
        a.buffer_bytes.to_bits(),
        b.buffer_bytes.to_bits(),
        "{ctx}: buffer_bytes"
    );
    assert_eq!(
        a.backlog_work.to_bits(),
        b.backlog_work.to_bits(),
        "{ctx}: backlog_work"
    );
}

#[test]
fn session_push_batch_matches_push_loop_bitwise() {
    let (w, m, segs) = &fixture()[0];
    let n = 1_500;
    let mk = || {
        IngestSession::with_stream_stats(
            m,
            w,
            IngestOptions::default(),
            StreamStats::from_segments(&segs[..n]),
        )
    };

    let mut by_loop = mk();
    let mut loop_reports = Vec::with_capacity(n);
    for seg in &segs[..n] {
        loop_reports.push(by_loop.push(seg).expect("push"));
    }

    // Uneven chunks, sized so chunk boundaries never line up with replan
    // boundaries: the batch path must reproduce every report bit for bit.
    let mut by_batch = mk();
    let mut batch_reports = Vec::with_capacity(n);
    for chunk in segs[..n].chunks(313) {
        batch_reports.extend(by_batch.push_batch(chunk).expect("push_batch"));
    }

    assert_eq!(loop_reports.len(), batch_reports.len());
    for (i, (a, b)) in loop_reports.iter().zip(&batch_reports).enumerate() {
        assert_step_reports_bitwise_equal(&format!("report {i}"), a, b);
    }
    assert_outcomes_bitwise_equal(
        "session batch == loop",
        &by_loop.finish(),
        &by_batch.finish(),
    );
}

fn batch_runtime(shards: usize, dir: Option<&PathBuf>) -> IngestRuntime<'static> {
    IngestRuntime::new(RuntimeConfig {
        shards,
        shared_cloud_budget_usd: SHARED_BUDGET_USD,
        seed: SEED,
        replan_interval_secs: Some(REPLAN_SECS),
        total_cores: Some(TOTAL_CORES),
        durability: dir.map(|d| DurabilityConfig {
            dir: d.clone(),
            // Journal-only durability: recovery must replay the fused
            // SegBatch records, not shortcut through a snapshot.
            checkpoint_every_epochs: 0,
        }),
        ..RuntimeConfig::default()
    })
}

/// Per-segment reference: two streams, round-robin, `serve` segments each.
fn loop_reference(serve: usize) -> MultiOutcome {
    let streams = fixture();
    let mut rt = batch_runtime(2, None);
    let a = rt
        .open_stream(
            "cam-0",
            &streams[0].1,
            &streams[0].0,
            IngestOptions::default(),
        )
        .expect("admission");
    let b = rt
        .open_stream(
            "cam-1",
            &streams[1].1,
            &streams[1].0,
            IngestOptions::default(),
        )
        .expect("admission");
    for i in 0..serve {
        rt.push(a, &streams[0].2[i]).expect("push");
        rt.push(b, &streams[1].2[i]).expect("push");
    }
    rt.close_stream(a).expect("close");
    rt.close_stream(b).expect("close");
    rt.finish().expect("finish")
}

#[test]
fn runtime_push_batch_matches_push_loop_bitwise_across_barriers() {
    let streams = fixture();
    let serve = 3 * QUOTA;
    let reference = loop_reference(serve);

    let mut rt = batch_runtime(2, None);
    let a = rt
        .open_stream(
            "cam-0",
            &streams[0].1,
            &streams[0].0,
            IngestOptions::default(),
        )
        .expect("admission");
    let b = rt
        .open_stream(
            "cam-1",
            &streams[1].1,
            &streams[1].0,
            IngestOptions::default(),
        )
        .expect("admission");
    let s0 = &streams[0].2;
    let s1 = &streams[1].2;

    rt.push_batch(a, &[]).expect("empty batch is a no-op");
    assert_eq!(rt.mailbox_room(a).expect("room"), QUOTA);

    // Epoch 0: `a` in two uneven chunks, then one `b` batch that *straddles
    // the epoch barrier* — it completes the epoch mid-call (dispatching and
    // replanning inside push_batch) and spills 300 segments into epoch 1.
    rt.push_batch(a, &s0[..613]).expect("chunk");
    assert_eq!(rt.mailbox_room(a).expect("room"), QUOTA - 613);
    rt.push_batch(a, &s0[613..QUOTA]).expect("chunk");
    rt.push_batch(b, &s1[..QUOTA + 300])
        .expect("straddling batch");
    assert_eq!(rt.metrics().epoch, 2, "the barrier fired mid-batch");

    // Epoch 1: exact-quota batch for `a`, another straddling batch for `b`.
    rt.push_batch(a, &s0[QUOTA..2 * QUOTA]).expect("chunk");
    rt.push_batch(b, &s1[QUOTA + 300..2 * QUOTA + 100])
        .expect("straddling batch");

    // Epoch 2: the remainders.
    rt.push_batch(a, &s0[2 * QUOTA..serve]).expect("chunk");
    rt.push_batch(b, &s1[2 * QUOTA + 100..serve])
        .expect("chunk");

    rt.close_stream(a).expect("close");
    rt.close_stream(b).expect("close");
    let out = rt.finish().expect("finish");
    assert_multi_outcomes_bitwise_equal("push_batch == push loop", &reference, &out);
}

#[test]
fn push_batch_overload_mid_batch_is_typed_and_keeps_the_accepted_prefix() {
    let streams = fixture();
    let serve = 2 * QUOTA;
    let reference = loop_reference(serve);

    let mut rt = batch_runtime(2, None);
    let a = rt
        .open_stream(
            "cam-0",
            &streams[0].1,
            &streams[0].0,
            IngestOptions::default(),
        )
        .expect("admission");
    let b = rt
        .open_stream(
            "cam-1",
            &streams[1].1,
            &streams[1].0,
            IngestOptions::default(),
        )
        .expect("admission");
    let s0 = &streams[0].2;
    let s1 = &streams[1].2;

    // `b` lags, so the epoch cannot dispatch: a batch larger than one epoch
    // quota accepts exactly the quota and then fails typed, exactly where
    // the per-segment loop's next push would have failed.
    let err = rt.push_batch(a, &s0[..QUOTA + 10]).unwrap_err();
    match err {
        SkyError::BatchFailed { accepted, source } => {
            assert_eq!(accepted, QUOTA, "the quota prefix was accepted");
            assert_eq!(
                *source,
                SkyError::Overloaded {
                    stream: a.index(),
                    queued: QUOTA,
                    capacity: QUOTA,
                }
            );
        }
        other => panic!("expected BatchFailed, got {other}"),
    }
    assert_eq!(rt.metrics().streams[a.index()].lag_segments, QUOTA);
    assert_eq!(rt.mailbox_room(a).expect("room"), 0);

    // A full mailbox rejects immediately with an empty accepted prefix.
    let err = rt.push_batch(a, &s0[QUOTA..QUOTA + 1]).unwrap_err();
    assert!(
        matches!(err, SkyError::BatchFailed { accepted: 0, ref source }
            if matches!(**source, SkyError::Overloaded { .. })),
        "{err}"
    );

    // Resume from the accepted prefix — never re-feed it — and the run is
    // bitwise identical to the clean per-segment loop.
    rt.push_batch(b, &s1[..QUOTA]).expect("sibling catches up");
    rt.push_batch(a, &s0[QUOTA..serve]).expect("next epoch");
    rt.push_batch(b, &s1[QUOTA..serve]).expect("next epoch");
    rt.close_stream(a).expect("close");
    rt.close_stream(b).expect("close");
    let out = rt.finish().expect("finish");
    assert_multi_outcomes_bitwise_equal("overloaded batch leaves no trace", &reference, &out);
}

#[test]
fn push_batch_rejects_invalid_closed_and_unknown_streams_mid_batch() {
    let streams = fixture();
    let mut rt = batch_runtime(2, None);
    let a = rt
        .open_stream(
            "cam-0",
            &streams[0].1,
            &streams[0].0,
            IngestOptions::default(),
        )
        .expect("admission");
    let _b = rt
        .open_stream(
            "cam-1",
            &streams[1].1,
            &streams[1].0,
            IngestOptions::default(),
        )
        .expect("admission");
    let s0 = &streams[0].2;

    // An invalid segment mid-batch: the valid prefix is accepted (queued,
    // journaled), the batch fails typed at the offender.
    let mut batch: Vec<Segment> = s0[..10].to_vec();
    batch[5].duration = f64::NAN;
    let err = rt.push_batch(a, &batch).unwrap_err();
    assert!(
        matches!(err, SkyError::BatchFailed { accepted: 5, ref source }
            if matches!(**source, SkyError::InvalidInput { .. })),
        "{err}"
    );
    assert_eq!(rt.metrics().streams[a.index()].lag_segments, 5);

    // A batch after a queued in-band close marker is rejected whole: the
    // stream is settling after the segments pushed *before* the marker.
    rt.close_stream(a).expect("close");
    let err = rt.push_batch(a, &s0[5..8]).unwrap_err();
    assert!(
        matches!(err, SkyError::BatchFailed { accepted: 0, ref source }
            if matches!(**source, SkyError::StreamClosed { .. })),
        "{err}"
    );
    assert!(matches!(
        rt.mailbox_room(a),
        Err(SkyError::StreamClosed { .. })
    ));

    // Unknown streams are typed the same way the per-segment push types them.
    let mut rt2 = IngestRuntime::new(RuntimeConfig::default());
    let _ = rt2
        .open_stream("x", &streams[0].1, &streams[0].0, IngestOptions::default())
        .unwrap();
    let _ = rt2
        .open_stream("y", &streams[1].1, &streams[1].0, IngestOptions::default())
        .unwrap();
    let foreign = StreamId::from_index(3);
    let err = rt2.push_batch(foreign, &s0[..2]).unwrap_err();
    assert!(
        matches!(err, SkyError::BatchFailed { accepted: 0, ref source }
            if matches!(**source, SkyError::UnknownStream { id: 3 })),
        "{err}"
    );
    assert!(matches!(
        rt2.mailbox_room(foreign),
        Err(SkyError::UnknownStream { id: 3 })
    ));
}

#[test]
fn batched_ingest_wal_is_deterministic_and_replays_bitwise() {
    let streams = fixture();
    let serve = 3 * QUOTA;
    let reference = loop_reference(serve);
    let s0 = &streams[0].2;
    let s1 = &streams[1].2;

    // Drive the batched prefix (through a mid-epoch-2 crash point): two
    // straddling `b` batches, exact-quota `a` batches.
    let drive_prefix = |rt: &mut IngestRuntime<'static>| {
        let a = rt
            .open_stream(
                "cam-0",
                &streams[0].1,
                &streams[0].0,
                IngestOptions::default(),
            )
            .expect("admission");
        let b = rt
            .open_stream(
                "cam-1",
                &streams[1].1,
                &streams[1].0,
                IngestOptions::default(),
            )
            .expect("admission");
        rt.push_batch(a, &s0[..613]).expect("chunk");
        rt.push_batch(a, &s0[613..QUOTA]).expect("chunk");
        rt.push_batch(b, &s1[..QUOTA + 300]).expect("straddle");
        rt.push_batch(a, &s0[QUOTA..2 * QUOTA]).expect("chunk");
        rt.push_batch(b, &s1[QUOTA + 300..2 * QUOTA + 100])
            .expect("straddle");
    };

    let tmp = |tag: &str| {
        let dir = std::env::temp_dir().join(format!(
            "vetl-batch-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    };

    // The fused SegBatch framing is deterministic: two identical batched
    // runs journal byte-identical files.
    let (dir1, dir2) = (tmp("a"), tmp("b"));
    {
        let mut rt = batch_runtime(2, Some(&dir1));
        drive_prefix(&mut rt);
        // Crash: dropped without finish().
    }
    {
        let mut rt = batch_runtime(2, Some(&dir2));
        drive_prefix(&mut rt);
    }
    let wal1 = std::fs::read(vetl::skyscraper::runtime::wal_path(&dir1)).expect("wal 1");
    let wal2 = std::fs::read(vetl::skyscraper::runtime::wal_path(&dir2)).expect("wal 2");
    assert_eq!(wal1, wal2, "batched WAL bytes are deterministic");
    let _ = std::fs::remove_dir_all(&dir2);

    // Recover from the batched journal (replaying SegBatch records through
    // push_batch), resume with batches, and finish: bitwise identical to
    // the uninterrupted per-segment loop. The recovery even changes the
    // shard count.
    let resolve = |slot: usize, id: &str| {
        assert_eq!(id, format!("cam-{slot}"));
        let (w, m, _) = &fixture()[slot];
        Some((m, w as &(dyn Workload + 'static)))
    };
    let (mut rt, report) = IngestRuntime::recover(
        RuntimeConfig {
            shards: 1,
            shared_cloud_budget_usd: SHARED_BUDGET_USD,
            seed: SEED,
            replan_interval_secs: Some(REPLAN_SECS),
            total_cores: Some(TOTAL_CORES),
            durability: Some(DurabilityConfig {
                dir: dir1.clone(),
                checkpoint_every_epochs: 0,
            }),
            ..RuntimeConfig::default()
        },
        &resolve,
    )
    .expect("recover");
    assert_eq!(report.replay_errors, 0);
    assert_eq!(
        report.streams[0].accepted_segments,
        2 * QUOTA,
        "every batched segment before the crash is durable"
    );
    assert_eq!(report.streams[1].accepted_segments, 2 * QUOTA + 100);

    let (a, b) = (StreamId::from_index(0), StreamId::from_index(1));
    rt.push_batch(a, &s0[2 * QUOTA..serve]).expect("resume");
    rt.push_batch(b, &s1[2 * QUOTA + 100..serve])
        .expect("resume");
    rt.close_stream(a).expect("close");
    rt.close_stream(b).expect("close");
    let out = rt.finish().expect("finish");
    assert_multi_outcomes_bitwise_equal("batched WAL replays bitwise", &reference, &out);
    let _ = std::fs::remove_dir_all(&dir1);
}
