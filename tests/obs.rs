//! Observability: the acceptance bar of `skyscraper::obs`.
//!
//! * **Recording is bitwise invisible**: for any churn schedule and any
//!   shard count, a run with an [`Obs`] attachment produces per-stream
//!   outcomes, plan records, and WAL bytes identical bit for bit to the
//!   same run without one — while the registry and flight recorder fill
//!   up on the side (the property would be vacuous otherwise).
//! * **One exposition surface**: the `Metrics` reply served over a
//!   socket equals an in-process `registry.snapshot()` of the same
//!   attachment, and wire replies do not change when recording turns on.
//! * Satellites: `total_lag` excludes closed slots under churn, an
//!   injected [`ManualClock`] pins the rate metrics exactly, per-stream
//!   metrics track mid-run open/close churn, and the dedup counters
//!   attribute lookups/hits only when dedup is actually on.
//!
//! Environment knobs (mirrored by the CI matrix): `VETL_SHARDS` — extra
//! shard count the properties run at (default 4).

use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use rand::{rngs::StdRng, Rng, SeedableRng};

use vetl::prelude::*;
use vetl::skyscraper::obs::{CounterId, GaugeId};
use vetl::skyscraper::offline::run_offline;
use vetl::skyscraper::runtime::wal_path;
use vetl::skyscraper::testkit::{assert_multi_outcomes_bitwise_equal, ToyWorkload};
use vetl::skyscraper::{FittedModel, MultiOutcome};
use vetl::workloads::co_located_fleet;

const SHARED_BUDGET_USD: f64 = 0.6;
/// Short planning epochs (120 segments at 2 s) so runs cross barriers.
const REPLAN_SECS: f64 = 240.0;
const QUOTA: usize = 120;
const SEED: u64 = 17;
const TOTAL_CORES: f64 = 16.0;

fn alt_shards() -> usize {
    std::env::var("VETL_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4)
}

fn shard_counts() -> Vec<usize> {
    let mut s = vec![1, 2, alt_shards()];
    s.sort_unstable();
    s.dedup();
    s
}

struct Fixture {
    workload: ToyWorkload,
    model: FittedModel,
    /// Independent content per camera (the churn schedules).
    streams: Vec<Vec<Segment>>,
    /// Two cameras with bit-identical timelines (the dedup workload).
    identical: Vec<Vec<Segment>>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let workload = ToyWorkload::new();
        let mut cam = SyntheticCamera::new(ContentParams::traffic_intersection(41), 2.0);
        let labeled = Recording::record(&mut cam, 20.0 * 60.0);
        let unlabeled = Recording::record(&mut cam, 2.0 * 86_400.0);
        let (model, _) = run_offline(
            &workload,
            &labeled,
            &unlabeled,
            HardwareSpec::with_cores(16),
            &SkyscraperConfig::fast_test(),
        )
        .expect("fit");
        let streams = (0..3u64)
            .map(|v| {
                let mut c = SyntheticCamera::new(ContentParams::traffic_intersection(43 + v), 2.0);
                Recording::record(&mut c, 2.0 * 500.0).segments().to_vec()
            })
            .collect();
        let identical = co_located_fleet(
            ContentParams::traffic_intersection(41),
            2.0,
            2,
            0.0,
            2.0 * 360.0,
            99,
        );
        Fixture {
            workload,
            model,
            streams,
            identical,
        }
    })
}

fn rt_config(shards: usize, obs: Option<Arc<Obs>>) -> RuntimeConfig {
    RuntimeConfig {
        shards,
        shared_cloud_budget_usd: SHARED_BUDGET_USD,
        seed: SEED,
        replan_interval_secs: Some(REPLAN_SECS),
        total_cores: Some(TOTAL_CORES),
        obs,
        ..RuntimeConfig::default()
    }
}

/// One churn schedule: `(round, camera, push_limit)` admissions and
/// `(round, handle)` closures over round-robin driving.
#[derive(Debug, Clone)]
struct Schedule {
    opens: Vec<(usize, usize, usize)>,
    closes: Vec<(usize, usize)>,
    rounds: usize,
}

/// Everything a run produces that the invisibility property compares:
/// the settled outcomes plus the planner-visible trajectory.
struct RunResult {
    outcome: MultiOutcome,
    epoch: usize,
    joint_plans: usize,
    /// `Debug` of the last joint plan — `{:?}` round-trips every f64, so
    /// string equality is bit equality.
    last_plan: String,
}

fn run_schedule(mut rt: IngestRuntime<'_>, schedule: &Schedule) -> RunResult {
    let f = fixture();
    // (handle, camera, cursor, open)
    let mut handles: Vec<(StreamId, usize, usize, bool)> = Vec::new();
    for round in 0..schedule.rounds {
        for &(at, cam, _) in &schedule.opens {
            if at == round {
                let id = rt
                    .open_stream(
                        format!("cam-{cam}"),
                        &f.model,
                        &f.workload,
                        IngestOptions::default(),
                    )
                    .expect("admission");
                handles.push((id, cam, 0, true));
            }
        }
        for &(at, h) in &schedule.closes {
            if at == round && handles[h].3 {
                rt.close_stream(handles[h].0).expect("close");
                handles[h].3 = false;
            }
        }
        for h in &mut handles {
            if !h.3 {
                continue;
            }
            let limit = schedule
                .opens
                .iter()
                .find(|&&(_, cam, _)| cam == h.1)
                .map(|&(_, _, l)| l)
                .unwrap_or(0);
            if h.2 < limit.min(f.streams[h.1].len()) {
                rt.push(h.0, &f.streams[h.1][h.2]).expect("push");
                h.2 += 1;
            } else {
                rt.close_stream(h.0).expect("exhausted close");
                h.3 = false;
            }
        }
    }
    let m = rt.metrics();
    RunResult {
        epoch: m.epoch,
        joint_plans: m.joint_plans,
        last_plan: format!("{:?}", rt.last_joint_plan()),
        outcome: rt.finish().expect("finish"),
    }
}

fn seeded_schedules(n: usize) -> Vec<Schedule> {
    let mut rng = StdRng::seed_from_u64(0x0B5);
    (0..n)
        .map(|_| {
            let open_at = rng.gen_range(1..2 * QUOTA);
            let close_at = rng.gen_range(1..2 * QUOTA);
            let len_a = rng.gen_range(QUOTA + 10..2 * QUOTA + 100);
            let len_c = rng.gen_range(100..QUOTA + 100);
            Schedule {
                opens: vec![(0, 0, len_a), (0, 1, 2 * QUOTA + 100), (open_at, 2, len_c)],
                closes: vec![(close_at, 0)],
                rounds: 2 * QUOTA + 100,
            }
        })
        .collect()
}

// ---- The tentpole property: recording on ≡ recording off. ----

#[test]
fn recording_is_bitwise_invisible_for_any_schedule_and_shard_count() {
    for (case, schedule) in seeded_schedules(2).iter().enumerate() {
        let reference = run_schedule(IngestRuntime::new(rt_config(1, None)), schedule);
        for shards in shard_counts() {
            let off = run_schedule(IngestRuntime::new(rt_config(shards, None)), schedule);
            let obs = Arc::new(Obs::new());
            let on = run_schedule(
                IngestRuntime::new(rt_config(shards, Some(obs.clone()))),
                schedule,
            );
            for (ctx, run) in [("off", &off), ("on", &on)] {
                assert_multi_outcomes_bitwise_equal(
                    &format!("case {case}: shards={shards} obs={ctx}"),
                    &reference.outcome,
                    &run.outcome,
                );
                assert_eq!(reference.epoch, run.epoch, "case {case} {ctx}: epoch");
                assert_eq!(
                    reference.joint_plans, run.joint_plans,
                    "case {case} {ctx}: joint_plans"
                );
                assert_eq!(
                    reference.last_plan, run.last_plan,
                    "case {case} {ctx}: last joint plan"
                );
            }

            // The property must not hold vacuously: the attachment filled
            // up while staying invisible.
            let total_pushed: u64 = schedule
                .opens
                .iter()
                .map(|&(_, cam, l)| l.min(fixture().streams[cam].len()) as u64)
                .sum();
            assert!(obs.registry.counter(CounterId::SessionPushes) > 0);
            assert!(obs.registry.counter(CounterId::SessionPushes) <= total_pushed);
            assert!(obs.registry.counter(CounterId::EpochBarriers) > 0);
            assert!(
                obs.registry.counter(CounterId::LpSolvesCold) >= 1,
                "the first joint solve starts without a basis"
            );
            assert!(obs.flight.recorded() > 0, "flight recorder saw the run");
            let events = obs.flight.events();
            let tags: Vec<&str> = events.iter().map(|(_, e)| e.tag()).collect();
            assert!(tags.contains(&"epoch_open"));
            assert!(tags.contains(&"epoch_close"));
            assert!(tags.contains(&"plan_change"));
            // Sequence numbers are monotonic even after ring eviction.
            for w in events.windows(2) {
                assert!(w[0].0 < w[1].0, "flight seq monotonic");
            }
        }
    }
}

#[test]
fn recording_leaves_wal_bytes_identical() {
    let schedule = &seeded_schedules(1)[0];
    let tmp = |tag: &str| {
        let dir = std::env::temp_dir().join(format!(
            "vetl-obs-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    };
    let run = |dir: &PathBuf, obs: Option<Arc<Obs>>| {
        let mut cfg = rt_config(2, obs);
        cfg.durability = Some(DurabilityConfig {
            dir: dir.clone(),
            checkpoint_every_epochs: 0, // journal-only: every byte compared
        });
        run_schedule(IngestRuntime::new(cfg), schedule)
    };
    let (dir_off, dir_on) = (tmp("off"), tmp("on"));
    let obs = Arc::new(Obs::new());
    let off = run(&dir_off, None);
    let on = run(&dir_on, Some(obs.clone()));
    assert_multi_outcomes_bitwise_equal("durable obs on == off", &off.outcome, &on.outcome);
    let wal_off = std::fs::read(wal_path(&dir_off)).expect("wal off");
    let wal_on = std::fs::read(wal_path(&dir_on)).expect("wal on");
    assert_eq!(wal_off, wal_on, "recording never reaches the journal");
    assert!(
        obs.registry.counter(CounterId::WalAppends) > 0,
        "the WAL path was actually instrumented"
    );
    let _ = std::fs::remove_dir_all(&dir_off);
    let _ = std::fs::remove_dir_all(&dir_on);
}

// ---- Wire exposition. ----

fn sock_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vetl-obs-{}-{tag}.sock", std::process::id()))
}

/// Drive one client over a unix socket: open two profile streams, push
/// `segs` segments each round-robin in batches, close, snapshot stats.
/// Returns the encoded `Stats` reply plus the drained outcomes.
fn served_run(tag: &str, obs: Option<Arc<Obs>>, segs: usize) -> (Vec<u8>, MultiOutcome) {
    let f = fixture();
    let mut svc = IngestService::new(rt_config(0, obs));
    svc.register_profile("cam0", &f.model, &f.workload);
    svc.register_profile("cam1", &f.model, &f.workload);
    let path = sock_path(tag);
    let server = NetServer::bind(ServerConfig {
        unix: Some(path.clone()),
        ..ServerConfig::default()
    })
    .expect("bind");
    let handle = server.handle();
    let (report, stats) = std::thread::scope(|s| {
        let serve = s.spawn(move || server.serve(svc).expect("serve"));
        let drive = || {
            let ep = Endpoint::Unix(path.clone());
            let mut c = NetClient::connect(&ep, NetClientConfig::default()).expect("connect");
            let a = c
                .open_stream("cam0", "cam-00", IngestOptions::default())
                .expect("open a");
            let b = c
                .open_stream("cam1", "cam-01", IngestOptions::default())
                .expect("open b");
            // Epoch-quota-aligned chunks: stream `a`'s batch fills its
            // mailbox exactly and `b`'s completes the epoch mid-batch, so
            // neither stream ever stalls waiting on the other's quota.
            for chunk in (0..segs).collect::<Vec<_>>().chunks(QUOTA) {
                let sa: Vec<Segment> = chunk.iter().map(|&i| f.streams[0][i]).collect();
                let sb: Vec<Segment> = chunk.iter().map(|&i| f.streams[1][i]).collect();
                c.push_batch(a, &sa).expect("push a");
                c.push_batch(b, &sb).expect("push b");
            }
            c.close_stream(a).expect("close a");
            c.close_stream(b).expect("close b");
            let stats = c.stats().expect("stats").encode();
            c.shutdown_server().expect("shutdown");
            stats
        };
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(drive)) {
            Ok(stats) => (serve.join().expect("serve thread"), stats),
            Err(p) => {
                handle.stop();
                let _ = serve.join();
                std::panic::resume_unwind(p);
            }
        }
    });
    (stats, report.outcome)
}

#[test]
fn wire_replies_do_not_change_when_recording_turns_on() {
    const SEGS: usize = 2 * QUOTA + 50;
    let (stats_off, out_off) = served_run("wire-off", None, SEGS);
    let obs = Arc::new(Obs::new());
    let (stats_on, out_on) = served_run("wire-on", Some(obs.clone()), SEGS);
    assert_eq!(stats_off, stats_on, "Stats reply bytes identical");
    assert_multi_outcomes_bitwise_equal("served obs on == off", &out_off, &out_on);
    assert!(
        obs.registry.counter(CounterId::NetRequests) > 0,
        "the request path was actually instrumented"
    );
}

#[test]
fn get_metrics_over_socket_matches_in_process_snapshot() {
    let f = fixture();
    let obs = Arc::new(Obs::new());
    let mut svc = IngestService::new(rt_config(0, Some(obs.clone())));
    svc.register_profile("cam0", &f.model, &f.workload);
    let path = sock_path("scrape");
    let server = NetServer::bind(ServerConfig {
        unix: Some(path.clone()),
        ..ServerConfig::default()
    })
    .expect("bind");
    let handle = server.handle();
    std::thread::scope(|s| {
        let serve = s.spawn(move || server.serve(svc).expect("serve"));
        let drive = || {
            let ep = Endpoint::Unix(path.clone());
            let mut c = NetClient::connect(&ep, NetClientConfig::default()).expect("connect");
            let a = c
                .open_stream("cam0", "cam-00", IngestOptions::default())
                .expect("open");
            let segs: Vec<Segment> = f.streams[0][..QUOTA].to_vec();
            c.push_batch(a, &segs).expect("push");
            let wire = c.get_metrics().expect("metrics");
            // The server books the request *before* snapshotting and is
            // idle afterwards, so the shared attachment has not moved.
            let local = obs.registry.snapshot();
            assert_eq!(wire, local, "wire snapshot == in-process registry");
            assert!(
                wire.counter("net_requests").unwrap() >= 3,
                "hello+open+push"
            );
            assert_eq!(
                wire.counter("mailbox_enqueues").unwrap(),
                QUOTA as u64,
                "every pushed segment was counted"
            );
            assert!(
                wire.gauge("skyscraper_epoch").is_none(),
                "snapshot names are unprefixed; the prefix is prometheus-only"
            );
            assert_eq!(
                wire.gauge("epoch"),
                Some(obs.registry.gauge(GaugeId::Epoch))
            );
            let rendered = wire.render_prometheus();
            assert!(rendered.contains("skyscraper_session_pushes_total"));
            assert!(rendered.contains("skyscraper_wallet_left_usd"));
            assert!(rendered.contains("skyscraper_net_request_seconds_bucket"));
            c.close_stream(a).expect("close");
            c.shutdown_server().expect("shutdown");
        };
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(drive)) {
            Ok(()) => {
                serve.join().expect("serve thread");
            }
            Err(p) => {
                handle.stop();
                let _ = serve.join();
                std::panic::resume_unwind(p);
            }
        }
    });
}

// ---- Flight-recorder tracing of admission control. ----

#[test]
fn admission_rejection_and_backpressure_are_traced() {
    let f = fixture();
    let obs = Arc::new(Obs::new());
    let mut cfg = rt_config(2, Some(obs.clone()));
    cfg.total_cores = Some(2.0); // 2 streams fit; a third gets ⌊2/3⌋ = 0
    let mut rt = IngestRuntime::new(cfg);
    let a = rt
        .open_stream("a", &f.model, &f.workload, IngestOptions::default())
        .expect("open a");
    let _b = rt
        .open_stream("b", &f.model, &f.workload, IngestOptions::default())
        .expect("open b");
    let err = rt
        .open_stream("late", &f.model, &f.workload, IngestOptions::default())
        .unwrap_err();
    assert!(matches!(err, SkyError::UnderProvisioned { .. }));
    assert_eq!(obs.registry.counter(CounterId::AdmissionsAccepted), 2);
    assert_eq!(obs.registry.counter(CounterId::AdmissionsRejected), 1);

    // Feed only `a`: its mailbox fills to the epoch quota and pushes back.
    for seg in &f.streams[0][..QUOTA] {
        rt.push(a, seg).expect("within quota");
    }
    assert!(rt.push(a, &f.streams[0][QUOTA]).is_err());
    assert_eq!(obs.registry.counter(CounterId::BackpressureRejections), 1);

    let events = obs.flight.events();
    let accepted: Vec<&str> = events
        .iter()
        .filter_map(|(_, e)| match e {
            TraceEvent::AdmissionAccepted { workload_id, .. } => Some(workload_id.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(accepted, vec!["a", "b"]);
    assert!(events.iter().any(|(_, e)| matches!(
        e,
        TraceEvent::AdmissionRejected { workload_id, .. } if workload_id == "late"
    )));
    assert!(events.iter().any(|(_, e)| matches!(
        e,
        TraceEvent::Backpressure { slot, queued, capacity }
            if *slot == a.index() && queued == capacity
    )));
}

// ---- Satellites: metrics correctness under churn and injected clocks. ----

#[test]
fn total_lag_excludes_closed_slots() {
    let mk = |slot: usize, active: bool, lag: usize| StreamMetrics {
        slot,
        workload_id: format!("cam-{slot}"),
        active,
        segments_processed: 0,
        lag_segments: lag,
        buffer_bytes: 0.0,
        backlog_work: 0.0,
        cloud_spent_usd: 0.0,
        overflows: 0,
        dedup: DedupStats::default(),
    };
    let m = RuntimeMetrics {
        shards: 2,
        epoch: 3,
        joint_plans: 4,
        wallet_left_usd: 0.1,
        segments_processed: 500,
        wall_secs: 1.0,
        segs_per_sec: 500.0,
        dedup: DedupStats::default(),
        dedup_cache_entries: 0,
        streams: vec![mk(0, true, 40), mk(1, false, 70), mk(2, true, 2)],
    };
    // Regression: slot 1 settled with a residual lag reading; counting it
    // would overstate live ingress pressure under open/close churn.
    assert_eq!(m.total_lag(), 42);

    let reg = MetricsRegistry::new();
    m.sync_registry(&reg);
    assert_eq!(reg.gauge(GaugeId::TotalLagSegments), 42.0);
    assert_eq!(reg.gauge(GaugeId::ActiveStreams), 2.0);
}

#[test]
fn manual_clock_pins_rate_metrics_exactly() {
    let f = fixture();
    let clock = Arc::new(ManualClock::new(100.0));
    let mut cfg = rt_config(1, None);
    cfg.clock = Some(clock.clone());
    let mut rt = IngestRuntime::new(cfg);
    let a = rt
        .open_stream("a", &f.model, &f.workload, IngestOptions::default())
        .expect("open a");
    let b = rt
        .open_stream("b", &f.model, &f.workload, IngestOptions::default())
        .expect("open b");
    for i in 0..QUOTA {
        rt.push(a, &f.streams[0][i]).expect("push");
        rt.push(b, &f.streams[1][i]).expect("push");
    }
    clock.advance(8.0);
    let m = rt.metrics();
    assert_eq!(m.wall_secs.to_bits(), 8.0_f64.to_bits(), "exact wall clock");
    assert_eq!(
        m.segs_per_sec.to_bits(),
        ((2 * QUOTA) as f64 / 8.0).to_bits(),
        "exact rate: one dispatched epoch over 8 injected seconds"
    );
    clock.set(90.0); // time went backwards: clamped, not negative
    assert_eq!(rt.metrics().wall_secs, 0.0);
    rt.close_stream(a).expect("close");
    rt.close_stream(b).expect("close");
    rt.finish().expect("finish");
}

#[test]
fn stream_metrics_track_mid_run_churn() {
    let f = fixture();
    let mut rt = IngestRuntime::new(rt_config(2, None));
    let a = rt
        .open_stream("a", &f.model, &f.workload, IngestOptions::default())
        .expect("open a");
    let b = rt
        .open_stream("b", &f.model, &f.workload, IngestOptions::default())
        .expect("open b");
    for i in 0..QUOTA {
        rt.push(a, &f.streams[0][i]).expect("push");
        rt.push(b, &f.streams[1][i]).expect("push");
    }
    // Epoch dispatched; close `b`. The close marker is in-band, so `b`
    // stays active until the next barrier processes it.
    rt.close_stream(b).expect("close b");
    assert!(rt.metrics().streams[b.index()].active, "close is in-band");
    // A second full `a` epoch fires the barrier (the queued close marker
    // un-gates it), settling `b`; 50 more segments then queue into `a`.
    for i in QUOTA..2 * QUOTA {
        rt.push(a, &f.streams[0][i]).expect("push");
    }
    for i in 2 * QUOTA..2 * QUOTA + 50 {
        rt.push(a, &f.streams[0][i]).expect("push");
    }
    let m = rt.metrics();
    assert!(m.streams[a.index()].active);
    assert_eq!(m.streams[a.index()].segments_processed, 2 * QUOTA);
    assert_eq!(m.streams[a.index()].lag_segments, 50);
    assert!(!m.streams[b.index()].active, "settled at the barrier");
    assert_eq!(m.streams[b.index()].segments_processed, QUOTA);
    assert_eq!(
        m.total_lag(),
        m.streams
            .iter()
            .filter(|s| s.active)
            .map(|s| s.lag_segments)
            .sum::<usize>()
    );
    rt.close_stream(a).expect("close a");
    let out = rt.finish().expect("finish");
    assert_eq!(out.streams.len(), 2, "closed streams keep their outcome");
}

#[test]
fn dedup_counters_attribute_lookups_only_when_dedup_is_on() {
    let f = fixture();
    let feed = 2 * QUOTA + 60;
    let run = |policy: Option<DedupPolicy>, obs: Arc<Obs>| {
        let mut cfg = rt_config(2, Some(obs));
        cfg.dedup = policy;
        let mut rt = IngestRuntime::new(cfg);
        // Camera 1 joins one epoch late, so its identical timeline looks
        // up entries camera 0 already published at the first barrier.
        let a = rt
            .open_stream("cam-0", &f.model, &f.workload, IngestOptions::default())
            .expect("open");
        let mut bid = None;
        let mut cursors = [0usize; 2];
        for round in 0..QUOTA + feed {
            if round == QUOTA {
                bid = Some(
                    rt.open_stream("cam-1", &f.model, &f.workload, IngestOptions::default())
                        .expect("open late"),
                );
            }
            for (k, id) in [(0, Some(a)), (1, bid)] {
                let Some(id) = id else { continue };
                if cursors[k] < feed {
                    rt.push(id, &f.identical[k][cursors[k]]).expect("push");
                    cursors[k] += 1;
                } else if cursors[k] == feed {
                    rt.close_stream(id).expect("close");
                    cursors[k] += 1;
                }
            }
        }
        rt.finish().expect("finish")
    };

    let obs_off = Arc::new(Obs::new());
    let disabled = run(None, obs_off.clone());
    assert_eq!(obs_off.registry.counter(CounterId::DedupLookups), 0);
    assert_eq!(obs_off.registry.counter(CounterId::DedupHits), 0);

    let obs_on = Arc::new(Obs::new());
    let deduped = run(Some(DedupPolicy::exact()), obs_on.clone());
    let total = |o: &MultiOutcome, f: fn(&DedupStats) -> u64| {
        o.streams.iter().map(|s| f(&s.outcome.dedup)).sum::<u64>()
    };
    assert_eq!(
        obs_on.registry.counter(CounterId::DedupLookups),
        total(&deduped, |d| d.lookups),
        "registry lookups == per-stream attribution"
    );
    assert_eq!(
        obs_on.registry.counter(CounterId::DedupHits),
        total(&deduped, |d| d.hits()),
        "registry hits == per-stream attribution"
    );
    assert!(
        obs_on.registry.counter(CounterId::DedupHits) > 0,
        "the staggered identical fleet actually hit"
    );
    // Exact-mode dedup stays invisible in the settled results themselves;
    // only the counters differ (covered in tests/dedup.rs — here we only
    // pin that segments processed match).
    for (d, e) in disabled.streams.iter().zip(&deduped.streams) {
        assert_eq!(d.outcome.segments, e.outcome.segments);
    }
}
