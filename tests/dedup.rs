//! Cross-stream dedup: the acceptance bar of `skyscraper::dedupe`.
//!
//! * **Exact mode is bitwise invisible**: for any schedule and any shard
//!   count, a run with `DedupPolicy::exact()` produces per-stream outcomes
//!   bitwise identical to the same run with dedup disabled — while still
//!   reporting cache hits on redundant fleets (the win is skipped compute,
//!   not changed results).
//! * **Tolerant mode is shard-count independent**: near-duplicate hits
//!   change spend and quality, but identically so for the sequential
//!   server and the sharded runtime at every shard count.
//! * **Warm-cache crash recovery replays hit/miss decisions bitwise**,
//!   cross-checked against the journaled `DedupHit` counters.
//!
//! Environment knobs (mirrored by the CI matrix): `VETL_SHARDS` — extra
//! shard count the properties run at (default 4).

use std::path::PathBuf;
use std::sync::OnceLock;

use vetl::prelude::*;
use vetl::skyscraper::offline::run_offline;
use vetl::skyscraper::testkit::{assert_multi_outcomes_bitwise_equal, ToyWorkload};
use vetl::skyscraper::{FittedModel, MultiOutcome};
use vetl::workloads::co_located_fleet;

const SHARED_BUDGET_USD: f64 = 0.6;
/// Short planning epochs (120 segments at 2 s) so runs cross many barriers.
const REPLAN_SECS: f64 = 240.0;
const QUOTA: usize = 120;
const SEED: u64 = 13;
const TOTAL_CORES: f64 = 16.0;
/// Fleet size; camera `k` is admitted `k` epochs after camera 0, so its
/// segments look up entries the earlier cameras already published.
const CAMERAS: usize = 3;
/// Segments each camera feeds (2.5 epochs).
const FEED: usize = 2 * QUOTA + 60;

fn alt_shards() -> usize {
    std::env::var("VETL_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4)
}

fn shard_counts() -> Vec<usize> {
    let mut s = vec![1, 2, alt_shards()];
    s.sort_unstable();
    s.dedup();
    s
}

struct Fleet {
    workload: ToyWorkload,
    model: FittedModel,
    /// Jitter 0: every camera's timeline is bit-identical to camera 0's.
    identical: Vec<Vec<Segment>>,
    /// Small per-camera perceptual jitter (within one tolerant bucket most
    /// of the time): the near-duplicate workload shape.
    jittered: Vec<Vec<Segment>>,
}

/// One fitted model shared by the whole fleet — co-located cameras answer
/// the same extraction question, which is exactly what puts them in one
/// dedup scope (scope = model + workload fingerprints).
fn fixture() -> &'static Fleet {
    static FIXTURE: OnceLock<Fleet> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let workload = ToyWorkload::new();
        let mut cam = SyntheticCamera::new(ContentParams::traffic_intersection(77), 2.0);
        let labeled = Recording::record(&mut cam, 20.0 * 60.0);
        let unlabeled = Recording::record(&mut cam, 2.0 * 86_400.0);
        let (model, _) = run_offline(
            &workload,
            &labeled,
            &unlabeled,
            HardwareSpec::with_cores(16),
            &SkyscraperConfig::fast_test(),
        )
        .expect("fit");
        let secs = 2.0 * FEED as f64;
        let identical = co_located_fleet(
            ContentParams::traffic_intersection(77),
            2.0,
            CAMERAS,
            0.0,
            secs,
            99,
        );
        let jittered = co_located_fleet(
            ContentParams::traffic_intersection(77),
            2.0,
            CAMERAS,
            0.004,
            secs,
            99,
        );
        Fleet {
            workload,
            model,
            identical,
            jittered,
        }
    })
}

/// Both implementations behind one driving interface.
trait Driver {
    fn open(&mut self, id: String) -> StreamId;
    fn push(&mut self, id: StreamId, seg: &Segment);
    fn close(&mut self, id: StreamId);
    fn done(self: Box<Self>) -> MultiOutcome;
}

struct Sequential<'a>(MultiStreamServer<'a>);

impl Driver for Sequential<'_> {
    fn open(&mut self, id: String) -> StreamId {
        let f = fixture();
        self.0
            .open_stream(id, &f.model, &f.workload, IngestOptions::default())
            .expect("admission")
    }
    fn push(&mut self, id: StreamId, seg: &Segment) {
        self.0.push(id, seg).expect("sequential push");
    }
    fn close(&mut self, id: StreamId) {
        self.0.close_stream(id).expect("sequential close");
    }
    fn done(self: Box<Self>) -> MultiOutcome {
        self.0.finish()
    }
}

struct Sharded<'a>(IngestRuntime<'a>);

impl Driver for Sharded<'_> {
    fn open(&mut self, id: String) -> StreamId {
        let f = fixture();
        self.0
            .open_stream(id, &f.model, &f.workload, IngestOptions::default())
            .expect("admission")
    }
    fn push(&mut self, id: StreamId, seg: &Segment) {
        self.0.push(id, seg).expect("runtime push");
    }
    fn close(&mut self, id: StreamId) {
        self.0.close_stream(id).expect("runtime close");
    }
    fn done(self: Box<Self>) -> MultiOutcome {
        self.0.finish().expect("runtime finish")
    }
}

/// Per-camera admission rounds: camera `k` joins `k` epochs after camera
/// 0, so its lookups land on entries the earlier cameras published.
fn stagger() -> Vec<usize> {
    (0..CAMERAS).map(|k| k * QUOTA).collect()
}

/// Drive the staggered fleet: camera `k` is admitted at round `opens[k]`,
/// then every open camera pushes one segment per round; exhausted cameras
/// close.
fn run_fleet(
    mut driver: Box<dyn Driver + '_>,
    cams: &[Vec<Segment>],
    opens: &[usize],
) -> MultiOutcome {
    let rounds = opens.iter().max().copied().unwrap_or(0) + FEED;
    // (handle, cursor, open)
    let mut handles: Vec<(StreamId, usize, bool)> = Vec::new();
    for round in 0..rounds {
        for (k, _) in cams.iter().enumerate() {
            if opens[k] == round {
                let id = driver.open(format!("cam-{k}"));
                handles.push((id, 0, true));
            }
        }
        for (k, h) in handles.iter_mut().enumerate() {
            if !h.2 {
                continue;
            }
            if h.1 < FEED {
                driver.push(h.0, &cams[k][h.1]);
                h.1 += 1;
            } else {
                driver.close(h.0);
                h.2 = false;
            }
        }
    }
    driver.done()
}

fn server(policy: Option<DedupPolicy>) -> Box<dyn Driver + 'static> {
    let mut s = MultiStreamServer::new(SHARED_BUDGET_USD, CostModel::default(), SEED)
        .with_replan_interval(REPLAN_SECS)
        .with_total_cores(TOTAL_CORES);
    if let Some(p) = policy {
        s = s.with_dedup(p);
    }
    Box::new(Sequential(s))
}

fn runtime_config(
    policy: Option<DedupPolicy>,
    shards: usize,
    dir: Option<&PathBuf>,
) -> RuntimeConfig {
    RuntimeConfig {
        shards,
        shared_cloud_budget_usd: SHARED_BUDGET_USD,
        seed: SEED,
        replan_interval_secs: Some(REPLAN_SECS),
        total_cores: Some(TOTAL_CORES),
        dedup: policy,
        durability: dir.map(|d| DurabilityConfig {
            dir: d.clone(),
            checkpoint_every_epochs: 0,
        }),
        ..RuntimeConfig::default()
    }
}

fn runtime(policy: Option<DedupPolicy>, shards: usize) -> Box<dyn Driver + 'static> {
    Box::new(Sharded(IngestRuntime::new(runtime_config(
        policy, shards, None,
    ))))
}

/// Zero the dedup counters of every stream: the exact-mode property is
/// that everything *else* is bitwise identical to a dedup-disabled run
/// (the counters themselves are the only intentional difference).
fn strip_dedup_counters(out: &mut MultiOutcome) {
    for s in &mut out.streams {
        s.outcome.dedup = DedupStats::default();
    }
}

fn total_dedup(out: &MultiOutcome) -> DedupStats {
    let mut d = DedupStats::default();
    for s in &out.streams {
        d.absorb(&s.outcome.dedup);
    }
    d
}

#[test]
fn exact_mode_is_bitwise_identical_to_disabled_for_any_shard_count() {
    let f = fixture();
    // Reference: dedup disabled, sequential server.
    let disabled = run_fleet(server(None), &f.identical, &stagger());
    assert_eq!(total_dedup(&disabled).lookups, 0, "disabled never consults");

    // Exact mode must reproduce it bit for bit — server and runtime alike —
    // while actually hitting (the staggered identical fleet guarantees
    // cross-stream duplicates against published entries).
    let policy = Some(DedupPolicy::exact());
    let mut exact_seq = run_fleet(server(policy), &f.identical, &stagger());
    let seq_stats = total_dedup(&exact_seq);
    assert_eq!(seq_stats.lookups, (CAMERAS * FEED) as u64);
    assert!(
        seq_stats.hits() > 0,
        "identical fleet must hit: {seq_stats:?}"
    );
    assert_eq!(
        seq_stats.spend_saved_usd, 0.0,
        "exact mode charges cached spend bitwise, it saves work not dollars"
    );
    strip_dedup_counters(&mut exact_seq);
    assert_multi_outcomes_bitwise_equal("exact == disabled (sequential)", &disabled, &exact_seq);

    for shards in shard_counts() {
        let mut out = run_fleet(runtime(policy, shards), &f.identical, &stagger());
        assert!(total_dedup(&out).hits() > 0, "shards={shards} must hit");
        strip_dedup_counters(&mut out);
        assert_multi_outcomes_bitwise_equal(
            &format!("exact == disabled (shards={shards})"),
            &disabled,
            &out,
        );
    }

    // The property holds on *any* schedule, including the jittered fleet
    // where exact signatures rarely collide.
    let disabled_j = run_fleet(server(None), &f.jittered, &stagger());
    let mut exact_j = run_fleet(runtime(policy, 2), &f.jittered, &stagger());
    strip_dedup_counters(&mut exact_j);
    assert_multi_outcomes_bitwise_equal("exact == disabled (jittered)", &disabled_j, &exact_j);
}

#[test]
fn tolerant_mode_is_shard_count_independent_and_saves_spend() {
    let f = fixture();
    let policy = Some(DedupPolicy::near(0.02));
    let reference = run_fleet(server(policy), &f.jittered, &stagger());
    let stats = total_dedup(&reference);
    assert!(
        stats.hits_full > 0,
        "near-duplicate fleet must take full hits: {stats:?}"
    );
    assert!(stats.hit_rate() > 0.0);
    assert!(
        stats.spend_saved_usd > 0.0 || stats.bytes_saved > 0.0,
        "full hits must book savings: {stats:?}"
    );

    // Tolerant hits change outcomes (that is the point) — but identically
    // at every shard count, dedup counters included.
    for shards in shard_counts() {
        let out = run_fleet(runtime(policy, shards), &f.jittered, &stagger());
        assert_multi_outcomes_bitwise_equal(
            &format!("tolerant server == runtime (shards={shards})"),
            &reference,
            &out,
        );
    }
}

#[test]
fn stale_entries_are_recomputed_not_served() {
    let f = fixture();
    // An entry born at epoch B survives the age-`max_age` sweeps through
    // epoch B+2 (with `max_age_epochs: 1`), and a lookup during that final
    // epoch sees age 2 > max_age — the one window where the cache answers
    // `StaleHit` instead of serving. A camera lagging one quota behind looks
    // up at age 0 and a two-quota laggard at age 1, so staleness needs a
    // *three*-quota laggard: camera 2 joins three epochs after camera 0.
    let opens = [0, QUOTA, 3 * QUOTA];
    let policy = Some(DedupPolicy {
        max_age_epochs: 1,
        ..DedupPolicy::exact()
    });
    let stale_run = run_fleet(server(policy), &f.identical, &opens);
    let stats = total_dedup(&stale_run);
    assert!(
        stats.stale > 0,
        "three-quota laggard must see stale entries: {stats:?}"
    );
    assert!(
        stats.hits() > 0,
        "the one-quota laggard still hits fresh entries: {stats:?}"
    );

    // The runtime ages entries identically — stale counters included.
    for shards in shard_counts() {
        let rt_out = run_fleet(runtime(policy, shards), &f.identical, &opens);
        assert_multi_outcomes_bitwise_equal(
            &format!("staleness server == runtime (shards={shards})"),
            &stale_run,
            &rt_out,
        );
    }

    // Exact mode stays bitwise invisible even when staleness forces
    // recomputes — the recompute produces the same bits the hit would have.
    let disabled = run_fleet(server(None), &f.identical, &opens);
    let mut stripped = stale_run;
    strip_dedup_counters(&mut stripped);
    assert_multi_outcomes_bitwise_equal("stale recompute == disabled", &disabled, &stripped);
}

/// Warm-cache chaos: crash a durable dedup run mid-flight (after the cache
/// has published entries and streams have taken hits), recover from the
/// journal alone, resume, and finish. Replay re-executes every hit/miss
/// decision and the WAL's cumulative `DedupHit` counters cross-check each
/// barrier; the final outcomes — dedup counters included — must be bitwise
/// identical to the uninterrupted run.
#[test]
fn warm_cache_crash_recovery_replays_hits_bitwise() {
    let f = fixture();
    for (tag, policy, cams) in [
        ("exact", DedupPolicy::exact(), &f.identical),
        ("tolerant", DedupPolicy::near(0.02), &f.jittered),
    ] {
        let policy = Some(policy);
        let reference = run_fleet(runtime(policy, 2), cams, &stagger());
        assert!(total_dedup(&reference).hits() > 0, "{tag}: warm cache");

        // Crash two epochs in: camera 1 is admitted and already hitting.
        let crash_round = 2 * QUOTA + 17;
        let dir = std::env::temp_dir().join(format!(
            "vetl-dedup-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut pushed = [0usize; CAMERAS];
        {
            let mut rt = IngestRuntime::new(runtime_config(policy, 2, Some(&dir)));
            let mut handles: Vec<StreamId> = Vec::new();
            'drive: for round in 0..crash_round {
                for k in 0..CAMERAS {
                    if k * QUOTA == round {
                        handles.push(
                            rt.open_stream(
                                format!("cam-{k}"),
                                &f.model,
                                &f.workload,
                                IngestOptions::default(),
                            )
                            .expect("admission"),
                        );
                    }
                }
                for (k, id) in handles.iter().enumerate() {
                    if pushed[k] < FEED {
                        rt.push(*id, &cams[k][pushed[k]]).expect("push");
                        pushed[k] += 1;
                    }
                    if round == crash_round - 1 {
                        break 'drive; // die mid-round, runtime dropped
                    }
                }
            }
        }

        let resolve = |_slot: usize, id: &str| {
            assert!(id.starts_with("cam-"));
            let ff = fixture();
            Some((&ff.model, &ff.workload as &(dyn Workload + 'static)))
        };
        let (mut rt, report) =
            IngestRuntime::recover(runtime_config(policy, 4, Some(&dir)), &resolve)
                .expect("recover");
        assert_eq!(report.replay_errors, 0, "{tag}: clean replay");
        let m = rt.metrics();
        assert!(
            m.dedup.hits() > 0,
            "{tag}: recovery must rebuild a warm cache, got {:?}",
            m.dedup
        );

        // Resume exactly after the durable prefix and finish the schedule.
        // Camera `k`'s segment for round `r` is `r - k * QUOTA`; pushes the
        // journal already holds are skipped, never re-fed.
        let rounds = (CAMERAS - 1) * QUOTA + FEED;
        let mut handles: Vec<StreamId> = (0..report.streams.len())
            .map(StreamId::from_index)
            .collect();
        let mut cursor: Vec<usize> = report.streams.iter().map(|s| s.accepted_segments).collect();
        let mut open: Vec<bool> = report.streams.iter().map(|s| !s.closed).collect();
        for round in 0..rounds {
            if handles.len() < CAMERAS && handles.len() * QUOTA == round {
                let k = handles.len();
                handles.push(
                    rt.open_stream(
                        format!("cam-{k}"),
                        &f.model,
                        &f.workload,
                        IngestOptions::default(),
                    )
                    .expect("admission"),
                );
                cursor.push(0);
                open.push(true);
            }
            for k in 0..handles.len() {
                if !open[k] || round < k * QUOTA {
                    continue;
                }
                let seg_idx = round - k * QUOTA;
                if seg_idx >= FEED {
                    rt.close_stream(handles[k]).expect("close");
                    open[k] = false;
                } else if seg_idx >= cursor[k] {
                    rt.push(handles[k], &cams[k][seg_idx]).expect("resume push");
                    cursor[k] = seg_idx + 1;
                }
            }
        }
        let out = rt.finish().expect("finish");
        assert_multi_outcomes_bitwise_equal(
            &format!("{tag}: warm-cache crash recovery"),
            &reference,
            &out,
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
