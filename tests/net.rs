//! End-to-end tests for the network ingest front-end (`vetl-net`).
//!
//! The acceptance bar mirrors the runtime's own: **outcomes served over a
//! socket are bitwise identical to in-process ingestion of the same
//! segment schedule**, for any shard count (`VETL_SHARDS`, exercised by
//! the CI chaos matrix), any client count, and any number of
//! retryable-rejection re-feeds. On top of that, the front-end's failure
//! containment: admission races surface `UnderProvisioned` over the wire,
//! a mid-epoch disconnect auto-closes the connection's streams so the
//! next joint plan redistributes their leases, graceful shutdown delivers
//! every settled `Outcome`, and malformed / torn / checksum-bad frames —
//! including mutated frames re-stamped with *valid* checksums — are
//! answered typed and never panic the server or corrupt runtime state.

use std::io::{Read, Write};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use rand::{rngs::StdRng, Rng, SeedableRng};

use vetl::net::{NetError, ServeReport, StreamResult};
use vetl::prelude::*;
use vetl::skyscraper::detect_shards;
use vetl::skyscraper::offline::codec::checksum;
use vetl::skyscraper::offline::run_offline;
use vetl::skyscraper::serve::proto::{self, Request};
use vetl::skyscraper::testkit::{
    assert_multi_outcomes_bitwise_equal, assert_outcomes_bitwise_equal, ToyWorkload,
};
use vetl::skyscraper::{FittedModel, MultiOutcome};

const SHARED_BUDGET_USD: f64 = 0.5;
/// Short planning epochs (120 segments at 2 s) so runs cross barriers.
const REPLAN_SECS: f64 = 240.0;
const SEED: u64 = 13;
const TOTAL_CORES: f64 = 16.0;

type Fixture = Vec<(ToyWorkload, FittedModel, Vec<Segment>)>;

/// Independently fitted camera profiles plus online video for each.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        (0..3u64)
            .map(|v| {
                let w = ToyWorkload::new();
                let mut cam =
                    SyntheticCamera::new(ContentParams::traffic_intersection(31 + v), 2.0);
                let labeled = Recording::record(&mut cam, 20.0 * 60.0);
                let unlabeled = Recording::record(&mut cam, 2.0 * 86_400.0);
                let (model, _) = run_offline(
                    &w,
                    &labeled,
                    &unlabeled,
                    HardwareSpec::with_cores(16),
                    &SkyscraperConfig::fast_test(),
                )
                .expect("fit");
                let online = Recording::record(&mut cam, 2.0 * 400.0).segments().to_vec();
                (w, model, online)
            })
            .collect()
    })
}

/// `shards: 0` resolves through `detect_shards`, so the whole file runs
/// at whatever `VETL_SHARDS` the CI matrix pins — and the in-process
/// reference resolves identically.
fn rt_config() -> RuntimeConfig {
    RuntimeConfig {
        shards: 0,
        shared_cloud_budget_usd: SHARED_BUDGET_USD,
        seed: SEED,
        replan_interval_secs: Some(REPLAN_SECS),
        total_cores: Some(TOTAL_CORES),
        ..RuntimeConfig::default()
    }
}

/// A service with the first `n` fixture profiles registered as
/// `cam0..camN`.
fn service_for(n: usize) -> IngestService<'static> {
    let mut svc = IngestService::new(rt_config());
    for (v, (w, m, _)) in fixture().iter().take(n).enumerate() {
        svc.register_profile(format!("cam{v}"), m, w);
    }
    svc
}

fn sock_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vetl-net-{}-{tag}.sock", std::process::id()))
}

/// The in-process ground truth: open `limits.len()` fixture streams in
/// slot order, feed them balanced round-robin up to their limits, and —
/// when `close` — enqueue each stream's close marker right after its last
/// segment (so exhausted streams stop gating the epoch barrier, exactly
/// like a disconnected client's auto-close).
fn inprocess_reference(limits: &[usize], close: bool) -> MultiOutcome {
    let streams = fixture();
    let mut rt = IngestRuntime::new(rt_config());
    let ids: Vec<StreamId> = limits
        .iter()
        .enumerate()
        .map(|(v, _)| {
            let (w, m, _) = &streams[v];
            rt.open_stream(format!("cam-{v:02}"), m, w, IngestOptions::default())
                .expect("reference admission")
        })
        .collect();
    let rounds = limits.iter().copied().max().unwrap_or(0);
    for i in 0..rounds {
        for (v, &limit) in limits.iter().enumerate() {
            if i < limit {
                rt.push(ids[v], &streams[v].2[i]).expect("reference push");
                if close && i + 1 == limit {
                    rt.close_stream(ids[v]).expect("reference close");
                }
            }
        }
    }
    rt.finish().expect("reference finish")
}

/// Run `driver` beside a serving thread. If the driver panics, the server
/// is stopped (so the scope's implicit join cannot deadlock on a serve
/// thread that was never told to shut down) and the panic is propagated.
fn serve_and_drive<T>(
    server: NetServer,
    service: IngestService<'static>,
    driver: impl FnOnce() -> T,
) -> (ServeReport, T) {
    let handle = server.handle();
    std::thread::scope(|s| {
        let serve = s.spawn(move || server.serve(service).expect("serve"));
        match catch_unwind(AssertUnwindSafe(driver)) {
            Ok(out) => (serve.join().expect("serve thread"), out),
            Err(panic) => {
                handle.stop();
                let _ = serve.join();
                resume_unwind(panic);
            }
        }
    })
}

/// Sequential open tickets: client `i` opens only after `i-1`'s open was
/// acknowledged, so slot assignment (and with it the runtime's per-slot
/// RNG derivation) is deterministic while pushes stay fully concurrent.
/// Poisonable: a failed sibling unblocks every waiter instead of leaving
/// it parked on the condvar forever.
struct Tickets {
    turn: Mutex<(usize, bool)>,
    cv: Condvar,
}

impl Tickets {
    fn new() -> Self {
        Self {
            turn: Mutex::new((0, false)),
            cv: Condvar::new(),
        }
    }
    fn wait_for(&self, t: usize) {
        let mut turn = self.turn.lock().unwrap();
        while turn.0 < t && !turn.1 {
            turn = self.cv.wait(turn).unwrap();
        }
        assert!(!turn.1, "tickets poisoned by a failed sibling");
    }
    fn advance(&self) {
        self.turn.lock().unwrap().0 += 1;
        self.cv.notify_all();
    }
    fn poison(&self) {
        self.turn.lock().unwrap().1 = true;
        self.cv.notify_all();
    }
}

/// A reusable phase barrier that, unlike `std::sync::Barrier`, can be
/// poisoned when a participant dies — the survivors panic out instead of
/// deadlocking the test harness.
struct Gate {
    // (arrived, generation, poisoned)
    state: Mutex<(usize, usize, bool)>,
    cv: Condvar,
    n: usize,
}

impl Gate {
    fn new(n: usize) -> Self {
        Self {
            state: Mutex::new((0, 0, false)),
            cv: Condvar::new(),
            n,
        }
    }
    fn wait(&self) {
        let mut st = self.state.lock().unwrap();
        assert!(!st.2, "gate poisoned by a failed sibling");
        let gen = st.1;
        st.0 += 1;
        if st.0 == self.n {
            st.0 = 0;
            st.1 += 1;
            self.cv.notify_all();
            return;
        }
        while st.1 == gen && !st.2 {
            st = self.cv.wait(st).unwrap();
        }
        assert!(!st.2, "gate poisoned by a failed sibling");
    }
    fn poison(&self) {
        self.state.lock().unwrap().2 = true;
        self.cv.notify_all();
    }
}

/// Drive `n` concurrent clients against a bound server: ticketed opens,
/// concurrent chunked pushes (chunk size deliberately misaligned with the
/// epoch quota so partial accepts and retryable rejections both happen),
/// optional closes, then a shutdown from client 0 and an outcome read
/// from every client. Returns the serve report plus each client's
/// received results.
fn drive_clients(
    server: NetServer,
    service: IngestService<'static>,
    ep: Endpoint,
    n: usize,
    segs_per_stream: usize,
    chunk: usize,
    close_streams: bool,
) -> (ServeReport, Vec<Vec<StreamResult>>) {
    let streams = fixture();
    let handle = server.handle();
    serve_and_drive(server, service, move || {
        let tickets = Tickets::new();
        let gate = Gate::new(n);
        let joined: Vec<_> = std::thread::scope(|s| {
            let (tickets, gate, ep, handle) = (&tickets, &gate, &ep, &handle);
            let workers: Vec<_> = (0..n)
                .map(|v| {
                    s.spawn(move || {
                        let res = catch_unwind(AssertUnwindSafe(|| {
                            let mut client = NetClient::connect(ep, NetClientConfig::default())
                                .expect("connect");
                            assert_eq!(client.hello().server, "skyscraper");
                            assert_eq!(
                                client.hello().shards,
                                detect_shards(),
                                "the Hello reply reports the server's resolved shard count"
                            );
                            tickets.wait_for(v);
                            let slot = client
                                .open_stream(
                                    &format!("cam{v}"),
                                    &format!("cam-{v:02}"),
                                    IngestOptions::default(),
                                )
                                .expect("open");
                            assert_eq!(slot as usize, v, "ticketed opens assign slots in order");
                            tickets.advance();
                            gate.wait(); // every stream admitted before anyone pushes
                            let mut retries = 0u64;
                            for part in streams[v].2[..segs_per_stream].chunks(chunk) {
                                let stats = client.push_batch(slot, part).expect("push");
                                retries += stats.retries;
                            }
                            if close_streams {
                                client.close_stream(slot).expect("close");
                            }
                            gate.wait(); // every push/close done before the shutdown
                            if v == 0 {
                                client.shutdown_server().expect("shutdown");
                            }
                            let outs = client.recv_outcomes(1).expect("outcomes");
                            assert_eq!(outs.len(), 1, "client {v} receives its stream's outcome");
                            assert_eq!(outs[0].stream, slot);
                            assert_eq!(outs[0].workload_id, format!("cam-{v:02}"));
                            (outs, retries)
                        }));
                        if res.is_err() {
                            // Unblock siblings and the serve thread so the
                            // failure reports instead of hanging the scope.
                            tickets.poison();
                            gate.poison();
                            handle.stop();
                        }
                        res
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        });
        let mut per_client = Vec::with_capacity(n);
        let mut total_retries = 0u64;
        for res in joined {
            match res {
                Ok((outs, retries)) => {
                    per_client.push(outs);
                    total_retries += retries;
                }
                Err(panic) => resume_unwind(panic),
            }
        }
        // Whichever client's push fills the *last* mailbox of an epoch
        // triggers the dispatch mid-push and is accepted in full — but the
        // clients that filled up before it always take at least one
        // retryable rejection, so the total is never zero.
        assert!(
            total_retries > 0,
            "misaligned chunks against a {n}-stream epoch must hit backpressure"
        );
        per_client
    })
}

fn assert_served_matches(report: &ServeReport, per_client: &[Vec<StreamResult>], label: &str) {
    for (v, outs) in per_client.iter().enumerate() {
        assert_outcomes_bitwise_equal(
            &format!("{label}: client {v} outcome vs drained joint outcome"),
            &outs[0].outcome,
            &report.outcome.streams[v].outcome,
        );
    }
    assert_eq!(report.malformed, 0, "{label}: no protocol violations");
    assert_eq!(report.autoclosed_streams, 0, "{label}: all closes explicit");
}

#[test]
fn served_outcomes_bitwise_match_inprocess_over_unix() {
    const SEGS: usize = 300; // 2.5 epochs
    let reference = inprocess_reference(&[SEGS; 3], true);
    let path = sock_path("bitwise");
    let server = NetServer::bind(ServerConfig {
        unix: Some(path.clone()),
        ..ServerConfig::default()
    })
    .expect("bind");
    let (report, per_client) = drive_clients(
        server,
        service_for(3),
        Endpoint::Unix(path),
        3,
        SEGS,
        75,
        true,
    );
    assert_multi_outcomes_bitwise_equal("served (unix) vs in-process", &reference, &report.outcome);
    assert_eq!(report.connections, 3);
    assert_served_matches(&report, &per_client, "unix");
}

#[test]
fn served_outcomes_bitwise_match_inprocess_over_tcp() {
    const SEGS: usize = 240; // 2 full epochs
    let reference = inprocess_reference(&[SEGS; 2], true);
    let server = NetServer::bind(ServerConfig {
        tcp: Some("127.0.0.1:0".into()),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.tcp_addr().expect("bound tcp addr").to_string();
    let (report, per_client) = drive_clients(
        server,
        service_for(2),
        Endpoint::Tcp(addr),
        2,
        SEGS,
        80,
        true,
    );
    assert_multi_outcomes_bitwise_equal("served (tcp) vs in-process", &reference, &report.outcome);
    assert_eq!(report.connections, 2);
    assert_served_matches(&report, &per_client, "tcp");
}

#[test]
fn racing_opens_surface_underprovisioned_over_the_wire() {
    const RACERS: usize = 5;
    let path = sock_path("race");
    let mut cfg = rt_config();
    cfg.total_cores = Some(2.0); // 2 streams fit; a third gets ⌊2/3⌋ = 0
    let mut service = IngestService::new(cfg);
    let (w, m, _) = &fixture()[0];
    service.register_profile("cam0", m, w);
    let server = NetServer::bind(ServerConfig {
        unix: Some(path.clone()),
        ..ServerConfig::default()
    })
    .expect("bind");
    let handle = server.handle();
    let ep = Endpoint::Unix(path.clone());

    let (report, ()) = serve_and_drive(server, service, move || {
        let gate = Gate::new(RACERS);
        let joined: Vec<_> = std::thread::scope(|s| {
            let (gate, ep, handle) = (&gate, &ep, &handle);
            let racers: Vec<_> = (0..RACERS)
                .map(|v| {
                    s.spawn(move || {
                        let res = catch_unwind(AssertUnwindSafe(|| {
                            let mut c = NetClient::connect(ep, NetClientConfig::default())
                                .expect("connect");
                            gate.wait(); // all connected: now race the admissions
                            let res = c.open_stream(
                                "cam0",
                                &format!("race-{v}"),
                                IngestOptions::default(),
                            );
                            (c, res)
                        }));
                        if res.is_err() {
                            gate.poison();
                            handle.stop();
                        }
                        res
                    })
                })
                .collect();
            racers
                .into_iter()
                .map(|h| h.join().expect("racer thread"))
                .collect()
        });
        let mut winners = Vec::new();
        let mut losers = 0usize;
        for res in joined {
            let (client, res) = match res {
                Ok(pair) => pair,
                Err(panic) => resume_unwind(panic),
            };
            match res {
                Ok(slot) => winners.push((client, slot)),
                Err(NetError::Rejected {
                    retryable, reason, ..
                }) => {
                    assert!(!retryable, "admission failures are terminal");
                    assert!(
                        reason.contains("under-provisioned"),
                        "expected the fair-share rejection, got: {reason}"
                    );
                    losers += 1;
                    // dropping the client disconnects it; it owns no streams
                }
                Err(other) => panic!("unexpected open failure: {other}"),
            }
        }
        assert_eq!(winners.len(), 2, "exactly the fair-share count is admitted");
        assert_eq!(losers, RACERS - 2);
        let mut slots: Vec<u64> = winners.iter().map(|(_, slot)| *slot).collect();
        slots.sort_unstable();
        assert_eq!(slots, vec![0, 1]);
        for (c, slot) in winners.iter_mut() {
            c.close_stream(*slot).expect("close");
        }
        winners[0].0.shutdown_server().expect("shutdown");
        for (c, slot) in winners.iter_mut() {
            let outs = c.recv_outcomes(1).expect("outcomes");
            assert_eq!(outs[0].stream, *slot);
            assert_eq!(outs[0].outcome.segments, 0);
        }
    });
    assert_eq!(report.connections, RACERS);
    assert_eq!(report.outcome.streams.len(), 2);
    assert_eq!(report.autoclosed_streams, 0);
}

#[test]
fn mid_epoch_disconnect_autocloses_and_redistributes() {
    const DOOMED_SEGS: usize = 50; // vanishes mid-epoch
    const SURVIVOR_SEGS: usize = 240; // crosses two barriers afterwards
    let streams = fixture();
    let reference = inprocess_reference(&[DOOMED_SEGS, SURVIVOR_SEGS], true);
    let path = sock_path("disconnect");
    let server = NetServer::bind(ServerConfig {
        unix: Some(path.clone()),
        ..ServerConfig::default()
    })
    .expect("bind");
    let service = service_for(2);

    let (report, ()) = serve_and_drive(server, service, move || {
        let ep = Endpoint::Unix(path.clone());
        let mut doomed = NetClient::connect(&ep, NetClientConfig::default()).expect("connect");
        let slot_a = doomed
            .open_stream("cam0", "cam-00", IngestOptions::default())
            .expect("open doomed");
        let mut survivor = NetClient::connect(&ep, NetClientConfig::default()).expect("connect");
        let slot_b = survivor
            .open_stream("cam1", "cam-01", IngestOptions::default())
            .expect("open survivor");
        doomed
            .push_batch(slot_a, &streams[0].2[..DOOMED_SEGS])
            .expect("push doomed");
        drop(doomed); // mid-epoch disconnect: the server must auto-close

        // The survivor can only cross the epoch barrier once the doomed
        // stream's auto-close marker stops it gating the dispatch — this
        // push stalls on retryable rejections until then.
        survivor
            .push_batch(slot_b, &streams[1].2[..SURVIVOR_SEGS])
            .expect("push survivor");
        survivor.close_stream(slot_b).expect("close");
        survivor.shutdown_server().expect("shutdown");
        let outs = survivor.recv_outcomes(1).expect("outcomes");
        assert_eq!(outs[0].stream, slot_b);
    });

    assert_eq!(report.connections, 2);
    assert_eq!(report.malformed, 0);
    assert_eq!(
        report.autoclosed_streams, 1,
        "the vanished connection's stream is auto-closed"
    );
    assert_eq!(report.outcome.streams[0].outcome.segments, DOOMED_SEGS);
    assert_eq!(report.outcome.streams[1].outcome.segments, SURVIVOR_SEGS);
    // Auto-close is indistinguishable from a voluntary close at the same
    // in-band position: the joint outcome matches the reference bit for
    // bit, proving the doomed stream's lease returned to the joint plan.
    assert_multi_outcomes_bitwise_equal("disconnect vs reference", &reference, &report.outcome);
}

#[test]
fn graceful_shutdown_drains_every_outcome() {
    const SEGS: usize = 150; // one full epoch plus a partial tail
    const CLIENTS: usize = 3;
    // Streams are *not* closed by their clients here — shutdown drain
    // settles them. The reference leaves them open too.
    let reference = inprocess_reference(&[SEGS; CLIENTS], false);
    let path = sock_path("drain");
    let server = NetServer::bind(ServerConfig {
        unix: Some(path.clone()),
        ..ServerConfig::default()
    })
    .expect("bind");
    let (report, per_client) = drive_clients(
        server,
        service_for(CLIENTS),
        Endpoint::Unix(path),
        CLIENTS,
        SEGS,
        SEGS,
        false,
    );
    assert_eq!(report.connections, CLIENTS);
    for outs in &per_client {
        assert_eq!(
            outs[0].outcome.segments, SEGS,
            "drain settles the open tail"
        );
    }
    assert_served_matches(&report, &per_client, "drain");
    assert_multi_outcomes_bitwise_equal("shutdown drain vs reference", &reference, &report.outcome);
}

// ---- Protocol fuzzing: mutated, torn, and mis-framed input. ----

/// Hand-build one wire frame: `u32 len (LE) · u64 checksum (LE) · body`.
fn raw_frame(body: &[u8], stamp: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&stamp.to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// One adversarial connection: connect, speak a valid preamble, then send
/// one corrupted frame drawn from the seeded mutation space. Returns true
/// if the server hung the connection up (vs answering and keeping it).
fn fuzz_connection(path: &Path, seed: u64, sample: &[Segment]) -> bool {
    let mut rng = StdRng::seed_from_u64(0xF0CC_0000 + seed);
    let mut sock = std::os::unix::net::UnixStream::connect(path).expect("fuzz connect");
    sock.set_read_timeout(Some(Duration::from_millis(100)))
        .expect("timeout");
    sock.write_all(&proto::preamble()).expect("fuzz preamble");

    // A valid body to mutate, covering every request tag.
    let body = match seed % 5 {
        0 => Request::Hello {
            client: "fuzz".into(),
        }
        .encode(),
        1 => Request::OpenStream {
            profile: "nosuch".into(),
            name: "fuzz".into(),
            options: IngestOptions::default(),
        }
        .encode(),
        2 => Request::encode_push(0, 0, &sample[..3]),
        3 => Request::CloseStream { stream: 0 }.encode(),
        _ => Request::GetStats.encode(),
    };

    let wire = match seed % 4 {
        0 => {
            // Byte flips with the checksum re-stamped VALID: the framing
            // layer must pass it through and the decoder answer typed.
            let mut b = body;
            for _ in 0..rng.gen_range(1..5usize) {
                let i = rng.gen_range(0..b.len());
                b[i] ^= 1 << rng.gen_range(0..8u32);
            }
            let stamp = checksum(&b);
            raw_frame(&b, stamp)
        }
        1 => {
            // Byte flips with the checksum left stale: caught as corrupt.
            let stamp = checksum(&body);
            let mut b = body;
            let i = rng.gen_range(0..b.len());
            b[i] ^= 0xFF;
            raw_frame(&b, stamp)
        }
        2 => {
            // A length field far past the frame cap.
            let mut f = raw_frame(&body, checksum(&body));
            f[..4].copy_from_slice(&(u32::MAX - rng.gen_range(0..1024u32)).to_le_bytes());
            f
        }
        _ => {
            // A torn frame: the header promises more than ever arrives.
            let f = raw_frame(&body, checksum(&body));
            f[..f.len() / 2].to_vec()
        }
    };
    sock.write_all(&wire).expect("fuzz frame");
    if seed % 4 == 3 {
        // Tear the connection mid-frame with a half-close: the server sees
        // EOF inside a frame body, but the socket stays open on our side
        // until it has been accepted and answered — a full close here can
        // get the backlog entry reaped before accept() ever returns it.
        sock.shutdown(std::net::Shutdown::Write)
            .expect("half-close");
    }
    // Read whatever typed answer comes back until EOF or quiesce; the
    // server must never leave us hanging in an undefined state.
    let deadline = Instant::now() + Duration::from_secs(2);
    let mut buf = [0u8; 4096];
    let mut hung_up = false;
    while Instant::now() < deadline {
        match sock.read(&mut buf) {
            Ok(0) => {
                hung_up = true;
                break;
            }
            Ok(_) => continue,
            Err(_) => break, // timeout tick: server answered and kept us
        }
    }
    hung_up
}

#[test]
fn fuzzed_frames_are_contained_and_state_survives() {
    const SEGS: usize = 240;
    const FUZZ_SEEDS: u64 = 16;
    let streams = fixture();
    let reference = inprocess_reference(&[SEGS], true);
    let path = sock_path("fuzz");
    let server = NetServer::bind(ServerConfig {
        unix: Some(path.clone()),
        ..ServerConfig::default()
    })
    .expect("bind");
    // The profile name is unguessable by a byte-flip of the fuzz
    // templates, so no mutated OpenStream can admit a real stream.
    let mut service = IngestService::new(rt_config());
    let (w, m, _) = &fixture()[0];
    service.register_profile("profile-a9f3c2d1", m, w);

    let (report, ()) = serve_and_drive(server, service, move || {
        let ep = Endpoint::Unix(path.clone());
        let mut clean = NetClient::connect(&ep, NetClientConfig::default()).expect("connect");
        let slot = clean
            .open_stream("profile-a9f3c2d1", "cam-00", IngestOptions::default())
            .expect("open");
        // Half the schedule before the storm, half after: corruption in
        // between must not perturb a single bit of the stream's outcome.
        clean
            .push_batch(slot, &streams[0].2[..SEGS / 2])
            .expect("push before storm");
        for seed in 0..FUZZ_SEEDS {
            fuzz_connection(&path, seed, &streams[0].2);
        }
        clean
            .push_batch(slot, &streams[0].2[SEGS / 2..SEGS])
            .expect("push after storm");
        clean.close_stream(slot).expect("close");
        clean.shutdown_server().expect("shutdown");
        let outs = clean.recv_outcomes(1).expect("outcomes");
        assert_eq!(outs[0].stream, slot);
    });

    assert_eq!(
        report.outcome.streams.len(),
        1,
        "no fuzzed frame ever admitted a stream"
    );
    assert_eq!(report.connections as u64, FUZZ_SEEDS + 1);
    // Stale checksums, oversize lengths, and torn frames are always
    // violations (3 of every 4 seeds); re-stamped mutations may decode as
    // well-formed requests and be answered without closing.
    assert!(
        report.malformed as u64 >= 3 * FUZZ_SEEDS / 4,
        "corrupt frames are counted: {} of {FUZZ_SEEDS}",
        report.malformed
    );
    assert_eq!(report.autoclosed_streams, 0);
    assert_multi_outcomes_bitwise_equal("fuzz storm vs reference", &reference, &report.outcome);
}
