//! Knowledge-base persistence and incremental-refit guarantees.
//!
//! The two acceptance properties of the artifact pipeline:
//!
//! * **Round-trip**: `save → load` reproduces the original `FittedModel`
//!   bitwise, and an online run over the loaded model is bitwise identical
//!   to one over the freshly fitted model.
//! * **Incremental refit**: refitting on a recording extended by appended
//!   segments is bitwise identical to a cold full fit on the extended
//!   recording — while replaying most evaluations from the memo.

use std::path::PathBuf;

use vetl::prelude::*;
use vetl::skyscraper::offline::OfflinePipeline;
use vetl::skyscraper::testkit::ToyWorkload;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "vetl-kbtest-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Data {
    labeled: Recording,
    unlabeled: Recording,
    extended: Recording,
    online: Vec<Segment>,
}

fn data() -> Data {
    let mut cam = SyntheticCamera::new(ContentParams::traffic_intersection(3), 2.0);
    let labeled = Recording::record(&mut cam, 20.0 * 60.0);
    let unlabeled = Recording::record(&mut cam, 43_200.0);
    let extra = Recording::record(&mut cam, 21_600.0);
    let mut segs = unlabeled.segments().to_vec();
    segs.extend_from_slice(extra.segments());
    let extended = Recording::from_segments(segs);
    let online = Recording::record(&mut cam, 3_600.0).segments().to_vec();
    Data {
        labeled,
        unlabeled,
        extended,
        online,
    }
}

fn assert_outcomes_bitwise_equal(a: &IngestOutcome, b: &IngestOutcome) {
    assert_eq!(a.mean_quality.to_bits(), b.mean_quality.to_bits());
    assert_eq!(a.work_core_secs.to_bits(), b.work_core_secs.to_bits());
    assert_eq!(a.cloud_usd.to_bits(), b.cloud_usd.to_bits());
    assert_eq!(a.buffer_peak.to_bits(), b.buffer_peak.to_bits());
    assert_eq!(a.overflows, b.overflows);
    assert_eq!(a.switches, b.switches);
    assert_eq!(a.plans, b.plans);
    assert_eq!(a.segments, b.segments);
}

#[test]
fn save_load_online_run_is_bitwise_identical_to_fit_run() {
    let dir = tmpdir("roundtrip");
    let d = data();

    let mut sky = Skyscraper::new(ToyWorkload::new());
    sky.set_resources(4, 4_000.0, 0.5);
    sky.set_hyperparameters(SkyscraperConfig::fast_test());
    sky.fit(&d.labeled, &d.unlabeled).expect("fit");
    sky.save_model(&dir).expect("save");

    let mut loaded = Skyscraper::new(ToyWorkload::new());
    loaded.set_cloud_budget_usd(0.5);
    loaded.load_model(&dir).expect("load");

    // The model itself reloads bitwise.
    assert_eq!(
        loaded.model().unwrap().fingerprint(),
        sky.model().unwrap().fingerprint()
    );

    // And drives the online phase identically.
    let fresh = sky.ingest(&d.online).expect("ingest fitted");
    let replay = loaded.ingest(&d.online).expect("ingest loaded");
    assert_outcomes_bitwise_equal(&fresh, &replay);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn incremental_refit_equals_cold_fit_on_extended_recording() {
    let d = data();
    let w = ToyWorkload::new();
    let hw = HardwareSpec::with_cores(4);
    let hyper = SkyscraperConfig::fast_test();

    // Warm: fit the base recording, then refit the extension.
    let mut warm = OfflinePipeline::new(&w, hw, hyper.clone());
    let (base, _) = warm.run(&d.labeled, &d.unlabeled).expect("base fit");
    let (warm_arts, warm_report) = warm
        .refit(&base, &d.labeled, &d.extended)
        .expect("warm refit");

    // Cold: fit the extension from scratch.
    let mut cold = OfflinePipeline::new(&w, hw, hyper);
    let (cold_arts, cold_report) = cold.run(&d.labeled, &d.extended).expect("cold fit");

    assert_eq!(
        warm_arts.model().fingerprint(),
        cold_arts.model().fingerprint(),
        "refit must be bitwise identical to a cold fit"
    );
    assert!(warm_report.memo_hits > 0, "prefix evaluations must replay");
    assert!(
        warm_report.memo_misses < cold_report.memo_misses,
        "warm refit must evaluate strictly less ({} vs {})",
        warm_report.memo_misses,
        cold_report.memo_misses
    );

    // The equivalence also holds end-to-end through the online phase.
    let warm_out = IngestSession::batch(warm_arts.model(), &w, IngestOptions::default(), &d.online)
        .expect("warm online");
    let cold_out = IngestSession::batch(cold_arts.model(), &w, IngestOptions::default(), &d.online)
        .expect("cold online");
    assert_outcomes_bitwise_equal(&warm_out, &cold_out);
}

#[test]
fn kb_persisted_memo_survives_a_process_boundary() {
    let dir = tmpdir("memo");
    let d = data();

    // Process 1: fit the base recording, persist everything.
    {
        let mut sky = Skyscraper::new(ToyWorkload::new());
        sky.set_resources(4, 4_000.0, 1.0);
        sky.set_hyperparameters(SkyscraperConfig::fast_test());
        sky.fit(&d.labeled, &d.unlabeled).expect("fit");
        sky.save_model(&dir).expect("save");
    }

    // Process 2: load and refit incrementally on the grown recording.
    let mut sky = Skyscraper::new(ToyWorkload::new());
    sky.load_model(&dir).expect("load");
    let report = sky.refit(&d.labeled, &d.extended).expect("refit");
    assert!(
        report.memo_hits > 0,
        "the persisted memo must fuel the refit"
    );

    // Reference: cold fit of the extension.
    let mut cold = Skyscraper::new(ToyWorkload::new());
    cold.set_resources(4, 4_000.0, 1.0);
    cold.set_hyperparameters(SkyscraperConfig::fast_test());
    cold.fit(&d.labeled, &d.extended).expect("cold fit");
    assert_eq!(
        sky.model().unwrap().fingerprint(),
        cold.model().unwrap().fingerprint()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hardware_change_invalidates_artifacts_but_still_fits() {
    let d = data();
    let mut sky = Skyscraper::new(ToyWorkload::new());
    sky.set_resources(4, 4_000.0, 1.0);
    sky.set_hyperparameters(SkyscraperConfig::fast_test());
    sky.fit(&d.labeled, &d.unlabeled).expect("fit");
    let before = sky.model().unwrap().fingerprint();

    // Re-provision: every stage must recompute against the new hardware.
    sky.set_cores(8);
    let report = sky.refit(&d.labeled, &d.unlabeled).expect("refit");
    assert_eq!(
        report.stages_reused, 0,
        "stale artifacts must not be reused"
    );
    assert_ne!(
        sky.model().unwrap().fingerprint(),
        before,
        "placement profiles depend on the cluster size"
    );

    // And it matches a cold fit on the new hardware bitwise.
    let mut cold = Skyscraper::new(ToyWorkload::new());
    cold.set_resources(8, 4_000.0, 1.0);
    cold.set_hyperparameters(SkyscraperConfig::fast_test());
    cold.fit(&d.labeled, &d.unlabeled).expect("cold fit");
    assert_eq!(
        sky.model().unwrap().fingerprint(),
        cold.model().unwrap().fingerprint()
    );
}
