//! Knowledge-base persistence and incremental-refit guarantees.
//!
//! The two acceptance properties of the artifact pipeline:
//!
//! * **Round-trip**: `save → load` reproduces the original `FittedModel`
//!   bitwise, and an online run over the loaded model is bitwise identical
//!   to one over the freshly fitted model.
//! * **Incremental refit**: refitting on a recording extended by appended
//!   segments is bitwise identical to a cold full fit on the extended
//!   recording — while replaying most evaluations from the memo.

use std::path::PathBuf;

use vetl::prelude::*;
use vetl::skyscraper::offline::OfflinePipeline;
use vetl::skyscraper::testkit::{assert_outcomes_bitwise_equal, ToyWorkload};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "vetl-kbtest-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Data {
    labeled: Recording,
    unlabeled: Recording,
    extended: Recording,
    online: Vec<Segment>,
}

fn data() -> Data {
    let mut cam = SyntheticCamera::new(ContentParams::traffic_intersection(3), 2.0);
    let labeled = Recording::record(&mut cam, 20.0 * 60.0);
    let unlabeled = Recording::record(&mut cam, 43_200.0);
    let extra = Recording::record(&mut cam, 21_600.0);
    let mut segs = unlabeled.segments().to_vec();
    segs.extend_from_slice(extra.segments());
    let extended = Recording::from_segments(segs);
    let online = Recording::record(&mut cam, 3_600.0).segments().to_vec();
    Data {
        labeled,
        unlabeled,
        extended,
        online,
    }
}

#[test]
fn save_load_online_run_is_bitwise_identical_to_fit_run() {
    let dir = tmpdir("roundtrip");
    let d = data();

    let mut sky = Skyscraper::new(ToyWorkload::new());
    sky.set_resources(4, 4_000.0, 0.5);
    sky.set_hyperparameters(SkyscraperConfig::fast_test());
    sky.fit(&d.labeled, &d.unlabeled).expect("fit");
    sky.save_model(&dir).expect("save");

    let mut loaded = Skyscraper::new(ToyWorkload::new());
    loaded.set_cloud_budget_usd(0.5);
    loaded.load_model(&dir).expect("load");

    // The model itself reloads bitwise.
    assert_eq!(
        loaded.model().unwrap().fingerprint(),
        sky.model().unwrap().fingerprint()
    );

    // And drives the online phase identically.
    let fresh = sky.ingest(&d.online).expect("ingest fitted");
    let replay = loaded.ingest(&d.online).expect("ingest loaded");
    assert_outcomes_bitwise_equal("load == fit", &fresh, &replay);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn incremental_refit_equals_cold_fit_on_extended_recording() {
    let d = data();
    let w = ToyWorkload::new();
    let hw = HardwareSpec::with_cores(4);
    let hyper = SkyscraperConfig::fast_test();

    // Warm: fit the base recording, then refit the extension.
    let mut warm = OfflinePipeline::new(&w, hw, hyper.clone());
    let (base, _) = warm.run(&d.labeled, &d.unlabeled).expect("base fit");
    let (warm_arts, warm_report) = warm
        .refit(&base, &d.labeled, &d.extended)
        .expect("warm refit");

    // Cold: fit the extension from scratch.
    let mut cold = OfflinePipeline::new(&w, hw, hyper);
    let (cold_arts, cold_report) = cold.run(&d.labeled, &d.extended).expect("cold fit");

    assert_eq!(
        warm_arts.model().fingerprint(),
        cold_arts.model().fingerprint(),
        "refit must be bitwise identical to a cold fit"
    );
    assert!(warm_report.memo_hits > 0, "prefix evaluations must replay");
    assert!(
        warm_report.memo_misses < cold_report.memo_misses,
        "warm refit must evaluate strictly less ({} vs {})",
        warm_report.memo_misses,
        cold_report.memo_misses
    );

    // The equivalence also holds end-to-end through the online phase.
    let warm_out = IngestSession::batch(warm_arts.model(), &w, IngestOptions::default(), &d.online)
        .expect("warm online");
    let cold_out = IngestSession::batch(cold_arts.model(), &w, IngestOptions::default(), &d.online)
        .expect("cold online");
    assert_outcomes_bitwise_equal("warm refit == cold fit", &warm_out, &cold_out);
}

#[test]
fn kb_persisted_memo_survives_a_process_boundary() {
    let dir = tmpdir("memo");
    let d = data();

    // Process 1: fit the base recording, persist everything.
    {
        let mut sky = Skyscraper::new(ToyWorkload::new());
        sky.set_resources(4, 4_000.0, 1.0);
        sky.set_hyperparameters(SkyscraperConfig::fast_test());
        sky.fit(&d.labeled, &d.unlabeled).expect("fit");
        sky.save_model(&dir).expect("save");
    }

    // Process 2: load and refit incrementally on the grown recording.
    let mut sky = Skyscraper::new(ToyWorkload::new());
    sky.load_model(&dir).expect("load");
    let report = sky.refit(&d.labeled, &d.extended).expect("refit");
    assert!(
        report.memo_hits > 0,
        "the persisted memo must fuel the refit"
    );

    // Reference: cold fit of the extension.
    let mut cold = Skyscraper::new(ToyWorkload::new());
    cold.set_resources(4, 4_000.0, 1.0);
    cold.set_hyperparameters(SkyscraperConfig::fast_test());
    cold.fit(&d.labeled, &d.extended).expect("cold fit");
    assert_eq!(
        sky.model().unwrap().fingerprint(),
        cold.model().unwrap().fingerprint()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mutated_kb_files_fail_typed_never_panic() {
    // Robustness corpus: random bit flips, truncations, and zeroed ranges
    // over every artifact file must surface as typed errors — never a
    // panic, never an unbounded allocation. Seeded via VETL_CHAOS_SEED so
    // a failing draw replays exactly.
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let seed = std::env::var("VETL_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC0FFEE);
    let dir = tmpdir("fuzz");
    let d = data();
    let mut sky = Skyscraper::new(ToyWorkload::new());
    sky.set_resources(4, 4_000.0, 0.5);
    sky.set_hyperparameters(SkyscraperConfig::fast_test());
    sky.fit(&d.labeled, &d.unlabeled).expect("fit");
    sky.save_model(&dir).expect("save");

    let kb = KnowledgeBase::open_existing(&dir).expect("open");
    let mut rng = StdRng::seed_from_u64(seed);
    for file in [
        "model.kb",
        "memo.kb",
        "profile.kb",
        "category.kb",
        "forecast.kb",
        "plan.kb",
    ] {
        let path = dir.join(file);
        if !path.exists() {
            continue;
        }
        let pristine = std::fs::read(&path).expect("read");
        for _ in 0..40 {
            let mut mutated = pristine.clone();
            match rng.gen_range(0..3u8) {
                0 => {
                    let i = rng.gen_range(0..mutated.len());
                    mutated[i] ^= 1 << rng.gen_range(0..8u8);
                }
                1 => mutated.truncate(rng.gen_range(0..mutated.len())),
                2 => {
                    let start = rng.gen_range(0..mutated.len());
                    let end = (start + rng.gen_range(1..128usize)).min(mutated.len());
                    mutated[start..end].iter_mut().for_each(|b| *b = 0xFF);
                }
                _ => unreachable!(),
            }
            std::fs::write(&path, &mutated).expect("write");
            // Framing (magic/version/length/checksum) catches every raw
            // file mutation; the error class must be a typed SkyError.
            let err = kb.load_model().err().or_else(|| kb.load_artifacts().err());
            match err {
                Some(
                    SkyError::CorruptKnowledgeBase { .. }
                    | SkyError::ArtifactVersionMismatch { .. }
                    | SkyError::KnowledgeBaseIo { .. },
                ) => {}
                Some(e) => panic!("{file}: unexpected error class: {e}"),
                // Mutating one artifact while loading another can succeed.
                None => {}
            }
        }
        std::fs::write(&path, &pristine).expect("restore");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mutated_payloads_with_valid_checksums_fail_typed_never_panic() {
    // The deeper corpus: mutate the *payload* and re-stamp a valid
    // checksum, so the mutation reaches the artifact decoders themselves
    // (length-prefix validation, shape cross-checks, semantic model
    // validation) instead of being caught by the frame. Decoding may
    // legitimately succeed when a float payload bit flips — but it must
    // never panic, and whatever loads must pass the semantic validators.
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use vetl::skyscraper::offline::codec::checksum;
    let seed = std::env::var("VETL_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC0FFEE);
    let dir = tmpdir("payload-fuzz");
    let d = data();
    let mut sky = Skyscraper::new(ToyWorkload::new());
    sky.set_resources(4, 4_000.0, 0.5);
    sky.set_hyperparameters(SkyscraperConfig::fast_test());
    sky.fit(&d.labeled, &d.unlabeled).expect("fit");
    sky.save_model(&dir).expect("save");

    let kb = KnowledgeBase::open_existing(&dir).expect("open");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37);
    let header = 24; // magic(5) + kind(1) + version(2) + len(8) + sum(8)
    for file in [
        "model.kb",
        "memo.kb",
        "profile.kb",
        "category.kb",
        "forecast.kb",
        "plan.kb",
    ] {
        let path = dir.join(file);
        if !path.exists() {
            continue;
        }
        let pristine = std::fs::read(&path).expect("read");
        assert!(pristine.len() > header);
        for _ in 0..80 {
            let mut mutated = pristine.clone();
            match rng.gen_range(0..3u8) {
                0 => {
                    let i = rng.gen_range(header..mutated.len());
                    mutated[i] ^= 1 << rng.gen_range(0..8u8);
                }
                1 => {
                    // Truncate the payload and fix the length field too.
                    let keep = rng.gen_range(0..(mutated.len() - header));
                    mutated.truncate(header + keep);
                    mutated[8..16].copy_from_slice(&(keep as u64).to_le_bytes());
                }
                2 => {
                    let i = rng.gen_range(header..mutated.len());
                    let end = (i + rng.gen_range(1..64usize)).min(mutated.len());
                    for b in &mut mutated[i..end] {
                        *b = rng.gen_range(0..=255u8);
                    }
                }
                _ => unreachable!(),
            }
            let sum = checksum(&mutated[header..]);
            mutated[16..24].copy_from_slice(&sum.to_le_bytes());
            std::fs::write(&path, &mutated).expect("write");
            match file {
                "model.kb" => {
                    let _ = kb.load_model(); // Ok or typed Err — no panic
                }
                "memo.kb" => {
                    let _ = kb.load_memo();
                }
                _ => {
                    let _ = kb.load_artifacts();
                }
            }
        }
        std::fs::write(&path, &pristine).expect("restore");
    }
    // The untouched knowledge base still loads after the storm.
    assert!(kb.load_model().is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hardware_change_invalidates_artifacts_but_still_fits() {
    let d = data();
    let mut sky = Skyscraper::new(ToyWorkload::new());
    sky.set_resources(4, 4_000.0, 1.0);
    sky.set_hyperparameters(SkyscraperConfig::fast_test());
    sky.fit(&d.labeled, &d.unlabeled).expect("fit");
    let before = sky.model().unwrap().fingerprint();

    // Re-provision: every stage must recompute against the new hardware.
    sky.set_cores(8);
    let report = sky.refit(&d.labeled, &d.unlabeled).expect("refit");
    assert_eq!(
        report.stages_reused, 0,
        "stale artifacts must not be reused"
    );
    assert_ne!(
        sky.model().unwrap().fingerprint(),
        before,
        "placement profiles depend on the cluster size"
    );

    // And it matches a cold fit on the new hardware bitwise.
    let mut cold = Skyscraper::new(ToyWorkload::new());
    cold.set_resources(8, 4_000.0, 1.0);
    cold.set_hyperparameters(SkyscraperConfig::fast_test());
    cold.fit(&d.labeled, &d.unlabeled).expect("cold fit");
    assert_eq!(
        sky.model().unwrap().fingerprint(),
        cold.model().unwrap().fingerprint()
    );
}
