//! Integration tests for the multi-stream server (Appendix D): N concurrent
//! sessions multiplexed through the joint LP with a shared cloud wallet.

use std::sync::OnceLock;

use vetl::prelude::*;
use vetl::skyscraper::offline::run_offline;
use vetl::skyscraper::testkit::ToyWorkload;
use vetl::skyscraper::{FittedModel, MultiOutcome};

const N_STREAMS: usize = 4;
const SHARED_BUDGET_USD: f64 = 0.5;
const REPLAN_SECS: f64 = 1_800.0;

/// Four independently fitted streams over distinct content processes, plus
/// 2 hours of online video each.
fn fixture() -> &'static Vec<(ToyWorkload, FittedModel, Vec<Segment>)> {
    static FIXTURE: OnceLock<Vec<(ToyWorkload, FittedModel, Vec<Segment>)>> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        (0..N_STREAMS as u64)
            .map(|v| {
                let w = ToyWorkload::new();
                let mut cam = SyntheticCamera::new(ContentParams::traffic_intersection(3 + v), 2.0);
                let labeled = Recording::record(&mut cam, 20.0 * 60.0);
                let unlabeled = Recording::record(&mut cam, 2.0 * 86_400.0);
                let (model, _) = run_offline(
                    &w,
                    &labeled,
                    &unlabeled,
                    HardwareSpec::with_cores(16),
                    &SkyscraperConfig::fast_test(),
                )
                .expect("fit");
                let online = Recording::record(&mut cam, 2.0 * 3_600.0)
                    .segments()
                    .to_vec();
                (w, model, online)
            })
            .collect()
    })
}

fn open_all<'a>(
    server: &mut MultiStreamServer<'a>,
    streams: &'a [(ToyWorkload, FittedModel, Vec<Segment>)],
) -> Vec<(StreamId, &'a [Segment])> {
    streams
        .iter()
        .enumerate()
        .map(|(v, (w, m, segs))| {
            let id = server
                .open_stream(format!("cam-{v}"), m, w, IngestOptions::default())
                .expect("admission");
            (id, segs.as_slice())
        })
        .collect()
}

#[test]
fn four_streams_replan_jointly_from_a_shared_wallet() {
    let streams = fixture();
    let mut server = MultiStreamServer::new(SHARED_BUDGET_USD, CostModel::default(), 9)
        .with_replan_interval(REPLAN_SECS)
        .with_total_cores(16.0);
    let handles = open_all(&mut server, streams);
    assert_eq!(server.n_streams(), N_STREAMS);
    // Every admission reruns the joint LP.
    assert_eq!(server.joint_plans(), N_STREAMS);

    let pushed = server
        .push_round_robin(&handles)
        .expect("round-robin serve");
    assert_eq!(
        pushed,
        streams.iter().map(|(_, _, s)| s.len()).sum::<usize>()
    );

    // 2 hours at a 30-minute cadence: the joint LP must have re-run well
    // beyond the admission plans.
    let interval_replans = server.joint_plans() - N_STREAMS;
    assert!(
        interval_replans >= 3,
        "expected ≥3 cadence replans over 2 h at 30 min, got {interval_replans}"
    );
    let wallet_epochs = server.joint_plans();

    let out = server.finish();
    assert_eq!(out.streams.len(), N_STREAMS);
    for s in &out.streams {
        assert_eq!(
            s.outcome.overflows, 0,
            "stream {} violated the throughput guarantee",
            s.workload_id
        );
        assert!(s.outcome.mean_quality > 0.3, "stream {}", s.workload_id);
        assert_eq!(s.outcome.segments, streams[0].2.len());
        // Sessions are externally planned: plans come from the server.
        assert!(s.outcome.plans > interval_replans);
    }
    assert!(out.joint_quality > 0.0);
    // The shared wallet refills once per joint replan: total spend is
    // bounded by one budget per wallet epoch.
    assert!(
        out.cloud_usd <= SHARED_BUDGET_USD * wallet_epochs as f64 + 1e-9,
        "spent {} over {} wallet epochs of {}",
        out.cloud_usd,
        wallet_epochs,
        SHARED_BUDGET_USD
    );
}

#[test]
fn shared_wallet_spends_no_more_than_one_budget_per_epoch_even_when_tight() {
    let streams = fixture();
    let tight = 0.01;
    let mut server = MultiStreamServer::new(tight, CostModel::default(), 11)
        .with_replan_interval(REPLAN_SECS)
        .with_total_cores(16.0);
    let handles = open_all(&mut server, streams);
    server.push_round_robin(&handles).expect("serve");
    let epochs = server.joint_plans();
    let out = server.finish();
    assert!(out.cloud_usd <= tight * epochs as f64 + 1e-9);
    for s in &out.streams {
        assert_eq!(s.outcome.overflows, 0, "tight wallet must not break Eq. 1");
    }
}

#[test]
fn closing_a_stream_releases_its_share_to_the_next_joint_plan() {
    // Satellite: a stream closed mid-epoch releases its cores and wallet
    // lease, and the next joint plan redistributes them — asserted on the
    // recorded joint-plan inputs/outputs.
    let streams = fixture();
    let budget = 0.6;
    let mut server = MultiStreamServer::new(budget, CostModel::default(), 17)
        .with_replan_interval(REPLAN_SECS)
        .with_total_cores(16.0);
    let handles = open_all(&mut server, &streams[..3]);
    let before = server.last_joint_plan().expect("admission planned").clone();
    assert_eq!(before.streams, vec![0, 1, 2]);
    assert!((before.lease_usd - budget / 3.0).abs() < 1e-12);
    assert_eq!(before.fair_cores, (16.0f64 / 3.0).floor());

    // Drive one full epoch (900 segments of 2 s at the 1800 s cadence),
    // closing stream 1 halfway through.
    let quota = (REPLAN_SECS / 2.0) as usize;
    for i in 0..quota {
        for (v, (id, segs)) in handles.iter().enumerate() {
            if v == 1 && i == quota / 2 {
                let settled = server.close_stream(*id).expect("close");
                assert_eq!(settled.outcome.segments, quota / 2);
            }
            if v == 1 && i >= quota / 2 {
                continue;
            }
            server.push(*id, &segs[i]).expect("push");
        }
    }
    assert_eq!(server.n_streams(), 2);

    // The first push of the next epoch crosses the barrier: the survivors
    // split the released cores and wallet share.
    server
        .push(handles[0].0, &handles[0].1[quota])
        .expect("next epoch");
    let after = server.last_joint_plan().expect("barrier planned").clone();
    assert_eq!(after.streams, vec![0, 2], "closed stream left the plan");
    assert!((after.lease_usd - budget / 2.0).abs() < 1e-12);
    assert_eq!(after.fair_cores, (16.0f64 / 2.0).floor());
    assert!(after.fair_cores > before.fair_cores);
    assert!(after.lease_usd > before.lease_usd);

    let out = server.finish();
    assert_eq!(out.streams.len(), 3, "closed streams keep their outcome");
    assert_eq!(out.streams[1].outcome.segments, quota / 2);
}

#[test]
fn round_robin_wraps_per_push_errors_with_the_stream_id() {
    // Satellite: push_round_robin / run_multistream propagate per-push
    // failures with the offending StreamId instead of an opaque abort.
    let streams = fixture();
    let (w, m, segs) = &streams[0];
    let mut server = MultiStreamServer::new(SHARED_BUDGET_USD, CostModel::default(), 19)
        .with_replan_interval(REPLAN_SECS)
        .with_total_cores(16.0);
    let id = server
        .open_stream("cam-0", m, w, IngestOptions::default())
        .expect("admission");
    server.close_stream(id).expect("close");

    let err = server
        .push_round_robin(&[(id, &segs[..4])])
        .expect_err("pushing a closed stream must fail");
    assert_eq!(
        err,
        SkyError::PushFailed {
            stream: id.index(),
            source: Box::new(SkyError::StreamClosed { id: id.index() }),
        }
    );
}

#[test]
fn round_robin_auto_closes_exhausted_streams_and_redistributes() {
    // Error-path coverage for push_round_robin's auto-close: a stream whose
    // slice runs out mid-serve is closed (not left gating the epoch
    // barrier), its outcome settles at exactly its slice length, the next
    // joint plan excludes it, and later pushes to it are typed rejections.
    let streams = fixture();
    let quota = (REPLAN_SECS / 2.0) as usize;
    let mut server = MultiStreamServer::new(SHARED_BUDGET_USD, CostModel::default(), 23)
        .with_replan_interval(REPLAN_SECS)
        .with_total_cores(16.0);
    let short = quota / 2;
    let long = 2 * quota + 100;
    let handles: Vec<(StreamId, &[Segment])> = streams[..3]
        .iter()
        .enumerate()
        .map(|(v, (w, m, segs))| {
            let id = server
                .open_stream(format!("cam-{v}"), m, w, IngestOptions::default())
                .expect("admission");
            (
                id,
                if v == 1 {
                    &segs[..short]
                } else {
                    &segs[..long]
                },
            )
        })
        .collect();

    let pushed = server.push_round_robin(&handles).expect("serve");
    assert_eq!(pushed, 2 * long + short, "only real segments count");
    assert_eq!(server.n_streams(), 2, "exhausted stream was auto-closed");
    let plan = server.last_joint_plan().expect("replanned").clone();
    assert_eq!(plan.streams, vec![0, 2], "auto-closed stream left the plan");
    assert!((plan.lease_usd - SHARED_BUDGET_USD / 2.0).abs() < 1e-12);
    assert_eq!(plan.fair_cores, (16.0f64 / 2.0).floor());

    // Further pushes to the auto-closed stream are typed, with the id.
    let err = server
        .push_round_robin(&[(handles[1].0, &streams[1].2[short..short + 1])])
        .expect_err("closed stream rejects input");
    assert_eq!(
        err,
        SkyError::PushFailed {
            stream: handles[1].0.index(),
            source: Box::new(SkyError::StreamClosed {
                id: handles[1].0.index()
            }),
        }
    );

    let out = server.finish();
    assert_eq!(out.streams[1].outcome.segments, short);
    assert_eq!(out.streams[0].outcome.segments, long);
    for s in &out.streams {
        assert_eq!(s.outcome.overflows, 0, "stream {}", s.workload_id);
    }
}

#[test]
fn epoch_barrier_rejection_is_retryable_and_leaves_no_trace() {
    // Error-path coverage for the server's backpressure: a stream that
    // outruns the epoch barrier is rejected typed, the rejection perturbs
    // nothing (bitwise-identical outcome to a run that never overran), and
    // the same push succeeds once the laggards catch up.
    let streams = fixture();
    let (w0, m0, s0) = &streams[0];
    let (w1, m1, s1) = &streams[1];
    let quota = (REPLAN_SECS / 2.0) as usize;
    let serve = 2 * quota + 25;

    let drive = |overrun: bool| -> MultiOutcome {
        let mut server = MultiStreamServer::new(SHARED_BUDGET_USD, CostModel::default(), 29)
            .with_replan_interval(REPLAN_SECS)
            .with_total_cores(16.0);
        let a = server
            .open_stream("a", m0, w0, IngestOptions::default())
            .unwrap();
        let b = server
            .open_stream("b", m1, w1, IngestOptions::default())
            .unwrap();
        for i in 0..serve {
            server.push(a, &s0[i]).unwrap();
            if overrun && i == quota - 1 {
                // `a` exhausted its quota; `b` still holds one. Every
                // overrun attempt must be a typed EpochBarrier rejection.
                for _ in 0..20 {
                    let err = server.push(a, &s0[i + 1]).unwrap_err();
                    assert_eq!(
                        err,
                        SkyError::EpochBarrier {
                            stream: a.index(),
                            waiting_on: 1,
                        }
                    );
                }
            }
            server.push(b, &s1[i]).unwrap();
        }
        server.finish()
    };

    let calm = drive(false);
    let pressured = drive(true);
    assert_eq!(calm.streams.len(), pressured.streams.len());
    for (x, y) in calm.streams.iter().zip(&pressured.streams) {
        assert_eq!(x.outcome.segments, y.outcome.segments);
        assert_eq!(
            x.outcome.mean_quality.to_bits(),
            y.outcome.mean_quality.to_bits(),
            "rejected pushes must leave no trace"
        );
        assert_eq!(x.outcome.cloud_usd.to_bits(), y.outcome.cloud_usd.to_bits());
        assert_eq!(x.outcome.switches, y.outcome.switches);
        assert_eq!(x.outcome.plans, y.outcome.plans);
    }
    assert_eq!(calm.cloud_usd.to_bits(), pressured.cloud_usd.to_bits());
}

#[test]
fn runtime_overload_rejection_is_retryable_and_leaves_no_trace() {
    // The concurrent runtime's analogue: a full bounded mailbox pushes back
    // typed (SkyError::Overloaded), the rejection changes nothing bitwise,
    // and the identical push succeeds after the lagging stream catches up.
    let streams = fixture();
    let (w0, m0, s0) = &streams[0];
    let (w1, m1, s1) = &streams[1];
    let quota = (REPLAN_SECS / 2.0) as usize;
    let serve = quota + 40;

    let drive = |storm: bool| -> MultiOutcome {
        let mut rt = IngestRuntime::new(RuntimeConfig {
            shards: 2,
            shared_cloud_budget_usd: SHARED_BUDGET_USD,
            seed: 31,
            replan_interval_secs: Some(REPLAN_SECS),
            total_cores: Some(16.0),
            ..RuntimeConfig::default()
        });
        let a = rt
            .open_stream("a", m0, w0, IngestOptions::default())
            .unwrap();
        let b = rt
            .open_stream("b", m1, w1, IngestOptions::default())
            .unwrap();
        if storm {
            // Fill a's mailbox to its epoch bound while b lags entirely.
            for seg in &s0[..quota] {
                rt.push(a, seg).unwrap();
            }
            for _ in 0..30 {
                let err = rt.push(a, &s0[quota]).unwrap_err();
                assert_eq!(
                    err,
                    SkyError::Overloaded {
                        stream: a.index(),
                        queued: quota,
                        capacity: quota,
                    }
                );
            }
            // Catching b up un-wedges the epoch; the identical push that
            // was rejected now succeeds.
            for seg in &s1[..quota] {
                rt.push(b, seg).unwrap();
            }
            rt.push(a, &s0[quota])
                .expect("retry succeeds after dispatch");
            for i in quota..serve {
                if i > quota {
                    rt.push(a, &s0[i]).unwrap();
                }
                rt.push(b, &s1[i]).unwrap();
            }
        } else {
            for i in 0..serve {
                rt.push(a, &s0[i]).unwrap();
                rt.push(b, &s1[i]).unwrap();
            }
        }
        rt.finish().expect("finish")
    };

    let calm = drive(false);
    let stormy = drive(true);
    for (x, y) in calm.streams.iter().zip(&stormy.streams) {
        assert_eq!(x.outcome.segments, y.outcome.segments);
        assert_eq!(
            x.outcome.mean_quality.to_bits(),
            y.outcome.mean_quality.to_bits(),
            "overload rejections must leave no trace"
        );
        assert_eq!(x.outcome.cloud_usd.to_bits(), y.outcome.cloud_usd.to_bits());
    }
    assert_eq!(calm.joint_quality.to_bits(), stormy.joint_quality.to_bits());
}

#[test]
fn streams_can_arrive_and_push_interleaved_with_admissions() {
    // Admission mid-serve: two streams run for an hour, then two more join;
    // the joint LP reruns at each admission and all four finish cleanly.
    let streams = fixture();
    let mut server = MultiStreamServer::new(SHARED_BUDGET_USD, CostModel::default(), 13)
        .with_replan_interval(REPLAN_SECS)
        .with_total_cores(16.0);

    let first: Vec<(StreamId, &[Segment])> = streams[..2]
        .iter()
        .enumerate()
        .map(|(v, (w, m, segs))| {
            let id = server
                .open_stream(format!("early-{v}"), m, w, IngestOptions::default())
                .expect("admission");
            (id, &segs[..segs.len() / 2])
        })
        .collect();
    server.push_round_robin(&first).expect("first half");

    let late: Vec<(StreamId, &[Segment])> = streams[2..]
        .iter()
        .enumerate()
        .map(|(v, (w, m, segs))| {
            let id = server
                .open_stream(format!("late-{v}"), m, w, IngestOptions::default())
                .expect("late admission");
            (id, segs.as_slice())
        })
        .collect();
    assert_eq!(server.n_streams(), 4);

    let mut rest: Vec<(StreamId, &[Segment])> = first
        .iter()
        .zip(&streams[..2])
        .map(|((id, _), (_, _, segs))| (*id, &segs[segs.len() / 2..]))
        .collect();
    rest.extend(late);
    server.push_round_robin(&rest).expect("second half");

    let out = server.finish();
    for s in &out.streams {
        assert_eq!(s.outcome.overflows, 0, "stream {}", s.workload_id);
        assert!(s.outcome.segments > 0);
    }
}
