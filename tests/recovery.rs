//! Crash-anywhere recovery for the durable ingest runtime.
//!
//! The acceptance bar of the durability subsystem: **a run crashed at ANY
//! point and recovered from disk is bitwise identical** — per-stream
//! `IngestOutcome`s, joint-plan history, spend — to the uninterrupted run,
//! for any shard count, under mid-run open/close churn, injected worker
//! panics, wallet-refill outages, mailbox-overflow storms, and torn or
//! bit-rotted journal tails.
//!
//! Environment knobs (mirrored by the CI chaos matrix):
//! * `VETL_SHARDS` — extra shard count the property runs at (default 4).
//! * `VETL_CHAOS_SEED` — seed for the randomized schedules and crash
//!   points (default 0xC0FFEE), so a failing draw replays exactly.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use rand::{rngs::StdRng, Rng, SeedableRng};

use vetl::prelude::*;
use vetl::skyscraper::offline::run_offline;
use vetl::skyscraper::testkit::chaos::{self, FailurePlan, CRASH_PAYLOAD};
use vetl::skyscraper::testkit::{assert_multi_outcomes_bitwise_equal, ToyWorkload};
use vetl::skyscraper::{FittedModel, MultiOutcome};

const SHARED_BUDGET_USD: f64 = 0.5;
/// Short planning epochs (120 segments at 2 s) so runs cross many barriers.
const REPLAN_SECS: f64 = 240.0;
const QUOTA: usize = 120;
const SEED: u64 = 11;
const TOTAL_CORES: f64 = 16.0;

fn alt_shards() -> usize {
    std::env::var("VETL_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4)
}

fn chaos_seed() -> u64 {
    std::env::var("VETL_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC0FFEE)
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "vetl-recovery-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

type Fixture = (ToyWorkload, FittedModel, Vec<Segment>);

/// Three independently fitted streams over distinct content processes.
fn fixture() -> &'static Vec<Fixture> {
    static FIXTURE: OnceLock<Vec<Fixture>> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        (0..3u64)
            .map(|v| {
                let w = ToyWorkload::new();
                let mut cam =
                    SyntheticCamera::new(ContentParams::traffic_intersection(41 + v), 2.0);
                let labeled = Recording::record(&mut cam, 20.0 * 60.0);
                let unlabeled = Recording::record(&mut cam, 2.0 * 86_400.0);
                let (model, _) = run_offline(
                    &w,
                    &labeled,
                    &unlabeled,
                    HardwareSpec::with_cores(16),
                    &SkyscraperConfig::fast_test(),
                )
                .expect("fit");
                let online = Recording::record(&mut cam, 1.0 * 3_600.0)
                    .segments()
                    .to_vec();
                (w, model, online)
            })
            .collect()
    })
}

/// One churn schedule, flattened into the exact operation sequence a driver
/// would issue (including the auto-closes of exhausted streams), so a crash
/// point is just an index into this list.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Admit the `fixture`-indexed stream (the h-th Open gets handle h).
    Open { fixture: usize },
    /// Push segment `seg_idx` of handle `handle`'s fixture stream.
    Push { handle: usize, seg_idx: usize },
    /// Close handle `handle`.
    Close { handle: usize },
}

#[derive(Debug, Clone)]
struct Schedule {
    /// `(round, fixture, push_limit)`.
    opens: Vec<(usize, usize, usize)>,
    /// `(round, handle)`.
    closes: Vec<(usize, usize)>,
    rounds: usize,
}

/// Flatten a schedule into ops (same driving discipline as
/// `tests/runtime.rs`: churn at round boundaries, then one segment per open
/// stream per round, exhausted streams closed).
fn flatten(schedule: &Schedule) -> (Vec<Op>, Vec<usize>) {
    let mut ops = Vec::new();
    let mut open_fixture = Vec::new();
    // (limit, cursor, open)
    let mut handles: Vec<(usize, usize, bool)> = Vec::new();
    for round in 0..schedule.rounds {
        for &(at, fixture, limit) in &schedule.opens {
            if at == round {
                ops.push(Op::Open { fixture });
                open_fixture.push(fixture);
                handles.push((limit.min(fixture_len(fixture)), 0, true));
            }
        }
        for &(at, handle) in &schedule.closes {
            if at == round && handles[handle].2 {
                ops.push(Op::Close { handle });
                handles[handle].2 = false;
            }
        }
        for (h, (limit, cursor, open)) in handles.iter_mut().enumerate() {
            if !*open {
                continue;
            }
            if *cursor < *limit {
                ops.push(Op::Push {
                    handle: h,
                    seg_idx: *cursor,
                });
                *cursor += 1;
            } else {
                ops.push(Op::Close { handle: h });
                *open = false;
            }
        }
    }
    (ops, open_fixture)
}

fn fixture_len(fixture: usize) -> usize {
    self::fixture()[fixture].2.len()
}

fn config(shards: usize, dir: Option<&PathBuf>, chaos: Option<Arc<FailurePlan>>) -> RuntimeConfig {
    RuntimeConfig {
        shards,
        shared_cloud_budget_usd: SHARED_BUDGET_USD,
        seed: SEED,
        replan_interval_secs: Some(REPLAN_SECS),
        total_cores: Some(TOTAL_CORES),
        durability: dir.map(|d| DurabilityConfig {
            dir: d.clone(),
            checkpoint_every_epochs: 2,
        }),
        chaos,
        ..RuntimeConfig::default()
    }
}

/// Apply ops starting after what `resume` reports as durable; stop (without
/// finishing) at op index `stop_at` when given. Returns the handles opened.
fn apply_ops(
    rt: &mut IngestRuntime<'static>,
    ops: &[Op],
    open_fixture: &[usize],
    resume: Option<&RecoveryReport>,
    stop_at: Option<usize>,
) -> Vec<StreamId> {
    let streams = fixture();
    let recovered = resume.map_or(0, |r| r.streams.len());
    let mut pushed: Vec<usize> = (0..open_fixture.len())
        .map(|h| {
            resume
                .and_then(|r| r.streams.get(h))
                .map_or(0, |s| s.accepted_segments)
        })
        .collect();
    let mut closed: Vec<bool> = (0..open_fixture.len())
        .map(|h| {
            resume
                .and_then(|r| r.streams.get(h))
                .is_some_and(|s| s.closed)
        })
        .collect();
    let mut handles: Vec<StreamId> = (0..recovered).map(StreamId::from_index).collect();
    let mut opens_seen = 0;
    for (i, op) in ops.iter().enumerate() {
        if stop_at == Some(i) {
            break;
        }
        match *op {
            Op::Open { fixture: fx } => {
                let h = opens_seen;
                opens_seen += 1;
                if h < recovered {
                    continue; // already durably admitted
                }
                let (w, m, _) = &streams[fx];
                let id = rt
                    .open_stream(format!("cam-{fx}"), m, w, IngestOptions::default())
                    .expect("admission");
                assert_eq!(id.index(), h, "slots are admission-ordered");
                handles.push(id);
            }
            Op::Push { handle, seg_idx } => {
                if seg_idx < pushed[handle] {
                    continue; // durable before the crash
                }
                let fx = open_fixture[handle];
                rt.push(handles[handle], &streams[fx].2[seg_idx])
                    .expect("push");
                pushed[handle] = seg_idx + 1;
            }
            Op::Close { handle } => {
                if closed[handle] {
                    continue;
                }
                rt.close_stream(handles[handle]).expect("close");
                closed[handle] = true;
            }
        }
    }
    handles
}

/// The resolver a recovering process uses: slot → (model, workload), from
/// the open-order fixture map.
fn resolver(
    open_fixture: &[usize],
) -> impl Fn(usize, &str) -> Option<(&'static FittedModel, &'static (dyn Workload + 'static))> + '_
{
    move |slot, id| {
        let fx = *open_fixture.get(slot)?;
        assert_eq!(id, format!("cam-{fx}"), "journaled id matches the slot");
        let (w, m, _) = &fixture()[fx];
        Some((m, w as &dyn Workload))
    }
}

/// Uninterrupted reference run (no durability — durability must not change
/// a single bit, which `durable_run_is_bitwise_identical_to_in_memory`
/// checks separately).
fn reference(ops: &[Op], open_fixture: &[usize], shards: usize) -> MultiOutcome {
    let mut rt = IngestRuntime::new(config(shards, None, None));
    apply_ops(&mut rt, ops, open_fixture, None, None);
    rt.finish().expect("finish")
}

/// Crash at `crash_at` (drop the runtime mid-run), recover from `dir` with
/// `recover_shards` shards, resume the op stream, and finish.
fn crash_and_recover(
    ops: &[Op],
    open_fixture: &[usize],
    dir: &PathBuf,
    shards: usize,
    recover_shards: usize,
    crash_at: usize,
) -> (MultiOutcome, RecoveryReport) {
    {
        let mut rt = IngestRuntime::new(config(shards, Some(dir), None));
        apply_ops(&mut rt, ops, open_fixture, None, Some(crash_at));
        // Process dies here: the runtime is dropped without finish().
    }
    let resolve = resolver(open_fixture);
    let (mut rt, report) =
        IngestRuntime::recover(config(recover_shards, Some(dir), None), &resolve).expect("recover");
    // Recovery must restore *exactly* the durable prefix: with no torn
    // tail, every admission and every accepted segment before the crash —
    // nothing more (the test would otherwise pass trivially by re-running
    // everything from scratch), nothing less.
    let opens_before = ops[..crash_at]
        .iter()
        .filter(|o| matches!(o, Op::Open { .. }))
        .count();
    let pushes_before = ops[..crash_at]
        .iter()
        .filter(|o| matches!(o, Op::Push { .. }))
        .count();
    assert_eq!(
        report.streams.len(),
        opens_before,
        "every admission before the crash is durable"
    );
    let accepted: usize = report.streams.iter().map(|s| s.accepted_segments).sum();
    assert_eq!(
        accepted, pushes_before,
        "every accepted push before the crash is durable"
    );
    apply_ops(&mut rt, ops, open_fixture, Some(&report), None);
    (rt.finish().expect("finish"), report)
}

#[test]
fn durable_run_is_bitwise_identical_to_in_memory() {
    let schedule = Schedule {
        opens: vec![(0, 0, 2 * QUOTA + 30), (0, 1, 2 * QUOTA + 30)],
        closes: vec![],
        rounds: 2 * QUOTA + 30,
    };
    let (ops, open_fixture) = flatten(&schedule);
    let plain = reference(&ops, &open_fixture, 2);

    let dir = tmpdir("durable-noop");
    let mut rt = IngestRuntime::new(config(2, Some(&dir), None));
    apply_ops(&mut rt, &ops, &open_fixture, None, None);
    let durable = rt.finish().expect("finish");

    assert_multi_outcomes_bitwise_equal("durable == in-memory", &plain, &durable);
    assert!(
        vetl::skyscraper::runtime::wal_path(&dir).exists(),
        "journal written"
    );
    assert!(
        vetl::skyscraper::runtime::checkpoint_path(&dir).exists(),
        "snapshots written"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The tentpole property: random schedules × shard counts {1, 2, 4/env} ×
/// crash points sampled around and inside epochs, with mid-run open/close
/// churn; recovery may even change the shard count.
#[test]
fn crash_anywhere_recovery_is_bitwise() {
    let mut rng = StdRng::seed_from_u64(chaos_seed());
    let shard_counts = {
        let mut s = vec![1, 2, alt_shards()];
        s.sort_unstable();
        s.dedup();
        s
    };
    for case in 0..3 {
        let open_at = rng.gen_range(1..(2 * QUOTA));
        let close_at = rng.gen_range(1..(2 * QUOTA));
        let len_a = rng.gen_range((QUOTA + 10)..(2 * QUOTA + 100));
        let len_c = rng.gen_range(50..(QUOTA + 50));
        let schedule = Schedule {
            opens: vec![(0, 0, len_a), (0, 1, 2 * QUOTA + 60), (open_at, 2, len_c)],
            closes: vec![(close_at, 0)],
            rounds: 2 * QUOTA + 60,
        };
        let (ops, open_fixture) = flatten(&schedule);
        for &shards in &shard_counts {
            let expected = reference(&ops, &open_fixture, shards);
            // Crash points: mid-epoch, around an epoch boundary, and in the
            // churn window — all sampled per case.
            let crash_points = [
                rng.gen_range(1..ops.len()),
                (QUOTA * open_fixture.len().min(2)).min(ops.len() - 1),
                rng.gen_range((ops.len() / 2)..ops.len()),
            ];
            for &crash_at in &crash_points {
                let dir = tmpdir(&format!("prop-{case}-{shards}-{crash_at}"));
                let recover_shards = *shard_counts
                    .get((case + crash_at) % shard_counts.len())
                    .expect("non-empty");
                let (out, report) =
                    crash_and_recover(&ops, &open_fixture, &dir, shards, recover_shards, crash_at);
                assert_multi_outcomes_bitwise_equal(
                    &format!(
                        "case {case}, shards {shards}->{recover_shards}, crash at op \
                         {crash_at}/{} (report {report:?})",
                        ops.len()
                    ),
                    &expected,
                    &out,
                );
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

#[test]
fn double_crash_with_torn_and_rotted_tails_recovers_bitwise() {
    let schedule = Schedule {
        opens: vec![
            (0, 0, 2 * QUOTA + 40),
            (0, 1, 2 * QUOTA + 40),
            (37, 2, QUOTA),
        ],
        closes: vec![(QUOTA + 20, 1)],
        rounds: 2 * QUOTA + 40,
    };
    let (ops, open_fixture) = flatten(&schedule);
    let expected = reference(&ops, &open_fixture, 2);
    let mut rng = StdRng::seed_from_u64(chaos_seed() ^ 0xDEAD);

    let dir = tmpdir("torn");
    // First crash: tear a random chunk off the journal tail (a crash
    // mid-append) before recovering.
    let crash_1 = ops.len() / 3;
    {
        let mut rt = IngestRuntime::new(config(2, Some(&dir), None));
        apply_ops(&mut rt, &ops, &open_fixture, None, Some(crash_1));
    }
    let torn = chaos::tear_wal_tail(&dir, rng.gen_range(1..200)).expect("tear");
    assert!(torn > 0);
    let resolve = resolver(&open_fixture);
    let (mut rt, report_1) =
        IngestRuntime::recover(config(1, Some(&dir), None), &resolve).expect("recover 1");

    // Second crash: continue, die again, rot one byte near the journal's
    // end (checksum chain must discard from there), recover again.
    let crash_2 = 2 * ops.len() / 3;
    apply_ops(&mut rt, &ops, &open_fixture, Some(&report_1), Some(crash_2));
    drop(rt);
    // Rot a byte in the journal's *final* record (every record body is at
    // least 9 bytes, so the last 8 bytes always belong to it): the checksum
    // chain discards it as a tail. Rot before the final record is mid-file
    // corruption and fails typed instead — covered by
    // `recovery_failure_modes_are_typed` / the wal unit tests.
    chaos::flip_wal_byte(&dir, rng.gen_range(0..8)).expect("rot");
    let (mut rt, report_2) =
        IngestRuntime::recover(config(4, Some(&dir), None), &resolve).expect("recover 2");
    assert!(
        report_2.discarded_bytes > 0,
        "the rotted tail must be detected and discarded"
    );
    apply_ops(&mut rt, &ops, &open_fixture, Some(&report_2), None);
    let out = rt.finish().expect("finish");
    assert_multi_outcomes_bitwise_equal("double crash + torn/rotted tails", &expected, &out);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_worker_crash_recovers_bitwise() {
    let schedule = Schedule {
        opens: vec![(0, 0, 3 * QUOTA), (0, 1, 3 * QUOTA)],
        closes: vec![],
        rounds: 3 * QUOTA,
    };
    let (ops, open_fixture) = flatten(&schedule);
    let expected = reference(&ops, &open_fixture, 2);

    let dir = tmpdir("worker-crash");
    let plan = Arc::new(FailurePlan::new().crash_worker(2, 1));
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        let mut rt = IngestRuntime::new(config(2, Some(&dir), Some(Arc::clone(&plan))));
        apply_ops(&mut rt, &ops, &open_fixture, None, None);
        rt.finish().expect("finish")
    }));
    let payload = crashed.expect_err("the injected crash must fire");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        msg.starts_with(CRASH_PAYLOAD),
        "panic must be the injected one, got: {msg}"
    );

    // The worker died mid-dispatch; everything accepted is journaled, so
    // recovery rebuilds the exact pre-dispatch state and the driver resumes.
    let resolve = resolver(&open_fixture);
    let (mut rt, report) =
        IngestRuntime::recover(config(2, Some(&dir), Some(Arc::clone(&plan))), &resolve)
            .expect("recover");
    apply_ops(&mut rt, &ops, &open_fixture, Some(&report), None);
    let out = rt.finish().expect("finish");
    assert_multi_outcomes_bitwise_equal("injected worker crash", &expected, &out);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wallet_outage_is_deterministic_and_survives_a_crash() {
    let schedule = Schedule {
        opens: vec![(0, 0, 3 * QUOTA), (0, 1, 3 * QUOTA)],
        closes: vec![],
        rounds: 3 * QUOTA,
    };
    let (ops, open_fixture) = flatten(&schedule);

    // The outage is a semantic fault: reference and recovered runs both
    // carry it, and the lease for the outage epoch is zero.
    let outage_epoch = 3;
    let outage_plan = || Arc::new(FailurePlan::new().wallet_outage(outage_epoch));
    let mut ref_rt = IngestRuntime::new(config(2, None, Some(outage_plan())));
    apply_ops(&mut ref_rt, &ops, &open_fixture, None, None);
    let expected = ref_rt.finish().expect("finish");

    let dir = tmpdir("outage");
    let crash_at = ops.len() / 2;
    {
        let mut rt = IngestRuntime::new(config(2, Some(&dir), Some(outage_plan())));
        apply_ops(&mut rt, &ops, &open_fixture, None, Some(crash_at));
        // The run reaches past the outage barrier before dying: its last
        // joint plan history must reflect the zero lease at some point.
    }
    let resolve = resolver(&open_fixture);
    let (mut rt, report) =
        IngestRuntime::recover(config(2, Some(&dir), Some(outage_plan())), &resolve)
            .expect("recover");
    apply_ops(&mut rt, &ops, &open_fixture, Some(&report), None);
    let out = rt.finish().expect("finish");
    assert_multi_outcomes_bitwise_equal("wallet outage + crash", &expected, &out);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seeded_failure_plans_recover_bitwise_and_deterministically() {
    // A fully sampled plan (crashes + outages drawn from the chaos seed):
    // the reference run carries the same *semantic* faults (outages) but no
    // crashes; the chaotic run crashes, recovers, and must match. Re-arming
    // the plan and repeating the whole crash/recover cycle must reproduce
    // the recovered outcome bit for bit — a failing seed replays exactly.
    let schedule = Schedule {
        opens: vec![(0, 0, 3 * QUOTA + 20), (0, 1, 3 * QUOTA + 20)],
        closes: vec![],
        rounds: 3 * QUOTA + 20,
    };
    let (ops, open_fixture) = flatten(&schedule);
    let plan = Arc::new(FailurePlan::seeded(chaos_seed(), 5, 2));
    assert!(!plan.crash_points().is_empty(), "seeded plans always crash");

    // Reference: same wallet outages, no crashes.
    let outage_only = Arc::new(
        plan.outages()
            .iter()
            .fold(FailurePlan::new(), |p, &e| p.wallet_outage(e)),
    );
    let mut ref_rt = IngestRuntime::new(config(2, None, Some(outage_only)));
    apply_ops(&mut ref_rt, &ops, &open_fixture, None, None);
    let expected = ref_rt.finish().expect("finish");

    let resolve = resolver(&open_fixture);
    let run_once = |tag: &str| -> MultiOutcome {
        plan.rearm();
        let dir = tmpdir(tag);
        // A seeded plan may hold several crash points (the second fires
        // during the post-recovery resume): keep catching the unwind and
        // recovering until the drive completes. Terminates because every
        // crash point fires at most once per arming.
        let mut crashed_before = false;
        let out = loop {
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                if crashed_before {
                    let (mut rt, report) = IngestRuntime::recover(
                        config(2, Some(&dir), Some(Arc::clone(&plan))),
                        &resolve,
                    )
                    .expect("recover");
                    apply_ops(&mut rt, &ops, &open_fixture, Some(&report), None);
                    rt.finish().expect("finish")
                } else {
                    let mut rt = IngestRuntime::new(config(2, Some(&dir), Some(Arc::clone(&plan))));
                    apply_ops(&mut rt, &ops, &open_fixture, None, None);
                    rt.finish().expect("finish")
                }
            }));
            match attempt {
                // Remaining crash points sat outside the run's dispatch
                // schedule: the run completes with its outages only.
                Ok(out) => break out,
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .unwrap_or_default();
                    assert!(msg.starts_with(CRASH_PAYLOAD), "unexpected panic: {msg}");
                    crashed_before = true;
                }
            }
        };
        let _ = std::fs::remove_dir_all(&dir);
        out
    };

    let first = run_once("seeded-1");
    assert_multi_outcomes_bitwise_equal("seeded plan, crash + recover", &expected, &first);
    let second = run_once("seeded-2");
    assert_multi_outcomes_bitwise_equal("re-armed plan reproduces the run", &first, &second);
}

#[test]
fn overflow_storm_is_typed_backpressure_and_leaves_no_trace() {
    let streams = fixture();
    let (w0, m0, s0) = &streams[0];
    let (w1, m1, s1) = &streams[1];
    let serve = 2 * QUOTA + 15;

    let drive = |storm: bool, dir: Option<&PathBuf>| -> MultiOutcome {
        let mut rt = IngestRuntime::new(config(2, dir, None));
        let a = rt
            .open_stream("a", m0, w0, IngestOptions::default())
            .unwrap();
        let b = rt
            .open_stream("b", m1, w1, IngestOptions::default())
            .unwrap();
        for i in 0..serve {
            rt.push(a, &s0[i]).unwrap();
            if storm && i == QUOTA - 1 {
                // `a` has a full epoch queued and `b` lags: hammer the
                // bounded mailbox. Every attempt must be a typed rejection.
                let rejected = chaos::overflow_storm(&mut rt, a, &s0[i], 40);
                assert_eq!(rejected, 40);
            }
            rt.push(b, &s1[i]).unwrap();
        }
        rt.finish().expect("finish")
    };

    let calm = drive(false, None);
    let stormy = drive(true, None);
    assert_multi_outcomes_bitwise_equal("storm leaves no trace", &calm, &stormy);

    // Rejected pushes are not journaled either: a storm followed by a crash
    // recovers to the same bitwise outcome.
    let dir = tmpdir("storm");
    {
        let mut rt = IngestRuntime::new(config(2, Some(&dir), None));
        let a = rt
            .open_stream("a", m0, w0, IngestOptions::default())
            .unwrap();
        let _b = rt
            .open_stream("b", m1, w1, IngestOptions::default())
            .unwrap();
        for seg in &s0[..QUOTA] {
            rt.push(a, seg).unwrap();
        }
        let rejected = chaos::overflow_storm(&mut rt, a, &s0[QUOTA], 25);
        assert_eq!(rejected, 25);
        // Crash with the storm rejections in the recent past.
    }
    let open_fixture = [0usize, 1usize];
    let resolve = move |slot: usize, _id: &str| {
        let (w, m, _) = &fixture()[open_fixture[slot]];
        Some((m, w as &(dyn Workload + 'static)))
    };
    let (mut rt, report) =
        IngestRuntime::recover(config(2, Some(&dir), None), &resolve).expect("recover");
    assert_eq!(report.streams[0].accepted_segments, QUOTA);
    assert_eq!(report.streams[1].accepted_segments, 0);
    let a = StreamId::from_index(0);
    let b = StreamId::from_index(1);
    // Balanced resume: stream a already holds a full durable epoch, so b
    // catches up first, then the two advance in lockstep.
    for i in 0..serve {
        if i >= report.streams[0].accepted_segments {
            rt.push(a, &s0[i]).unwrap();
        }
        if i >= report.streams[1].accepted_segments {
            rt.push(b, &s1[i]).unwrap();
        }
    }
    let recovered = rt.finish().expect("finish");
    assert_multi_outcomes_bitwise_equal("storm + crash", &calm, &recovered);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journaled_config_overrides_a_mismatched_recovery_config() {
    // The journal's first record pins the run's planning configuration
    // (seed, budget, cost model, overrides). A recovery invoked with a
    // *different* RuntimeConfig must still replay the journaled run's
    // timeline — otherwise the bitwise guarantee would silently depend on
    // the operator retyping the exact config after a crash.
    let schedule = Schedule {
        opens: vec![(0, 0, 2 * QUOTA + 10), (0, 1, 2 * QUOTA + 10)],
        closes: vec![],
        rounds: 2 * QUOTA + 10,
    };
    let (ops, open_fixture) = flatten(&schedule);
    let expected = reference(&ops, &open_fixture, 2);

    let dir = tmpdir("cfg-mismatch");
    let crash_at = 2 * ops.len() / 3;
    {
        // Journal-only durability: all config restoration must come from
        // the journal's Config record, not a snapshot.
        let mut cfg = config(2, Some(&dir), None);
        cfg.durability
            .as_mut()
            .expect("dur")
            .checkpoint_every_epochs = 0;
        let mut rt = IngestRuntime::new(cfg);
        apply_ops(&mut rt, &ops, &open_fixture, None, Some(crash_at));
    }
    let mut wrong = config(2, Some(&dir), None);
    wrong.seed = SEED ^ 0xBAD;
    wrong.shared_cloud_budget_usd = SHARED_BUDGET_USD * 3.0;
    wrong.replan_interval_secs = Some(REPLAN_SECS * 2.0);
    wrong.total_cores = Some(TOTAL_CORES + 8.0);
    let resolve = resolver(&open_fixture);
    let (mut rt, report) = IngestRuntime::recover(wrong, &resolve).expect("recover");
    assert_eq!(report.replay_errors, 0);
    apply_ops(&mut rt, &ops, &open_fixture, Some(&report), None);
    let out = rt.finish().expect("finish");
    assert_multi_outcomes_bitwise_equal("journaled config wins over the caller's", &expected, &out);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_failure_modes_are_typed() {
    let streams = fixture();
    let (w0, m0, s0) = &streams[0];

    // recover() without durability config.
    let Err(err) = IngestRuntime::recover(config(1, None, None), &|_, _| None) else {
        panic!("recover without durability must fail");
    };
    assert!(matches!(err, SkyError::InvalidInput { .. }), "{err}");

    // Recovering an empty directory is a fresh start, not an error.
    let dir = tmpdir("fresh");
    let (rt, report) =
        IngestRuntime::recover(config(1, Some(&dir), None), &|_, _| None).expect("fresh");
    assert!(report.streams.is_empty());
    assert!(!report.resumed_from_snapshot);
    drop(rt);

    // A dirty directory cannot be silently reused by a fresh runtime.
    {
        let mut cfg = config(1, Some(&dir), None);
        cfg.durability
            .as_mut()
            .expect("dur")
            .checkpoint_every_epochs = 1;
        let mut rt = IngestRuntime::new(cfg);
        let a = rt
            .open_stream("a", m0, w0, IngestOptions::default())
            .unwrap();
        for seg in &s0[..40] {
            rt.push(a, seg).unwrap();
        }
    }
    let mut fresh = IngestRuntime::new(config(1, Some(&dir), None));
    let err = fresh
        .open_stream("a", m0, w0, IngestOptions::default())
        .unwrap_err();
    assert!(matches!(err, SkyError::CorruptWal { .. }), "{err}");
    drop(fresh);

    // A corrupted checkpoint is typed corruption, not a panic.
    let ckpt = vetl::skyscraper::runtime::checkpoint_path(&dir);
    let mut bytes = std::fs::read(&ckpt).expect("read ckpt");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&ckpt, &bytes).expect("write ckpt");
    let resolve = move |_slot: usize, _id: &str| Some((m0, w0 as &(dyn Workload + 'static)));
    let Err(err) = IngestRuntime::recover(config(1, Some(&dir), None), &resolve) else {
        panic!("corrupt checkpoint must fail recovery");
    };
    assert!(matches!(err, SkyError::CorruptWal { .. }), "{err}");

    // An unresolvable stream is typed, not a panic.
    bytes[mid] ^= 0xFF;
    std::fs::write(&ckpt, &bytes).expect("restore ckpt");
    let Err(err) = IngestRuntime::recover(config(1, Some(&dir), None), &|_, _| None) else {
        panic!("unresolvable stream must fail recovery");
    };
    assert!(matches!(err, SkyError::InvalidInput { .. }), "{err}");

    // With the checkpoint restored and the resolver back, recovery works.
    let (rt, report) =
        IngestRuntime::recover(config(1, Some(&dir), None), &resolve).expect("recover");
    assert_eq!(report.streams[0].accepted_segments, 40);
    drop(rt);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mutated_journal_bytes_never_panic_recovery() {
    let streams = fixture();
    let (w0, m0, s0) = &streams[0];
    let dir = tmpdir("fuzz");
    {
        // Journal-only durability (no snapshots) so recovery exercises the
        // full replay path over the mutated file.
        let mut cfg = config(1, Some(&dir), None);
        cfg.durability
            .as_mut()
            .expect("dur")
            .checkpoint_every_epochs = 0;
        let mut rt = IngestRuntime::new(cfg);
        let a = rt
            .open_stream("a", m0, w0, IngestOptions::default())
            .unwrap();
        for seg in &s0[..QUOTA + 17] {
            rt.push(a, seg).unwrap();
        }
    }
    let wal = vetl::skyscraper::runtime::wal_path(&dir);
    let pristine = std::fs::read(&wal).expect("read wal");
    let resolve = move |_slot: usize, _id: &str| Some((m0, w0 as &(dyn Workload + 'static)));
    let mut rng = StdRng::seed_from_u64(chaos_seed() ^ 0xF022);
    for _ in 0..60 {
        let mut mutated = pristine.clone();
        match rng.gen_range(0..3u8) {
            0 => {
                let i = rng.gen_range(0..mutated.len());
                mutated[i] ^= 1 << rng.gen_range(0..8u8);
            }
            1 => {
                let cut = rng.gen_range(0..mutated.len());
                mutated.truncate(cut);
            }
            2 => {
                let start = rng.gen_range(0..mutated.len());
                let end = (start + rng.gen_range(1..64usize)).min(mutated.len());
                mutated[start..end].iter_mut().for_each(|b| *b = 0);
            }
            _ => unreachable!(),
        }
        std::fs::write(&wal, &mutated).expect("write");
        // Must never panic: either a clean (possibly shortened) recovery or
        // a typed corruption error.
        match IngestRuntime::recover(config(1, Some(&dir), None), &resolve) {
            Ok((rt, report)) => {
                assert!(report.streams.len() <= 1);
                drop(rt);
            }
            Err(SkyError::CorruptWal { .. }) | Err(SkyError::WalIo { .. }) => {}
            Err(e) => panic!("unexpected error class: {e}"),
        }
        // recover() may have rewritten the files; restore the fixture.
        let _ = std::fs::remove_file(vetl::skyscraper::runtime::checkpoint_path(&dir));
        std::fs::write(&wal, &pristine).expect("restore");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
