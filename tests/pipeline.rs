//! Cross-crate integration tests: the full offline→online pipeline on the
//! real workloads, and the system-ordering invariants the paper's
//! evaluation rests on.

use vetl::baselines::{best_static_config, run_optimum, run_static};
use vetl::prelude::*;
use vetl::skyscraper::offline::run_offline;
use vetl::skyscraper::IngestSession;
use vetl::workloads::mosei::MoseiStreamGen;

fn covid_setup(cores: usize) -> (CovidWorkload, vetl::skyscraper::FittedModel, Vec<Segment>) {
    let workload = CovidWorkload::new();
    let mut cam = SyntheticCamera::new(ContentParams::shopping_street(5), 2.0);
    let labeled = Recording::record(&mut cam, 20.0 * 60.0);
    let unlabeled = Recording::record(&mut cam, 2.0 * 86_400.0);
    let hyper = SkyscraperConfig {
        n_categories: 3,
        planned_interval_secs: 6.0 * 3_600.0,
        forecast_input_secs: 6.0 * 3_600.0,
        forecast_input_splits: 6,
        ..SkyscraperConfig::default()
    };
    let (model, _) = run_offline(
        &workload,
        &labeled,
        &unlabeled,
        HardwareSpec::with_cores(cores),
        &hyper,
    )
    .expect("offline fit");
    let online = Recording::record(&mut cam, 86_400.0).segments().to_vec();
    (workload, model, online)
}

/// Tentpole regression test for the parallel offline phase: a run fanned
/// out across 4 workers must produce a `FittedModel` identical — configs,
/// ranks, categories, residual — to a forced single-worker run on a *real*
/// paper workload (the ToyWorkload variant lives in `skyscraper::offline`).
#[test]
fn parallel_offline_fit_is_identical_to_single_worker() {
    let workload = CovidWorkload::new();
    let mut cam = SyntheticCamera::new(ContentParams::shopping_street(5), 2.0);
    let labeled = Recording::record(&mut cam, 20.0 * 60.0);
    let unlabeled = Recording::record(&mut cam, 86_400.0);
    let fit = |n_workers: usize| {
        let hyper = SkyscraperConfig {
            n_categories: 3,
            planned_interval_secs: 6.0 * 3_600.0,
            forecast_input_secs: 6.0 * 3_600.0,
            forecast_input_splits: 6,
            n_workers,
            ..SkyscraperConfig::default()
        };
        run_offline(
            &workload,
            &labeled,
            &unlabeled,
            HardwareSpec::with_cores(4),
            &hyper,
        )
        .expect("offline fit")
    };
    let (serial, _) = fit(1);
    let (parallel, report) = fit(4);
    assert_eq!(report.n_workers, 4);

    assert_eq!(serial.n_configs(), parallel.n_configs());
    for (a, b) in serial.configs.iter().zip(parallel.configs.iter()) {
        assert_eq!(a.config, b.config);
        assert_eq!(a.work_mean, b.work_mean);
        assert_eq!(a.work_max, b.work_max);
        assert_eq!(a.qual_by_category, b.qual_by_category);
        assert_eq!(a.cost_by_category, b.cost_by_category);
        assert_eq!(a.placements.len(), b.placements.len());
        for (pa, pb) in a.placements.iter().zip(b.placements.iter()) {
            assert_eq!(pa.placement, pb.placement);
            assert_eq!(pa.runtime_mean, pb.runtime_mean);
            assert_eq!(pa.cloud_usd, pb.cloud_usd);
        }
    }
    assert_eq!(serial.quality_rank, parallel.quality_rank);
    assert_eq!(serial.cost_rank, parallel.cost_rank);
    assert_eq!(serial.discriminator, parallel.discriminator);
    for c in 0..serial.n_categories() {
        assert_eq!(serial.categories.center(c), parallel.categories.center(c));
    }
    assert_eq!(serial.residual_p99, parallel.residual_p99);
    assert_eq!(serial.tail.categories, parallel.tail.categories);
    assert_eq!(serial.forecaster.val_mae, parallel.forecaster.val_mae);
}

#[test]
fn covid_end_to_end_guarantees_hold() {
    let (workload, model, online) = covid_setup(8);
    let opts = IngestOptions {
        cloud_budget_usd: 0.3,
        ..Default::default()
    };
    let out = IngestSession::batch(&model, &workload, opts, &online).expect("ingest");
    assert_eq!(out.overflows, 0, "Eq. 1 throughput guarantee");
    assert!(out.buffer_peak <= model.hardware.buffer_bytes * 1.01);
    assert!(out.mean_quality > 0.5);
    assert!(out.plans >= 2, "planner must re-run each planned interval");
}

#[test]
fn skyscraper_beats_static_on_the_same_machine() {
    let (workload, model, online) = covid_setup(8);
    let opts = IngestOptions {
        cloud_budget_usd: 0.3,
        ..Default::default()
    };
    let sky = IngestSession::batch(&model, &workload, opts, &online).expect("ingest");

    let samples: Vec<_> = online.iter().step_by(450).map(|s| s.content).collect();
    let static_cfg = best_static_config(&workload, &samples, 8.0);
    let st = run_static(&workload, &static_cfg, &online);

    assert!(
        sky.mean_quality > st.mean_quality + 0.03,
        "Skyscraper ({:.3}) must clearly beat peak-provisioned static ({:.3})",
        sky.mean_quality,
        st.mean_quality
    );
}

#[test]
fn oracle_dominates_skyscraper_at_equal_work() {
    let (workload, model, online) = covid_setup(8);
    let opts = IngestOptions {
        cloud_budget_usd: 0.3,
        ..Default::default()
    };
    let sky = IngestSession::batch(&model, &workload, opts, &online).expect("ingest");

    let configs: Vec<KnobConfig> = workload.config_space().iter().collect();
    let oracle = run_optimum(&workload, &configs, &online, sky.work_core_secs);
    assert!(
        oracle.mean_quality >= sky.mean_quality - 0.02,
        "ground-truth oracle ({:.3}) must not lose to Skyscraper ({:.3})",
        oracle.mean_quality,
        sky.mean_quality
    );
}

#[test]
fn cloud_spend_never_exceeds_per_interval_budget() {
    let (workload, model, online) = covid_setup(4);
    let budget = 0.2;
    let opts = IngestOptions {
        cloud_budget_usd: budget,
        ..Default::default()
    };
    let out = IngestSession::batch(&model, &workload, opts, &online).expect("ingest");
    let intervals = (out.duration_secs / model.hyper.planned_interval_secs).ceil();
    assert!(
        out.cloud_usd <= budget * intervals + 1e-9,
        "spent ${} over {} intervals of ${}",
        out.cloud_usd,
        intervals,
        budget
    );
}

#[test]
fn mosei_long_plateau_does_not_overflow() {
    let workload = MoseiWorkload::new(MoseiVariant::Long);
    let mut gen = MoseiStreamGen::new(MoseiVariant::Long, 9);
    let labeled = gen.record(20.0 * 60.0);
    let unlabeled = gen.record(2.0 * 86_400.0);
    let hyper = SkyscraperConfig {
        n_categories: 5,
        switch_period_secs: 7.0,
        planned_interval_secs: 6.0 * 3_600.0,
        forecast_input_secs: 6.0 * 3_600.0,
        forecast_input_splits: 6,
        ..SkyscraperConfig::default()
    };
    let (model, _) = run_offline(
        &workload,
        &labeled,
        &unlabeled,
        HardwareSpec::with_cores(4),
        &hyper,
    )
    .expect("fit");
    let online = gen.record(86_400.0);
    let opts = IngestOptions {
        cloud_budget_usd: 1.0,
        ..Default::default()
    };
    let out = IngestSession::batch(&model, &workload, opts, online.segments()).expect("ingest");
    assert_eq!(
        out.overflows, 0,
        "LONG plateau must be absorbed (buffer+cloud)"
    );
}

#[test]
fn facade_api_runs_all_paper_workloads() {
    // Smoke test: every workload type fits and ingests through the facade.
    let mut cam = SyntheticCamera::new(ContentParams::traffic_intersection(3), 2.0);
    let labeled = Recording::record(&mut cam, 20.0 * 60.0);
    let unlabeled = Recording::record(&mut cam, 86_400.0);
    let online = Recording::record(&mut cam, 2.0 * 3_600.0);

    let mut sky = Skyscraper::new(MotWorkload::new());
    sky.set_resources(8, 4_000.0, 0.5);
    sky.set_hyperparameters(SkyscraperConfig {
        n_categories: 3,
        planned_interval_secs: 3.0 * 3_600.0,
        forecast_input_secs: 3.0 * 3_600.0,
        forecast_input_splits: 4,
        ..SkyscraperConfig::fast_test()
    });
    sky.fit(&labeled, &unlabeled).expect("fit");
    let out = sky.ingest(online.segments()).expect("ingest");
    assert_eq!(out.overflows, 0);
    assert!(out.mean_quality > 0.3);
}

#[test]
fn drift_detector_is_quiet_on_stationary_content() {
    // The Appendix-E.2 detector, calibrated against the offline residual
    // distribution, must not fire while ingesting content drawn from the
    // same process the model was fitted on. (The fires-on-novel-content
    // case is unit-tested with controlled centers in
    // `skyscraper::online::drift`.)
    let (workload, model, online) = covid_setup(8);
    assert!(model.residual_p99 > 0.0 && model.residual_p99 < 0.5);
    let opts = IngestOptions {
        detect_drift: true,
        ..Default::default()
    };
    let quiet =
        IngestSession::batch(&model, &workload, opts, &online[..20_000]).expect("stationary run");
    assert!(
        (quiet.drift_alarms as f64) < 0.01 * 20_000.0,
        "stationary content tripped {} drift alarms",
        quiet.drift_alarms
    );
}

#[test]
fn deterministic_given_seed() {
    let (workload, model, online) = covid_setup(4);
    let opts = IngestOptions {
        seed: 42,
        ..Default::default()
    };
    let a = IngestSession::batch(&model, &workload, opts.clone(), &online).expect("run a");
    let b = IngestSession::batch(&model, &workload, opts, &online).expect("run b");
    assert_eq!(a.mean_quality, b.mean_quality);
    assert_eq!(a.switches, b.switches);
    assert_eq!(a.cloud_usd, b.cloud_usd);
}

/// Tentpole regression for the session redesign: feeding a real paper
/// workload segment-by-segment through `IngestSession::push` (with the
/// stream statistics and ground-truth feed the batch path pins) must
/// reproduce the one-shot `batch` outcome bit for bit.
#[test]
fn session_streaming_matches_batch_ingest_bitwise() {
    let (workload, model, online) = covid_setup(4);
    let opts = IngestOptions {
        cloud_budget_usd: 0.3,
        record_trace: true,
        ..Default::default()
    };
    let batch = IngestSession::batch(&model, &workload, opts.clone(), &online).expect("batch");

    let mut session = IngestSession::with_stream_stats(
        &model,
        &workload,
        opts,
        StreamStats::from_segments(&online),
    );
    session.pin_ground_truth(
        online
            .iter()
            .map(|s| model.ground_truth_category(&workload, &s.content))
            .collect(),
    );
    for seg in &online {
        session.push(seg).expect("push");
    }
    let streamed = session.finish();

    assert_eq!(
        batch.mean_quality.to_bits(),
        streamed.mean_quality.to_bits()
    );
    assert_eq!(
        batch.work_core_secs.to_bits(),
        streamed.work_core_secs.to_bits()
    );
    assert_eq!(batch.cloud_usd.to_bits(), streamed.cloud_usd.to_bits());
    assert_eq!(batch.buffer_peak.to_bits(), streamed.buffer_peak.to_bits());
    assert_eq!(batch.overflows, streamed.overflows);
    assert_eq!(batch.switches, streamed.switches);
    assert_eq!(
        batch.misclassification_rate.to_bits(),
        streamed.misclassification_rate.to_bits()
    );
    assert_eq!(batch.plans, streamed.plans);
    assert_eq!(batch.segments, streamed.segments);
    assert_eq!(batch.trace.len(), streamed.trace.len());
}
