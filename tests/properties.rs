//! Property-based tests over the core invariants (proptest).

use proptest::prelude::*;

use vetl::lp::{knapsack_exact, knapsack_greedy, solve, KnapsackItem, LpProblem, Relation};
use vetl::ml::{KMeans, KMeansConfig};
use vetl::sim::{simulate, Backlog, CloudSpec, ClusterSpec, Placement, TaskGraph, TaskNode};
use vetl::skyscraper::KnobPlan;

proptest! {
    /// LP solutions are feasible and at least as good as any sampled
    /// feasible point (local optimality witness).
    #[test]
    fn lp_solution_is_feasible_and_dominant(
        c1 in 0.1f64..5.0,
        c2 in 0.1f64..5.0,
        b1 in 1.0f64..20.0,
        b2 in 1.0f64..20.0,
        probe in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 16),
    ) {
        let mut p = LpProblem::new();
        let x = p.add_var("x", c1);
        let y = p.add_var("y", c2);
        p.add_constraint(vec![(x, 1.0), (y, 2.0)], Relation::Le, b1);
        p.add_constraint(vec![(x, 3.0), (y, 1.0)], Relation::Le, b2);
        let s = solve(&p).expect("bounded feasible LP");
        prop_assert!(p.is_feasible(&s.values, 1e-6));
        for (px, py) in probe {
            if p.is_feasible(&[px, py], 0.0) {
                let obj = c1 * px + c2 * py;
                prop_assert!(s.objective >= obj - 1e-6,
                    "solver {} beaten by probe {}", s.objective, obj);
            }
        }
    }

    /// Knapsack: greedy never beats exact DP (on-grid weights), and both
    /// respect the capacity.
    #[test]
    fn knapsack_bounds(
        items in prop::collection::vec((0.1f64..10.0, 1u32..20), 1..12),
        cap_cells in 5u32..40,
    ) {
        // Integer weights on a 0.5 grid keep the DP exact.
        let items: Vec<KnapsackItem> = items
            .into_iter()
            .map(|(value, w)| KnapsackItem { value, weight: w as f64 * 0.5 })
            .collect();
        let capacity = cap_cells as f64 * 0.5;
        let g = knapsack_greedy(&items, capacity);
        let e = knapsack_exact(&items, capacity, cap_cells as usize);
        prop_assert!(g.weight <= capacity + 1e-9);
        prop_assert!(e.weight <= capacity + 1e-9);
        prop_assert!(e.value + 1e-9 >= g.value, "exact {} < greedy {}", e.value, g.value);
        prop_assert!(g.value >= 0.5 * e.value - 1e-9, "greedy below 1/2-approx");
    }

    /// KMeans inertia never increases when k grows.
    #[test]
    fn kmeans_inertia_monotone_in_k(
        points in prop::collection::vec(
            prop::collection::vec(-10.0f64..10.0, 2), 12..60),
    ) {
        let i2 = KMeans::fit(&points, &KMeansConfig { k: 2, ..Default::default() }).inertia();
        let i4 = KMeans::fit(&points, &KMeansConfig { k: 4, ..Default::default() }).inertia();
        prop_assert!(i4 <= i2 + 1e-6, "k=4 inertia {} > k=2 inertia {}", i4, i2);
    }

    /// Knob plans normalize every category histogram (Eq. 4).
    #[test]
    fn knob_plan_rows_always_normalize(
        raw in prop::collection::vec(
            prop::collection::vec(0.0f64..10.0, 4), 1..6),
    ) {
        let plan = KnobPlan::new(raw);
        for c in 0..plan.n_categories() {
            let s: f64 = plan.histogram(c).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
            prop_assert!(plan.histogram(c).iter().all(|&v| v >= 0.0));
        }
    }

    /// The backlog conserves bytes: freed bytes never exceed pushed bytes,
    /// and the outstanding count matches pushes minus frees.
    #[test]
    fn backlog_conserves_bytes(
        ops in prop::collection::vec((1.0f64..100.0, 0.1f64..10.0, 0.0f64..15.0), 1..60),
    ) {
        let mut backlog = Backlog::new();
        let mut pushed = 0.0;
        let mut freed = 0.0;
        for (bytes, work, capacity) in ops {
            backlog.push(bytes, work);
            pushed += bytes;
            freed += backlog.process(capacity);
            prop_assert!(backlog.bytes() >= -1e-6);
            prop_assert!(backlog.work() >= -1e-6);
        }
        prop_assert!(freed <= pushed + 1e-6);
        prop_assert!((pushed - freed - backlog.bytes()).abs() < 1e-6 * pushed.max(1.0));
    }

    /// Makespan is monotone: moving any single task from a 1-core cluster to
    /// a larger cluster never increases the makespan.
    #[test]
    fn makespan_monotone_in_cores(
        secs in prop::collection::vec(0.01f64..2.0, 1..12),
        cores_small in 1usize..3,
        extra in 1usize..6,
    ) {
        let mut g = TaskGraph::new();
        for (i, &s) in secs.iter().enumerate() {
            g.add_node(TaskNode::new(format!("t{i}"), s, s / 2.0));
        }
        let p = Placement::all_onprem(g.len());
        let cloud = CloudSpec::default();
        let small = simulate(&g, &p, &ClusterSpec::with_cores(cores_small), &cloud);
        let large = simulate(&g, &p, &ClusterSpec::with_cores(cores_small + extra), &cloud);
        prop_assert!(large.makespan <= small.makespan + 1e-9);
        // Work is conserved regardless of core count.
        prop_assert!((large.onprem_busy_secs - small.onprem_busy_secs).abs() < 1e-9);
    }

    /// The makespan never undercuts the two classic lower bounds:
    /// total-work / cores and the critical path.
    #[test]
    fn makespan_respects_lower_bounds(
        secs in prop::collection::vec(0.01f64..2.0, 2..10),
        chain in prop::bool::ANY,
        cores in 1usize..8,
    ) {
        let mut g = TaskGraph::new();
        let mut prev = None;
        for (i, &s) in secs.iter().enumerate() {
            let n = g.add_node(TaskNode::new(format!("t{i}"), s, s));
            if chain {
                if let Some(p) = prev {
                    g.add_edge(p, n);
                }
                prev = Some(n);
            }
        }
        let r = simulate(
            &g,
            &Placement::all_onprem(g.len()),
            &ClusterSpec::with_cores(cores),
            &CloudSpec::default(),
        );
        let work_bound = g.total_onprem_secs() / cores as f64;
        let path_bound = g.critical_path_secs();
        prop_assert!(r.makespan + 1e-9 >= work_bound);
        prop_assert!(r.makespan + 1e-9 >= path_bound);
    }
}

// ---- Session-API properties: the streaming push/finish surface must be
// indistinguishable from the one-shot batch loop. ----

use std::sync::OnceLock;

use vetl::prelude::*;
use vetl::skyscraper::offline::run_offline;
use vetl::skyscraper::testkit::{assert_outcomes_bitwise_equal, ToyWorkload};
use vetl::skyscraper::FittedModel;

/// One fitted toy model plus a 2-hour segment pool, shared across property
/// cases (fitting per case would dominate the runtime).
fn session_fixture() -> &'static (ToyWorkload, FittedModel, Vec<Segment>) {
    static FIXTURE: OnceLock<(ToyWorkload, FittedModel, Vec<Segment>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let w = ToyWorkload::new();
        let mut cam = SyntheticCamera::new(ContentParams::traffic_intersection(3), 2.0);
        let labeled = Recording::record(&mut cam, 20.0 * 60.0);
        let unlabeled = Recording::record(&mut cam, 2.0 * 86_400.0);
        let (model, _) = run_offline(
            &w,
            &labeled,
            &unlabeled,
            HardwareSpec::with_cores(4),
            &SkyscraperConfig::fast_test(),
        )
        .expect("fixture fit");
        let online = Recording::record(&mut cam, 2.0 * 3_600.0)
            .segments()
            .to_vec();
        (w, model, online)
    })
}

/// The session fixture's model pushed through a knowledge-base round-trip:
/// `(workload, fitted model, reloaded model, online segments)`.
fn kb_fixture() -> (
    &'static ToyWorkload,
    &'static FittedModel,
    &'static FittedModel,
    &'static [Segment],
) {
    static LOADED: OnceLock<FittedModel> = OnceLock::new();
    let (w, model, pool) = session_fixture();
    let loaded = LOADED.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!(
            "vetl-prop-kb-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let kb = vetl::skyscraper::offline::KnowledgeBase::open(&dir).expect("open kb");
        kb.save_model(model).expect("save");
        let loaded = kb.load_model().expect("load");
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(
            loaded.fingerprint(),
            model.fingerprint(),
            "round-trip must be bitwise"
        );
        loaded
    });
    (w, model, loaded, pool)
}

proptest! {
    /// For random seeds, windows, budgets and ablation gates, feeding the
    /// stream segment-by-segment through a session produces an outcome
    /// identical (bitwise) to the one-shot batch ingest.
    #[test]
    fn session_push_finish_equals_batch_ingest(
        seed in 0u64..1_000_000,
        start in 0usize..100_000,
        len in 16usize..300,
        budget in 0.0f64..0.4,
        buffering in prop::bool::ANY,
        cloud in prop::bool::ANY,
    ) {
        let (w, model, pool) = session_fixture();
        let start = start % (pool.len() - len);
        let segs = &pool[start..start + len];
        let opts = IngestOptions {
            seed,
            cloud_budget_usd: budget,
            enable_buffering: buffering,
            enable_cloud: cloud,
            record_trace: true,
            ..Default::default()
        };

        let batch = IngestSession::batch(model, w, opts.clone(), segs).expect("batch");

        let mut session =
            IngestSession::with_stream_stats(model, w, opts, StreamStats::from_segments(segs));
        session.pin_ground_truth(
            segs.iter()
                .map(|s| model.ground_truth_category(w, &s.content))
                .collect(),
        );
        for seg in segs {
            session.push(seg).expect("push");
        }
        assert_outcomes_bitwise_equal("bitwise", &batch, &session.finish());
    }

    /// For random windows, seeds, budgets and gates, an online run over a
    /// model that went through a knowledge-base `save → load` round-trip is
    /// bitwise identical to a run over the freshly fitted model — the
    /// persisted codec is invisible to the online phase.
    #[test]
    fn kb_saved_model_runs_bitwise_identically(
        seed in 0u64..1_000_000,
        start in 0usize..100_000,
        len in 16usize..200,
        budget in 0.0f64..0.4,
        buffering in prop::bool::ANY,
        cloud in prop::bool::ANY,
    ) {
        let (w, fitted, loaded, pool) = kb_fixture();
        let start = start % (pool.len() - len);
        let segs = &pool[start..start + len];
        let opts = IngestOptions {
            seed,
            cloud_budget_usd: budget,
            enable_buffering: buffering,
            enable_cloud: cloud,
            record_trace: true,
            ..Default::default()
        };
        let a = IngestSession::batch(fitted, w, opts.clone(), segs).expect("fitted run");
        let b = IngestSession::batch(loaded, w, opts, segs).expect("loaded run");
        assert_outcomes_bitwise_equal("bitwise property", &a, &b);
    }

    /// Checkpointing a session mid-stream and resuming it continues the run
    /// bit-for-bit: the spliced run equals the uninterrupted one.
    #[test]
    fn session_checkpoint_resume_is_transparent(
        seed in 0u64..1_000_000,
        start in 0usize..100_000,
        len in 32usize..200,
        cut_pct in 1usize..100,
    ) {
        let (w, model, pool) = session_fixture();
        let start = start % (pool.len() - len);
        let segs = &pool[start..start + len];
        let cut = (len * cut_pct / 100).max(1).min(len - 1);
        let opts = IngestOptions { seed, ..Default::default() };

        let straight = IngestSession::batch(model, w, opts.clone(), segs).expect("straight");

        let gt: Vec<usize> = segs
            .iter()
            .map(|s| model.ground_truth_category(w, &s.content))
            .collect();
        let mut session =
            IngestSession::with_stream_stats(model, w, opts, StreamStats::from_segments(segs));
        session.pin_ground_truth(gt);
        for seg in &segs[..cut] {
            session.push(seg).expect("push before cut");
        }
        let checkpoint = session.checkpoint();
        prop_assert_eq!(checkpoint.segments_pushed(), cut);
        drop(session);

        let mut resumed = IngestSession::resume(model, w, checkpoint);
        for seg in &segs[cut..] {
            resumed.push(seg).expect("push after cut");
        }
        assert_outcomes_bitwise_equal("bitwise", &straight, &resumed.finish());
    }
}
