//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) subset of the `rand` 0.8 API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen`, `gen_range` and `gen_bool`. The generator is xoshiro256++ seeded
//! through SplitMix64 — deterministic across platforms, which is what the
//! reproduction's seed-pinned experiments require. It is **not** a
//! cryptographic generator.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    //! Named generators (only [`StdRng`] is provided).

    /// A deterministic xoshiro256++ generator mirroring `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256++ state words — everything the generator
        /// carries. Pairing this with [`StdRng::from_state_words`] lets a
        /// checkpointed computation persist its RNG and resume bit-for-bit
        /// (the real `rand` exposes the same through serde, which is
        /// unavailable offline).
        pub fn state_words(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from raw state words captured with
        /// [`StdRng::state_words`]. An all-zero state (a fixed point of
        /// xoshiro) falls back to the seed-0 expansion, mirroring
        /// `from_seed`.
        pub fn from_state_words(s: [u64; 4]) -> Self {
            if s.iter().all(|&w| w == 0) {
                return Self::from_state(0);
            }
            Self { s }
        }

        pub(crate) fn from_state(mut seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for seed_from_u64.
            let mut next = || {
                seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl crate::SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s.iter().all(|&w| w == 0) {
                return Self::from_state(0);
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            Self::from_state(state)
        }
    }
}

/// Core entropy source: everything else derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a single `u64` (expanded internally).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their "natural" domain (`[0,1)` for
/// floats, the full range for integers) — the `Standard` distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Unbiased uniform integer in `[0, n)` via rejection sampling.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = u64::MAX - (u64::MAX.wrapping_rem(n).wrapping_add(1)).wrapping_rem(n);
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::generate(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::generate(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::generate(rng) * (self.end - self.start)
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::generate(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_uniform_ish() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(3i64..=5);
            assert!((3..=5).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02, "{hits}");
    }
}
