//! Offline stand-in for the `criterion` crate.
//!
//! A deliberately small timing harness exposing the API surface the bench
//! targets use: [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Unlike real criterion it
//! does no statistical outlier analysis; it warms up briefly, measures for a
//! fixed budget, and reports the mean. Results are kept on the [`Criterion`]
//! instance so `harness = false` benches can emit them as JSON.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; accepted for API compatibility, the
/// shim always re-runs setup per measurement batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input per iteration.
    PerIteration,
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id passed to [`Criterion::bench_function`].
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Iterations measured (after warm-up).
    pub iters: u64,
}

/// The benchmark driver.
pub struct Criterion {
    warmup: Duration,
    measurement: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warmup: Duration::from_millis(30),
            measurement: Duration::from_millis(200),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Override the measurement budget (per benchmark).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Run one benchmark and print its mean time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warmup: self.warmup,
            measurement: self.measurement,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let iters = b.iters.max(1);
        let mean_ns = b.elapsed.as_nanos() as f64 / iters as f64;
        println!(
            "{name:<40} {:>12} / iter ({iters} iters)",
            format_ns(mean_ns)
        );
        self.results.push(BenchResult {
            name: name.to_string(),
            mean_ns,
            iters,
        });
        self
    }

    /// All measurements taken so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    warmup: Duration,
    measurement: Duration,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Measure a routine. The return value is black-boxed so the optimizer
    /// cannot delete the work.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up (untimed).
        let start = Instant::now();
        while start.elapsed() < self.warmup {
            black_box(routine());
        }
        // Measure.
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measurement {
            black_box(routine());
            iters += 1;
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    /// Measure a routine whose input is rebuilt (untimed) before every call.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up (untimed).
        let start = Instant::now();
        while start.elapsed() < self.warmup {
            black_box(routine(setup()));
        }
        // Measure routine time only, excluding setup.
        let mut elapsed = Duration::ZERO;
        let mut iters = 0u64;
        let budget = Instant::now();
        while budget.elapsed() < self.measurement {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            elapsed += t.elapsed();
            iters += 1;
        }
        self.elapsed = elapsed;
        self.iters = iters;
    }
}

/// Collect bench functions into a group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Entry point running every group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_result() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        c.warmup = Duration::from_millis(1);
        c.bench_function("add", |b| b.iter(|| 1u64 + 1));
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].mean_ns > 0.0);
        assert!(c.results()[0].iters > 0);
    }

    #[test]
    fn iter_batched_excludes_setup_time() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        c.warmup = Duration::from_millis(1);
        c.bench_function("batched", |b| {
            b.iter_batched(
                || std::thread::sleep(Duration::from_micros(200)),
                |_| 2u64 * 2,
                BatchSize::SmallInput,
            )
        });
        // Setup sleeps 200µs per iteration; the measured mean must be far
        // below that since setup is excluded.
        assert!(c.results()[0].mean_ns < 100_000.0, "{:?}", c.results()[0]);
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(10.0).ends_with("ns"));
        assert!(format_ns(10_000.0).ends_with("µs"));
        assert!(format_ns(10_000_000.0).ends_with("ms"));
    }
}
