//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro over `arg in strategy` bindings, range strategies for
//! numeric types, `prop::collection::vec`, `prop::bool::ANY`, tuple
//! strategies, and the `prop_assert!`/`prop_assert_eq!` assertions.
//!
//! Differences from real proptest, by design:
//! * sampling is **deterministic** — every test function runs a fixed number
//!   of cases from a seed derived from the test name, so failures reproduce
//!   exactly in CI;
//! * no shrinking — the failing case is reported as-is via the panic
//!   message (cases are small enough here to read directly).

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of sampled cases per property.
pub const CASES: usize = 64;

/// Build the deterministic per-test generator (used by [`proptest!`]; public
/// so the macro expansion works in crates that do not depend on `rand`).
#[doc(hidden)]
pub fn new_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// FNV-1a, used to derive a per-test seed from the test name.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A value generator. Strategies are sampled, not shrunk.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, usize, u64, u32, u16, u8, i64, i32);

/// Constant "strategy": a plain value samples to itself (lets tests plug
/// literals where a strategy is expected).
impl Strategy for bool {
    type Value = bool;
    fn sample(&self, _rng: &mut StdRng) -> bool {
        *self
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

pub mod prop {
    //! The `prop::` strategy namespace.

    pub mod collection {
        //! Collection strategies.

        use super::super::{SizeRange, Strategy};
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy producing `Vec`s of values from an element strategy.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `prop::collection::vec(element, len)` — `len` is a fixed size or
        /// a `lo..hi` range.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let n = if self.size.lo >= self.size.hi {
                    self.size.lo
                } else {
                    rng.gen_range(self.size.lo..self.size.hi)
                };
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    pub mod bool {
        //! Boolean strategies.

        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// The uniform boolean strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// `prop::bool::ANY`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn sample(&self, rng: &mut StdRng) -> bool {
                rng.gen_bool(0.5)
            }
        }
    }

    pub mod num {
        //! Numeric strategy namespaces (ranges implement `Strategy` directly).
    }
}

/// Size specification for [`prop::collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub lo: usize,
    /// Exclusive upper bound (`lo >= hi` means "exactly lo").
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

pub mod prelude {
    //! Everything a property test needs in scope.

    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Assert inside a property; panics with the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] deterministic samples.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                let mut __rng = $crate::new_rng($crate::seed_for(stringify!($name)));
                for __case in 0..$crate::CASES {
                    $(let $arg = ($strat).sample(&mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        /// Sampled values stay inside their strategy's bounds.
        #[test]
        fn ranges_stay_in_bounds(
            x in 1.0f64..2.0,
            n in 3usize..7,
            v in prop::collection::vec(0u32..5, 2..9),
            pair in (0.0f64..1.0, 10i64..20),
            flag in prop::bool::ANY,
        ) {
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert!((3..7).contains(&n));
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
            prop_assert!((0.0..1.0).contains(&pair.0));
            prop_assert!((10..20).contains(&pair.1));
            let _ = flag;
        }

        /// Fixed-size vec strategies produce exactly that many elements.
        #[test]
        fn fixed_size_vec(v in prop::collection::vec(0.0f64..1.0, 4)) {
            prop_assert_eq!(v.len(), 4);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(super::seed_for("a"), super::seed_for("b"));
    }
}
