//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the multi-producer multi-consumer channel subset the executor
//! uses (`unbounded`, `bounded`, clonable senders/receivers, disconnect
//! semantics, timeouts) implemented over `Mutex` + `Condvar`. Throughput is
//! far below real crossbeam's lock-free queues, but the executor submits
//! coarse jobs (milliseconds of work), so the channel is never the
//! bottleneck here.

pub mod channel {
    //! MPMC channels with crossbeam-compatible signatures.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the deadline.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Producer half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Consumer half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Channel without capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Channel holding at most `cap` queued messages; `send` blocks when full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = inner.cap.is_some_and(|c| inner.queue.len() >= c);
                if !full {
                    inner.queue.push_back(value);
                    drop(inner);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                inner = self.shared.not_full.wait(inner).expect("channel poisoned");
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue, blocking until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.not_empty.wait(inner).expect("channel poisoned");
            }
        }

        /// [`recv`](Self::recv) with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .shared
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .expect("channel poisoned");
                inner = guard;
                if res.timed_out() && inner.queue.is_empty() {
                    if inner.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking dequeue.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .inner
                .lock()
                .expect("channel poisoned")
                .queue
                .len()
        }

        /// True when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().expect("channel poisoned").senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .inner
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut inner = self.shared.inner.lock().expect("channel poisoned");
                inner.senders -= 1;
                inner.senders
            };
            if remaining == 0 {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut inner = self.shared.inner.lock().expect("channel poisoned");
                inner.receivers -= 1;
                inner.receivers
            };
            if remaining == 0 {
                self.shared.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn disconnect_on_receiver_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn mpmc_distributes_all_messages() {
            let (tx, rx) = unbounded::<usize>();
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all: Vec<usize> = consumers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..1000).collect::<Vec<_>>());
        }

        #[test]
        fn timeout_fires() {
            let (_tx, rx) = unbounded::<u32>();
            let r = rx.recv_timeout(Duration::from_millis(10));
            assert_eq!(r, Err(RecvTimeoutError::Timeout));
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            let h = thread::spawn(move || tx.send(2).is_ok());
            thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert!(h.join().unwrap());
        }
    }
}
