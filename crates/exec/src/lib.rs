//! # vetl-exec — thread-pool actor executor
//!
//! The original Skyscraper implementation maps every UDF onto Ray actors and
//! synchronizes them from the parent process with futures (§5.1, Appendix N).
//! This crate is the Rust stand-in: a fixed-size worker pool (one worker per
//! emulated core) plus promise-based synchronization, and a dependency-aware
//! DAG runner used to validate the Appendix-M simulator against *real*
//! multi-threaded executions (Figs. 22–23).
//!
//! Running a task graph on an [`ActorPool`] of `n` workers where each task
//! sleeps its profiled duration reproduces, in real wall-clock time, the
//! scheduling behaviour of an `n`-core machine: the pool size enforces the
//! parallelism limit exactly like core count does.

pub mod dag;
pub mod pool;
pub mod promise;

pub use dag::{run_dag, DagRun, DagSpec};
pub use pool::{ActorPool, PoolScope};
pub use promise::Promise;
