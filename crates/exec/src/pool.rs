//! A fixed-size worker pool emulating Ray actors.
//!
//! The pool's thread count is the emulated core count: at most `size` tasks
//! run concurrently, just as at most `cores` UDFs run concurrently on the
//! paper's machines ("the number of duplicate actors is based on the number
//! of logical cores", §5.1).

use crossbeam::channel::{unbounded, Sender};
use std::thread::JoinHandle;

use crate::promise::Promise;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A pool of `size` worker threads consuming submitted jobs FIFO.
#[derive(Debug)]
pub struct ActorPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ActorPool {
    /// Spawn a pool with `size` workers.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "pool needs at least one worker");
        let (tx, rx) = unbounded::<Job>();
        let workers = (0..size)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("vetl-actor-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self { tx: Some(tx), workers }
    }

    /// Number of workers (the emulated core count).
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Submit a job; returns a [`Promise`] for its result.
    pub fn submit<T, F>(&self, f: F) -> Promise<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (promise, resolver) = Promise::pair();
        let job: Job = Box::new(move || {
            let value = f();
            let _ = resolver.resolve(value);
        });
        self.tx
            .as_ref()
            .expect("pool already shut down")
            .send(job)
            .expect("pool workers exited unexpectedly");
        promise
    }

    /// Submit many jobs and wait for all results, in submission order.
    pub fn map_wait<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let promises: Vec<Promise<T>> = jobs.into_iter().map(|f| self.submit(f)).collect();
        promises.into_iter().map(Promise::wait).collect()
    }
}

impl Drop for ActorPool {
    fn drop(&mut self) {
        // Closing the channel terminates the workers after draining.
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    #[test]
    fn submit_returns_result() {
        let pool = ActorPool::new(2);
        let p = pool.submit(|| 6 * 7);
        assert_eq!(p.wait(), 42);
    }

    #[test]
    fn map_wait_preserves_order() {
        let pool = ActorPool::new(4);
        let jobs: Vec<_> = (0..16).map(|i| move || i * i).collect();
        let out = pool.map_wait(jobs);
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn pool_size_limits_parallelism() {
        // With 2 workers and 4 × 50 ms sleeps, wall time must be ≥ 100 ms
        // (two waves), clearly below the 200 ms a serial run would take.
        let pool = ActorPool::new(2);
        let start = Instant::now();
        let jobs: Vec<_> = (0..4)
            .map(|_| move || std::thread::sleep(Duration::from_millis(50)))
            .collect();
        pool.map_wait(jobs);
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(95), "elapsed {elapsed:?}");
        assert!(elapsed < Duration::from_millis(190), "elapsed {elapsed:?}");
    }

    #[test]
    fn all_jobs_run_exactly_once() {
        let pool = ActorPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<_> = (0..100)
            .map(|_| {
                let c = Arc::clone(&counter);
                move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }
            })
            .collect();
        pool.map_wait(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ActorPool::new(2);
        let p = pool.submit(|| 1);
        drop(pool); // must drain and join without deadlock
        assert_eq!(p.wait(), 1);
    }
}
