//! A fixed-size worker pool emulating Ray actors.
//!
//! The pool's thread count is the emulated core count: at most `size` tasks
//! run concurrently, just as at most `cores` UDFs run concurrently on the
//! paper's machines ("the number of duplicate actors is based on the number
//! of logical cores", §5.1).

use crossbeam::channel::{unbounded, Sender};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread::JoinHandle;

use crate::promise::Promise;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A pool of up to `size` worker threads consuming submitted jobs FIFO.
///
/// The long-lived channel workers spawn **lazily** on the first
/// [`submit`](Self::submit): a pool used only for the scoped scatter-gather
/// APIs ([`par_map`](Self::par_map) / [`scope`](Self::scope)) never spawns a
/// persistent thread at all (the offline phase is such a user — its workers
/// are scoped to each step).
#[derive(Debug)]
pub struct ActorPool {
    size: usize,
    channel: Mutex<ChannelWorkers>,
}

/// The lazily-spawned long-lived half of the pool.
#[derive(Debug, Default)]
struct ChannelWorkers {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    shut_down: bool,
}

impl ActorPool {
    /// Create a pool of `size` workers (the emulated core count).
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "pool needs at least one worker");
        Self {
            size,
            channel: Mutex::new(ChannelWorkers::default()),
        }
    }

    /// Number of workers (the emulated core count).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Long-lived worker threads currently alive (0 until the first
    /// [`submit`](Self::submit), and again after [`shutdown`](Self::shutdown);
    /// scoped [`par_map`](Self::par_map)/[`scope`](Self::scope) workers are
    /// never counted because they end with their call).
    pub fn active_workers(&self) -> usize {
        self.channel.lock().expect("pool poisoned").workers.len()
    }

    /// Submit a job; returns a [`Promise`] for its result.
    ///
    /// # Panics
    /// Panics if the pool was shut down.
    pub fn submit<T, F>(&self, f: F) -> Promise<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (promise, resolver) = Promise::pair();
        let job: Job = Box::new(move || {
            let value = f();
            let _ = resolver.resolve(value);
        });
        let mut channel = self.channel.lock().expect("pool poisoned");
        assert!(!channel.shut_down, "pool already shut down");
        if channel.tx.is_none() {
            let (tx, rx) = unbounded::<Job>();
            channel.workers = (0..self.size)
                .map(|i| {
                    let rx = rx.clone();
                    std::thread::Builder::new()
                        .name(format!("vetl-actor-{i}"))
                        .spawn(move || {
                            while let Ok(job) = rx.recv() {
                                job();
                            }
                        })
                        .expect("failed to spawn pool worker")
                })
                .collect();
            channel.tx = Some(tx);
        }
        channel
            .tx
            .as_ref()
            .expect("workers just spawned")
            .send(job)
            .expect("pool workers exited unexpectedly");
        promise
    }

    /// Submit many jobs and wait for all results, in submission order.
    pub fn map_wait<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let promises: Vec<Promise<T>> = jobs.into_iter().map(|f| self.submit(f)).collect();
        promises.into_iter().map(Promise::wait).collect()
    }

    /// Scoped scatter-gather: apply `f` to every item of `items`, fanning out
    /// across up to [`size`](Self::size) workers, and gather the results in
    /// input order.
    ///
    /// Unlike [`submit`](Self::submit), the closure and items only need to
    /// live for the duration of the call: the workers are fresh scoped
    /// threads (not the long-lived channel workers, which cannot run
    /// borrowed jobs), bounded by the pool size, so `f` may borrow from the
    /// caller's stack. Work is distributed through a shared atomic cursor —
    /// each scoped worker claims the next unclaimed index — which balances
    /// heterogeneous item costs. Results are position-addressed, so the
    /// output order — and therefore any seed-derived determinism in `f` —
    /// is independent of scheduling.
    ///
    /// Concurrency accounting: a `par_map` in flight uses its own up-to-size
    /// worker set. Interleaving it with [`submit`](Self::submit) jobs on the
    /// same pool can therefore run up to `2 × size` tasks at once; the
    /// offline phase avoids this by only ever using the scoped APIs.
    ///
    /// # Panics
    /// Propagates the first panic raised inside `f`.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.size().min(n);
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(i, &items[i]);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker filled every slot")
            })
            .collect()
    }

    /// Statically sharded scatter-gather over **mutable** items: the slice
    /// is split into up to [`size`](Self::size) contiguous shards, one
    /// scoped worker per shard, and each worker gets exclusive `&mut`
    /// access to its shard's items. Results come back in input order.
    ///
    /// This is the primitive behind long-lived shard runtimes (each worker
    /// owns a disjoint set of stateful streams for a whole batch/epoch):
    /// unlike [`par_map`](Self::par_map) there is no work-stealing cursor —
    /// the item→shard assignment is a pure function of index and shard
    /// count, so stateful items are never touched by two workers and the
    /// per-item results are independent of scheduling. Shard `s` of `k`
    /// owns the balanced contiguous range `[s·n/k, (s+1)·n/k)`, so item
    /// `i` of `n` lands on shard `⌈k·(i+1)/n⌉ − 1`.
    ///
    /// # Panics
    /// Propagates the first panic raised inside `f`.
    pub fn shard_map_mut<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let shards = self.size().min(n);
        if shards <= 1 {
            return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        // Balanced contiguous ranges: shard s covers [s*n/shards, (s+1)*n/shards).
        let mut results: Vec<Vec<R>> = Vec::with_capacity(shards);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(shards);
            let mut rest = items;
            let mut offset = 0;
            for s in 0..shards {
                let end = (s + 1) * n / shards;
                let (chunk, tail) = rest.split_at_mut(end - offset);
                rest = tail;
                let base = offset;
                offset = end;
                let f = &f;
                handles.push(scope.spawn(move || {
                    chunk
                        .iter_mut()
                        .enumerate()
                        .map(|(i, t)| f(base + i, t))
                        .collect::<Vec<R>>()
                }));
            }
            for h in handles {
                match h.join() {
                    Ok(r) => results.push(r),
                    // Remaining shard workers are joined by the scope exit.
                    Err(p) => std::panic::resume_unwind(p),
                }
            }
        });
        results.into_iter().flatten().collect()
    }

    /// Run `f` with a [`PoolScope`] through which ad-hoc tasks can be
    /// spawned that borrow from the caller's stack. At most
    /// [`size`](Self::size) spawned tasks *run* concurrently (a semaphore
    /// gates execution), preserving the pool's core-count emulation. All
    /// tasks are joined before `scope` returns.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&PoolScope<'scope, 'env>) -> R,
    {
        let permits = std::sync::Arc::new(Semaphore::new(self.size()));
        std::thread::scope(|s| f(&PoolScope { scope: s, permits }))
    }
}

/// Handle passed to the closure of [`ActorPool::scope`].
pub struct PoolScope<'scope, 'env: 'scope> {
    scope: &'scope std::thread::Scope<'scope, 'env>,
    permits: std::sync::Arc<Semaphore>,
}

impl<'scope, 'env> PoolScope<'scope, 'env> {
    /// Spawn a task inside the scope. The task blocks on a pool permit
    /// before running, so no more than the pool's worker count execute at
    /// once. Returns the standard scoped join handle.
    pub fn spawn<T, F>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        T: Send + 'scope,
        F: FnOnce() -> T + Send + 'scope,
    {
        let permits = std::sync::Arc::clone(&self.permits);
        self.scope.spawn(move || {
            let _permit = permits.acquire();
            f()
        })
    }
}

/// Counting semaphore gating scoped-task execution to the pool size.
#[derive(Debug)]
struct Semaphore {
    count: Mutex<usize>,
    freed: Condvar,
}

struct Permit<'a>(&'a Semaphore);

impl Semaphore {
    fn new(count: usize) -> Self {
        Self {
            count: Mutex::new(count),
            freed: Condvar::new(),
        }
    }

    fn acquire(&self) -> Permit<'_> {
        let mut count = self.count.lock().expect("semaphore poisoned");
        while *count == 0 {
            count = self.freed.wait(count).expect("semaphore poisoned");
        }
        *count -= 1;
        Permit(self)
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        *self.0.count.lock().expect("semaphore poisoned") += 1;
        self.0.freed.notify_one();
    }
}

impl ActorPool {
    /// Close the submission channel and join every spawned worker, so tests
    /// and benches never leak `vetl-actor-*` threads. Called by `Drop`;
    /// callable explicitly when deterministic teardown ordering matters
    /// (e.g. before asserting on thread counts). Idempotent; subsequent
    /// [`submit`](Self::submit) calls panic.
    pub fn shutdown(&mut self) {
        let mut channel = self.channel.lock().expect("pool poisoned");
        channel.shut_down = true;
        // Closing the channel terminates the workers after draining.
        drop(channel.tx.take());
        for w in channel.workers.drain(..) {
            // A worker that panicked already unwound; the pool must still
            // reap the remaining ones rather than leak them.
            let _ = w.join();
        }
    }
}

impl Drop for ActorPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    #[test]
    fn submit_returns_result() {
        let pool = ActorPool::new(2);
        let p = pool.submit(|| 6 * 7);
        assert_eq!(p.wait(), 42);
    }

    #[test]
    fn map_wait_preserves_order() {
        let pool = ActorPool::new(4);
        let jobs: Vec<_> = (0..16).map(|i| move || i * i).collect();
        let out = pool.map_wait(jobs);
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn pool_size_limits_parallelism() {
        // With 2 workers and 4 × 50 ms sleeps, wall time must be ≥ 100 ms
        // (two waves), clearly below the 200 ms a serial run would take.
        let pool = ActorPool::new(2);
        let start = Instant::now();
        let jobs: Vec<_> = (0..4)
            .map(|_| move || std::thread::sleep(Duration::from_millis(50)))
            .collect();
        pool.map_wait(jobs);
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(95), "elapsed {elapsed:?}");
        assert!(elapsed < Duration::from_millis(190), "elapsed {elapsed:?}");
    }

    #[test]
    fn all_jobs_run_exactly_once() {
        let pool = ActorPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<_> = (0..100)
            .map(|_| {
                let c = Arc::clone(&counter);
                move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }
            })
            .collect();
        pool.map_wait(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ActorPool::new(2);
        let p = pool.submit(|| 1);
        drop(pool); // must drain and join without deadlock
        assert_eq!(p.wait(), 1);
    }

    #[test]
    fn shutdown_leaves_no_pool_threads_behind() {
        let mut pool = ActorPool::new(3);
        let jobs: Vec<_> = (0..12).map(|i| move || i).collect();
        let _ = pool.map_wait(jobs);
        pool.shutdown();
        assert_eq!(pool.active_workers(), 0, "workers joined and drained");
        pool.shutdown(); // idempotent
    }

    #[test]
    fn scoped_apis_spawn_no_persistent_workers() {
        let pool = ActorPool::new(4);
        assert_eq!(pool.active_workers(), 0, "construction is thread-free");
        let data = [1u32, 2, 3, 4, 5, 6, 7, 8];
        let out = pool.par_map(&data, |_, &v| v * 2);
        assert_eq!(out.iter().sum::<u32>(), 72);
        pool.scope(|s| s.spawn(|| ()).join().expect("scoped task"));
        assert_eq!(
            pool.active_workers(),
            0,
            "scatter-gather must not leave channel workers behind"
        );
        let p = pool.submit(|| 1);
        assert_eq!(p.wait(), 1);
        assert_eq!(
            pool.active_workers(),
            4,
            "submit spawns the channel workers"
        );
    }

    #[test]
    fn par_map_borrows_and_preserves_order() {
        let pool = ActorPool::new(4);
        let data: Vec<u64> = (0..64).collect();
        let offset = 100u64; // captured by reference: scoped, not 'static
        let out = pool.par_map(&data, |i, &v| v * v + offset + i as u64);
        let expect: Vec<u64> = (0..64).map(|i| i * i + offset + i).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_map_runs_concurrently() {
        let pool = ActorPool::new(4);
        let items = vec![(); 4];
        let start = Instant::now();
        pool.par_map(&items, |_, _| std::thread::sleep(Duration::from_millis(50)));
        let elapsed = start.elapsed();
        assert!(elapsed < Duration::from_millis(150), "elapsed {elapsed:?}");
    }

    #[test]
    fn par_map_empty_and_single() {
        let pool = ActorPool::new(2);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.par_map(&empty, |_, v| *v).is_empty());
        assert_eq!(pool.par_map(&[7u32], |_, v| *v + 1), vec![8]);
    }

    #[test]
    fn scope_limits_concurrency_to_pool_size() {
        let pool = ActorPool::new(2);
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        pool.scope(|s| {
            let handles: Vec<_> = (0..6)
                .map(|_| {
                    let running = Arc::clone(&running);
                    let peak = Arc::clone(&peak);
                    s.spawn(move || {
                        let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(20));
                        running.fetch_sub(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("scoped task");
            }
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "peak {}",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn shard_map_mut_mutates_in_place_and_orders_results() {
        let pool = ActorPool::new(3);
        let mut items: Vec<u64> = (0..17).collect();
        let out = pool.shard_map_mut(&mut items, |i, v| {
            *v += 100;
            *v + i as u64
        });
        assert_eq!(items, (100..117).collect::<Vec<_>>());
        assert_eq!(out, (0..17).map(|i| 100 + 2 * i).collect::<Vec<_>>());
    }

    #[test]
    fn shard_map_mut_is_shard_count_independent() {
        let mut a: Vec<u64> = (0..31).collect();
        let mut b = a.clone();
        let mut c = a.clone();
        let out1 = ActorPool::new(1).shard_map_mut(&mut a, |i, v| *v * 3 + i as u64);
        let out4 = ActorPool::new(4).shard_map_mut(&mut b, |i, v| *v * 3 + i as u64);
        let out9 = ActorPool::new(9).shard_map_mut(&mut c, |i, v| *v * 3 + i as u64);
        assert_eq!(out1, out4);
        assert_eq!(out1, out9);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn shard_map_mut_runs_shards_concurrently() {
        let pool = ActorPool::new(4);
        let mut items = vec![(); 4];
        let start = Instant::now();
        pool.shard_map_mut(&mut items, |_, _| {
            std::thread::sleep(Duration::from_millis(50))
        });
        let elapsed = start.elapsed();
        assert!(elapsed < Duration::from_millis(150), "elapsed {elapsed:?}");
    }

    #[test]
    fn shard_map_mut_empty_and_single() {
        let pool = ActorPool::new(2);
        let mut empty: Vec<u32> = Vec::new();
        assert!(pool.shard_map_mut(&mut empty, |_, v| *v).is_empty());
        let mut one = vec![7u32];
        assert_eq!(pool.shard_map_mut(&mut one, |_, v| *v + 1), vec![8]);
    }

    #[test]
    fn scope_gathers_borrowed_results() {
        let pool = ActorPool::new(3);
        let words = ["alpha", "beta", "gamma"];
        let lens = pool.scope(|s| {
            let hs: Vec<_> = words.iter().map(|w| s.spawn(move || w.len())).collect();
            hs.into_iter()
                .map(|h| h.join().expect("task"))
                .collect::<Vec<_>>()
        });
        assert_eq!(lens, vec![5, 4, 5]);
    }
}
