//! Promises — the Ray-future analogue used to synchronize UDF calls.
//!
//! Appendix N.2 describes how the knob switcher "waits on a quality Future,
//! whose value is set by one of the UDFs processing the previous video
//! segment". [`Promise`] is that future: a one-shot value produced by a pool
//! worker and awaited by the coordinator.

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// Write-end of a one-shot value.
#[derive(Debug)]
pub struct Resolver<T> {
    tx: Sender<T>,
}

impl<T> Resolver<T> {
    /// Fulfil the promise. Returns `false` if the consumer is gone.
    pub fn resolve(self, value: T) -> bool {
        self.tx.send(value).is_ok()
    }
}

/// Read-end of a one-shot value produced by a worker.
#[derive(Debug)]
pub struct Promise<T> {
    rx: Receiver<T>,
}

impl<T> Promise<T> {
    /// Create a connected `(Promise, Resolver)` pair.
    pub fn pair() -> (Promise<T>, Resolver<T>) {
        let (tx, rx) = bounded(1);
        (Promise { rx }, Resolver { tx })
    }

    /// Block until the value arrives.
    ///
    /// # Panics
    /// Panics if the producing worker dropped its [`Resolver`] without
    /// resolving (e.g. the task panicked).
    pub fn wait(self) -> T {
        self.rx
            .recv()
            .expect("promise abandoned: producing task panicked or was dropped")
    }

    /// Block with a timeout; `None` on timeout.
    pub fn wait_timeout(self, timeout: Duration) -> Option<T> {
        match self.rx.recv_timeout(timeout) {
            Ok(v) => Some(v),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => {
                panic!("promise abandoned: producing task panicked or was dropped")
            }
        }
    }

    /// Non-blocking poll.
    pub fn try_get(&self) -> Option<T> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn resolve_then_wait() {
        let (p, r) = Promise::pair();
        assert!(r.resolve(42));
        assert_eq!(p.wait(), 42);
    }

    #[test]
    fn wait_blocks_until_resolved() {
        let (p, r) = Promise::pair();
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            r.resolve("done");
        });
        assert_eq!(p.wait(), "done");
        h.join().unwrap();
    }

    #[test]
    fn timeout_returns_none() {
        let (p, _r) = Promise::<u32>::pair();
        assert_eq!(p.wait_timeout(Duration::from_millis(10)), None);
    }

    #[test]
    fn try_get_polls() {
        let (p, r) = Promise::pair();
        assert_eq!(p.try_get(), None);
        r.resolve(7);
        assert_eq!(p.try_get(), Some(7));
    }

    #[test]
    #[should_panic(expected = "promise abandoned")]
    fn dropped_resolver_panics_waiters() {
        let (p, r) = Promise::<u32>::pair();
        drop(r);
        let _ = p.wait();
    }
}
