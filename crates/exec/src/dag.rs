//! Dependency-aware DAG execution on an [`ActorPool`].
//!
//! Used by the Fig. 22/23 simulator-validation experiments: a task graph is
//! executed for real on a pool of `n` workers (each task sleeping its
//! profiled, time-scaled duration) and the measured finish times are compared
//! against the Appendix-M simulator's estimates.

use crossbeam::channel::unbounded;
use std::time::{Duration, Instant};

use crate::pool::ActorPool;

/// A DAG of opaque jobs: `preds[i]` lists the tasks that must finish before
/// task `i` starts.
pub struct DagSpec {
    /// Predecessor lists, one per task.
    pub preds: Vec<Vec<usize>>,
    /// The work of each task.
    pub tasks: Vec<Box<dyn FnOnce() + Send + 'static>>,
}

impl DagSpec {
    /// Build a DAG where task `i` sleeps `durations[i]`.
    pub fn sleeping(preds: Vec<Vec<usize>>, durations: Vec<Duration>) -> Self {
        assert_eq!(
            preds.len(),
            durations.len(),
            "preds/durations length mismatch"
        );
        let tasks = durations
            .into_iter()
            .map(|d| Box::new(move || std::thread::sleep(d)) as Box<dyn FnOnce() + Send>)
            .collect();
        Self { preds, tasks }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the DAG has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

/// Measured outcome of a DAG execution.
#[derive(Debug, Clone)]
pub struct DagRun {
    /// Per-task finish offsets from the run start.
    pub finish: Vec<Duration>,
    /// Wall-clock time from start to last finish.
    pub makespan: Duration,
}

/// Execute `dag` on `pool`, respecting dependencies, and measure finishes.
///
/// # Panics
/// Panics if the predecessor lists contain a cycle (no task ever becomes
/// ready) or reference out-of-range tasks.
pub fn run_dag(pool: &ActorPool, dag: DagSpec) -> DagRun {
    let n = dag.len();
    if n == 0 {
        return DagRun {
            finish: Vec::new(),
            makespan: Duration::ZERO,
        };
    }
    for preds in &dag.preds {
        for &p in preds {
            assert!(p < n, "predecessor index out of range");
        }
    }

    // Successor lists + indegrees.
    let mut succ = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for (i, preds) in dag.preds.iter().enumerate() {
        indeg[i] = preds.len();
        for &p in preds {
            succ[p].push(i);
        }
    }

    let (done_tx, done_rx) = unbounded::<(usize, Instant)>();
    let start = Instant::now();
    let mut tasks: Vec<Option<Box<dyn FnOnce() + Send>>> =
        dag.tasks.into_iter().map(Some).collect();

    let submit = |i: usize, tasks: &mut Vec<Option<Box<dyn FnOnce() + Send>>>| {
        let work = tasks[i].take().expect("task submitted twice");
        let tx = done_tx.clone();
        let _ = pool.submit(move || {
            work();
            let _ = tx.send((i, Instant::now()));
        });
    };

    let mut remaining = n;
    for (i, &d) in indeg.iter().enumerate() {
        if d == 0 {
            submit(i, &mut tasks);
        }
    }

    let mut finish = vec![Duration::ZERO; n];
    while remaining > 0 {
        let (i, at) = done_rx
            .recv()
            .expect("DAG execution stalled: cyclic dependencies or worker panic");
        finish[i] = at.duration_since(start);
        remaining -= 1;
        for &s in &succ[i].clone() {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                submit(s, &mut tasks);
            }
        }
    }

    let makespan = finish.iter().cloned().max().unwrap_or(Duration::ZERO);
    DagRun { finish, makespan }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn independent_tasks_run_in_parallel() {
        let pool = ActorPool::new(4);
        let dag = DagSpec::sleeping(vec![vec![]; 4], vec![ms(40); 4]);
        let run = run_dag(&pool, dag);
        assert!(
            run.makespan < ms(120),
            "parallel run took {:?}",
            run.makespan
        );
        assert!(run.makespan >= ms(38));
    }

    #[test]
    fn chain_runs_serially() {
        let pool = ActorPool::new(4);
        let dag = DagSpec::sleeping(vec![vec![], vec![0], vec![1]], vec![ms(20); 3]);
        let run = run_dag(&pool, dag);
        assert!(run.makespan >= ms(55), "chain took only {:?}", run.makespan);
        // Monotone finishes along the chain.
        assert!(run.finish[0] <= run.finish[1] && run.finish[1] <= run.finish[2]);
    }

    #[test]
    fn diamond_joins_correctly() {
        let pool = ActorPool::new(2);
        // 0 → {1,2} → 3
        let dag = DagSpec::sleeping(vec![vec![], vec![0], vec![0], vec![1, 2]], vec![ms(15); 4]);
        let run = run_dag(&pool, dag);
        assert!(run.finish[3] >= run.finish[1].max(run.finish[2]));
        assert!(run.makespan >= ms(42)); // three levels of 15 ms
    }

    #[test]
    fn pool_width_throttles_parallel_level() {
        // 3 independent 30 ms tasks on 1 worker: strictly serial ≥ 90 ms.
        let pool = ActorPool::new(1);
        let dag = DagSpec::sleeping(vec![vec![]; 3], vec![ms(30); 3]);
        let run = run_dag(&pool, dag);
        assert!(run.makespan >= ms(85), "took {:?}", run.makespan);
    }

    #[test]
    fn empty_dag() {
        let pool = ActorPool::new(1);
        let run = run_dag(&pool, DagSpec::sleeping(vec![], vec![]));
        assert_eq!(run.makespan, Duration::ZERO);
    }
}
