//! The Static baseline (§5.3): one fixed knob configuration throughout.
//!
//! For a given machine the achievable operating point is the most
//! qualitative configuration that the machine can sustain in real time —
//! exactly what the paper's "no buffering, no cloud" ablation variant (1a)
//! reduces Skyscraper to.

use skyscraper::{KnobConfig, Workload};
use vetl_video::{ContentState, Segment};

use crate::BaselineOutcome;

/// Pick the best static configuration for a cluster of `cores`: the
/// highest-quality configuration whose **worst-case** work rate over
/// `samples` fits the cluster throughput.
///
/// Peak provisioning is the defining property of the static baseline: with
/// no buffer and no cloud, the fixed configuration must process even the
/// busiest content in real time — which is why static quality on small
/// machines is low (§5.3) and why Skyscraper's buffering/bursting pays.
pub fn best_static_config<W: Workload + ?Sized>(
    workload: &W,
    samples: &[ContentState],
    cores: f64,
) -> KnobConfig {
    assert!(!samples.is_empty(), "need sample contents");
    let space = workload.config_space();
    let mut best: Option<(KnobConfig, f64)> = None;
    for config in space.iter() {
        let peak_rate = samples
            .iter()
            .map(|s| workload.work_rate(&config, s))
            .fold(0.0f64, f64::max);
        if peak_rate > cores {
            continue;
        }
        let mean_q = samples
            .iter()
            .map(|s| workload.true_quality(&config, s))
            .sum::<f64>()
            / samples.len() as f64;
        let better = best.as_ref().is_none_or(|(_, q)| mean_q > *q);
        if better {
            best = Some((config, mean_q));
        }
    }
    best.map(|(c, _)| c).unwrap_or_else(|| space.min_config())
}

/// Process every segment with `config`; report quality and work.
pub fn run_static<W: Workload + ?Sized>(
    workload: &W,
    config: &KnobConfig,
    segments: &[Segment],
) -> BaselineOutcome {
    let mut quality = 0.0;
    let mut work = 0.0;
    for seg in segments {
        quality += workload.true_quality(config, &seg.content);
        work += workload.work(config, &seg.content);
    }
    BaselineOutcome {
        mean_quality: quality / segments.len().max(1) as f64,
        work_core_secs: work,
        cloud_usd: 0.0,
        crashed: false,
        crashed_at_secs: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vetl_video::{ContentParams, Recording, SyntheticCamera};
    use vetl_workloads::CovidWorkload;

    fn data() -> (CovidWorkload, Vec<Segment>) {
        let w = CovidWorkload::new();
        let mut cam = SyntheticCamera::new(ContentParams::shopping_street(3), 2.0);
        let rec = Recording::record(&mut cam, 6.0 * 3_600.0);
        (w, rec.segments().to_vec())
    }

    #[test]
    fn bigger_machines_pick_better_configs() {
        let (w, segs) = data();
        let samples: Vec<ContentState> = segs.iter().step_by(600).map(|s| s.content).collect();
        let small = best_static_config(&w, &samples, 4.0);
        let large = best_static_config(&w, &samples, 60.0);
        let q = |c: &KnobConfig| samples.iter().map(|s| w.true_quality(c, s)).sum::<f64>();
        assert!(q(&large) > q(&small), "60 cores must beat 4 cores");
        // And the large config costs more.
        let work = |c: &KnobConfig| samples.iter().map(|s| w.work(c, s)).sum::<f64>();
        assert!(work(&large) > work(&small));
    }

    #[test]
    fn static_run_reports_quality_and_work() {
        let (w, segs) = data();
        let cheap = w.config_space().min_config();
        let out = run_static(&w, &cheap, &segs);
        assert!(out.mean_quality > 0.0 && out.mean_quality <= 1.0);
        assert!(out.work_core_secs > 0.0);
        assert!(!out.crashed);
    }

    #[test]
    fn infeasible_capacity_falls_back_to_cheapest() {
        let (w, segs) = data();
        let samples: Vec<ContentState> = segs.iter().take(5).map(|s| s.content).collect();
        let c = best_static_config(&w, &samples, 0.0);
        assert_eq!(c, w.config_space().min_config());
    }
}
