//! VideoStorm\* (Appendix G): query-load-adaptive knob tuning, content
//! agnostic.
//!
//! VideoStorm (NSDI'17) tunes knobs to multiplex *concurrently running
//! queries*; with a static V-ETL job there is nothing to adapt to. Its lag
//! awareness lets it exploit the buffer once — it fills the buffer early
//! with the most qualitative configuration, then settles on the best
//! configuration that runs in real time, matching the static baseline from
//! then on (Appendix G's analysis of Fig. 19, including the "lucky first
//! peak" effect on MOSEI-HIGH).

use skyscraper::{KnobConfig, Workload};
use vetl_sim::{Backlog, HardwareSpec};
use vetl_video::{ContentState, Segment};

use crate::BaselineOutcome;

/// Run VideoStorm\* over `segments`.
///
/// `samples` provide the content-agnostic average profile VideoStorm uses
/// to rank configurations (it never looks at the live content).
pub fn run_videostorm<W: Workload + ?Sized>(
    workload: &W,
    segments: &[Segment],
    samples: &[ContentState],
    hardware: &HardwareSpec,
) -> BaselineOutcome {
    assert!(!segments.is_empty(), "need segments");
    assert!(!samples.is_empty(), "need profiling samples");
    let seg_len = workload.segment_len();
    let capacity_per_seg = hardware.cluster.throughput() * seg_len;

    // Content-agnostic average quality / work per configuration.
    let space = workload.config_space();
    let mut profiles: Vec<(KnobConfig, f64, f64)> = space
        .iter()
        .map(|c| {
            let q = samples
                .iter()
                .map(|s| workload.true_quality(&c, s))
                .sum::<f64>()
                / samples.len() as f64;
            let w =
                samples.iter().map(|s| workload.work(&c, s)).sum::<f64>() / samples.len() as f64;
            (c, q, w)
        })
        .collect();
    profiles.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite quality"));
    let best_overall = profiles[0].clone();
    let best_realtime = profiles
        .iter()
        .find(|(_, _, w)| *w <= capacity_per_seg)
        .cloned()
        .unwrap_or_else(|| profiles.last().expect("non-empty").clone());

    let mut backlog = Backlog::new();
    let mut quality = 0.0;
    let mut work = 0.0;
    for seg in segments {
        // Lag-aware, content-agnostic: use the best configuration while the
        // buffer still has headroom, else the best real-time one.
        let headroom_ok = backlog.bytes() + 2.0 * seg.bytes <= hardware.buffer_bytes;
        let config = if headroom_ok {
            &best_overall.0
        } else {
            &best_realtime.0
        };
        let w_seg = workload.work(config, &seg.content);
        work += w_seg;
        quality += workload.true_quality(config, &seg.content);
        backlog.push(seg.bytes, w_seg);
        let _ = backlog.process(capacity_per_seg);
    }

    BaselineOutcome {
        mean_quality: quality / segments.len() as f64,
        work_core_secs: work,
        cloud_usd: 0.0,
        crashed: false,
        crashed_at_secs: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vetl_video::{ContentParams, Recording, SyntheticCamera};
    use vetl_workloads::CovidWorkload;

    fn stream(hours: f64) -> Vec<Segment> {
        let mut cam = SyntheticCamera::new(ContentParams::shopping_street(5), 2.0);
        Recording::record(&mut cam, hours * 3_600.0)
            .segments()
            .to_vec()
    }

    #[test]
    fn videostorm_never_overflows() {
        let w = CovidWorkload::new();
        let segs = stream(8.0);
        let samples: Vec<ContentState> = segs.iter().step_by(900).map(|s| s.content).collect();
        let hw = HardwareSpec::with_cores(8).with_buffer(1e9);
        let out = run_videostorm(&w, &segs, &samples, &hw);
        assert!(!out.crashed);
        assert!(out.mean_quality > 0.2);
    }

    #[test]
    fn matches_static_after_buffer_fills() {
        // On a small machine the buffer fills quickly; long-run quality must
        // land near the best static real-time configuration's quality.
        let w = CovidWorkload::new();
        let segs = stream(12.0);
        let samples: Vec<ContentState> = segs.iter().step_by(900).map(|s| s.content).collect();
        let hw = HardwareSpec::with_cores(4).with_buffer(1e8);
        let vs = run_videostorm(&w, &segs, &samples, &hw);
        let static_cfg = crate::static_baseline::best_static_config(&w, &samples, 4.0);
        let st = crate::static_baseline::run_static(&w, &static_cfg, &segs);
        assert!(
            (vs.mean_quality - st.mean_quality).abs() < 0.12,
            "VideoStorm* {} should be close to static {}",
            vs.mean_quality,
            st.mean_quality
        );
    }
}
