//! The Optimum oracle (§5.4, baseline 2c) and the greedy multiple-choice
//! knapsack it is built on.
//!
//! "The optimum baseline fully leverages the ground truth to always choose
//! the optimal knob configuration. Specifically, given the performance of
//! each knob configuration beforehand, it uses the greedy 0-1 knapsack
//! approximation to choose knob configurations that maximize quality under a
//! certain budget."
//!
//! [`greedy_mckp`] is the reusable core: every item (segment) starts at its
//! cheapest candidate; candidates are reduced to their **concave efficiency
//! frontier** (upper convex hull), whose marginal efficiencies decrease
//! along the frontier; upgrades are then applied globally in decreasing
//! Δvalue/Δweight order until the budget runs out. The idealized system of
//! Appendix B.1 reuses it with *predicted* values.

use skyscraper::{KnobConfig, Workload};
use vetl_video::Segment;

use crate::BaselineOutcome;

/// One upgrade step on an item's efficiency frontier.
#[derive(Debug, Clone, Copy)]
struct Upgrade {
    item: u32,
    to: u32,
    dv: f64,
    dw: f64,
}

/// Reduce candidate `(weight, value)` points to the concave frontier,
/// keeping the original candidate indices.
fn concave_frontier(points: &[(f64, f64)]) -> Vec<(usize, f64, f64)> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[a]
            .0
            .partial_cmp(&points[b].0)
            .expect("finite weight")
            .then(points[b].1.partial_cmp(&points[a].1).expect("finite value"))
    });
    // Keep only strictly-improving values.
    let mut improving: Vec<(usize, f64, f64)> = Vec::new();
    for &i in &order {
        let (w, v) = points[i];
        if improving.last().is_none_or(|l| v > l.2 + 1e-12) {
            improving.push((i, w, v));
        }
    }
    // Upper-hull sweep: marginal efficiency must decrease along the hull.
    let mut hull: Vec<(usize, f64, f64)> = Vec::new();
    for p in improving {
        while hull.len() >= 2 {
            let a = hull[hull.len() - 2];
            let b = hull[hull.len() - 1];
            let eff_ab = (b.2 - a.2) / (b.1 - a.1).max(1e-12);
            let eff_bp = (p.2 - b.2) / (p.1 - b.1).max(1e-12);
            if eff_bp > eff_ab {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(p);
    }
    hull
}

/// Greedy multiple-choice knapsack.
///
/// `options[i]` lists candidate `(weight, value)` points for item `i`; one
/// candidate must be chosen per item. Returns the chosen candidate index per
/// item plus the total `(weight, value)` of the selection.
pub fn greedy_mckp(options: &[Vec<(f64, f64)>], budget: f64) -> (Vec<usize>, f64, f64) {
    assert!(
        options.iter().all(|o| !o.is_empty()),
        "every item needs candidates"
    );

    let mut upgrades: Vec<Upgrade> = Vec::new();
    let mut hulls: Vec<Vec<(usize, f64, f64)>> = Vec::with_capacity(options.len());
    let mut weight = 0.0;
    let mut value = 0.0;
    for (i, cands) in options.iter().enumerate() {
        let hull = concave_frontier(cands);
        weight += hull[0].1;
        value += hull[0].2;
        for t in 1..hull.len() {
            upgrades.push(Upgrade {
                item: i as u32,
                to: t as u32,
                dv: hull[t].2 - hull[t - 1].2,
                dw: hull[t].1 - hull[t - 1].1,
            });
        }
        hulls.push(hull);
    }

    // Global greedy in decreasing efficiency; per-item level order is
    // guaranteed by frontier concavity (ties resolved by level).
    upgrades.sort_by(|a, b| {
        let ea = a.dv / a.dw.max(1e-12);
        let eb = b.dv / b.dw.max(1e-12);
        eb.partial_cmp(&ea)
            .expect("finite efficiency")
            .then(a.to.cmp(&b.to))
    });
    let mut level = vec![0u32; options.len()];
    for u in upgrades {
        if level[u.item as usize] + 1 != u.to {
            continue; // an earlier upgrade was skipped for budget
        }
        if weight + u.dw > budget {
            continue;
        }
        weight += u.dw;
        value += u.dv;
        level[u.item as usize] = u.to;
    }

    let chosen: Vec<usize> = level
        .iter()
        .zip(hulls.iter())
        .map(|(&l, hull)| hull[l as usize].0)
        .collect();
    (chosen, weight, value)
}

/// Run the oracle: choose per-segment configurations from `configs`
/// maximizing total ground-truth quality under `work_budget` core-seconds.
pub fn run_optimum<W: Workload + ?Sized>(
    workload: &W,
    configs: &[KnobConfig],
    segments: &[Segment],
    work_budget: f64,
) -> BaselineOutcome {
    assert!(!configs.is_empty(), "need candidate configurations");
    assert!(!segments.is_empty(), "need segments");

    let options: Vec<Vec<(f64, f64)>> = segments
        .iter()
        .map(|seg| {
            configs
                .iter()
                .map(|c| {
                    (
                        workload.work(c, &seg.content),
                        workload.true_quality(c, &seg.content),
                    )
                })
                .collect()
        })
        .collect();
    let (_, weight, value) = greedy_mckp(&options, work_budget);

    BaselineOutcome {
        mean_quality: value / segments.len() as f64,
        work_core_secs: weight,
        cloud_usd: 0.0,
        crashed: false,
        crashed_at_secs: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vetl_video::{ContentParams, Recording, SyntheticCamera};
    use vetl_workloads::CovidWorkload;

    fn setup(hours: f64) -> (CovidWorkload, Vec<KnobConfig>, Vec<Segment>) {
        let w = CovidWorkload::new();
        let mut cam = SyntheticCamera::new(ContentParams::shopping_street(5), 2.0);
        let segs = Recording::record(&mut cam, hours * 3_600.0)
            .segments()
            .to_vec();
        let configs: Vec<KnobConfig> = w.config_space().iter().collect();
        (w, configs, segs)
    }

    #[test]
    fn frontier_is_concave_and_keeps_indices() {
        let pts = vec![
            (1.0, 0.2),
            (2.0, 0.5),
            (3.0, 0.55),
            (4.0, 0.9),
            (10.0, 0.95),
        ];
        let hull = concave_frontier(&pts);
        for w in hull.windows(3) {
            let e1 = (w[1].2 - w[0].2) / (w[1].1 - w[0].1);
            let e2 = (w[2].2 - w[1].2) / (w[2].1 - w[1].1);
            assert!(e2 <= e1 + 1e-12, "non-concave frontier {hull:?}");
        }
        assert_eq!(hull[0].0, 0);
        assert_eq!(hull.last().unwrap().0, 4);
    }

    #[test]
    fn mckp_matches_brute_force_on_small_instance() {
        // 3 items × 3 candidates; budget 6.
        let options = vec![
            vec![(1.0, 1.0), (2.0, 3.0), (4.0, 4.0)],
            vec![(1.0, 0.5), (3.0, 2.5)],
            vec![(1.0, 2.0), (2.0, 2.2)],
        ];
        let (chosen, w, v) = greedy_mckp(&options, 6.0);
        assert!(w <= 6.0 + 1e-9);
        assert_eq!(chosen.len(), 3);
        // Brute force.
        let mut best = 0.0f64;
        for a in 0..3 {
            for b in 0..2 {
                for c in 0..2 {
                    let weight = options[0][a].0 + options[1][b].0 + options[2][c].0;
                    let value = options[0][a].1 + options[1][b].1 + options[2][c].1;
                    if weight <= 6.0 {
                        best = best.max(value);
                    }
                }
            }
        }
        // Greedy on concave frontiers is near-optimal; allow a small gap.
        assert!(v >= 0.85 * best, "greedy {v} vs brute {best}");
    }

    #[test]
    fn respects_the_budget() {
        let (w, configs, segs) = setup(2.0);
        let budget = 4.0 * segs.len() as f64 * 2.0; // 4 cores sustained
        let out = run_optimum(&w, &configs, &segs, budget);
        assert!(out.work_core_secs <= budget + 1e-6);
        assert!(out.mean_quality > 0.0);
    }

    #[test]
    fn more_budget_more_quality() {
        let (w, configs, segs) = setup(2.0);
        let seg_total = segs.len() as f64 * 2.0;
        let q1 = run_optimum(&w, &configs, &segs, 0.5 * seg_total).mean_quality;
        let q4 = run_optimum(&w, &configs, &segs, 4.0 * seg_total).mean_quality;
        let q40 = run_optimum(&w, &configs, &segs, 40.0 * seg_total).mean_quality;
        assert!(q4 > q1, "{q4} vs {q1}");
        assert!(q40 >= q4, "{q40} vs {q4}");
    }

    #[test]
    fn unlimited_budget_reaches_best_config_quality() {
        let (w, configs, segs) = setup(1.0);
        let out = run_optimum(&w, &configs, &segs, f64::INFINITY);
        let best = w.config_space().max_config();
        let best_q: f64 = segs
            .iter()
            .map(|s| w.true_quality(&best, &s.content))
            .sum::<f64>()
            / segs.len() as f64;
        assert!(
            out.mean_quality >= best_q - 1e-6,
            "{} vs {}",
            out.mean_quality,
            best_q
        );
    }

    #[test]
    fn oracle_beats_static_at_equal_work() {
        let (w, configs, segs) = setup(3.0);
        let samples: Vec<_> = segs.iter().step_by(300).map(|s| s.content).collect();
        let static_cfg = crate::static_baseline::best_static_config(&w, &samples, 4.0);
        let st = crate::static_baseline::run_static(&w, &static_cfg, &segs);
        let oracle = run_optimum(&w, &configs, &segs, st.work_core_secs);
        assert!(
            oracle.mean_quality >= st.mean_quality - 1e-9,
            "oracle {} must be ≥ static {} at the same work",
            oracle.mean_quality,
            st.mean_quality
        );
    }
}
