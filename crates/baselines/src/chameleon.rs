//! Chameleon\* (§5.3): content-adaptive profiling-based tuning with a
//! bolted-on buffer.
//!
//! Chameleon (Jiang et al., SIGCOMM'18) periodically re-profiles a leader
//! set of knob configurations *by running them on the live video* and then
//! uses the best-performing affordable configuration until the next
//! profiling event. It assumes the hardware can process every configuration
//! in real time ("peak provisioning") and is agnostic to lag. The paper's
//! adaptation equips it with a buffer so it can run on cheap machines, but:
//!
//! * the periodic profiling adds significant work (the paper: "Chameleon*
//!   suffered from large profiling overheads"), and
//! * nothing bounds the backlog, so the unmanaged buffer can overflow — the
//!   run **crashes** (the paper only reports non-crashing setups).

use rand::rngs::StdRng;
use rand::SeedableRng;

use skyscraper::{KnobConfig, Workload};
use vetl_sim::{Backlog, HardwareSpec};
use vetl_video::Segment;

use crate::BaselineOutcome;

/// Options for a Chameleon\* run.
#[derive(Debug, Clone)]
pub struct ChameleonOptions {
    /// Seconds between profiling events (Chameleon's profiling interval).
    pub profile_period_secs: f64,
    /// Number of candidate configurations profiled per event (the "leader
    /// set").
    pub candidates: usize,
    /// Capacity headroom factor when judging a configuration affordable.
    pub headroom: f64,
    /// Reported-quality noise seed.
    pub seed: u64,
}

impl Default for ChameleonOptions {
    fn default() -> Self {
        Self {
            profile_period_secs: 30.0,
            candidates: 8,
            headroom: 0.9,
            seed: 99,
        }
    }
}

/// Run Chameleon\* over `segments` on `hardware`.
///
/// The candidate set spans the work spectrum of the *full* configuration
/// space (Chameleon has no offline Pareto filtering — that is part of why
/// its profiling is expensive).
pub fn run_chameleon<W: Workload + ?Sized>(
    workload: &W,
    segments: &[Segment],
    hardware: &HardwareSpec,
    opts: &ChameleonOptions,
) -> BaselineOutcome {
    assert!(!segments.is_empty(), "need segments");
    let seg_len = workload.segment_len();
    let capacity_per_seg = hardware.cluster.throughput() * seg_len;
    let mut rng = StdRng::seed_from_u64(opts.seed);

    // Candidate set: configurations evenly spaced across the work spectrum.
    let mut all: Vec<KnobConfig> = workload.config_space().iter().collect();
    let reference = segments[0].content;
    all.sort_by(|a, b| {
        workload
            .work(a, &reference)
            .partial_cmp(&workload.work(b, &reference))
            .expect("finite work")
    });
    let k = opts.candidates.min(all.len()).max(1);
    let candidates: Vec<KnobConfig> = (0..k)
        .map(|i| all[i * (all.len() - 1) / (k - 1).max(1)].clone())
        .collect();

    let profile_every = ((opts.profile_period_secs / seg_len).round() as usize).max(1);
    let mut backlog = Backlog::new();
    let mut current = candidates[0].clone();
    let mut quality = 0.0;
    let mut work = 0.0;

    for (i, seg) in segments.iter().enumerate() {
        // ---- Periodic profiling: run every candidate on this segment. ----
        if i % profile_every == 0 {
            let mut profile_work = 0.0;
            let quals: Vec<(f64, f64)> = candidates
                .iter()
                .map(|cand| {
                    let w_cand = workload.work(cand, &seg.content);
                    // Profiling work is real work performed on the stream.
                    profile_work += w_cand;
                    let q = workload.reported_quality(cand, &seg.content, &mut rng);
                    (w_cand, q)
                })
                .collect();
            backlog.push(0.0, profile_work);
            work += profile_work;
            // Chameleon budgets against the capacity left after its own
            // (amortized) profiling overhead, but stays agnostic to the
            // backlog it has already accumulated — that lag-blindness is
            // what eventually overflows the unmanaged buffer.
            let amortized = profile_work / profile_every as f64;
            let budget = (capacity_per_seg - amortized) * opts.headroom;
            let mut best: Option<(usize, f64)> = None;
            for (ci, &(w_cand, q)) in quals.iter().enumerate() {
                if w_cand <= budget {
                    let better = best.is_none_or(|(_, bq)| q > bq);
                    if better {
                        best = Some((ci, q));
                    }
                }
            }
            if let Some((ci, _)) = best {
                current = candidates[ci].clone();
            }
        }

        // ---- Process the segment with the current configuration. ----
        let w_seg = workload.work(&current, &seg.content);
        work += w_seg;
        quality += workload.true_quality(&current, &seg.content);
        backlog.push(seg.bytes, w_seg);
        let _ = backlog.process(capacity_per_seg);

        // ---- Unmanaged buffer: overflow crashes the system. ----
        if backlog.bytes() > hardware.buffer_bytes {
            return BaselineOutcome {
                mean_quality: quality / (i + 1) as f64,
                work_core_secs: work,
                cloud_usd: 0.0,
                crashed: true,
                crashed_at_secs: Some(seg.start().as_secs()),
            };
        }
    }

    BaselineOutcome {
        mean_quality: quality / segments.len() as f64,
        work_core_secs: work,
        cloud_usd: 0.0,
        crashed: false,
        crashed_at_secs: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vetl_video::{ContentParams, Recording, SyntheticCamera};
    use vetl_workloads::CovidWorkload;

    fn stream(hours: f64) -> Vec<Segment> {
        let mut cam = SyntheticCamera::new(ContentParams::shopping_street(5), 2.0);
        Recording::record(&mut cam, hours * 3_600.0)
            .segments()
            .to_vec()
    }

    #[test]
    fn chameleon_adapts_and_reports_quality() {
        let w = CovidWorkload::new();
        let segs = stream(4.0);
        let out = run_chameleon(
            &w,
            &segs,
            &HardwareSpec::with_cores(16),
            &ChameleonOptions::default(),
        );
        assert!(out.mean_quality > 0.3);
        assert!(out.work_core_secs > 0.0);
    }

    #[test]
    fn profiling_overhead_is_charged() {
        // With more frequent profiling, total work must grow.
        let w = CovidWorkload::new();
        let segs = stream(2.0);
        let hw = HardwareSpec::with_cores(16);
        let rare = run_chameleon(
            &w,
            &segs,
            &hw,
            &ChameleonOptions {
                profile_period_secs: 600.0,
                ..Default::default()
            },
        );
        let frequent = run_chameleon(
            &w,
            &segs,
            &hw,
            &ChameleonOptions {
                profile_period_secs: 10.0,
                ..Default::default()
            },
        );
        assert!(
            frequent.work_core_secs > rare.work_core_secs * 1.2,
            "profiling every 10 s ({}) must cost well over every 600 s ({})",
            frequent.work_core_secs,
            rare.work_core_secs
        );
    }

    #[test]
    fn tiny_buffer_makes_chameleon_crash() {
        let w = CovidWorkload::new();
        let segs = stream(6.0);
        let hw = HardwareSpec::with_cores(4).with_buffer(1e6); // 1 MB buffer
        let out = run_chameleon(&w, &segs, &hw, &ChameleonOptions::default());
        assert!(
            out.crashed,
            "lag-agnostic tuning must overflow a tiny buffer"
        );
        assert!(out.crashed_at_secs.is_some());
    }

    #[test]
    fn big_machine_and_buffer_survive() {
        let w = CovidWorkload::new();
        let segs = stream(3.0);
        let hw = HardwareSpec::with_cores(60).with_buffer(8e9);
        let out = run_chameleon(&w, &segs, &hw, &ChameleonOptions::default());
        assert!(!out.crashed);
    }
}
