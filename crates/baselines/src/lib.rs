//! # vetl-baselines — the systems Skyscraper is compared against
//!
//! * [`static_baseline`] — processing the whole stream with one fixed knob
//!   configuration (the *Static* baseline of §5.3; also ablation variant 1a
//!   "no buffering, no cloud").
//! * [`chameleon`] — **Chameleon\*** (§5.3): the content-adaptive tuner of
//!   Jiang et al. adapted with a buffer. It periodically *profiles*
//!   candidate configurations by running them (the overhead the paper calls
//!   out), assumes peak provisioning, is lag-agnostic, and therefore crashes
//!   when its unmanaged buffer overflows.
//! * [`videostorm`] — **VideoStorm\*** (Appendix G): query-load-adaptive
//!   only; content-agnostic. Fills the buffer early, then settles on the
//!   most qualitative configuration that runs in real time.
//! * [`oracle`] — the **Optimum** baseline (§5.4): full ground-truth
//!   knowledge, greedy multiple-choice-knapsack assignment of
//!   configurations to segments under a work budget.

pub mod chameleon;
pub mod oracle;
pub mod static_baseline;
pub mod videostorm;

pub use chameleon::{run_chameleon, ChameleonOptions};
pub use oracle::{greedy_mckp, run_optimum};
pub use static_baseline::{best_static_config, run_static};
pub use videostorm::run_videostorm;

/// Common outcome shape for baseline runs.
#[derive(Debug, Clone, Default)]
pub struct BaselineOutcome {
    /// Mean ground-truth quality over processed segments, in `[0, 1]`.
    pub mean_quality: f64,
    /// Total work performed, reference-core-seconds.
    pub work_core_secs: f64,
    /// Cloud dollars spent (baselines other than the oracle use none).
    pub cloud_usd: f64,
    /// Whether the run crashed with a buffer overflow (Chameleon* only).
    pub crashed: bool,
    /// Stream time of the crash, if any.
    pub crashed_at_secs: Option<f64>,
}
