//! # vetl-net — the network ingest front-end
//!
//! A framed socket server (TCP + Unix-domain) and client over the sharded
//! [`skyscraper::IngestRuntime`], turning the in-process serving tier
//! into something camera fleets can actually feed. The wire protocol —
//! defined next to the engine in [`skyscraper::serve::proto`] — is a
//! versioned, length-prefixed binary exchange reusing the checksummed
//! framing discipline of the knowledge-base codec and the runtime
//! journal, with segments encoded by the exact functions the write-ahead
//! log uses.
//!
//! The design goal is the same determinism contract the runtime already
//! holds: **outcomes served over a socket are bitwise identical to
//! in-process ingestion of the same segment schedule**, for any client
//! count, any shard count, and any number of retryable-rejection
//! re-feeds. The server adds no queues of its own — backpressure is the
//! runtime's bounded mailboxes, surfaced to clients as typed retryable
//! rejections with an epoch hint.
//!
//! * [`NetServer`] — thread-per-connection front-end over one
//!   [`skyscraper::serve::IngestService`]; graceful drain on shutdown
//!   (barrier-settle, then per-stream `Outcome` flush); malformed, torn,
//!   or checksum-bad frames answered typed and the connection closed —
//!   never a panic, never a silently dropped segment.
//! * [`NetClient`] — connect/retry/backoff, plus a
//!   [`NetClient::push_batch`] that transparently re-feeds the
//!   unacknowledged suffix on retryable rejections.

mod client;
mod frame;
mod server;

pub use client::{NetClient, NetClientConfig, PushStats, ServerHello, StreamResult};
pub use frame::{write_frame, Endpoint, NetError, MAX_FRAME_BYTES};
pub use server::{NetServer, ServeReport, ServerConfig, ServerHandle};
