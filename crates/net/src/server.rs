//! The framed socket server: TCP + Unix listeners over one
//! [`IngestService`].
//!
//! ## Threading
//!
//! The runtime is single-writer, so the server keeps **one** service loop
//! and fans connections into it:
//!
//! * one non-blocking **accept loop** per listener (TCP, Unix), polling a
//!   stop flag;
//! * per connection, a **reader thread** (decodes frames into typed
//!   events) and a **writer thread** (serializes replies) — requests and
//!   disconnects funnel through one mpsc channel into
//! * the **service loop**, which owns the [`IngestService`] and therefore
//!   the runtime. Backpressure is the runtime's own: a full mailbox
//!   rejects the push typed and the client backs off — the server never
//!   buffers segments itself, so a slow joint plan cannot hide unbounded
//!   queues in the front-end.
//!
//! ## Failure containment
//!
//! A malformed, torn, or checksum-bad frame is answered with a typed
//! [`Reply::Error`] and a connection close; the runtime never observes
//! the bytes. A disconnect mid-epoch auto-closes the connection's streams
//! (in-band markers), so the next joint plan redistributes their cores
//! and wallet share instead of waiting on a ghost. Shutdown drains
//! gracefully: the runtime settles every stream across the final barrier
//! and each surviving connection receives the [`Reply::Outcome`] of every
//! stream it opened.

use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use skyscraper::obs::{CounterId, HistId};
use skyscraper::serve::proto::{Reply, Request};
use skyscraper::serve::IngestService;
use skyscraper::{MultiOutcome, SkyError, StreamId};

use crate::frame::{
    read_frame, read_preamble, write_frame, write_preamble, FrameIn, NetError, Sock,
    MAX_FRAME_BYTES,
};

/// Server configuration. At least one of `tcp`/`unix` must be set.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// TCP bind address (e.g. `127.0.0.1:0`), if serving TCP.
    pub tcp: Option<String>,
    /// Unix-domain socket path, if serving Unix. A stale socket file at
    /// the path is removed before binding.
    pub unix: Option<PathBuf>,
    /// Server identity echoed in `Hello` replies.
    pub server_name: String,
    /// Socket read timeout — the poll tick at which blocked reads check
    /// the stop flag. Also the tick granularity of `stall_ticks`.
    pub read_timeout: Duration,
    /// Socket write timeout; a write that stalls this long tears the
    /// connection down.
    pub write_timeout: Duration,
    /// Cap on a single frame body.
    pub max_frame_bytes: usize,
    /// Consecutive idle read ticks a *partially received* frame may stall
    /// before the connection is declared torn (`read_timeout` each).
    pub stall_ticks: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            tcp: None,
            unix: None,
            server_name: "skyscraper".into(),
            read_timeout: Duration::from_millis(25),
            write_timeout: Duration::from_secs(5),
            max_frame_bytes: MAX_FRAME_BYTES,
            stall_ticks: 200,
        }
    }
}

/// What a completed [`NetServer::serve`] run observed.
#[derive(Debug)]
pub struct ServeReport {
    /// The drained joint outcome — bitwise identical to an in-process
    /// [`skyscraper::IngestRuntime`] run over the same segment schedule.
    pub outcome: MultiOutcome,
    /// Connections accepted over the server's lifetime.
    pub connections: usize,
    /// Connections dropped for framing/protocol violations.
    pub malformed: usize,
    /// Streams auto-closed because their connection vanished mid-run.
    pub autoclosed_streams: usize,
}

/// Stop signal for a running server (e.g. from a ctrl-c handler). The
/// in-band [`Request::Shutdown`] is the protocol-level equivalent.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Ask the server to stop accepting work and drain.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

/// A bound (not yet serving) socket server.
pub struct NetServer {
    cfg: ServerConfig,
    tcp: Option<TcpListener>,
    unix: Option<UnixListener>,
    stop: Arc<AtomicBool>,
}

enum Event {
    Connected { conn: u64, tx: Sender<Reply> },
    Request { conn: u64, req: Request },
    Malformed { conn: u64, detail: String },
    Gone { conn: u64 },
}

struct ConnState {
    tx: Sender<Reply>,
    /// Slots this connection opened (kept past close for outcome flush).
    streams: Vec<usize>,
}

impl NetServer {
    /// Bind the configured listeners without serving yet.
    pub fn bind(cfg: ServerConfig) -> Result<Self, NetError> {
        if cfg.tcp.is_none() && cfg.unix.is_none() {
            return Err(NetError::Io {
                op: "bind",
                detail: "server config needs a TCP address or a Unix socket path".into(),
            });
        }
        let io_err = |op: &'static str| {
            move |e: std::io::Error| NetError::Io {
                op,
                detail: e.to_string(),
            }
        };
        let tcp = match &cfg.tcp {
            Some(addr) => {
                let l = TcpListener::bind(addr.as_str()).map_err(io_err("tcp bind"))?;
                l.set_nonblocking(true).map_err(io_err("tcp bind"))?;
                Some(l)
            }
            None => None,
        };
        let unix = match &cfg.unix {
            Some(path) => {
                if path.exists() {
                    std::fs::remove_file(path).map_err(io_err("unix bind"))?;
                }
                let l = UnixListener::bind(path).map_err(io_err("unix bind"))?;
                l.set_nonblocking(true).map_err(io_err("unix bind"))?;
                Some(l)
            }
            None => None,
        };
        Ok(Self {
            cfg,
            tcp,
            unix,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound TCP address (useful with a `:0` bind).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// The bound Unix socket path.
    pub fn unix_path(&self) -> Option<&Path> {
        self.cfg.unix.as_deref()
    }

    /// A stop handle usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stop: self.stop.clone(),
        }
    }

    /// Serve connections until a [`Request::Shutdown`] arrives or
    /// [`ServerHandle::stop`] fires, then drain and return the joint
    /// outcome. Blocks the calling thread for the server's lifetime.
    pub fn serve(self, service: IngestService<'_>) -> Result<ServeReport, NetError> {
        let NetServer {
            cfg,
            tcp,
            unix,
            stop,
        } = self;
        let (ev_tx, ev_rx) = channel::<Event>();
        let next_conn = Arc::new(AtomicU64::new(1));
        let (cfg, stop) = (&cfg, &*stop);
        let result = std::thread::scope(|s| {
            if let Some(l) = &tcp {
                let ev = ev_tx.clone();
                let ids = next_conn.clone();
                s.spawn(move || accept_loop(s, l, cfg, stop, ev, ids));
            }
            if let Some(l) = &unix {
                let ev = ev_tx.clone();
                let ids = next_conn.clone();
                s.spawn(move || accept_loop(s, l, cfg, stop, ev, ids));
            }
            // The loop owns the only other ev_tx clone; drop ours so a
            // fully stopped server cannot deadlock on its own channel.
            drop(ev_tx);
            service_loop(service, &cfg.server_name, ev_rx, stop)
        });
        if let Some(path) = &cfg.unix {
            let _ = std::fs::remove_file(path);
        }
        result
    }
}

/// Poll one listener, spawning reader/writer threads per accepted
/// connection. Generic over the listener family via [`ListenerLike`]
/// because `TcpListener` and `UnixListener` share no accept trait.
fn accept_loop<'scope, 'env, L>(
    s: &'scope std::thread::Scope<'scope, 'env>,
    listener: &'scope L,
    cfg: &'scope ServerConfig,
    stop: &'scope AtomicBool,
    ev_tx: Sender<Event>,
    next_conn: Arc<AtomicU64>,
) where
    L: ListenerLike,
{
    while !stop.load(Ordering::SeqCst) {
        match listener.accept_sock() {
            Ok(sock) => {
                let conn = next_conn.fetch_add(1, Ordering::SeqCst);
                if let Err(e) = setup_conn(s, sock, conn, cfg, stop, &ev_tx) {
                    // Setup failures (timeout config, clone) drop the
                    // connection before it ever reaches the service loop.
                    let _ = e;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// The two listener families behind one accept shape.
trait ListenerLike: Sync {
    fn accept_sock(&self) -> std::io::Result<Sock>;
}

impl ListenerLike for TcpListener {
    fn accept_sock(&self) -> std::io::Result<Sock> {
        self.accept().map(|(s, _)| Sock::Tcp(s))
    }
}

impl ListenerLike for UnixListener {
    fn accept_sock(&self) -> std::io::Result<Sock> {
        self.accept().map(|(s, _)| Sock::Unix(s))
    }
}

fn setup_conn<'scope>(
    s: &'scope std::thread::Scope<'scope, '_>,
    sock: Sock,
    conn: u64,
    cfg: &'scope ServerConfig,
    stop: &'scope AtomicBool,
    ev_tx: &Sender<Event>,
) -> std::io::Result<()> {
    // Accepted sockets can inherit the listener's non-blocking mode on
    // some platforms; reads must block up to the poll tick instead.
    match &sock {
        Sock::Tcp(t) => t.set_nonblocking(false)?,
        Sock::Unix(u) => u.set_nonblocking(false)?,
    }
    sock.set_read_timeout(cfg.read_timeout)?;
    sock.set_write_timeout(cfg.write_timeout)?;
    let writer_sock = sock.try_clone()?;
    let (reply_tx, reply_rx) = channel::<Reply>();
    // Connected is enqueued before the reader thread exists, so the
    // service loop always learns of the connection before its first
    // request.
    let _ = ev_tx.send(Event::Connected { conn, tx: reply_tx });
    let ev = ev_tx.clone();
    s.spawn(move || reader_thread(sock, conn, cfg, stop, ev));
    s.spawn(move || writer_thread(writer_sock, reply_rx));
    Ok(())
}

/// Decode frames into events until EOF, a violation, a shutdown request,
/// or the stop flag.
fn reader_thread(
    mut sock: Sock,
    conn: u64,
    cfg: &ServerConfig,
    stop: &AtomicBool,
    ev: Sender<Event>,
) {
    let keep = || !stop.load(Ordering::SeqCst);
    if let Err(e) = read_preamble(&mut sock, cfg.stall_ticks, keep) {
        let _ = match e {
            NetError::Closed | NetError::Timeout { .. } => ev.send(Event::Gone { conn }),
            other => ev.send(Event::Malformed {
                conn,
                detail: format!("preamble from {}: {other}", sock.peer_label()),
            }),
        };
        return;
    }
    loop {
        match read_frame(&mut sock, cfg.max_frame_bytes, cfg.stall_ticks, keep) {
            Ok(FrameIn::Eof) => {
                let _ = ev.send(Event::Gone { conn });
                return;
            }
            Ok(FrameIn::Frame(body)) => match Request::decode(&body) {
                Ok(req) => {
                    let is_shutdown = matches!(req, Request::Shutdown);
                    let _ = ev.send(Event::Request { conn, req });
                    if is_shutdown {
                        return;
                    }
                }
                Err(detail) => {
                    let _ = ev.send(Event::Malformed { conn, detail });
                    return;
                }
            },
            // Idle give-up only happens once the stop flag is set; the
            // service loop is already draining, no event needed.
            Err(NetError::Timeout { .. }) => return,
            Err(e) => {
                let _ = ev.send(Event::Malformed {
                    conn,
                    detail: e.to_string(),
                });
                return;
            }
        }
    }
}

/// Serialize replies until the service loop drops the sending side, then
/// shut the socket down (waking the reader if it is still blocked).
fn writer_thread(mut sock: Sock, rx: Receiver<Reply>) {
    let healthy = write_preamble(&mut sock).is_ok();
    if healthy {
        while let Ok(reply) = rx.recv() {
            if write_frame(&mut sock, &reply.encode()).is_err() {
                break;
            }
        }
    }
    sock.shutdown();
}

fn service_loop(
    mut service: IngestService<'_>,
    server_name: &str,
    ev_rx: Receiver<Event>,
    stop: &AtomicBool,
) -> Result<ServeReport, NetError> {
    let mut conns: HashMap<u64, ConnState> = HashMap::new();
    let mut connections = 0usize;
    let mut malformed = 0usize;
    let mut autoclosed = 0usize;

    while !stop.load(Ordering::SeqCst) {
        let ev = match ev_rx.recv_timeout(Duration::from_millis(20)) {
            Ok(ev) => ev,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        match ev {
            Event::Connected { conn, tx } => {
                connections += 1;
                conns.insert(
                    conn,
                    ConnState {
                        tx,
                        streams: Vec::new(),
                    },
                );
            }
            Event::Request { conn, req } => {
                if let Request::Shutdown = req {
                    if let Some(c) = conns.get(&conn) {
                        let _ = c.tx.send(Reply::ShuttingDown);
                    }
                    stop.store(true, Ordering::SeqCst);
                    break;
                }
                if let Some(violation) =
                    handle_request(&mut service, server_name, &mut conns, conn, req)
                {
                    malformed += 1;
                    close_conn(
                        &mut service,
                        &mut conns,
                        conn,
                        Some(violation),
                        &mut autoclosed,
                    );
                }
            }
            Event::Malformed { conn, detail } => {
                malformed += 1;
                close_conn(
                    &mut service,
                    &mut conns,
                    conn,
                    Some(detail),
                    &mut autoclosed,
                );
            }
            Event::Gone { conn } => {
                close_conn(&mut service, &mut conns, conn, None, &mut autoclosed);
            }
        }
    }
    stop.store(true, Ordering::SeqCst);

    // Drain: answer everything still queued with a terminal rejection,
    // settle the runtime, then flush each surviving connection's
    // outcomes.
    while let Ok(ev) = ev_rx.try_recv() {
        match ev {
            Event::Connected { conn, tx } => {
                connections += 1;
                conns.insert(
                    conn,
                    ConnState {
                        tx,
                        streams: Vec::new(),
                    },
                );
            }
            Event::Request { conn, .. } => {
                if let Some(c) = conns.get(&conn) {
                    let _ = c.tx.send(Reply::Rejected {
                        retryable: false,
                        reason: "server is draining".into(),
                        epoch: service.epoch() as u64,
                        accepted: 0,
                    });
                }
            }
            Event::Malformed { conn, .. } | Event::Gone { conn } => {
                conns.remove(&conn);
            }
        }
    }
    let outcome = service.drain().map_err(|e| NetError::Server {
        detail: e.to_string(),
    })?;
    for c in conns.values() {
        for &slot in &c.streams {
            if let Some(so) = outcome.streams.get(slot) {
                let _ = c.tx.send(Reply::Outcome {
                    stream: slot as u64,
                    workload_id: so.workload_id.clone(),
                    outcome: so.outcome.clone(),
                });
            }
        }
    }
    drop(conns); // closes every reply channel; writers flush and hang up
    Ok(ServeReport {
        outcome,
        connections,
        malformed,
        autoclosed_streams: autoclosed,
    })
}

/// Apply one request. Returns `Some(violation)` when the connection broke
/// protocol (unowned stream) and must be closed.
fn handle_request(
    service: &mut IngestService<'_>,
    server_name: &str,
    conns: &mut HashMap<u64, ConnState>,
    conn: u64,
    req: Request,
) -> Option<String> {
    let Some(c) = conns.get_mut(&conn) else {
        return None; // connection already torn down; drop the request
    };
    // Request service time, booked only when the runtime records; the
    // clock starts before dispatch so the histogram covers the whole
    // handler, not just the reply construction.
    let t_req = service.obs().is_some().then(Instant::now);
    let mut booked = false;
    let reply = match req {
        Request::Hello { client: _ } => Reply::Hello {
            server: server_name.to_string(),
            shards: service.shards() as u64,
            epoch: service.epoch() as u64,
        },
        Request::OpenStream {
            profile,
            name,
            options,
        } => match service.open(&profile, name, options) {
            Ok(id) => {
                c.streams.push(id.index());
                Reply::StreamOpened {
                    stream: id.index() as u64,
                }
            }
            Err(e) => service.rejection(&e),
        },
        Request::PushSegments {
            stream,
            base_seq,
            segs,
        } => {
            let slot = stream as usize;
            if !c.streams.contains(&slot) {
                return Some(format!(
                    "push to stream {stream} not owned by this connection"
                ));
            }
            match service.push_batch(StreamId::from_index(slot), &segs) {
                Ok(()) => Reply::Accepted {
                    stream,
                    from: base_seq,
                    to: base_seq + segs.len() as u64,
                },
                Err(e) => service.rejection(&e),
            }
        }
        Request::CloseStream { stream } => {
            let slot = stream as usize;
            if !c.streams.contains(&slot) {
                return Some(format!(
                    "close of stream {stream} not owned by this connection"
                ));
            }
            match service.close(StreamId::from_index(slot)) {
                Ok(()) => Reply::StreamClosed { stream },
                Err(e) => service.rejection(&e),
            }
        }
        Request::GetStats => {
            let m = service.metrics();
            Reply::Stats {
                shards: m.shards as u64,
                epoch: m.epoch as u64,
                joint_plans: m.joint_plans as u64,
                active_streams: m.streams.iter().filter(|s| s.active).count() as u64,
                segments_processed: m.segments_processed as u64,
                wallet_left_usd: m.wallet_left_usd,
                dedup_lookups: m.dedup.lookups,
                dedup_hits: m.dedup.hits(),
                dedup_bytes_saved: m.dedup.bytes_saved,
                dedup_spend_saved_usd: m.dedup.spend_saved_usd,
                dedup_cache_entries: m.dedup_cache_entries as u64,
            }
        }
        Request::GetMetrics => {
            // Book this request *before* taking the snapshot so the reply
            // already reflects it: a test holding the same `Obs` handle
            // can then compare the wire snapshot against a local
            // `registry.snapshot()` bit for bit.
            if let (Some(o), Some(t)) = (service.obs(), t_req) {
                o.registry.inc(CounterId::NetRequests);
                o.registry.record(HistId::NetRequest, t.elapsed());
            }
            booked = true;
            Reply::Metrics {
                snapshot: service.metrics_snapshot(),
            }
        }
        Request::Shutdown => unreachable!("handled by the service loop"),
    };
    if !booked {
        if let (Some(o), Some(t)) = (service.obs(), t_req) {
            o.registry.inc(CounterId::NetRequests);
            o.registry.record(HistId::NetRequest, t.elapsed());
        }
    }
    let _ = c.tx.send(reply);
    None
}

/// Tear a connection down: send an optional protocol error, auto-close
/// the streams it opened (their leases return to the next joint plan),
/// and forget it.
fn close_conn(
    service: &mut IngestService<'_>,
    conns: &mut HashMap<u64, ConnState>,
    conn: u64,
    violation: Option<String>,
    autoclosed: &mut usize,
) {
    let Some(c) = conns.remove(&conn) else { return };
    if let Some(detail) = violation {
        let _ = c.tx.send(Reply::Error { detail });
    }
    for slot in c.streams {
        match service.close(StreamId::from_index(slot)) {
            Ok(()) => *autoclosed += 1,
            // Already closed by the client, or settled — nothing to do.
            Err(SkyError::StreamClosed { .. }) | Err(SkyError::UnknownStream { .. }) => {}
            Err(_) => {}
        }
    }
    // Dropping `c.tx` closes the reply channel; the writer thread flushes
    // anything queued (including the Error above) and shuts the socket.
}
