//! Socket transport and frame codec.
//!
//! Every protocol message travels as one frame, reusing the framing
//! discipline of the knowledge-base codec and the runtime journal:
//!
//! ```text
//! u32 len (LE) · u64 FNV-1a checksum of body (LE) · body
//! ```
//!
//! preceded — once per direction, per connection — by the 8-byte preamble
//! from [`proto::preamble`] (magic + protocol version). The checksum is
//! computed by the same [`skyscraper::offline::codec::checksum`] the
//! knowledge base uses, so a frame that validates here would validate
//! there bit for bit.
//!
//! Reads distinguish three shapes, mirroring the journal's torn-tail
//! discipline: a clean EOF **at a frame boundary** is a normal
//! disconnect ([`FrameIn::Eof`]); an EOF or persistent stall **mid-frame**
//! is a torn frame ([`NetError::Frame`]); a checksum or length violation
//! is a corrupt frame (also [`NetError::Frame`]) — all typed, never a
//! panic, never an unbounded allocation.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

use skyscraper::offline::codec::checksum;
use skyscraper::serve::proto::{self, PREAMBLE_LEN};

/// Default cap on a single frame body. A push of one full planning epoch
/// at paper-scale quotas is well under a megabyte; 64 MiB leaves room for
/// large batches while keeping a corrupt length field harmless.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Errors surfaced by the socket transport and protocol client.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// An I/O error outside the timeout/framing taxonomy.
    Io {
        /// The operation that failed.
        op: &'static str,
        /// The underlying error, stringified.
        detail: String,
    },
    /// A read or write did not complete within the configured deadline.
    Timeout {
        /// The operation that timed out.
        op: &'static str,
    },
    /// Framing violation: bad preamble, oversized or empty length, torn
    /// frame (EOF or stall mid-frame), or checksum mismatch. The peer
    /// connection is unusable after this.
    Frame {
        /// What was violated.
        detail: String,
    },
    /// A frame arrived intact but its body is not a valid protocol
    /// message for the expected direction.
    Proto {
        /// Decoder context.
        detail: String,
    },
    /// The server rejected a request. Terminal rejections surface here
    /// directly; retryable ones only after the client's retry budget is
    /// exhausted.
    Rejected {
        /// Whether the server classified the cause as retryable.
        retryable: bool,
        /// The engine error's display form.
        reason: String,
        /// The server's planning epoch when it rejected.
        epoch: u64,
    },
    /// The server answered with a typed protocol error (and closed the
    /// connection).
    Server {
        /// The server's error detail.
        detail: String,
    },
    /// The connection closed before the expected reply arrived.
    Closed,
    /// Could not establish a connection within the configured attempts.
    ConnectFailed {
        /// The last underlying error, stringified.
        detail: String,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io { op, detail } => write!(f, "I/O error during {op}: {detail}"),
            NetError::Timeout { op } => write!(f, "{op} timed out"),
            NetError::Frame { detail } => write!(f, "framing violation: {detail}"),
            NetError::Proto { detail } => write!(f, "protocol violation: {detail}"),
            NetError::Rejected {
                retryable, reason, ..
            } => {
                let kind = if *retryable { "retryable" } else { "terminal" };
                write!(f, "{kind} rejection: {reason}")
            }
            NetError::Server { detail } => write!(f, "server error: {detail}"),
            NetError::Closed => write!(f, "connection closed before the expected reply"),
            NetError::ConnectFailed { detail } => write!(f, "connect failed: {detail}"),
        }
    }
}

impl std::error::Error for NetError {}

/// A serving endpoint: a TCP bind/connect address or a Unix socket path.
#[derive(Debug, Clone, PartialEq)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:7641`.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

/// One connected socket of either family. Delegates `Read`/`Write` so the
/// framing layer is transport-agnostic.
#[derive(Debug)]
pub(crate) enum Sock {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Sock {
    pub(crate) fn connect(ep: &Endpoint) -> std::io::Result<Sock> {
        match ep {
            Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(Sock::Tcp),
            Endpoint::Unix(path) => UnixStream::connect(path).map(Sock::Unix),
        }
    }

    pub(crate) fn try_clone(&self) -> std::io::Result<Sock> {
        match self {
            Sock::Tcp(s) => s.try_clone().map(Sock::Tcp),
            Sock::Unix(s) => s.try_clone().map(Sock::Unix),
        }
    }

    pub(crate) fn set_read_timeout(&self, d: Duration) -> std::io::Result<()> {
        match self {
            Sock::Tcp(s) => s.set_read_timeout(Some(d)),
            Sock::Unix(s) => s.set_read_timeout(Some(d)),
        }
    }

    pub(crate) fn set_write_timeout(&self, d: Duration) -> std::io::Result<()> {
        match self {
            Sock::Tcp(s) => s.set_write_timeout(Some(d)),
            Sock::Unix(s) => s.set_write_timeout(Some(d)),
        }
    }

    /// Best-effort full shutdown — used to wake a peer thread blocked in a
    /// read when the connection is being torn down.
    pub(crate) fn shutdown(&self) {
        let _ = match self {
            Sock::Tcp(s) => s.shutdown(Shutdown::Both),
            Sock::Unix(s) => s.shutdown(Shutdown::Both),
        };
    }

    pub(crate) fn peer_label(&self) -> String {
        match self {
            Sock::Tcp(s) => s
                .peer_addr()
                .map(|a: SocketAddr| a.to_string())
                .unwrap_or_else(|_| "tcp:?".into()),
            Sock::Unix(_) => "unix".into(),
        }
    }
}

impl Read for Sock {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.read(buf),
            Sock::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Sock {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.write(buf),
            Sock::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Sock::Tcp(s) => s.flush(),
            Sock::Unix(s) => s.flush(),
        }
    }
}

/// Result of one framed read.
#[derive(Debug)]
pub(crate) enum FrameIn {
    /// A validated frame body.
    Frame(Vec<u8>),
    /// The peer closed cleanly at a frame boundary.
    Eof,
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Fill `buf` from `r`, treating socket read timeouts as *ticks*:
/// at a frame boundary (`got == 0` and `boundary`), each tick consults
/// `keep_waiting` — `false` aborts with [`NetError::Timeout`] (an idle
/// give-up, the stream still clean). Mid-buffer, up to `stall_limit`
/// consecutive ticks are tolerated before the frame is declared torn.
/// Returns `false` on a clean EOF at the boundary; EOF mid-buffer is a
/// torn frame.
fn read_full(
    r: &mut impl Read,
    buf: &mut [u8],
    boundary: bool,
    stall_limit: u32,
    keep_waiting: &mut dyn FnMut() -> bool,
) -> Result<bool, NetError> {
    let mut got = 0usize;
    let mut stalls = 0u32;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 && boundary {
                    return Ok(false);
                }
                return Err(NetError::Frame {
                    detail: format!("torn frame: peer closed after {got} of {} bytes", buf.len()),
                });
            }
            Ok(n) => {
                got += n;
                stalls = 0;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                if got == 0 && boundary {
                    if !keep_waiting() {
                        return Err(NetError::Timeout { op: "frame read" });
                    }
                } else {
                    stalls += 1;
                    if stalls > stall_limit || !keep_waiting() {
                        return Err(NetError::Frame {
                            detail: format!(
                                "torn frame: peer stalled after {got} of {} bytes",
                                buf.len()
                            ),
                        });
                    }
                }
            }
            Err(e) => {
                return Err(NetError::Io {
                    op: "frame read",
                    detail: e.to_string(),
                })
            }
        }
    }
    Ok(true)
}

/// Read one frame. `keep_waiting` is consulted on every idle tick (socket
/// read timeout with nothing buffered); returning `false` ends the wait
/// with [`NetError::Timeout`]. `stall_limit` bounds how many consecutive
/// ticks a *partially received* frame may stall before it is declared
/// torn.
pub(crate) fn read_frame(
    r: &mut impl Read,
    max_frame: usize,
    stall_limit: u32,
    mut keep_waiting: impl FnMut() -> bool,
) -> Result<FrameIn, NetError> {
    let mut len_buf = [0u8; 4];
    if !read_full(r, &mut len_buf, true, stall_limit, &mut keep_waiting)? {
        return Ok(FrameIn::Eof);
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 {
        return Err(NetError::Frame {
            detail: "empty frame body".into(),
        });
    }
    if len > max_frame {
        return Err(NetError::Frame {
            detail: format!("frame body of {len} bytes exceeds the {max_frame}-byte cap"),
        });
    }
    let mut sum_buf = [0u8; 8];
    read_full(r, &mut sum_buf, false, stall_limit, &mut keep_waiting)?;
    let stated = u64::from_le_bytes(sum_buf);
    let mut body = vec![0u8; len];
    read_full(r, &mut body, false, stall_limit, &mut keep_waiting)?;
    let actual = checksum(&body);
    if actual != stated {
        return Err(NetError::Frame {
            detail: format!("checksum mismatch: stated {stated:#018x}, computed {actual:#018x}"),
        });
    }
    Ok(FrameIn::Frame(body))
}

/// Write one frame (`len · checksum · body`). Socket write timeouts
/// surface as [`NetError::Timeout`]; a timed-out write leaves the stream
/// torn, so the caller must drop the connection.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> Result<(), NetError> {
    debug_assert!(!body.is_empty(), "protocol messages are never empty");
    let mut head = [0u8; 12];
    head[..4].copy_from_slice(&(body.len() as u32).to_le_bytes());
    head[4..].copy_from_slice(&checksum(body).to_le_bytes());
    for chunk in [&head[..], body] {
        w.write_all(chunk).map_err(|e| {
            if is_timeout(&e) {
                NetError::Timeout { op: "frame write" }
            } else {
                NetError::Io {
                    op: "frame write",
                    detail: e.to_string(),
                }
            }
        })?;
    }
    w.flush().map_err(|e| NetError::Io {
        op: "frame flush",
        detail: e.to_string(),
    })
}

/// Send this side's connection preamble.
pub(crate) fn write_preamble(w: &mut impl Write) -> Result<(), NetError> {
    w.write_all(&proto::preamble()).map_err(|e| NetError::Io {
        op: "preamble write",
        detail: e.to_string(),
    })
}

/// Receive and validate the peer's connection preamble.
pub(crate) fn read_preamble(
    r: &mut impl Read,
    stall_limit: u32,
    mut keep_waiting: impl FnMut() -> bool,
) -> Result<(), NetError> {
    let mut buf = [0u8; PREAMBLE_LEN];
    if !read_full(r, &mut buf, true, stall_limit, &mut keep_waiting)? {
        return Err(NetError::Closed);
    }
    proto::check_preamble(&buf).map_err(|detail| NetError::Frame { detail })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello frame").unwrap();
        write_frame(&mut wire, &[7u8; 1000]).unwrap();
        let mut r = &wire[..];
        match read_frame(&mut r, MAX_FRAME_BYTES, 4, || true).unwrap() {
            FrameIn::Frame(b) => assert_eq!(b, b"hello frame"),
            other => panic!("expected frame, got {other:?}"),
        }
        match read_frame(&mut r, MAX_FRAME_BYTES, 4, || true).unwrap() {
            FrameIn::Frame(b) => assert_eq!(b, vec![7u8; 1000]),
            other => panic!("expected frame, got {other:?}"),
        }
        match read_frame(&mut r, MAX_FRAME_BYTES, 4, || true).unwrap() {
            FrameIn::Eof => {}
            other => panic!("expected clean EOF, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_frames_are_typed() {
        // Flipped body byte → checksum mismatch.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();
        let last = wire.len() - 1;
        wire[last] ^= 0x01;
        let err = read_frame(&mut &wire[..], MAX_FRAME_BYTES, 4, || true).unwrap_err();
        assert!(matches!(err, NetError::Frame { ref detail } if detail.contains("checksum")));

        // Oversized stated length → rejected before allocation.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();
        wire[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut &wire[..], MAX_FRAME_BYTES, 4, || true).unwrap_err();
        assert!(matches!(err, NetError::Frame { ref detail } if detail.contains("cap")));

        // Zero-length frame.
        let wire = [0u8; 12];
        let err = read_frame(&mut &wire[..], MAX_FRAME_BYTES, 4, || true).unwrap_err();
        assert!(matches!(err, NetError::Frame { ref detail } if detail.contains("empty")));

        // Truncated mid-frame → torn, not clean EOF.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"a longer payload body").unwrap();
        wire.truncate(wire.len() - 5);
        let err = read_frame(&mut &wire[..], MAX_FRAME_BYTES, 4, || true).unwrap_err();
        assert!(matches!(err, NetError::Frame { ref detail } if detail.contains("torn")));
    }

    #[test]
    fn preamble_validates() {
        let mut wire = Vec::new();
        write_preamble(&mut wire).unwrap();
        read_preamble(&mut &wire[..], 4, || true).unwrap();
        wire[0] ^= 0xff;
        let err = read_preamble(&mut &wire[..], 4, || true).unwrap_err();
        assert!(matches!(err, NetError::Frame { .. }));
    }
}
