//! The protocol client: connect/retry/backoff plus a re-feeding
//! `push_batch`.
//!
//! [`NetClient::push_batch`] is the load-bearing piece: it sends the
//! whole remaining suffix of a segment slice per round trip and advances
//! its cursor by exactly what the server acknowledged — a full
//! [`Reply::Accepted`] range, or the `accepted` prefix of a retryable
//! [`Reply::Rejected`] (mailbox backpressure, the epoch barrier). Accepted
//! segments are never re-sent, mirroring the runtime's
//! `BatchFailed`-resume contract, so a drive through this client is
//! bitwise identical to in-process ingestion of the same schedule no
//! matter how often it was pushed back.

use std::time::{Duration, Instant};

use skyscraper::obs::MetricsSnapshot;
use skyscraper::serve::proto::{Reply, Request};
use skyscraper::IngestOptions;
use vetl_video::Segment;

use crate::frame::{
    read_frame, read_preamble, write_frame, write_preamble, Endpoint, FrameIn, NetError, Sock,
    MAX_FRAME_BYTES,
};

/// Client configuration; the defaults suit local sockets.
#[derive(Debug, Clone)]
pub struct NetClientConfig {
    /// Client identity sent in `Hello` (diagnostics only).
    pub client_name: String,
    /// Connection attempts before giving up (each backing off).
    pub connect_attempts: u32,
    /// Initial connect backoff; doubles per attempt up to
    /// `connect_backoff_max`.
    pub connect_backoff: Duration,
    /// Ceiling on the doubling connect backoff.
    pub connect_backoff_max: Duration,
    /// Extra per-attempt jitter added on top of the doubled backoff,
    /// drawn deterministically from `[0, connect_jitter]` — spreads a
    /// synchronized reconnect herd without making retries irreproducible.
    /// Zero (the default) disables it.
    pub connect_jitter: Duration,
    /// How long to wait for any single reply.
    pub reply_timeout: Duration,
    /// Socket read timeout — the tick at which waits re-check deadlines.
    pub read_tick: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Initial backoff after a retryable rejection with no progress;
    /// doubles up to `push_backoff_max`.
    pub push_backoff: Duration,
    /// Backoff ceiling for retryable rejections.
    pub push_backoff_max: Duration,
    /// Consecutive zero-progress retryable rejections tolerated before a
    /// push gives up (progress resets the count).
    pub max_push_retries: u32,
    /// Cap on a single frame body.
    pub max_frame_bytes: usize,
}

impl Default for NetClientConfig {
    fn default() -> Self {
        Self {
            client_name: "vetl-net".into(),
            connect_attempts: 20,
            connect_backoff: Duration::from_millis(10),
            connect_backoff_max: Duration::from_millis(500),
            connect_jitter: Duration::ZERO,
            reply_timeout: Duration::from_secs(60),
            read_tick: Duration::from_millis(10),
            write_timeout: Duration::from_secs(5),
            push_backoff: Duration::from_micros(100),
            push_backoff_max: Duration::from_millis(10),
            max_push_retries: 100_000,
            max_frame_bytes: MAX_FRAME_BYTES,
        }
    }
}

/// What the server said in its `Hello` reply.
#[derive(Debug, Clone)]
pub struct ServerHello {
    /// Server identity.
    pub server: String,
    /// Worker shards the server chose at startup (`VETL_SHARDS` override
    /// or detected cores).
    pub shards: usize,
    /// The server's planning epoch at connect time.
    pub epoch: usize,
}

/// Counters from one [`NetClient::push_batch`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct PushStats {
    /// Request/reply round trips (1 for an uncontended batch).
    pub round_trips: u64,
    /// Retryable rejections absorbed.
    pub retries: u64,
    /// Segments re-fed across all retries (unacknowledged suffix sends
    /// beyond the first).
    pub refed_segments: u64,
}

/// A settled per-stream outcome received during shutdown drain.
#[derive(Debug, Clone)]
pub struct StreamResult {
    /// The stream's slot index.
    pub stream: u64,
    /// The workload id it was admitted under.
    pub workload_id: String,
    /// The stream's full ingestion outcome.
    pub outcome: skyscraper::IngestOutcome,
}

/// A connected protocol client (one request in flight at a time).
pub struct NetClient {
    sock: Sock,
    cfg: NetClientConfig,
    hello: ServerHello,
}

impl NetClient {
    /// Connect with retry/backoff, exchange preambles, and say `Hello`.
    pub fn connect(ep: &Endpoint, cfg: NetClientConfig) -> Result<NetClient, NetError> {
        let mut last = String::from("no attempts made");
        for attempt in 0..cfg.connect_attempts.max(1) {
            match Sock::connect(ep) {
                Ok(sock) => return Self::handshake(sock, cfg),
                Err(e) => {
                    last = e.to_string();
                    if attempt + 1 < cfg.connect_attempts.max(1) {
                        std::thread::sleep(connect_backoff_for(&cfg, attempt));
                    }
                }
            }
        }
        Err(NetError::ConnectFailed { detail: last })
    }

    fn handshake(sock: Sock, cfg: NetClientConfig) -> Result<NetClient, NetError> {
        sock.set_read_timeout(cfg.read_tick).map_err(io("setup"))?;
        sock.set_write_timeout(cfg.write_timeout)
            .map_err(io("setup"))?;
        let mut client = NetClient {
            sock,
            cfg,
            hello: ServerHello {
                server: String::new(),
                shards: 0,
                epoch: 0,
            },
        };
        write_preamble(&mut client.sock)?;
        let deadline = Instant::now() + client.cfg.reply_timeout;
        read_preamble(&mut client.sock, stall_ticks(&client.cfg), || {
            Instant::now() < deadline
        })?;
        let hello = client.request(&Request::Hello {
            client: client.cfg.client_name.clone(),
        })?;
        match hello {
            Reply::Hello {
                server,
                shards,
                epoch,
            } => {
                client.hello = ServerHello {
                    server,
                    shards: shards as usize,
                    epoch: epoch as usize,
                };
                Ok(client)
            }
            other => Err(unexpected("Hello", &other)),
        }
    }

    /// What the server announced at connect time.
    pub fn hello(&self) -> &ServerHello {
        &self.hello
    }

    /// Send one request and read its reply.
    pub fn request(&mut self, req: &Request) -> Result<Reply, NetError> {
        write_frame(&mut self.sock, &req.encode())?;
        self.read_reply()
    }

    fn read_reply(&mut self) -> Result<Reply, NetError> {
        let deadline = Instant::now() + self.cfg.reply_timeout;
        match read_frame(
            &mut self.sock,
            self.cfg.max_frame_bytes,
            stall_ticks(&self.cfg),
            || Instant::now() < deadline,
        )? {
            FrameIn::Frame(body) => Reply::decode(&body).map_err(|detail| NetError::Proto {
                detail: format!("undecodable reply: {detail}"),
            }),
            FrameIn::Eof => Err(NetError::Closed),
        }
    }

    /// Open a stream under a server-registered profile; returns its slot.
    pub fn open_stream(
        &mut self,
        profile: &str,
        name: &str,
        options: IngestOptions,
    ) -> Result<u64, NetError> {
        let reply = self.request(&Request::OpenStream {
            profile: profile.into(),
            name: name.into(),
            options,
        })?;
        match reply {
            Reply::StreamOpened { stream } => Ok(stream),
            Reply::Rejected {
                retryable,
                reason,
                epoch,
                ..
            } => Err(NetError::Rejected {
                retryable,
                reason,
                epoch,
            }),
            Reply::Error { detail } => Err(NetError::Server { detail }),
            other => Err(unexpected("StreamOpened", &other)),
        }
    }

    /// Push a batch, transparently re-feeding the unacknowledged suffix
    /// across retryable rejections (backpressure, the epoch barrier).
    /// Terminal rejections and exhausted retry budgets surface as
    /// [`NetError::Rejected`].
    pub fn push_batch(&mut self, stream: u64, segs: &[Segment]) -> Result<PushStats, NetError> {
        let mut stats = PushStats::default();
        let mut off = 0usize;
        let mut backoff = self.cfg.push_backoff;
        let mut stalls = 0u32;
        while off < segs.len() {
            let body = Request::encode_push(stream, off as u64, &segs[off..]);
            write_frame(&mut self.sock, &body)?;
            stats.round_trips += 1;
            if stats.round_trips > 1 {
                stats.refed_segments += (segs.len() - off) as u64;
            }
            match self.read_reply()? {
                Reply::Accepted { from, to, .. } => {
                    if from != off as u64 || to < from || to as usize > segs.len() {
                        return Err(NetError::Proto {
                            detail: format!(
                                "acknowledged range [{from}, {to}) does not match the \
                                 sent suffix at {off}"
                            ),
                        });
                    }
                    off = to as usize;
                    backoff = self.cfg.push_backoff;
                    stalls = 0;
                }
                Reply::Rejected {
                    retryable: true,
                    accepted,
                    reason,
                    epoch,
                } => {
                    stats.retries += 1;
                    let accepted = accepted as usize;
                    if accepted > 0 {
                        // The accepted prefix is journaled and enqueued —
                        // resume past it, never re-feed it.
                        off = (off + accepted).min(segs.len());
                        stalls = 0;
                        backoff = self.cfg.push_backoff;
                    } else {
                        stalls += 1;
                        if stalls > self.cfg.max_push_retries {
                            return Err(NetError::Rejected {
                                retryable: true,
                                reason: format!("retry budget exhausted: {reason}"),
                                epoch,
                            });
                        }
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(self.cfg.push_backoff_max);
                    }
                }
                Reply::Rejected {
                    retryable: false,
                    reason,
                    epoch,
                    ..
                } => {
                    return Err(NetError::Rejected {
                        retryable: false,
                        reason,
                        epoch,
                    })
                }
                Reply::Error { detail } => return Err(NetError::Server { detail }),
                other => return Err(unexpected("Accepted/Rejected", &other)),
            }
        }
        Ok(stats)
    }

    /// Close a stream (in-band marker; the outcome settles at drain).
    pub fn close_stream(&mut self, stream: u64) -> Result<(), NetError> {
        match self.request(&Request::CloseStream { stream })? {
            Reply::StreamClosed { .. } => Ok(()),
            Reply::Rejected {
                retryable,
                reason,
                epoch,
                ..
            } => Err(NetError::Rejected {
                retryable,
                reason,
                epoch,
            }),
            Reply::Error { detail } => Err(NetError::Server { detail }),
            other => Err(unexpected("StreamClosed", &other)),
        }
    }

    /// Snapshot the server's runtime metrics.
    pub fn stats(&mut self) -> Result<Reply, NetError> {
        match self.request(&Request::GetStats)? {
            s @ Reply::Stats { .. } => Ok(s),
            Reply::Error { detail } => Err(NetError::Server { detail }),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Fetch the server's full observability registry (counters, gauges,
    /// latency histograms). With recording off server-side, the snapshot
    /// carries only the gauge projection of the runtime metrics.
    pub fn get_metrics(&mut self) -> Result<MetricsSnapshot, NetError> {
        match self.request(&Request::GetMetrics)? {
            Reply::Metrics { snapshot } => Ok(snapshot),
            Reply::Error { detail } => Err(NetError::Server { detail }),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// Ask the server to drain and shut down.
    pub fn shutdown_server(&mut self) -> Result<(), NetError> {
        match self.request(&Request::Shutdown)? {
            Reply::ShuttingDown => Ok(()),
            Reply::Error { detail } => Err(NetError::Server { detail }),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }

    /// Collect up to `expect` settled outcomes flushed by a draining
    /// server (interleaved `ShuttingDown` frames are skipped). Returns
    /// what arrived before the server hung up.
    pub fn recv_outcomes(&mut self, expect: usize) -> Result<Vec<StreamResult>, NetError> {
        let mut out = Vec::new();
        while out.len() < expect {
            match self.read_reply() {
                Ok(Reply::Outcome {
                    stream,
                    workload_id,
                    outcome,
                }) => out.push(StreamResult {
                    stream,
                    workload_id,
                    outcome,
                }),
                Ok(Reply::ShuttingDown) => {}
                Ok(Reply::Error { detail }) => return Err(NetError::Server { detail }),
                Ok(other) => return Err(unexpected("Outcome", &other)),
                Err(NetError::Closed) => break,
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }
}

fn stall_ticks(cfg: &NetClientConfig) -> u32 {
    // Allow a partially received frame to stall for the full reply
    // timeout before declaring it torn: the tick count must *cover*
    // `reply_timeout`, so round up. Truncating division undershot the
    // window for ticks that don't divide the timeout, and the old
    // `.max(4)` floor overshot it fourfold for coarse ticks.
    let tick_ms = cfg.read_tick.as_millis().max(1) as u64;
    let timeout_ms = cfg.reply_timeout.as_millis() as u64;
    timeout_ms.div_ceil(tick_ms).clamp(1, u32::MAX as u64) as u32
}

/// Backoff slept after failed connect attempt `attempt` (0-based):
/// `connect_backoff` doubled per completed attempt, saturating at
/// `connect_backoff_max`, plus a deterministic per-attempt jitter in
/// `[0, connect_jitter]`.
fn connect_backoff_for(cfg: &NetClientConfig, attempt: u32) -> Duration {
    let mut backoff = cfg.connect_backoff;
    for _ in 0..attempt {
        backoff = backoff.saturating_mul(2);
        if backoff >= cfg.connect_backoff_max {
            break;
        }
    }
    backoff = backoff.min(cfg.connect_backoff_max);
    if cfg.connect_jitter > Duration::ZERO {
        // splitmix64 of the attempt number: the draw is a pure function of
        // the attempt, so retry schedules stay reproducible while distinct
        // attempts (and the herd's distinct progress points) de-correlate.
        let mut z = (attempt as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let span = (cfg.connect_jitter.as_nanos() as u64).saturating_add(1);
        backoff = backoff.saturating_add(Duration::from_nanos(z % span));
    }
    backoff
}

fn io(op: &'static str) -> impl Fn(std::io::Error) -> NetError {
    move |e| NetError::Io {
        op,
        detail: e.to_string(),
    }
}

fn unexpected(wanted: &str, got: &Reply) -> NetError {
    NetError::Proto {
        detail: format!("expected {wanted}, got {got:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(tick_ms: u64, timeout_ms: u64) -> NetClientConfig {
        NetClientConfig {
            read_tick: Duration::from_millis(tick_ms),
            reply_timeout: Duration::from_millis(timeout_ms),
            ..NetClientConfig::default()
        }
    }

    /// The tick budget covers the configured timeout exactly (ceiling
    /// division), never truncating below it and never inflating a
    /// sub-tick timeout the way the old `.max(4)` floor did.
    #[test]
    fn stall_ticks_covers_the_configured_timeout() {
        // Exact division: unchanged.
        assert_eq!(stall_ticks(&cfg(10, 60_000)), 6_000);
        // Non-dividing tick: rounds up, so ticks × tick ≥ timeout.
        assert_eq!(stall_ticks(&cfg(7, 60_000)), 8_572);
        // Coarse tick, short timeout: 2 ticks (3000 ms) cover 1500 ms;
        // the old floor would have waited 4 s.
        assert_eq!(stall_ticks(&cfg(1_000, 1_500)), 2);
        // Timeout below one tick: a single tick, not four.
        assert_eq!(stall_ticks(&cfg(10, 5)), 1);
        // Degenerate configs still yield a usable (≥ 1 tick) window.
        assert_eq!(stall_ticks(&cfg(0, 3)), 3);
        assert_eq!(stall_ticks(&cfg(10, 0)), 1);
        // Effective window always covers the timeout for boundary combos.
        for (tick, timeout) in [
            (1, 1),
            (3, 10),
            (10, 10),
            (10, 11),
            (33, 100),
            (250, 60_000),
        ] {
            let ticks = stall_ticks(&cfg(tick, timeout)) as u64;
            assert!(
                ticks * tick.max(1) >= timeout,
                "tick {tick} ms × {ticks} must cover {timeout} ms"
            );
            assert!(ticks >= 1);
        }
    }

    /// The documented doubling-to-cap sequence, for the default cap and a
    /// user-configured one — the old hardcoded 500 ms ceiling ignored the
    /// config entirely.
    #[test]
    fn connect_backoff_doubles_to_the_configured_cap() {
        let c = NetClientConfig::default();
        let got: Vec<u64> = (0..8)
            .map(|a| connect_backoff_for(&c, a).as_millis() as u64)
            .collect();
        assert_eq!(got, [10, 20, 40, 80, 160, 320, 500, 500]);

        let c = NetClientConfig {
            connect_backoff: Duration::from_millis(10),
            connect_backoff_max: Duration::from_millis(100),
            ..NetClientConfig::default()
        };
        let got: Vec<u64> = (0..6)
            .map(|a| connect_backoff_for(&c, a).as_millis() as u64)
            .collect();
        assert_eq!(got, [10, 20, 40, 80, 100, 100]);

        // A cap below the initial backoff clamps immediately.
        let c = NetClientConfig {
            connect_backoff: Duration::from_millis(40),
            connect_backoff_max: Duration::from_millis(25),
            ..NetClientConfig::default()
        };
        assert_eq!(connect_backoff_for(&c, 0), Duration::from_millis(25));
    }

    /// Jitter stays within `[0, connect_jitter]`, is deterministic per
    /// attempt, and differs across attempts (herd spreading).
    #[test]
    fn connect_jitter_is_bounded_and_deterministic() {
        let c = NetClientConfig {
            connect_jitter: Duration::from_millis(5),
            ..NetClientConfig::default()
        };
        let base = NetClientConfig::default();
        let mut draws = Vec::new();
        for a in 0..8 {
            let with = connect_backoff_for(&c, a);
            let without = connect_backoff_for(&base, a);
            assert!(with >= without, "jitter never shortens the backoff");
            assert!(with <= without + Duration::from_millis(5));
            assert_eq!(with, connect_backoff_for(&c, a), "same attempt, same draw");
            draws.push(with - without);
        }
        assert!(
            draws.windows(2).any(|w| w[0] != w[1]),
            "distinct attempts must not all share one jitter draw"
        );
    }
}
