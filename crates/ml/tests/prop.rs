//! Property tests for the ML substrate.

use proptest::prelude::*;
use vetl_ml::nn::FitConfig;
use vetl_ml::{Adam, KMeans, KMeansConfig, Loss, Mlp};

proptest! {
    /// Every point is assigned to its nearest center (KMeans consistency).
    #[test]
    fn kmeans_assignments_are_nearest_center(
        pts in prop::collection::vec(prop::collection::vec(-5.0f64..5.0, 3), 10..40),
    ) {
        let km = KMeans::fit(&pts, &KMeansConfig { k: 3, ..Default::default() });
        for p in &pts {
            let assigned = km.predict(p);
            let d = |c: &[f64]| -> f64 {
                c.iter().zip(p.iter()).map(|(a, b)| (a - b) * (a - b)).sum()
            };
            let assigned_d = d(&km.centers()[assigned]);
            for center in km.centers() {
                prop_assert!(assigned_d <= d(center) + 1e-9);
            }
        }
    }

    /// Softmax outputs are always valid distributions for arbitrary inputs
    /// and weights.
    #[test]
    fn mlp_softmax_is_always_a_distribution(
        input in prop::collection::vec(-10.0f64..10.0, 6),
        seed in 0u64..1000,
    ) {
        let net = Mlp::forecaster(6, 4, seed);
        let y = net.forward(&input);
        prop_assert_eq!(y.len(), 4);
        prop_assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(y.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// Training never produces NaN parameters (numerical robustness).
    #[test]
    fn training_stays_finite(
        seed in 0u64..100,
        lr in 0.001f64..0.1,
    ) {
        let inputs: Vec<Vec<f64>> = (0..32).map(|i| vec![(i % 4) as f64 / 3.0]).collect();
        let targets: Vec<Vec<f64>> = (0..32)
            .map(|i| if i % 4 < 2 { vec![1.0, 0.0] } else { vec![0.0, 1.0] })
            .collect();
        let mut net = Mlp::forecaster(1, 2, seed);
        let mut opt = Adam::new(lr);
        net.fit(
            &inputs,
            &targets,
            &mut opt,
            &FitConfig { epochs: 10, batch_size: 8, loss: Loss::CrossEntropy, ..Default::default() },
        );
        let y = net.forward(&[0.5]);
        prop_assert!(y.iter().all(|v| v.is_finite()));
    }

    /// Cross-entropy against a one-hot target is minimized by predicting
    /// that class with high probability.
    #[test]
    fn cross_entropy_orders_predictions(p_hit in 0.5f64..0.99) {
        let target = [1.0, 0.0];
        let good = [p_hit, 1.0 - p_hit];
        let bad = [1.0 - p_hit, p_hit];
        prop_assert!(Loss::CrossEntropy.value(&good, &target)
            < Loss::CrossEntropy.value(&bad, &target));
    }
}
