//! Property tests for the ML substrate.

use proptest::prelude::*;
use vetl_ml::nn::FitConfig;
use vetl_ml::{Adam, KMeans, KMeansConfig, Loss, Mlp};

proptest! {
    /// Every point is assigned to its nearest center (KMeans consistency).
    #[test]
    fn kmeans_assignments_are_nearest_center(
        pts in prop::collection::vec(prop::collection::vec(-5.0f64..5.0, 3), 10..40),
    ) {
        let km = KMeans::fit(&pts, &KMeansConfig { k: 3, ..Default::default() });
        for p in &pts {
            let assigned = km.predict(p);
            let d = |c: &[f64]| -> f64 {
                c.iter().zip(p.iter()).map(|(a, b)| (a - b) * (a - b)).sum()
            };
            let assigned_d = d(&km.centers()[assigned]);
            for center in km.centers() {
                prop_assert!(assigned_d <= d(center) + 1e-9);
            }
        }
    }

    /// Softmax outputs are always valid distributions for arbitrary inputs
    /// and weights.
    #[test]
    fn mlp_softmax_is_always_a_distribution(
        input in prop::collection::vec(-10.0f64..10.0, 6),
        seed in 0u64..1000,
    ) {
        let net = Mlp::forecaster(6, 4, seed);
        let y = net.forward(&input);
        prop_assert_eq!(y.len(), 4);
        prop_assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(y.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// Training never produces NaN parameters (numerical robustness).
    #[test]
    fn training_stays_finite(
        seed in 0u64..100,
        lr in 0.001f64..0.1,
    ) {
        let inputs: Vec<Vec<f64>> = (0..32).map(|i| vec![(i % 4) as f64 / 3.0]).collect();
        let targets: Vec<Vec<f64>> = (0..32)
            .map(|i| if i % 4 < 2 { vec![1.0, 0.0] } else { vec![0.0, 1.0] })
            .collect();
        let mut net = Mlp::forecaster(1, 2, seed);
        let mut opt = Adam::new(lr);
        net.fit(
            &inputs,
            &targets,
            &mut opt,
            &FitConfig { epochs: 10, batch_size: 8, loss: Loss::CrossEntropy, ..Default::default() },
        );
        let y = net.forward(&[0.5]);
        prop_assert!(y.iter().all(|v| v.is_finite()));
    }

    /// Cross-entropy against a one-hot target is minimized by predicting
    /// that class with high probability.
    #[test]
    fn cross_entropy_orders_predictions(p_hit in 0.5f64..0.99) {
        let target = [1.0, 0.0];
        let good = [p_hit, 1.0 - p_hit];
        let bad = [1.0 - p_hit, p_hit];
        prop_assert!(Loss::CrossEntropy.value(&good, &target)
            < Loss::CrossEntropy.value(&bad, &target));
    }
}

// ---- Blocked kernels == scalar reference kernels, bitwise. ----
//
// The matrix / kmeans hot loops run in 8-wide (4-wide for kmeans) blocked
// form. The bar is *bit identity* with the naive scalar loops they replaced:
// each output element's accumulation chain must be untouched, so the blocked
// kernels may reorder work across outputs but never within one.

proptest! {
    /// `matvec_into`, `matvec_bias_into`, and `matvec_transposed_into` match
    /// the naive per-row scalar loops bit for bit on random shapes —
    /// including rows/cols that are not multiples of the 8-wide block, which
    /// exercise the remainder paths.
    #[test]
    fn blocked_matvec_kernels_match_scalar_reference_bitwise(
        rows in 1usize..21,
        cols in 1usize..21,
        pool in prop::collection::vec(-3.0f64..3.0, 64),
    ) {
        use vetl_ml::Matrix;

        // Deterministic dense data drawn from the pool (shapes vary, the
        // pool is fixed-size).
        let at = |i: usize| pool[i % pool.len()] + (i / pool.len()) as f64 * 0.125;
        let m = Matrix::from_fn(rows, cols, |r, c| at(r * cols + c));
        let x: Vec<f64> = (0..cols).map(|c| at(1000 + c)).collect();
        let bias: Vec<f64> = (0..rows).map(|r| at(2000 + r)).collect();
        let xt: Vec<f64> = (0..rows).map(|r| at(3000 + r)).collect();

        // Scalar reference: one sequential multiply-add chain per output.
        let mut got = vec![0.0; rows];
        m.matvec_into(&x, &mut got);
        for (r, &g) in got.iter().enumerate() {
            let want: f64 = m.row(r).iter().zip(&x).map(|(a, b)| a * b).sum();
            prop_assert_eq!(g.to_bits(), want.to_bits(), "matvec row {}", r);
        }

        let mut got_bias = vec![0.0; rows];
        m.matvec_bias_into(&x, &bias, &mut got_bias);
        for r in 0..rows {
            let want: f64 =
                bias[r] + m.row(r).iter().zip(&x).map(|(a, b)| a * b).sum::<f64>();
            prop_assert_eq!(got_bias[r].to_bits(), want.to_bits(), "bias row {}", r);
        }

        // Transposed: ascending-row accumulation into each output column.
        let mut want_t = vec![0.0; cols];
        for (r, &xr) in xt.iter().enumerate() {
            for (o, &w) in want_t.iter_mut().zip(m.row(r)) {
                *o += w * xr;
            }
        }
        let mut got_t = vec![0.0; cols];
        m.matvec_transposed_into(&xt, &mut got_t);
        for c in 0..cols {
            prop_assert_eq!(got_t[c].to_bits(), want_t[c].to_bits(), "transposed col {}", c);
        }
    }

    /// The 4-wide blocked nearest-center scan behind `KMeans::predict` (and
    /// the inertia it accumulates during `fit`) matches a scalar strict-`<`
    /// argmin over `squared_distance`, bit for bit — `k` values around the
    /// quad width exercise both the blocked pass and the remainder scan.
    #[test]
    fn blocked_nearest_center_matches_scalar_argmin_bitwise(
        dim in 1usize..9,
        n_pts in 12usize..40,
        pool in prop::collection::vec(-5.0f64..5.0, 72),
        k in 1usize..10,
    ) {
        use vetl_ml::kmeans::squared_distance;

        // Points drawn from the fixed-size pool (the shape varies, the pool
        // does not), de-duplicated by a small index-dependent offset.
        let at = |i: usize| pool[i % pool.len()] + (i / pool.len()) as f64 * 0.0625;
        let pts: Vec<Vec<f64>> = (0..n_pts)
            .map(|i| (0..dim).map(|j| at(i * dim + j)).collect())
            .collect();

        let km = KMeans::fit(&pts, &KMeansConfig { k, ..Default::default() });
        let mut scalar_inertia = 0.0;
        for p in &pts {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, center) in km.centers().iter().enumerate() {
                let d = squared_distance(p, center);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            prop_assert_eq!(km.predict(p), best, "argmin for {:?}", p);
            scalar_inertia += best_d;
        }
        prop_assert_eq!(
            km.inertia().to_bits(),
            scalar_inertia.to_bits(),
            "inertia is the same ordered sum of the same distance bits"
        );
    }
}
