//! KMeans clustering (Lloyd's algorithm with kmeans++ initialization).
//!
//! Skyscraper clusters the `|K|`-dimensional *quality vectors* of sampled
//! video segments into content categories (§3.2). A content category is then
//! characterized by its cluster center `[q̂(k₁,c), …, q̂(k_|K|,c)]` — the
//! average quality every knob configuration achieves on content of that
//! category.
//!
//! Two classification modes are provided:
//!
//! * [`KMeans::predict`] — ordinary nearest-center assignment over the full
//!   vector (used offline, where every configuration's quality is known), and
//! * [`KMeans::predict_single_dim`] — the knob switcher's online
//!   classification (Eq. 5 of the paper), which only observes the quality of
//!   the *currently running* configuration and therefore matches against a
//!   single dimension of each center.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`KMeans::fit`].
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters ("the k in KMeans"; the paper's default is 3–5).
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Convergence threshold on total center movement (L2).
    pub tol: f64,
    /// RNG seed for the kmeans++ initialization.
    pub seed: u64,
    /// Number of random restarts; the fit with the lowest inertia wins.
    pub n_init: usize,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 4,
            max_iter: 100,
            tol: 1e-9,
            seed: 7,
            n_init: 4,
        }
    }
}

/// A fitted KMeans model.
#[derive(Debug, Clone)]
pub struct KMeans {
    centers: Vec<Vec<f64>>,
    inertia: f64,
    iterations: usize,
}

impl KMeans {
    /// Fit `config.k` clusters on `points` (each point a feature vector of
    /// equal dimensionality).
    ///
    /// # Panics
    /// Panics if `points` is empty, dimensions are inconsistent, or
    /// `config.k == 0`.
    pub fn fit(points: &[Vec<f64>], config: &KMeansConfig) -> Self {
        assert!(config.k > 0, "k must be positive");
        assert!(!points.is_empty(), "cannot cluster an empty point set");
        let dim = points[0].len();
        assert!(
            points.iter().all(|p| p.len() == dim),
            "inconsistent point dimensions"
        );

        let mut best: Option<KMeans> = None;
        for restart in 0..config.n_init.max(1) {
            let fitted = Self::fit_restart(points, config, restart);
            let better = best.as_ref().is_none_or(|b| fitted.inertia < b.inertia);
            if better {
                best = Some(fitted);
            }
        }
        best.expect("at least one restart ran")
    }

    /// [`fit`](Self::fit) with the random restarts scattered across a worker
    /// pool. Every restart seeds its own generator and the winner is chosen
    /// by (inertia, restart index), so the result is bit-identical to the
    /// sequential fit for any pool size.
    pub fn fit_on(points: &[Vec<f64>], config: &KMeansConfig, pool: &vetl_exec::ActorPool) -> Self {
        assert!(config.k > 0, "k must be positive");
        assert!(!points.is_empty(), "cannot cluster an empty point set");
        let dim = points[0].len();
        assert!(
            points.iter().all(|p| p.len() == dim),
            "inconsistent point dimensions"
        );

        let restarts: Vec<usize> = (0..config.n_init.max(1)).collect();
        let fits = pool.par_map(&restarts, |_, &r| Self::fit_restart(points, config, r));
        // In-order scan with strict `<` keeps the earliest restart on ties —
        // exactly the sequential loop's behaviour.
        fits.into_iter()
            .reduce(|best, cand| {
                if cand.inertia < best.inertia {
                    cand
                } else {
                    best
                }
            })
            .expect("at least one restart ran")
    }

    fn fit_restart(points: &[Vec<f64>], config: &KMeansConfig, restart: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(restart as u64 * 0x9e37));
        Self::fit_once(points, config, &mut rng)
    }

    fn fit_once(points: &[Vec<f64>], config: &KMeansConfig, rng: &mut StdRng) -> Self {
        let k = config.k.min(points.len());
        let mut centers = kmeans_plus_plus_init(points, k, rng);
        let mut assignments = vec![0usize; points.len()];
        let mut iterations = 0;

        for iter in 0..config.max_iter {
            iterations = iter + 1;
            // Assignment step.
            for (a, p) in assignments.iter_mut().zip(points.iter()) {
                *a = nearest_center(p, &centers).0;
            }
            // Update step.
            let mut new_centers = vec![vec![0.0; points[0].len()]; k];
            let mut counts = vec![0usize; k];
            for (&a, p) in assignments.iter().zip(points.iter()) {
                counts[a] += 1;
                for (acc, &v) in new_centers[a].iter_mut().zip(p.iter()) {
                    *acc += v;
                }
            }
            for (c, (center, count)) in new_centers.iter_mut().zip(counts.iter()).enumerate() {
                if *count == 0 {
                    // Re-seed an empty cluster at a random point; keeps k stable.
                    let p = &points[rng.gen_range(0..points.len())];
                    center.copy_from_slice(p);
                    let _ = c;
                } else {
                    center.iter_mut().for_each(|v| *v /= *count as f64);
                }
            }
            let movement: f64 = centers
                .iter()
                .zip(new_centers.iter())
                .map(|(a, b)| squared_distance(a, b))
                .sum::<f64>()
                .sqrt();
            centers = new_centers;
            if movement < config.tol {
                break;
            }
        }

        let inertia = points
            .iter()
            .map(|p| nearest_center(p, &centers).1)
            .sum::<f64>();
        Self {
            centers,
            inertia,
            iterations,
        }
    }

    /// Cluster centers, one `dim`-vector per cluster.
    pub fn centers(&self) -> &[Vec<f64>] {
        &self.centers
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centers.len()
    }

    /// Sum of squared distances of every training point to its center.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Number of Lloyd iterations that were run.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Nearest-center index for a full feature vector.
    pub fn predict(&self, point: &[f64]) -> usize {
        nearest_center(point, &self.centers).0
    }

    /// Eq. 5 of the paper: classify using only dimension `dim` of the
    /// centers, i.e. pick `argmin_c |center_c[dim] - value|`.
    ///
    /// This is how the knob switcher determines the current content category
    /// from the reported quality of the single configuration that is
    /// currently running.
    pub fn predict_single_dim(&self, dim: usize, value: f64) -> usize {
        let mut best = 0;
        let mut best_err = f64::INFINITY;
        for (c, center) in self.centers.iter().enumerate() {
            let err = (center[dim] - value).abs();
            if err < best_err {
                best_err = err;
                best = c;
            }
        }
        best
    }

    /// How well dimension `dim` alone discriminates between the clusters:
    /// the minimum pairwise center gap along that dimension. The offline
    /// phase uses this to pick a *discriminating* cheap configuration for
    /// labelling unlabeled data (Appendix H, footnote 7).
    pub fn dim_discrimination(&self, dim: usize) -> f64 {
        let mut min_gap = f64::INFINITY;
        for i in 0..self.centers.len() {
            for j in (i + 1)..self.centers.len() {
                let gap = (self.centers[i][dim] - self.centers[j][dim]).abs();
                min_gap = min_gap.min(gap);
            }
        }
        if min_gap.is_infinite() {
            0.0
        } else {
            min_gap
        }
    }
}

/// kmeans++ seeding: first center uniform, subsequent centers sampled with
/// probability proportional to squared distance from the nearest chosen one.
fn kmeans_plus_plus_init(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    centers.push(points[rng.gen_range(0..points.len())].clone());
    let mut dists: Vec<f64> = points
        .iter()
        .map(|p| squared_distance(p, &centers[0]))
        .collect();

    while centers.len() < k {
        let total: f64 = dists.iter().sum();
        let next = if total <= f64::EPSILON {
            // All points coincide with existing centers; pick uniformly.
            points[rng.gen_range(0..points.len())].clone()
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, &d) in dists.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            points[chosen].clone()
        };
        for (d, p) in dists.iter_mut().zip(points.iter()) {
            *d = d.min(squared_distance(p, &next));
        }
        centers.push(next);
    }
    centers
}

/// Nearest-center scan, blocked four centers per pass: one load of each
/// point coordinate feeds four independent distance chains (`k` defaults
/// to 4, so the common case is one fused pass). Each chain accumulates in
/// ascending dimension order — bit-identical to [`squared_distance`] — and
/// the argmin scan keeps the strict `<` in ascending center order, so ties
/// resolve to the lowest index exactly as the scalar loop did.
fn nearest_center(point: &[f64], centers: &[Vec<f64>]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    let mut quads = centers.chunks_exact(4);
    let mut c0 = 0;
    for quad in &mut quads {
        let ds = squared_distance4(point, &quad[0], &quad[1], &quad[2], &quad[3]);
        for (i, d) in ds.into_iter().enumerate() {
            if d < best_d {
                best_d = d;
                best = c0 + i;
            }
        }
        c0 += 4;
    }
    for (i, center) in quads.remainder().iter().enumerate() {
        let d = squared_distance(point, center);
        if d < best_d {
            best_d = d;
            best = c0 + i;
        }
    }
    (best, best_d)
}

/// Four squared Euclidean distances from `p` at once. Every distance adds
/// in ascending dimension order, so each result bit-matches a standalone
/// [`squared_distance`] call; the four chains are independent and overlap.
fn squared_distance4(p: &[f64], a: &[f64], b: &[f64], c: &[f64], d: &[f64]) -> [f64; 4] {
    let n = p.len().min(a.len()).min(b.len()).min(c.len()).min(d.len());
    let (p, a, b, c, d) = (&p[..n], &a[..n], &b[..n], &c[..n], &d[..n]);
    let mut out = [0.0f64; 4];
    for j in 0..n {
        let ta = p[j] - a[j];
        out[0] += ta * ta;
        let tb = p[j] - b[j];
        out[1] += tb * tb;
        let tc = p[j] - c[j];
        out[2] += tc * tc;
        let td = p[j] - d[j];
        out[3] += td * td;
    }
    out
}

/// Squared Euclidean distance between two equal-length vectors.
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        let mut rng = StdRng::seed_from_u64(1);
        for &(cx, cy) in &[(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)] {
            for _ in 0..50 {
                pts.push(vec![
                    cx + rng.gen::<f64>() - 0.5,
                    cy + rng.gen::<f64>() - 0.5,
                ]);
            }
        }
        pts
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let pts = three_blobs();
        let km = KMeans::fit(
            &pts,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        );
        // Every blob should map to a single distinct cluster.
        let labels: Vec<usize> = pts.iter().map(|p| km.predict(p)).collect();
        for blob in 0..3 {
            let first = labels[blob * 50];
            assert!(labels[blob * 50..(blob + 1) * 50]
                .iter()
                .all(|&l| l == first));
        }
        let mut distinct: Vec<usize> = vec![labels[0], labels[50], labels[100]];
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let pts = three_blobs();
        let i1 = KMeans::fit(
            &pts,
            &KMeansConfig {
                k: 1,
                ..Default::default()
            },
        )
        .inertia();
        let i2 = KMeans::fit(
            &pts,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        )
        .inertia();
        let i3 = KMeans::fit(
            &pts,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        )
        .inertia();
        assert!(i1 > i2, "k=1 inertia {i1} should exceed k=2 inertia {i2}");
        assert!(i2 > i3, "k=2 inertia {i2} should exceed k=3 inertia {i3}");
    }

    #[test]
    fn single_dim_classification_matches_full_when_dim_discriminates() {
        // Centers differ strongly along dimension 0.
        let pts = three_blobs();
        let km = KMeans::fit(
            &pts,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        );
        for p in &pts {
            let full = km.predict(p);
            // dim 0 separates (0, 10, -10) blobs.
            let single = km.predict_single_dim(0, p[0]);
            assert_eq!(full, single);
        }
    }

    #[test]
    fn parallel_fit_matches_sequential_fit() {
        let pts = three_blobs();
        let config = KMeansConfig {
            k: 3,
            n_init: 4,
            ..Default::default()
        };
        let seq = KMeans::fit(&pts, &config);
        let pool = vetl_exec::ActorPool::new(4);
        let par = KMeans::fit_on(&pts, &config, &pool);
        assert_eq!(seq.centers(), par.centers());
        assert_eq!(seq.inertia(), par.inertia());
    }

    #[test]
    fn k_larger_than_points_is_clamped() {
        let pts = vec![vec![0.0], vec![1.0]];
        let km = KMeans::fit(
            &pts,
            &KMeansConfig {
                k: 10,
                ..Default::default()
            },
        );
        assert_eq!(km.k(), 2);
    }

    #[test]
    fn identical_points_yield_zero_inertia() {
        let pts = vec![vec![2.0, 2.0]; 20];
        let km = KMeans::fit(
            &pts,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        );
        assert!(km.inertia() < 1e-12);
    }

    #[test]
    fn dim_discrimination_identifies_informative_dimension() {
        // Dimension 0 separates the clusters, dimension 1 does not.
        let mut pts = Vec::new();
        for i in 0..40 {
            let x = if i < 20 { 0.0 } else { 5.0 };
            pts.push(vec![x, 1.0]);
        }
        let km = KMeans::fit(
            &pts,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        );
        assert!(km.dim_discrimination(0) > 4.0);
        assert!(km.dim_discrimination(1) < 1e-9);
    }
}
