//! A minimal dense row-major matrix used by the neural network and the GMM.
//!
//! Only the operations the rest of the crate needs are implemented. The
//! matrices involved are tiny (at most a few thousand elements), so the
//! implementation favours obviousness over cache blocking or SIMD.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major `rows × cols` matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows*cols"
        );
        Self { rows, cols, data }
    }

    /// Create a matrix by calling `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow a row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow a row as a slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The flat row-major buffer, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in matvec");
        let mut out = vec![0.0; self.rows];
        self.matvec_into(x, &mut out);
        out
    }

    /// Matrix-vector product writing into a caller-provided buffer
    /// (allocation-free hot path for NN inference).
    ///
    /// Row iteration uses `chunks_exact`, which gives the compiler
    /// constant-stride slices it can bounds-check once and auto-vectorize.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "dimension mismatch in matvec");
        assert_eq!(out.len(), self.rows, "output dimension mismatch in matvec");
        for (row, o) in self.data.chunks_exact(self.cols).zip(out.iter_mut()) {
            *o = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }

    /// Fused `act_input = self * x + bias`, the network's per-layer affine
    /// step in one pass over the weights.
    pub fn matvec_bias_into(&self, x: &[f64], bias: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "dimension mismatch in matvec_bias");
        assert_eq!(
            bias.len(),
            self.rows,
            "bias dimension mismatch in matvec_bias"
        );
        assert_eq!(
            out.len(),
            self.rows,
            "output dimension mismatch in matvec_bias"
        );
        for ((row, o), b) in self
            .data
            .chunks_exact(self.cols)
            .zip(out.iter_mut())
            .zip(bias)
        {
            *o = b + row.iter().zip(x).map(|(a, b)| a * b).sum::<f64>();
        }
    }

    /// Transposed matrix-vector product `selfᵀ * x` (used by backprop).
    pub fn matvec_transposed_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(
            x.len(),
            self.rows,
            "dimension mismatch in matvec_transposed"
        );
        assert_eq!(out.len(), self.cols, "output dimension mismatch");
        out.iter_mut().for_each(|o| *o = 0.0);
        for (row, &xr) in self.data.chunks_exact(self.cols).zip(x.iter()) {
            for (o, &w) in out.iter_mut().zip(row) {
                *o += w * xr;
            }
        }
    }

    /// Rank-1 update `self += scale * a * bᵀ` (used to accumulate weight
    /// gradients: `a` is the upstream error, `b` the layer input).
    pub fn add_outer(&mut self, a: &[f64], b: &[f64], scale: f64) {
        assert_eq!(a.len(), self.rows, "outer-product row mismatch");
        assert_eq!(b.len(), self.cols, "outer-product col mismatch");
        let cols = self.cols;
        for (row, &ar) in self.data.chunks_exact_mut(cols).zip(a.iter()) {
            let s = scale * ar;
            for (w, &bc) in row.iter_mut().zip(b) {
                *w += s * bc;
            }
        }
    }

    /// Set every element to zero (gradient reset between mini-batches).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Frobenius norm, used in tests and gradient-clipping diagnostics.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ... ({} more rows)", self.rows - 8)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_indexes_row_major() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(0, 2)], 2.0);
        assert_eq!(m[(1, 0)], 10.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = m.matvec(&[1.0, 0.0, -1.0]);
        assert_eq!(y, vec![1.0 - 3.0, 4.0 - 6.0]);
    }

    #[test]
    fn matvec_transposed_matches_hand_computation() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut out = vec![0.0; 3];
        m.matvec_transposed_into(&[1.0, 2.0], &mut out);
        // column dot products: [1+8, 2+10, 3+12]
        assert_eq!(out, vec![9.0, 12.0, 15.0]);
    }

    #[test]
    fn add_outer_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0], 1.0);
        assert_eq!(m[(0, 0)], 3.0);
        assert_eq!(m[(0, 1)], 4.0);
        assert_eq!(m[(1, 0)], 6.0);
        assert_eq!(m[(1, 1)], 8.0);
        m.add_outer(&[1.0, 1.0], &[1.0, 1.0], -1.0);
        assert_eq!(m[(1, 1)], 7.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_checks_dimensions() {
        let m = Matrix::zeros(2, 3);
        let _ = m.matvec(&[1.0, 2.0]);
    }

    #[test]
    fn frobenius_norm() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
