//! A minimal dense row-major matrix used by the neural network and the GMM.
//!
//! Only the operations the rest of the crate needs are implemented. The
//! matrices involved are small (at most a few thousand elements), but the
//! matvec kernels sit on the online hot path (every segment classification
//! runs the forecaster network), so they are written in an explicit
//! eight-row **blocked** form: one load of `x[j]` feeds eight independent
//! accumulator chains, which the CPU overlaps freely because no chain
//! depends on another.
//!
//! The blocking never reorders a single output element's additions — each
//! output still accumulates its dot product in ascending column (or row)
//! order, so every result is **bit-identical** to the naive scalar loop
//! (property-tested in `tests/prop.rs`). That is the repo-wide determinism
//! bar: an optimization may change how fast bits arrive, never which bits.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Output rows processed per pass of the blocked kernels.
const BLOCK: usize = 8;

/// Split a `BLOCK * cols` slice into its eight consecutive row slices.
#[inline(always)]
fn split8(rows: &[f64], cols: usize) -> [&[f64]; BLOCK] {
    let (r0, rest) = rows.split_at(cols);
    let (r1, rest) = rest.split_at(cols);
    let (r2, rest) = rest.split_at(cols);
    let (r3, rest) = rest.split_at(cols);
    let (r4, rest) = rest.split_at(cols);
    let (r5, rest) = rest.split_at(cols);
    let (r6, rest) = rest.split_at(cols);
    let (r7, _) = rest.split_at(cols);
    [r0, r1, r2, r3, r4, r5, r6, r7]
}

/// Eight dot products against `x`, one per row of the block. Each chain
/// adds in ascending column order — bit-identical to eight scalar dots —
/// while the eight chains stay independent for instruction-level overlap.
#[inline(always)]
fn dot8(rows: &[f64], cols: usize, x: &[f64]) -> [f64; BLOCK] {
    let [r0, r1, r2, r3, r4, r5, r6, r7] = split8(rows, cols);
    let mut a = [0.0f64; BLOCK];
    for (j, &xj) in x.iter().enumerate() {
        a[0] += r0[j] * xj;
        a[1] += r1[j] * xj;
        a[2] += r2[j] * xj;
        a[3] += r3[j] * xj;
        a[4] += r4[j] * xj;
        a[5] += r5[j] * xj;
        a[6] += r6[j] * xj;
        a[7] += r7[j] * xj;
    }
    a
}

/// Dense row-major `rows × cols` matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows*cols"
        );
        Self { rows, cols, data }
    }

    /// Create a matrix by calling `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow a row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow a row as a slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The flat row-major buffer, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in matvec");
        let mut out = vec![0.0; self.rows];
        self.matvec_into(x, &mut out);
        out
    }

    /// Matrix-vector product writing into a caller-provided buffer
    /// (allocation-free hot path for NN inference).
    ///
    /// Blocked eight output rows per pass (`dot8`); the tail rows fall
    /// back to the scalar loop the block is bit-identical to.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "dimension mismatch in matvec");
        assert_eq!(out.len(), self.rows, "output dimension mismatch in matvec");
        let cols = self.cols;
        let mut rows = self.data.chunks_exact(cols * BLOCK);
        let mut outs = out.chunks_exact_mut(BLOCK);
        for (rb, ob) in (&mut rows).zip(&mut outs) {
            ob.copy_from_slice(&dot8(rb, cols, x));
        }
        for (row, o) in rows
            .remainder()
            .chunks_exact(cols)
            .zip(outs.into_remainder())
        {
            *o = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }

    /// Fused `act_input = self * x + bias`, the network's per-layer affine
    /// step in one pass over the weights.
    ///
    /// Blocked like [`matvec_into`](Self::matvec_into); the bias is added
    /// *after* the dot product settles, exactly where the scalar form adds
    /// it, so the blocking stays bit-transparent.
    pub fn matvec_bias_into(&self, x: &[f64], bias: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "dimension mismatch in matvec_bias");
        assert_eq!(
            bias.len(),
            self.rows,
            "bias dimension mismatch in matvec_bias"
        );
        assert_eq!(
            out.len(),
            self.rows,
            "output dimension mismatch in matvec_bias"
        );
        let cols = self.cols;
        let mut rows = self.data.chunks_exact(cols * BLOCK);
        let mut outs = out.chunks_exact_mut(BLOCK);
        let mut biases = bias.chunks_exact(BLOCK);
        for ((rb, ob), bb) in (&mut rows).zip(&mut outs).zip(&mut biases) {
            let d = dot8(rb, cols, x);
            for k in 0..BLOCK {
                ob[k] = bb[k] + d[k];
            }
        }
        for ((row, o), b) in rows
            .remainder()
            .chunks_exact(cols)
            .zip(outs.into_remainder())
            .zip(biases.remainder())
        {
            *o = b + row.iter().zip(x).map(|(a, b)| a * b).sum::<f64>();
        }
    }

    /// Transposed matrix-vector product `selfᵀ * x` (used by backprop).
    ///
    /// Blocked eight *input* rows per outer pass: each output element takes
    /// its eight chained additions in ascending row order — the same chain
    /// the row-at-a-time loop builds — while `out` is loaded and stored
    /// once per block instead of once per row.
    pub fn matvec_transposed_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(
            x.len(),
            self.rows,
            "dimension mismatch in matvec_transposed"
        );
        assert_eq!(out.len(), self.cols, "output dimension mismatch");
        out.iter_mut().for_each(|o| *o = 0.0);
        let cols = self.cols;
        let mut rows = self.data.chunks_exact(cols * BLOCK);
        let mut xs = x.chunks_exact(BLOCK);
        for (rb, xb) in (&mut rows).zip(&mut xs) {
            let [r0, r1, r2, r3, r4, r5, r6, r7] = split8(rb, cols);
            for (c, o) in out.iter_mut().enumerate() {
                let mut acc = *o;
                acc += r0[c] * xb[0];
                acc += r1[c] * xb[1];
                acc += r2[c] * xb[2];
                acc += r3[c] * xb[3];
                acc += r4[c] * xb[4];
                acc += r5[c] * xb[5];
                acc += r6[c] * xb[6];
                acc += r7[c] * xb[7];
                *o = acc;
            }
        }
        for (row, &xr) in rows.remainder().chunks_exact(cols).zip(xs.remainder()) {
            for (o, &w) in out.iter_mut().zip(row) {
                *o += w * xr;
            }
        }
    }

    /// Rank-1 update `self += scale * a * bᵀ` (used to accumulate weight
    /// gradients: `a` is the upstream error, `b` the layer input).
    pub fn add_outer(&mut self, a: &[f64], b: &[f64], scale: f64) {
        assert_eq!(a.len(), self.rows, "outer-product row mismatch");
        assert_eq!(b.len(), self.cols, "outer-product col mismatch");
        let cols = self.cols;
        for (row, &ar) in self.data.chunks_exact_mut(cols).zip(a.iter()) {
            let s = scale * ar;
            for (w, &bc) in row.iter_mut().zip(b) {
                *w += s * bc;
            }
        }
    }

    /// Set every element to zero (gradient reset between mini-batches).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Frobenius norm, used in tests and gradient-clipping diagnostics.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ... ({} more rows)", self.rows - 8)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_indexes_row_major() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(0, 2)], 2.0);
        assert_eq!(m[(1, 0)], 10.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = m.matvec(&[1.0, 0.0, -1.0]);
        assert_eq!(y, vec![1.0 - 3.0, 4.0 - 6.0]);
    }

    #[test]
    fn matvec_transposed_matches_hand_computation() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut out = vec![0.0; 3];
        m.matvec_transposed_into(&[1.0, 2.0], &mut out);
        // column dot products: [1+8, 2+10, 3+12]
        assert_eq!(out, vec![9.0, 12.0, 15.0]);
    }

    #[test]
    fn add_outer_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0], 1.0);
        assert_eq!(m[(0, 0)], 3.0);
        assert_eq!(m[(0, 1)], 4.0);
        assert_eq!(m[(1, 0)], 6.0);
        assert_eq!(m[(1, 1)], 8.0);
        m.add_outer(&[1.0, 1.0], &[1.0, 1.0], -1.0);
        assert_eq!(m[(1, 1)], 7.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_checks_dimensions() {
        let m = Matrix::zeros(2, 3);
        let _ = m.matvec(&[1.0, 2.0]);
    }

    #[test]
    fn frobenius_norm() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
