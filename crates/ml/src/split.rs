//! Deterministic train/validation splitting helpers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Split `n` sample indices into `(train, val)` with `val_fraction` of the
/// samples held out, shuffled deterministically by `seed`.
///
/// At least one sample always remains in the training set.
pub fn train_val_split(n: usize, val_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(n > 0, "cannot split an empty dataset");
    assert!(
        (0.0..1.0).contains(&val_fraction),
        "val_fraction must be in [0,1)"
    );
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..idx.len()).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    let n_val = ((n as f64) * val_fraction).round() as usize;
    let n_val = n_val.min(n - 1);
    let val = idx[..n_val].to_vec();
    let train = idx[n_val..].to_vec();
    (train, val)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_a_partition() {
        let (train, val) = train_val_split(100, 0.2, 1);
        assert_eq!(train.len(), 80);
        assert_eq!(val.len(), 20);
        let mut all: Vec<usize> = train.iter().chain(val.iter()).cloned().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let a = train_val_split(50, 0.3, 7);
        let b = train_val_split(50, 0.3, 7);
        assert_eq!(a, b);
        let c = train_val_split(50, 0.3, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn training_set_never_empty() {
        let (train, val) = train_val_split(1, 0.9, 1);
        assert_eq!(train.len(), 1);
        assert!(val.is_empty());
    }
}
