//! Evaluation metrics used throughout the reproduction.
//!
//! The paper reports the forecaster's **Mean Absolute Error** over predicted
//! content-category histograms (Tables 5 and 6) and the knob switcher's
//! classification **accuracy** (Table 4).

/// Mean absolute error between two equal-length prediction/target sequences
/// of vectors: `mean_i mean_j |p_ij - t_ij|`.
pub fn mean_absolute_error(predictions: &[Vec<f64>], targets: &[Vec<f64>]) -> f64 {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "prediction/target count mismatch"
    );
    assert!(!predictions.is_empty(), "MAE of an empty set is undefined");
    let mut total = 0.0;
    let mut count = 0usize;
    for (p, t) in predictions.iter().zip(targets.iter()) {
        assert_eq!(p.len(), t.len(), "prediction/target dimension mismatch");
        for (&pi, &ti) in p.iter().zip(t.iter()) {
            total += (pi - ti).abs();
            count += 1;
        }
    }
    total / count as f64
}

/// Mean squared error with the same conventions as [`mean_absolute_error`].
pub fn mean_squared_error(predictions: &[Vec<f64>], targets: &[Vec<f64>]) -> f64 {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "prediction/target count mismatch"
    );
    assert!(!predictions.is_empty(), "MSE of an empty set is undefined");
    let mut total = 0.0;
    let mut count = 0usize;
    for (p, t) in predictions.iter().zip(targets.iter()) {
        assert_eq!(p.len(), t.len(), "prediction/target dimension mismatch");
        for (&pi, &ti) in p.iter().zip(t.iter()) {
            total += (pi - ti) * (pi - ti);
            count += 1;
        }
    }
    total / count as f64
}

/// Fraction of positions where the predicted label equals the true label.
pub fn accuracy(predicted: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "label count mismatch");
    if predicted.is_empty() {
        return 1.0;
    }
    let hits = predicted
        .iter()
        .zip(truth.iter())
        .filter(|(a, b)| a == b)
        .count();
    hits as f64 / predicted.len() as f64
}

/// `n_classes × n_classes` confusion matrix; `result[truth][predicted]`.
pub fn confusion_matrix(predicted: &[usize], truth: &[usize], n_classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(predicted.len(), truth.len(), "label count mismatch");
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (&p, &t) in predicted.iter().zip(truth.iter()) {
        assert!(p < n_classes && t < n_classes, "label out of range");
        m[t][p] += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_of_identical_vectors_is_zero() {
        let v = vec![vec![0.1, 0.9], vec![0.5, 0.5]];
        assert_eq!(mean_absolute_error(&v, &v), 0.0);
    }

    #[test]
    fn mae_hand_computed() {
        let p = vec![vec![0.0, 1.0]];
        let t = vec![vec![0.5, 0.5]];
        assert!((mean_absolute_error(&p, &t) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mse_hand_computed() {
        let p = vec![vec![0.0, 1.0]];
        let t = vec![vec![0.5, 0.5]];
        assert!((mean_squared_error(&p, &t) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[0, 1, 2, 1], &[0, 1, 1, 1]), 0.75);
        assert_eq!(accuracy(&[], &[]), 1.0);
    }

    #[test]
    fn confusion_matrix_layout() {
        let m = confusion_matrix(&[0, 1, 1], &[0, 0, 1], 2);
        assert_eq!(m[0][0], 1); // truth 0 predicted 0
        assert_eq!(m[0][1], 1); // truth 0 predicted 1
        assert_eq!(m[1][1], 1); // truth 1 predicted 1
        assert_eq!(m[1][0], 0);
    }

    #[test]
    #[should_panic(expected = "count mismatch")]
    fn mae_checks_lengths() {
        let _ = mean_absolute_error(&[vec![0.0]], &[]);
    }
}
