//! # vetl-ml — from-scratch ML substrate for the Skyscraper reproduction
//!
//! The Skyscraper paper ("Extract-Transform-Load for Video Streams", VLDB
//! 2023) relies on three small machine-learning components:
//!
//! * **KMeans** clustering over per-segment *quality vectors* to construct
//!   content categories (§3.2),
//! * a **Gaussian mixture model** as the clustering ablation (Appendix B.2),
//! * a tiny **feed-forward neural network** that forecasts the content
//!   category distribution of the next planned interval (§3.3, Appendix K:
//!   `input → 16 ReLU → 8 ReLU → |C| softmax`).
//!
//! The original system uses scikit-learn and an off-the-shelf deep-learning
//! framework; this crate implements the same algorithms from scratch because
//! mature ML crates are not available in the reproduction environment. All
//! problem sizes in the paper are tiny (≤ 8 clusters, ≤ 64-dimensional
//! inputs, ≈ 1 200 training samples), so clarity is preferred over vectorized
//! performance — although the hot loops are written allocation-free.

pub mod gmm;
pub mod kmeans;
pub mod loss;
pub mod matrix;
pub mod metrics;
pub mod nn;
pub mod optim;
pub mod split;

pub use gmm::{GaussianMixture, GmmConfig};
pub use kmeans::{KMeans, KMeansConfig};
pub use loss::Loss;
pub use matrix::Matrix;
pub use metrics::{accuracy, confusion_matrix, mean_absolute_error, mean_squared_error};
pub use nn::{Activation, Layer, Mlp, MlpBuilder};
pub use optim::{Adam, Optimizer, Sgd};
pub use split::train_val_split;
