//! Diagonal-covariance Gaussian mixture model fitted with EM.
//!
//! Appendix B.2 of the paper compares the KMeans content categorization
//! against a Gaussian mixture model and finds no end-to-end difference
//! (Fig. 17). This module provides that ablation. Components use diagonal
//! covariances, which is sufficient for the low-dimensional quality vectors
//! Skyscraper clusters.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::kmeans::{KMeans, KMeansConfig};

/// Configuration for [`GaussianMixture::fit`].
#[derive(Debug, Clone)]
pub struct GmmConfig {
    /// Number of mixture components.
    pub k: usize,
    /// Maximum EM iterations.
    pub max_iter: usize,
    /// Convergence threshold on the per-point average log-likelihood.
    pub tol: f64,
    /// Variance floor guarding against singular components.
    pub var_floor: f64,
    /// RNG seed (KMeans initialization).
    pub seed: u64,
}

impl Default for GmmConfig {
    fn default() -> Self {
        Self {
            k: 4,
            max_iter: 200,
            tol: 1e-7,
            var_floor: 1e-6,
            seed: 7,
        }
    }
}

/// A fitted mixture of diagonal Gaussians.
#[derive(Debug, Clone)]
pub struct GaussianMixture {
    weights: Vec<f64>,
    means: Vec<Vec<f64>>,
    variances: Vec<Vec<f64>>,
    log_likelihood: f64,
    iterations: usize,
}

impl GaussianMixture {
    /// Fit the mixture with EM, initialized from a KMeans solution (the
    /// standard warm start; also what scikit-learn does by default).
    pub fn fit(points: &[Vec<f64>], config: &GmmConfig) -> Self {
        assert!(config.k > 0, "k must be positive");
        assert!(!points.is_empty(), "cannot fit a GMM on an empty point set");
        let dim = points[0].len();
        assert!(
            points.iter().all(|p| p.len() == dim),
            "inconsistent point dimensions"
        );
        let _rng = StdRng::seed_from_u64(config.seed);

        let km = KMeans::fit(
            points,
            &KMeansConfig {
                k: config.k,
                seed: config.seed,
                ..Default::default()
            },
        );
        let k = km.k();
        let mut means: Vec<Vec<f64>> = km.centers().to_vec();
        let mut weights = vec![1.0 / k as f64; k];
        let global_var = global_variance(points, config.var_floor);
        let mut variances = vec![global_var.clone(); k];

        let n = points.len();
        let mut resp = vec![vec![0.0f64; k]; n];
        let mut prev_ll = f64::NEG_INFINITY;
        let mut ll = prev_ll;
        let mut iterations = 0;

        let mut logp = vec![0.0f64; k];
        for iter in 0..config.max_iter {
            iterations = iter + 1;
            // E-step: responsibilities via log-sum-exp. Log-weights are
            // hoisted out of the point loop (one ln per component per
            // iteration instead of per point).
            let log_w: Vec<f64> = weights.iter().map(|w| w.ln()).collect();
            ll = 0.0;
            for (p, r) in points.iter().zip(resp.iter_mut()) {
                for (((lp, &lw), mean), var) in
                    logp.iter_mut().zip(&log_w).zip(&means).zip(&variances)
                {
                    *lp = lw + diag_log_pdf(p, mean, var);
                }
                let m = logp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let sum: f64 = logp.iter().map(|l| (l - m).exp()).sum();
                let lse = m + sum.ln();
                ll += lse;
                for (rc, &lp) in r.iter_mut().zip(logp.iter()) {
                    *rc = (lp - lse).exp();
                }
            }
            ll /= n as f64;

            // M-step.
            for c in 0..k {
                let nc: f64 = resp.iter().map(|r| r[c]).sum();
                let nc_safe = nc.max(1e-12);
                weights[c] = nc / n as f64;
                let mean = &mut means[c];
                mean.iter_mut().for_each(|v| *v = 0.0);
                for (p, r) in points.iter().zip(resp.iter()) {
                    for (m, &x) in mean.iter_mut().zip(p.iter()) {
                        *m += r[c] * x;
                    }
                }
                mean.iter_mut().for_each(|v| *v /= nc_safe);
                let var = &mut variances[c];
                var.iter_mut().for_each(|v| *v = 0.0);
                for (p, r) in points.iter().zip(resp.iter()) {
                    for ((v, &x), &m) in var.iter_mut().zip(p.iter()).zip(mean.iter()) {
                        *v += r[c] * (x - m) * (x - m);
                    }
                }
                for v in var.iter_mut() {
                    *v = (*v / nc_safe).max(config.var_floor);
                }
            }

            if (ll - prev_ll).abs() < config.tol {
                break;
            }
            prev_ll = ll;
        }

        Self {
            weights,
            means,
            variances,
            log_likelihood: ll,
            iterations,
        }
    }

    /// Mixture weights (sum to one).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Component means — the GMM analogue of KMeans cluster centers,
    /// consumed by the content categorization ablation.
    pub fn means(&self) -> &[Vec<f64>] {
        &self.means
    }

    /// Diagonal variances per component.
    pub fn variances(&self) -> &[Vec<f64>] {
        &self.variances
    }

    /// Final per-point average log-likelihood.
    pub fn log_likelihood(&self) -> f64 {
        self.log_likelihood
    }

    /// EM iterations executed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Number of components.
    pub fn k(&self) -> usize {
        self.means.len()
    }

    /// Per-component log joint density `ln w_c + ln N(point | c)`.
    fn log_joint(&self, point: &[f64]) -> Vec<f64> {
        self.weights
            .iter()
            .zip(&self.means)
            .zip(&self.variances)
            .map(|((w, mean), var)| w.ln() + diag_log_pdf(point, mean, var))
            .collect()
    }

    /// Most-probable component for a point (MAP assignment).
    pub fn predict(&self, point: &[f64]) -> usize {
        self.log_joint(point)
            .into_iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite log density"))
            .expect("at least one component")
            .0
    }

    /// Posterior responsibilities `p(c | point)`.
    pub fn predict_proba(&self, point: &[f64]) -> Vec<f64> {
        let logp = self.log_joint(point);
        let m = logp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let sum: f64 = logp.iter().map(|l| (l - m).exp()).sum();
        let lse = m + sum.ln();
        logp.iter().map(|l| (l - lse).exp()).collect()
    }
}

fn global_variance(points: &[Vec<f64>], floor: f64) -> Vec<f64> {
    let dim = points[0].len();
    let n = points.len() as f64;
    let mut mean = vec![0.0; dim];
    for p in points {
        for (m, &x) in mean.iter_mut().zip(p.iter()) {
            *m += x;
        }
    }
    mean.iter_mut().for_each(|m| *m /= n);
    let mut var = vec![0.0; dim];
    for p in points {
        for ((v, &x), &m) in var.iter_mut().zip(p.iter()).zip(mean.iter()) {
            *v += (x - m) * (x - m);
        }
    }
    var.iter_mut().for_each(|v| *v = (*v / n).max(floor));
    var
}

/// Log density of a diagonal Gaussian.
fn diag_log_pdf(x: &[f64], mean: &[f64], var: &[f64]) -> f64 {
    const LOG_2PI: f64 = 1.8378770664093453;
    x.iter()
        .zip(mean)
        .zip(var)
        .map(|((&xi, &mi), &vi)| {
            let d = xi - mi;
            -0.5 * (LOG_2PI + vi.ln() + d * d / vi)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(3);
        let mut pts = Vec::new();
        for &(cx, s) in &[(0.0, 0.3), (8.0, 0.6)] {
            for _ in 0..80 {
                pts.push(vec![
                    cx + s * (rng.gen::<f64>() - 0.5),
                    s * (rng.gen::<f64>() - 0.5),
                ]);
            }
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs();
        let gmm = GaussianMixture::fit(
            &pts,
            &GmmConfig {
                k: 2,
                ..Default::default()
            },
        );
        let a = gmm.predict(&pts[0]);
        let b = gmm.predict(&pts[100]);
        assert_ne!(a, b);
        assert!(pts[..80].iter().all(|p| gmm.predict(p) == a));
        assert!(pts[80..].iter().all(|p| gmm.predict(p) == b));
    }

    #[test]
    fn weights_sum_to_one() {
        let pts = two_blobs();
        let gmm = GaussianMixture::fit(
            &pts,
            &GmmConfig {
                k: 3,
                ..Default::default()
            },
        );
        let s: f64 = gmm.weights().iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn posterior_is_a_distribution() {
        let pts = two_blobs();
        let gmm = GaussianMixture::fit(
            &pts,
            &GmmConfig {
                k: 2,
                ..Default::default()
            },
        );
        let p = gmm.predict_proba(&[4.0, 0.0]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn log_likelihood_improves_over_iterations() {
        // EM guarantees monotone likelihood; check the final value beats a
        // one-iteration fit.
        let pts = two_blobs();
        let short = GaussianMixture::fit(
            &pts,
            &GmmConfig {
                k: 2,
                max_iter: 1,
                ..Default::default()
            },
        );
        let long = GaussianMixture::fit(
            &pts,
            &GmmConfig {
                k: 2,
                max_iter: 100,
                ..Default::default()
            },
        );
        assert!(long.log_likelihood() >= short.log_likelihood() - 1e-9);
    }

    #[test]
    fn variance_floor_prevents_singularities() {
        let pts = vec![vec![1.0, 1.0]; 30]; // zero-variance data
        let gmm = GaussianMixture::fit(
            &pts,
            &GmmConfig {
                k: 2,
                ..Default::default()
            },
        );
        for var in gmm.variances() {
            assert!(var.iter().all(|&v| v >= 1e-6));
        }
    }
}
