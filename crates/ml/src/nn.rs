//! A small dense feed-forward network with backpropagation.
//!
//! Appendix K of the paper specifies the forecasting model used by every
//! workload:
//!
//! ```text
//! input --> 16 units (RELU) --> 8 units (RELU) --> |C| units (softmax)
//! ```
//!
//! trained for 40 epochs with a 20 % validation split, keeping the weights of
//! the best validation epoch. [`Mlp::fit`] implements exactly that recipe.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::loss::Loss;
use crate::matrix::Matrix;
use crate::optim::Optimizer;

/// Element-wise layer activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity (linear output head).
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Softmax over the layer's outputs (distribution head).
    Softmax,
}

impl Activation {
    /// Apply the activation in place to pre-activations `z`.
    fn forward(&self, z: &mut [f64]) {
        match self {
            Activation::Identity => {}
            Activation::Relu => z.iter_mut().for_each(|v| *v = v.max(0.0)),
            Activation::Softmax => {
                let m = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut sum = 0.0;
                for v in z.iter_mut() {
                    *v = (*v - m).exp();
                    sum += *v;
                }
                z.iter_mut().for_each(|v| *v /= sum);
            }
        }
    }

    /// Map the gradient w.r.t. the activation output `grad_a` to the gradient
    /// w.r.t. the pre-activation, given the activation output `a`.
    fn backward(&self, a: &[f64], grad_a: &[f64], grad_z: &mut [f64]) {
        match self {
            Activation::Identity => grad_z.copy_from_slice(grad_a),
            Activation::Relu => {
                for ((gz, &ai), &ga) in grad_z.iter_mut().zip(a.iter()).zip(grad_a.iter()) {
                    *gz = if ai > 0.0 { ga } else { 0.0 };
                }
            }
            Activation::Softmax => {
                // Full Jacobian-vector product: dz_i = a_i (g_i - Σ_j g_j a_j).
                let dot: f64 = grad_a.iter().zip(a.iter()).map(|(g, a)| g * a).sum();
                for ((gz, &ai), &ga) in grad_z.iter_mut().zip(a.iter()).zip(grad_a.iter()) {
                    *gz = ai * (ga - dot);
                }
            }
        }
    }
}

/// A dense layer: `a = act(W·x + b)`.
#[derive(Debug, Clone)]
pub struct Layer {
    /// Weight matrix, `out_dim × in_dim`.
    pub weights: Matrix,
    /// Bias vector, `out_dim`.
    pub bias: Vec<f64>,
    /// Activation applied to the affine output.
    pub activation: Activation,
}

impl Layer {
    fn new(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut StdRng) -> Self {
        // He initialization for ReLU layers, Xavier-ish otherwise.
        let scale = match activation {
            Activation::Relu => (2.0 / in_dim as f64).sqrt(),
            _ => (1.0 / in_dim as f64).sqrt(),
        };
        let weights = Matrix::from_fn(out_dim, in_dim, |_, _| {
            (rng.gen::<f64>() * 2.0 - 1.0) * scale
        });
        Self {
            weights,
            bias: vec![0.0; out_dim],
            activation,
        }
    }

    fn out_dim(&self) -> usize {
        self.bias.len()
    }

    fn in_dim(&self) -> usize {
        self.weights.cols()
    }
}

/// Builder for [`Mlp`].
#[derive(Debug, Clone)]
pub struct MlpBuilder {
    input_dim: usize,
    layers: Vec<(usize, Activation)>,
    seed: u64,
}

impl MlpBuilder {
    /// Start a network taking `input_dim` features.
    pub fn new(input_dim: usize) -> Self {
        Self {
            input_dim,
            layers: Vec::new(),
            seed: 42,
        }
    }

    /// Append a dense layer of `units` outputs with `activation`.
    pub fn layer(mut self, units: usize, activation: Activation) -> Self {
        assert!(units > 0, "layer must have at least one unit");
        self.layers.push((units, activation));
        self
    }

    /// Seed for weight initialization (deterministic builds).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Materialize the network.
    pub fn build(self) -> Mlp {
        assert!(!self.layers.is_empty(), "network needs at least one layer");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut layers = Vec::with_capacity(self.layers.len());
        let mut in_dim = self.input_dim;
        for (units, act) in self.layers {
            layers.push(Layer::new(in_dim, units, act, &mut rng));
            in_dim = units;
        }
        Mlp { layers }
    }
}

/// Report returned by [`Mlp::fit`].
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub train_loss: Vec<f64>,
    /// Mean validation loss per epoch (empty if no validation split).
    pub val_loss: Vec<f64>,
    /// Epoch whose weights were kept (best validation loss; last epoch when
    /// there is no validation set).
    pub best_epoch: usize,
}

/// Training hyperparameters for [`Mlp::fit`]; paper defaults (Appendix K).
#[derive(Debug, Clone)]
pub struct FitConfig {
    /// Number of passes over the training data (paper: 40).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Fraction of samples held out for validation (paper: 0.2).
    pub val_fraction: f64,
    /// Loss to optimize.
    pub loss: Loss,
    /// Shuffling / split seed.
    pub seed: u64,
}

impl Default for FitConfig {
    fn default() -> Self {
        Self {
            epochs: 40,
            batch_size: 16,
            val_fraction: 0.2,
            loss: Loss::CrossEntropy,
            seed: 13,
        }
    }
}

/// A multi-layer perceptron.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Layer>,
}

impl Mlp {
    /// The paper's forecaster architecture: `input → 16 ReLU → 8 ReLU →
    /// out softmax` (Appendix K).
    pub fn forecaster(input_dim: usize, out_dim: usize, seed: u64) -> Self {
        MlpBuilder::new(input_dim)
            .layer(16, Activation::Relu)
            .layer(8, Activation::Relu)
            .layer(out_dim, Activation::Softmax)
            .seed(seed)
            .build()
    }

    /// Rebuild a network from explicit layers (deserialization). Layers must
    /// chain: each layer's input dimension equals the previous layer's
    /// output dimension. Returns `None` for an empty or non-chaining stack.
    pub fn from_layers(layers: Vec<Layer>) -> Option<Self> {
        if layers.is_empty() {
            return None;
        }
        for w in layers.windows(2) {
            if w[1].in_dim() != w[0].out_dim() {
                return None;
            }
        }
        Some(Self { layers })
    }

    /// Layers, in forward order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Input feature count.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weights.rows() * l.weights.cols() + l.bias.len())
            .sum()
    }

    /// Run inference.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        let mut cur = x.to_vec();
        for layer in &self.layers {
            let mut z = vec![0.0; layer.out_dim()];
            layer.weights.matvec_bias_into(&cur, &layer.bias, &mut z);
            layer.activation.forward(&mut z);
            cur = z;
        }
        cur
    }

    /// Forward pass retaining every layer's activation (index 0 = input).
    fn forward_cached(&self, x: &[f64]) -> Vec<Vec<f64>> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.to_vec());
        for layer in &self.layers {
            let prev = acts.last().expect("non-empty");
            let mut z = vec![0.0; layer.out_dim()];
            layer.weights.matvec_bias_into(prev, &layer.bias, &mut z);
            layer.activation.forward(&mut z);
            acts.push(z);
        }
        acts
    }

    /// Accumulate gradients for one sample into `grads` (same shapes as the
    /// network). Returns the loss value.
    fn accumulate_gradients(
        &self,
        x: &[f64],
        target: &[f64],
        loss: Loss,
        grads: &mut [(Matrix, Vec<f64>)],
    ) -> f64 {
        let acts = self.forward_cached(x);
        let output = acts.last().expect("non-empty");
        let loss_value = loss.value(output, target);

        let mut grad_a = vec![0.0; output.len()];
        loss.grad_into(output, target, &mut grad_a);

        for (i, layer) in self.layers.iter().enumerate().rev() {
            let a = &acts[i + 1];
            let input = &acts[i];
            let mut grad_z = vec![0.0; a.len()];
            layer.activation.backward(a, &grad_a, &mut grad_z);

            let (ref mut gw, ref mut gb) = grads[i];
            gw.add_outer(&grad_z, input, 1.0);
            for (b, &g) in gb.iter_mut().zip(grad_z.iter()) {
                *b += g;
            }

            if i > 0 {
                let mut grad_prev = vec![0.0; input.len()];
                layer
                    .weights
                    .matvec_transposed_into(&grad_z, &mut grad_prev);
                grad_a = grad_prev;
            }
        }
        loss_value
    }

    /// Flatten parameters into `buf` (deterministic layer order).
    fn write_params(&self, buf: &mut Vec<f64>) {
        buf.clear();
        for layer in &self.layers {
            buf.extend_from_slice(layer.weights.as_slice());
            buf.extend_from_slice(&layer.bias);
        }
    }

    /// Load parameters from a flat buffer produced by [`Self::write_params`].
    fn read_params(&mut self, buf: &[f64]) {
        let mut off = 0;
        for layer in &mut self.layers {
            let w = layer.weights.as_mut_slice();
            w.copy_from_slice(&buf[off..off + w.len()]);
            off += w.len();
            let b_len = layer.bias.len();
            layer.bias.copy_from_slice(&buf[off..off + b_len]);
            off += b_len;
        }
        assert_eq!(off, buf.len(), "parameter buffer length mismatch");
    }

    /// Supervised training following the paper's recipe: mini-batch gradient
    /// descent, `val_fraction` hold-out, and restoring the weights of the
    /// best validation epoch at the end.
    pub fn fit(
        &mut self,
        inputs: &[Vec<f64>],
        targets: &[Vec<f64>],
        optimizer: &mut dyn Optimizer,
        config: &FitConfig,
    ) -> TrainReport {
        assert_eq!(
            inputs.len(),
            targets.len(),
            "inputs/targets length mismatch"
        );
        assert!(!inputs.is_empty(), "cannot train on an empty dataset");

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        shuffle(&mut order, &mut rng);
        let n_val = ((inputs.len() as f64) * config.val_fraction).round() as usize;
        let n_val = n_val.min(inputs.len().saturating_sub(1));
        let (val_idx, train_idx) = order.split_at(n_val);
        let mut train_order: Vec<usize> = train_idx.to_vec();

        let mut grads: Vec<(Matrix, Vec<f64>)> = self
            .layers
            .iter()
            .map(|l| {
                (
                    Matrix::zeros(l.weights.rows(), l.weights.cols()),
                    vec![0.0; l.bias.len()],
                )
            })
            .collect();
        let mut flat_params = Vec::new();
        let mut flat_grads = Vec::new();

        let mut report = TrainReport {
            train_loss: Vec::new(),
            val_loss: Vec::new(),
            best_epoch: 0,
        };
        let mut best_val = f64::INFINITY;
        let mut best_weights: Option<Vec<f64>> = None;

        for epoch in 0..config.epochs {
            shuffle(&mut train_order, &mut rng);
            let mut epoch_loss = 0.0;
            for chunk in train_order.chunks(config.batch_size.max(1)) {
                for g in grads.iter_mut() {
                    g.0.fill_zero();
                    g.1.iter_mut().for_each(|v| *v = 0.0);
                }
                for &i in chunk {
                    epoch_loss +=
                        self.accumulate_gradients(&inputs[i], &targets[i], config.loss, &mut grads);
                }
                let scale = 1.0 / chunk.len() as f64;
                flat_grads.clear();
                for (gw, gb) in &grads {
                    flat_grads.extend(gw.as_slice().iter().map(|v| v * scale));
                    flat_grads.extend(gb.iter().map(|v| v * scale));
                }
                self.write_params(&mut flat_params);
                optimizer.step(&mut flat_params, &flat_grads);
                self.read_params(&flat_params);
            }
            report
                .train_loss
                .push(epoch_loss / train_order.len().max(1) as f64);

            if !val_idx.is_empty() {
                let val_loss = val_idx
                    .iter()
                    .map(|&i| config.loss.value(&self.forward(&inputs[i]), &targets[i]))
                    .sum::<f64>()
                    / val_idx.len() as f64;
                report.val_loss.push(val_loss);
                if val_loss < best_val {
                    best_val = val_loss;
                    report.best_epoch = epoch;
                    self.write_params(&mut flat_params);
                    best_weights = Some(flat_params.clone());
                }
            } else {
                report.best_epoch = epoch;
            }
        }

        if let Some(w) = best_weights {
            self.read_params(&w);
        }
        report
    }
}

/// Fisher-Yates shuffle (avoids pulling in the `rand` shuffle trait for a
/// single call site).
fn shuffle(v: &mut [usize], rng: &mut StdRng) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;

    #[test]
    fn forecaster_shape_matches_appendix_k() {
        let net = Mlp::forecaster(24, 4, 1);
        assert_eq!(net.layers().len(), 3);
        assert_eq!(net.layers()[0].out_dim(), 16);
        assert_eq!(net.layers()[1].out_dim(), 8);
        assert_eq!(net.output_dim(), 4);
        assert_eq!(net.param_count(), 24 * 16 + 16 + 16 * 8 + 8 + 8 * 4 + 4);
    }

    #[test]
    fn softmax_head_outputs_distribution() {
        let net = Mlp::forecaster(6, 3, 2);
        let y = net.forward(&[0.1, 0.9, 0.3, 0.2, 0.5, 0.0]);
        assert_eq!(y.len(), 3);
        assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(y.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn gradients_match_finite_differences() {
        // Check backprop on a small ReLU+softmax net.
        let mut net = MlpBuilder::new(3)
            .layer(5, Activation::Relu)
            .layer(3, Activation::Softmax)
            .seed(11)
            .build();
        let x = [0.4, -0.2, 0.9];
        let t = [0.2, 0.5, 0.3];
        let mut grads: Vec<(Matrix, Vec<f64>)> = net
            .layers
            .iter()
            .map(|l| {
                (
                    Matrix::zeros(l.weights.rows(), l.weights.cols()),
                    vec![0.0; l.bias.len()],
                )
            })
            .collect();
        net.accumulate_gradients(&x, &t, Loss::CrossEntropy, &mut grads);

        let mut flat = Vec::new();
        net.write_params(&mut flat);
        let eps = 1e-6;
        // Spot-check a handful of parameters against central differences.
        for &pi in &[0usize, 3, 7, 14, 19] {
            let mut plus = flat.clone();
            plus[pi] += eps;
            let mut minus = flat.clone();
            minus[pi] -= eps;
            net.read_params(&plus);
            let lp = Loss::CrossEntropy.value(&net.forward(&x), &t);
            net.read_params(&minus);
            let lm = Loss::CrossEntropy.value(&net.forward(&x), &t);
            let fd = (lp - lm) / (2.0 * eps);
            // Recover analytic gradient at flat index pi.
            let mut analytic_flat = Vec::new();
            for (gw, gb) in &grads {
                analytic_flat.extend_from_slice(gw.as_slice());
                analytic_flat.extend_from_slice(gb);
            }
            let a = analytic_flat[pi];
            assert!(
                (a - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                "param {pi}: analytic {a} vs fd {fd}"
            );
            net.read_params(&flat);
        }
    }

    #[test]
    fn learns_a_simple_mapping() {
        // Map a 2-bit one-hot-ish input to a target distribution.
        let inputs: Vec<Vec<f64>> = vec![vec![1.0, 0.0], vec![0.0, 1.0]]
            .into_iter()
            .cycle()
            .take(64)
            .collect();
        let targets: Vec<Vec<f64>> = vec![vec![0.9, 0.1], vec![0.1, 0.9]]
            .into_iter()
            .cycle()
            .take(64)
            .collect();
        let mut net = MlpBuilder::new(2)
            .layer(8, Activation::Relu)
            .layer(2, Activation::Softmax)
            .seed(5)
            .build();
        let mut opt = Adam::new(0.05);
        let report = net.fit(
            &inputs,
            &targets,
            &mut opt,
            &FitConfig {
                epochs: 60,
                batch_size: 8,
                ..Default::default()
            },
        );
        assert!(
            report.train_loss.last().unwrap() < &0.45,
            "loss {:?}",
            report.train_loss.last()
        );
        let y = net.forward(&[1.0, 0.0]);
        assert!(y[0] > 0.7, "expected ~0.9 got {y:?}");
    }

    #[test]
    fn fit_restores_best_validation_weights() {
        let inputs: Vec<Vec<f64>> = (0..40).map(|i| vec![(i % 2) as f64]).collect();
        let targets: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                if i % 2 == 0 {
                    vec![1.0, 0.0]
                } else {
                    vec![0.0, 1.0]
                }
            })
            .collect();
        let mut net = MlpBuilder::new(1)
            .layer(4, Activation::Relu)
            .layer(2, Activation::Softmax)
            .seed(3)
            .build();
        let mut opt = Adam::new(0.05);
        let report = net.fit(&inputs, &targets, &mut opt, &FitConfig::default());
        assert!(!report.val_loss.is_empty());
        assert!(report.best_epoch < report.val_loss.len());
        // Validation loss at the kept epoch is the minimum recorded one.
        let min = report
            .val_loss
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!((report.val_loss[report.best_epoch] - min).abs() < 1e-12);
    }

    #[test]
    fn from_layers_validates_chaining() {
        let net = Mlp::forecaster(4, 3, 9);
        let rebuilt = Mlp::from_layers(net.layers().to_vec()).expect("valid chain");
        assert_eq!(
            rebuilt.forward(&[0.1, 0.2, 0.3, 0.4]),
            net.forward(&[0.1, 0.2, 0.3, 0.4])
        );
        assert!(Mlp::from_layers(vec![]).is_none());
        let mut broken = net.layers().to_vec();
        broken.swap(0, 2);
        assert!(Mlp::from_layers(broken).is_none());
    }

    #[test]
    fn param_roundtrip_is_lossless() {
        let mut net = Mlp::forecaster(4, 3, 9);
        let mut buf = Vec::new();
        net.write_params(&mut buf);
        let before = buf.clone();
        net.read_params(&buf);
        net.write_params(&mut buf);
        assert_eq!(before, buf);
    }
}
