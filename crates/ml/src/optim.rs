//! First-order optimizers for the forecasting network.
//!
//! The paper trains its forecaster for 40 epochs with an off-the-shelf
//! optimizer (Appendix K). We provide plain SGD with momentum and Adam; the
//! reproduction defaults to Adam, which converges in well under 40 epochs on
//! the tiny forecasting problem.

/// A first-order optimizer updating a flat parameter vector in place.
///
/// Implementations lazily size their internal state to the parameter count on
/// the first call, so one optimizer instance must only ever be used with a
/// single model.
pub trait Optimizer {
    /// Apply one update step: consume gradients `grads` and update `params`.
    fn step(&mut self, params: &mut [f64], grads: &[f64]);

    /// Reset internal state (momentum/moment estimates).
    fn reset(&mut self);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient in `[0, 1)`; `0.0` disables momentum.
    pub momentum: f64,
    velocity: Vec<f64>,
}

impl Sgd {
    /// Create an SGD optimizer.
    pub fn new(lr: f64, momentum: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        if self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        for ((p, &g), v) in params
            .iter_mut()
            .zip(grads.iter())
            .zip(self.velocity.iter_mut())
        {
            *v = self.momentum * *v - self.lr * g;
            *p += *v;
        }
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate (default 1e-2 works well for the forecaster).
    pub lr: f64,
    /// Exponential decay for the first moment.
    pub beta1: f64,
    /// Exponential decay for the second moment.
    pub beta2: f64,
    /// Numerical stabilizer.
    pub eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Create an Adam optimizer with custom learning rate and standard betas.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }
}

impl Default for Adam {
    fn default() -> Self {
        Self::new(1e-2)
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x - 3)^2 and check convergence.
    fn minimize(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut x = [0.0f64];
        for _ in 0..steps {
            let g = [2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0);
        let x = minimize(&mut opt, 200);
        assert!((x - 3.0).abs() < 1e-6, "got {x}");
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let mut opt = Sgd::new(0.05, 0.9);
        let x = minimize(&mut opt, 400);
        assert!((x - 3.0).abs() < 1e-4, "got {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let x = minimize(&mut opt, 500);
        assert!((x - 3.0).abs() < 1e-3, "got {x}");
    }

    #[test]
    fn reset_clears_state() {
        let mut opt = Adam::new(0.1);
        let mut x = [0.0f64];
        opt.step(&mut x, &[1.0]);
        opt.reset();
        assert_eq!(opt.t, 0);
        assert!(opt.m.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut opt = Sgd::new(0.1, 0.0);
        let mut p = [0.0, 1.0];
        opt.step(&mut p, &[1.0]);
    }
}
