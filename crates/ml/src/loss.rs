//! Loss functions for training the forecasting network.
//!
//! The forecaster outputs a *distribution* over content categories (softmax
//! head) and is trained against the observed frequency histogram of the
//! following planned interval — i.e. soft labels. Cross-entropy with soft
//! targets is the natural loss; MSE is kept for diagnostics and ablations.

/// Supported training losses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loss {
    /// Mean squared error `Σ (p_i - t_i)² / n`.
    Mse,
    /// Cross-entropy with soft targets `-Σ t_i · ln(p_i)`.
    CrossEntropy,
}

impl Loss {
    /// Loss value for a single (prediction, target) pair.
    pub fn value(&self, prediction: &[f64], target: &[f64]) -> f64 {
        assert_eq!(
            prediction.len(),
            target.len(),
            "prediction/target length mismatch"
        );
        match self {
            Loss::Mse => {
                let n = prediction.len() as f64;
                prediction
                    .iter()
                    .zip(target.iter())
                    .map(|(p, t)| (p - t) * (p - t))
                    .sum::<f64>()
                    / n
            }
            Loss::CrossEntropy => prediction
                .iter()
                .zip(target.iter())
                .map(|(p, t)| -t * p.max(1e-12).ln())
                .sum(),
        }
    }

    /// Gradient of the loss with respect to the prediction (post-activation
    /// outputs). The network's activation backward pass then maps this to the
    /// pre-activation gradient; composed with a softmax head, cross-entropy
    /// yields the familiar `p - t` pre-activation gradient.
    pub fn grad_into(&self, prediction: &[f64], target: &[f64], out: &mut [f64]) {
        assert_eq!(
            prediction.len(),
            target.len(),
            "prediction/target length mismatch"
        );
        assert_eq!(
            prediction.len(),
            out.len(),
            "gradient buffer length mismatch"
        );
        match self {
            Loss::Mse => {
                let n = prediction.len() as f64;
                for ((o, &p), &t) in out.iter_mut().zip(prediction.iter()).zip(target.iter()) {
                    *o = 2.0 * (p - t) / n;
                }
            }
            Loss::CrossEntropy => {
                for ((o, &p), &t) in out.iter_mut().zip(prediction.iter()).zip(target.iter()) {
                    *o = -t / p.max(1e-12);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_equal_vectors_is_zero() {
        let v = [0.2, 0.8];
        assert_eq!(Loss::Mse.value(&v, &v), 0.0);
    }

    #[test]
    fn mse_value_and_grad() {
        let p = [1.0, 0.0];
        let t = [0.0, 0.0];
        assert!((Loss::Mse.value(&p, &t) - 0.5).abs() < 1e-12);
        let mut g = [0.0; 2];
        Loss::Mse.grad_into(&p, &t, &mut g);
        assert_eq!(g, [1.0, 0.0]);
    }

    #[test]
    fn cross_entropy_is_minimized_at_target() {
        let t = [0.3, 0.7];
        let at_target = Loss::CrossEntropy.value(&t, &t);
        let off = Loss::CrossEntropy.value(&[0.5, 0.5], &t);
        assert!(at_target < off);
    }

    #[test]
    fn cross_entropy_grad_matches_finite_difference() {
        let p = [0.4, 0.6];
        let t = [0.25, 0.75];
        let mut g = [0.0; 2];
        Loss::CrossEntropy.grad_into(&p, &t, &mut g);
        let eps = 1e-7;
        for i in 0..2 {
            let mut p2 = p;
            p2[i] += eps;
            let fd = (Loss::CrossEntropy.value(&p2, &t) - Loss::CrossEntropy.value(&p, &t)) / eps;
            assert!(
                (g[i] - fd).abs() < 1e-4,
                "dim {i}: analytic {} vs fd {}",
                g[i],
                fd
            );
        }
    }

    #[test]
    fn cross_entropy_clamps_zero_probabilities() {
        let v = Loss::CrossEntropy.value(&[0.0, 1.0], &[1.0, 0.0]);
        assert!(v.is_finite());
    }
}
