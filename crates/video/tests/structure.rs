//! Statistical-structure tests for the content process: the properties that
//! make the paper's forecasting design work must actually hold in the
//! generated data.

use vetl_video::{ContentParams, ContentProcess, SECONDS_PER_DAY};

/// Hour-of-day difficulty histogram of one day of segments.
fn day_profile(states: &[vetl_video::ContentState], day: usize, seg_len: f64) -> Vec<f64> {
    let per_day = (SECONDS_PER_DAY / seg_len) as usize;
    let slice = &states[day * per_day..(day + 1) * per_day];
    let buckets = 24;
    let mut sums = vec![0.0; buckets];
    let mut counts = vec![0usize; buckets];
    for s in slice {
        let b = s.time.hour_of_day() as usize % buckets;
        sums[b] += s.difficulty;
        counts[b] += 1;
    }
    sums.iter()
        .zip(&counts)
        .map(|(s, &c)| s / c.max(1) as f64)
        .collect()
}

fn correlation(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
    let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
    cov / (va.sqrt() * vb.sqrt()).max(1e-12)
}

/// "While it is impossible to predict when certain content appears, it is
/// possible to predict how often it appears" (§2.2): consecutive days must
/// have highly correlated time-of-day difficulty profiles.
#[test]
fn consecutive_days_are_strongly_correlated() {
    let seg_len = 10.0;
    let mut p = ContentProcess::new(ContentParams::traffic_intersection(5), seg_len);
    let states = p.take_segments((6.0 * SECONDS_PER_DAY / seg_len) as usize);
    for day in 0..5 {
        let a = day_profile(&states, day, seg_len);
        let b = day_profile(&states, day + 1, seg_len);
        let r = correlation(&a, &b);
        assert!(r > 0.8, "day {day}→{} correlation {r:.2} too low", day + 1);
    }
}

/// The short-term content is NOT predictable: segment-level difficulty at
/// the same clock time on consecutive days is much less correlated than the
/// hourly profile — the randomness that defeats the idealized per-slice
/// forecaster (Appendix B.1).
#[test]
fn segment_level_content_is_noisy() {
    let seg_len = 2.0;
    let mut p = ContentProcess::new(ContentParams::traffic_intersection(5), seg_len);
    let per_day = (SECONDS_PER_DAY / seg_len) as usize;
    let states = p.take_segments(2 * per_day);
    // Residual after removing the hour-of-day mean: correlate day 0 vs day 1.
    let prof0 = day_profile(&states, 0, seg_len);
    let prof1 = day_profile(&states, 1, seg_len);
    let res = |day: usize, prof: &[f64]| -> Vec<f64> {
        states[day * per_day..(day + 1) * per_day]
            .iter()
            .map(|s| s.difficulty - prof[s.time.hour_of_day() as usize % 24])
            .collect()
    };
    let r = correlation(&res(0, &prof0), &res(1, &prof1));
    assert!(
        r.abs() < 0.2,
        "de-trended segment noise must be day-to-day uncorrelated, got {r:.2}"
    );
}

/// Weekday/weekend structure survives the noise: averaged over weeks, the
/// weekend difficulty differs from the weekday difficulty.
#[test]
fn weekly_structure_is_visible() {
    let seg_len = 30.0;
    let mut params = ContentParams::traffic_intersection(8);
    params.weekend_factor = 0.7;
    let mut p = ContentProcess::new(params, seg_len);
    let states = p.take_segments((14.0 * SECONDS_PER_DAY / seg_len) as usize);
    let avg = |weekend: bool| -> f64 {
        let v: Vec<f64> = states
            .iter()
            .filter(|s| s.time.is_weekend() == weekend)
            .map(|s| s.difficulty)
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    assert!(
        avg(false) > avg(true) + 0.05,
        "weekdays must be busier than weekends"
    );
}

/// The multi-day weather regime decorrelates over a week — the reason 8-day
/// forecasts are harder than 2-day forecasts (Table 5).
#[test]
fn weather_regime_decorrelates_over_days() {
    let seg_len = 60.0;
    // Disable everything but weather to isolate the regime.
    let mut params = ContentParams::traffic_intersection(21);
    params.ou_sigma = 0.0;
    params.event_amplitude = 0.0;
    params.weekend_factor = 1.0;
    params.weather_amp = 0.3;
    let mut p = ContentProcess::new(params, seg_len);
    let per_day = (SECONDS_PER_DAY / seg_len) as usize;
    let states = p.take_segments(30 * per_day);
    // Daily mean difficulty series.
    let daily: Vec<f64> = (0..30)
        .map(|d| {
            states[d * per_day..(d + 1) * per_day]
                .iter()
                .map(|s| s.difficulty)
                .sum::<f64>()
                / per_day as f64
        })
        .collect();
    let lag = |k: usize| -> f64 { correlation(&daily[..30 - k], &daily[k..]) };
    let short = lag(1);
    let long = lag(7);
    assert!(
        long < short,
        "7-day autocorrelation ({long:.2}) must be below 1-day ({short:.2})"
    );
}
