//! Recorded datasets for the offline phase.
//!
//! Skyscraper's offline phase consumes a small *labeled* set (~20 minutes)
//! and a large *unlabeled* set (~2 weeks) recorded from the same source that
//! will later be ingested live (§3). A [`Recording`] is such a dataset; the
//! online stream then continues from where the recording stopped, exactly as
//! a real deployment would replay history before going live.

use crate::segment::Segment;
use crate::source::SyntheticCamera;
use crate::time::SimTime;

/// A contiguous recording of segments from one source.
#[derive(Debug, Clone, Default)]
pub struct Recording {
    segments: Vec<Segment>,
}

impl Recording {
    /// Record `duration_secs` seconds from the camera (which advances).
    pub fn record(camera: &mut SyntheticCamera, duration_secs: f64) -> Self {
        assert!(duration_secs > 0.0, "recording duration must be positive");
        let n = (duration_secs / camera.segment_len()).ceil() as usize;
        Self {
            segments: camera.take_segments(n),
        }
    }

    /// Build a recording from pre-existing segments.
    pub fn from_segments(segments: Vec<Segment>) -> Self {
        Self { segments }
    }

    /// All segments, in stream order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when the recording holds no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total duration in seconds.
    pub fn duration(&self) -> f64 {
        self.segments.iter().map(|s| s.duration).sum()
    }

    /// Start time of the first segment ([`SimTime::ZERO`] when empty).
    pub fn start(&self) -> SimTime {
        self.segments.first().map_or(SimTime::ZERO, |s| s.start())
    }

    /// End time of the last segment.
    pub fn end(&self) -> SimTime {
        self.segments.last().map_or(SimTime::ZERO, |s| s.end())
    }

    /// Sub-recording covering `[from, to)` in stream time.
    pub fn slice_time(&self, from: SimTime, to: SimTime) -> Recording {
        let segs = self
            .segments
            .iter()
            .filter(|s| s.start().as_secs() >= from.as_secs() && s.end().as_secs() <= to.as_secs())
            .cloned()
            .collect();
        Recording { segments: segs }
    }

    /// Split off the first `duration_secs` seconds as a labeled set, keeping
    /// the remainder as the unlabeled set — the paper's 20 min / 2 weeks
    /// split in one call.
    pub fn split_labeled(&self, duration_secs: f64) -> (Recording, Recording) {
        let mut cut = 0usize;
        let mut acc = 0.0;
        for (i, s) in self.segments.iter().enumerate() {
            acc += s.duration;
            if acc >= duration_secs {
                cut = i + 1;
                break;
            }
        }
        if cut == 0 {
            cut = self.segments.len();
        }
        (
            Recording {
                segments: self.segments[..cut].to_vec(),
            },
            Recording {
                segments: self.segments[cut..].to_vec(),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::ContentParams;

    fn camera() -> SyntheticCamera {
        SyntheticCamera::new(ContentParams::default(), 2.0)
    }

    #[test]
    fn record_produces_requested_duration() {
        let mut cam = camera();
        let rec = Recording::record(&mut cam, 600.0);
        assert_eq!(rec.len(), 300);
        assert!((rec.duration() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn recording_continues_the_stream() {
        let mut cam = camera();
        let rec = Recording::record(&mut cam, 100.0);
        let next = cam.next_segment();
        assert!((next.start().as_secs() - rec.end().as_secs()).abs() < 1e-9);
    }

    #[test]
    fn slice_time_selects_interval() {
        let mut cam = camera();
        let rec = Recording::record(&mut cam, 100.0);
        let sub = rec.slice_time(SimTime::from_secs(20.0), SimTime::from_secs(40.0));
        assert_eq!(sub.len(), 10);
        assert!((sub.start().as_secs() - 20.0).abs() < 1e-9);
        assert!((sub.end().as_secs() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn split_labeled_partitions() {
        let mut cam = camera();
        let rec = Recording::record(&mut cam, 100.0);
        let (labeled, unlabeled) = rec.split_labeled(20.0);
        assert_eq!(labeled.len(), 10);
        assert_eq!(unlabeled.len(), 40);
        assert!((labeled.end().as_secs() - unlabeled.start().as_secs()).abs() < 1e-9);
    }

    #[test]
    fn empty_recording_defaults() {
        let rec = Recording::default();
        assert!(rec.is_empty());
        assert_eq!(rec.duration(), 0.0);
        assert_eq!(rec.start().as_secs(), 0.0);
    }
}
