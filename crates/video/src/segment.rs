//! Video segments — the unit of knob switching.
//!
//! Skyscraper re-assesses its knob configuration every couple of seconds
//! (§2.2); a [`Segment`] is that couple of seconds of video, annotated with
//! the latent content state the synthetic CV models respond to and the
//! encoded byte volume the buffer must hold when the segment is set aside.

use crate::content::ContentState;
use crate::time::SimTime;

/// One contiguous chunk of video (a few seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Sequence number within the stream (0-based).
    pub index: u64,
    /// Duration in seconds.
    pub duration: f64,
    /// Latent content state (difficulty, activity).
    pub content: ContentState,
    /// Encoded size in bytes (what buffering this segment costs).
    pub bytes: f64,
}

impl Segment {
    /// Segment start time.
    pub fn start(&self) -> SimTime {
        self.content.time
    }

    /// Segment end time.
    pub fn end(&self) -> SimTime {
        self.content.time.advance(self.duration)
    }

    /// Number of source frames in the segment at `fps`.
    pub fn frames(&self, fps: f64) -> f64 {
        self.duration * fps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::{ContentParams, ContentProcess};

    #[test]
    fn segment_accessors() {
        let mut p = ContentProcess::new(ContentParams::default(), 2.0);
        let content = p.step();
        let seg = Segment {
            index: 0,
            duration: 2.0,
            content,
            bytes: 180_000.0,
        };
        assert_eq!(seg.start().as_secs(), 0.0);
        assert_eq!(seg.end().as_secs(), 2.0);
        assert_eq!(seg.frames(30.0), 60.0);
    }
}
