//! Video segments — the unit of knob switching.
//!
//! Skyscraper re-assesses its knob configuration every couple of seconds
//! (§2.2); a [`Segment`] is that couple of seconds of video, annotated with
//! the latent content state the synthetic CV models respond to and the
//! encoded byte volume the buffer must hold when the segment is set aside.

use crate::content::ContentState;
use crate::time::SimTime;

/// One contiguous chunk of video (a few seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Sequence number within the stream (0-based).
    pub index: u64,
    /// Duration in seconds.
    pub duration: f64,
    /// Latent content state (difficulty, activity).
    pub content: ContentState,
    /// Encoded size in bytes (what buffering this segment costs).
    pub bytes: f64,
}

impl Segment {
    /// Segment start time.
    pub fn start(&self) -> SimTime {
        self.content.time
    }

    /// Segment end time.
    pub fn end(&self) -> SimTime {
        self.content.time.advance(self.duration)
    }

    /// Number of source frames in the segment at `fps`.
    pub fn frames(&self, fps: f64) -> f64 {
        self.duration * fps
    }

    /// The bit-exact identity of the segment, one word per field in wire
    /// order (`index · duration · time · difficulty · activity ·
    /// event_active · bytes`). THE single definition of which fields make
    /// two segments "the same segment": the journal/wire codecs serialize
    /// exactly these fields in exactly this order, and full-segment
    /// fingerprints fold exactly this array, so the two can never disagree
    /// about a field.
    pub fn identity_words(&self) -> [u64; 7] {
        [
            self.index,
            self.duration.to_bits(),
            self.content.time.as_secs().to_bits(),
            self.content.difficulty.to_bits(),
            self.content.activity.to_bits(),
            self.content.event_active as u64,
            self.bytes.to_bits(),
        ]
    }

    /// The content signature of the segment for cross-stream dedup: which
    /// fields make two segments "the same extraction input".
    ///
    /// Unlike [`identity_words`](Self::identity_words) this deliberately
    /// excludes `index` and `bytes` — neither affects what extraction
    /// computes (byte volume only matters to the buffer, which always
    /// charges the *actual* segment). With `tolerance == 0.0` (exact mode)
    /// every remaining field is raw f64 bits, so equal signatures imply
    /// bit-identical extraction inputs. With `tolerance > 0.0` the
    /// perceptual fields (difficulty, activity) are quantized into buckets
    /// of that width, so near-duplicates within the tolerance collide into
    /// one signature. Time stays bit-exact in both modes: co-located
    /// cameras share a content-process timeline, so cross-stream
    /// duplicates agree on time, while a time-free signature would silently
    /// assume workloads are time-invariant. The last word discriminates the
    /// two modes so exact and quantized signatures never alias.
    pub fn signature_words(&self, tolerance: f64) -> [u64; 6] {
        let bucket = |v: f64| -> u64 {
            if tolerance > 0.0 {
                (v / tolerance).round() as i64 as u64
            } else {
                v.to_bits()
            }
        };
        [
            self.duration.to_bits(),
            self.content.time.as_secs().to_bits(),
            bucket(self.content.difficulty),
            bucket(self.content.activity),
            self.content.event_active as u64,
            (tolerance > 0.0) as u64,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::{ContentParams, ContentProcess};

    #[test]
    fn segment_accessors() {
        let mut p = ContentProcess::new(ContentParams::default(), 2.0);
        let content = p.step();
        let seg = Segment {
            index: 0,
            duration: 2.0,
            content,
            bytes: 180_000.0,
        };
        assert_eq!(seg.start().as_secs(), 0.0);
        assert_eq!(seg.end().as_secs(), 2.0);
        assert_eq!(seg.frames(30.0), 60.0);
    }

    fn sample_segment() -> Segment {
        let mut p = ContentProcess::new(ContentParams::default(), 2.0);
        let content = p.step();
        Segment {
            index: 3,
            duration: 2.0,
            content,
            bytes: 180_000.0,
        }
    }

    #[test]
    fn identity_words_cover_every_field() {
        let base = sample_segment();
        let bits = base.identity_words();
        let mut s = base;
        s.index += 1;
        assert_ne!(s.identity_words(), bits);
        let mut s = base;
        s.duration += 0.5;
        assert_ne!(s.identity_words(), bits);
        let mut s = base;
        s.content.time = s.content.time.advance(1.0);
        assert_ne!(s.identity_words(), bits);
        let mut s = base;
        s.content.difficulty += 0.01;
        assert_ne!(s.identity_words(), bits);
        let mut s = base;
        s.content.activity += 0.01;
        assert_ne!(s.identity_words(), bits);
        let mut s = base;
        s.content.event_active = !s.content.event_active;
        assert_ne!(s.identity_words(), bits);
        let mut s = base;
        s.bytes += 1.0;
        assert_ne!(s.identity_words(), bits);
    }

    #[test]
    fn exact_signature_is_bit_identity_over_extraction_inputs() {
        let base = sample_segment();
        let sig = base.signature_words(0.0);
        // index and bytes do not affect extraction: excluded by design.
        let mut s = base;
        s.index += 7;
        s.bytes *= 2.0;
        assert_eq!(s.signature_words(0.0), sig);
        // Every extraction-bearing field perturbs the exact signature.
        let mut s = base;
        s.duration += 0.5;
        assert_ne!(s.signature_words(0.0), sig);
        let mut s = base;
        s.content.time = s.content.time.advance(1.0);
        assert_ne!(s.signature_words(0.0), sig);
        let mut s = base;
        s.content.difficulty = f64::from_bits(s.content.difficulty.to_bits() + 1);
        assert_ne!(s.signature_words(0.0), sig, "exact mode is bit-identity");
        let mut s = base;
        s.content.event_active = !s.content.event_active;
        assert_ne!(s.signature_words(0.0), sig);
    }

    #[test]
    fn tolerant_signature_buckets_near_duplicates() {
        let base = sample_segment();
        let tol = 0.05;
        let sig = base.signature_words(tol);
        // A perturbation well inside the bucket collides…
        let mut near = base;
        near.content.difficulty += tol / 100.0;
        near.content.activity -= tol / 100.0;
        assert_eq!(near.signature_words(tol), sig);
        // …a perturbation of several buckets does not.
        let mut far = base;
        far.content.difficulty += 3.0 * tol;
        assert_ne!(far.signature_words(tol), sig);
        // Exact and quantized signatures never alias (mode discriminator).
        assert_ne!(base.signature_words(0.0), base.signature_words(tol));
    }
}
