//! Simulation time.
//!
//! All simulated clocks in the reproduction measure seconds since the start
//! of the stream as `f64`. Streams conventionally start at midnight of a
//! Monday, so time-of-day and day-of-week structure can be derived directly.

/// Seconds in one hour.
pub const SECONDS_PER_HOUR: f64 = 3_600.0;
/// Seconds in one day.
pub const SECONDS_PER_DAY: f64 = 86_400.0;

/// A point in simulated time (seconds since stream start, which is midnight
/// on a Monday).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(pub f64);

impl SimTime {
    /// Time zero — midnight, Monday.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from seconds.
    pub fn from_secs(secs: f64) -> Self {
        SimTime(secs)
    }

    /// Construct from hours.
    pub fn from_hours(hours: f64) -> Self {
        SimTime(hours * SECONDS_PER_HOUR)
    }

    /// Construct from days.
    pub fn from_days(days: f64) -> Self {
        SimTime(days * SECONDS_PER_DAY)
    }

    /// Seconds since stream start.
    pub fn as_secs(&self) -> f64 {
        self.0
    }

    /// Hours since stream start.
    pub fn as_hours(&self) -> f64 {
        self.0 / SECONDS_PER_HOUR
    }

    /// Days since stream start.
    pub fn as_days(&self) -> f64 {
        self.0 / SECONDS_PER_DAY
    }

    /// Hour-of-day in `[0, 24)`.
    pub fn hour_of_day(&self) -> f64 {
        (self.0.rem_euclid(SECONDS_PER_DAY)) / SECONDS_PER_HOUR
    }

    /// Whole days elapsed (day 0 = first Monday).
    pub fn day_index(&self) -> u64 {
        (self.0 / SECONDS_PER_DAY).floor().max(0.0) as u64
    }

    /// `true` on Saturday (day 5) and Sunday (day 6) of each week.
    pub fn is_weekend(&self) -> bool {
        matches!(self.day_index() % 7, 5 | 6)
    }

    /// Fraction of the current day elapsed, in `[0, 1)`.
    pub fn day_fraction(&self) -> f64 {
        (self.0.rem_euclid(SECONDS_PER_DAY)) / SECONDS_PER_DAY
    }

    /// Advance by `secs` seconds.
    pub fn advance(&self, secs: f64) -> SimTime {
        SimTime(self.0 + secs)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let day = self.day_index();
        let h = self.hour_of_day();
        let hh = h.floor() as u32;
        let mm = ((h - hh as f64) * 60.0).floor() as u32;
        write!(f, "day {day} {hh:02}:{mm:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let t = SimTime::from_days(1.5);
        assert!((t.as_hours() - 36.0).abs() < 1e-12);
        assert!((t.as_secs() - 129_600.0).abs() < 1e-9);
        assert!((t.hour_of_day() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn weekend_detection() {
        assert!(!SimTime::from_days(0.0).is_weekend()); // Monday
        assert!(!SimTime::from_days(4.5).is_weekend()); // Friday
        assert!(SimTime::from_days(5.0).is_weekend()); // Saturday
        assert!(SimTime::from_days(6.9).is_weekend()); // Sunday
        assert!(!SimTime::from_days(7.0).is_weekend()); // next Monday
    }

    #[test]
    fn day_index_and_fraction() {
        let t = SimTime::from_days(3.25);
        assert_eq!(t.day_index(), 3);
        assert!((t.day_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_is_human_readable() {
        let t = SimTime::from_hours(25.5);
        assert_eq!(t.to_string(), "day 1 01:30");
    }
}
