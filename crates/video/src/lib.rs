//! # vetl-video — synthetic video substrate
//!
//! The Skyscraper paper evaluates on real camera streams (a Shibuya shopping
//! street and a Tokyo traffic intersection), on the CMU-MOSEI talking-head
//! corpus, and on Twitch active-stream counts. None of these are available in
//! the reproduction environment, so this crate provides a *generative content
//! process* that replaces the pixel data while preserving everything
//! Skyscraper actually consumes:
//!
//! * a latent per-segment **difficulty** (occlusions, lighting, crowding)
//!   that the synthetic CV models' quality responds to,
//! * a latent **activity** level that drives the H.264 bitrate and
//!   per-object processing cost,
//! * the paper's **temporal statistics**: a diurnal base curve,
//!   weekday/weekend structure, a multi-day AR(1) "weather" regime (what
//!   makes 1–4-day forecasts accurate and 8-day forecasts hard, Table 5),
//!   an Ornstein-Uhlenbeck noise with a tens-of-seconds correlation time
//!   (content categories change every ~24–43 s, §5.3), and Poisson burst
//!   events ("a large group of pedestrians randomly walking past").
//!
//! The substitution is faithful because Skyscraper is *pixel-agnostic*: every
//! decision it makes consumes only a user-reported quality scalar and
//! profiled runtimes (§3.2 — "dealing with low-dimensional quality vectors …
//! allows Skyscraper to run fast").

pub mod codec;
pub mod content;
pub mod dataset;
pub mod segment;
pub mod source;
pub mod time;

pub use codec::{BitrateModel, CodecParams, DecodeCostModel};
pub use content::{ContentParams, ContentProcess, ContentState, DiurnalProfile};
pub use dataset::Recording;
pub use segment::Segment;
pub use source::{MoseiMode, StreamCountProcess, SyntheticCamera};
pub use time::{SimTime, SECONDS_PER_DAY, SECONDS_PER_HOUR};
