//! Video sources.
//!
//! [`SyntheticCamera`] stands in for the paper's live camera feeds: it joins
//! a [`ContentProcess`] with the codec models and emits [`Segment`]s at the
//! stream's real-time rate. [`StreamCountProcess`] reproduces the MOSEI
//! workloads' *varying number of concurrent Twitch streams*, including the
//! two synthetic spike patterns (§5.2):
//!
//! * **MOSEI-HIGH** — short, tall peaks (62 concurrent streams) that defeat
//!   cloud bursting through uplink bandwidth limits;
//! * **MOSEI-LONG** — one long sustained plateau that defeats buffering
//!   because the buffer fills early and stays full.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::codec::{BitrateModel, CodecParams};
use crate::content::{ContentParams, ContentProcess};
use crate::segment::Segment;
use crate::time::{SimTime, SECONDS_PER_DAY, SECONDS_PER_HOUR};

/// A synthetic live camera: a content process plus codec models, emitting
/// segments in stream order.
#[derive(Debug, Clone)]
pub struct SyntheticCamera {
    process: ContentProcess,
    codec: CodecParams,
    bitrate: BitrateModel,
    next_index: u64,
}

impl SyntheticCamera {
    /// Create a camera emitting one segment every `seg_len` seconds.
    pub fn new(content: ContentParams, seg_len: f64) -> Self {
        Self {
            process: ContentProcess::new(content, seg_len),
            codec: CodecParams::default(),
            bitrate: BitrateModel::default(),
            next_index: 0,
        }
    }

    /// Override codec parameters (resolution / fps).
    pub fn with_codec(mut self, codec: CodecParams) -> Self {
        self.codec = codec;
        self
    }

    /// Codec parameters of this stream.
    pub fn codec(&self) -> CodecParams {
        self.codec
    }

    /// Bitrate model of this stream.
    pub fn bitrate(&self) -> BitrateModel {
        self.bitrate
    }

    /// Segment duration in seconds.
    pub fn segment_len(&self) -> f64 {
        self.process.segment_len()
    }

    /// Produce the next segment.
    pub fn next_segment(&mut self) -> Segment {
        let content = self.process.step();
        let bytes = self
            .bitrate
            .bytes(self.process.segment_len(), content.activity);
        let seg = Segment {
            index: self.next_index,
            duration: self.process.segment_len(),
            content,
            bytes,
        };
        self.next_index += 1;
        seg
    }

    /// Produce `n` consecutive segments.
    pub fn take_segments(&mut self, n: usize) -> Vec<Segment> {
        (0..n).map(|_| self.next_segment()).collect()
    }

    /// Skip `n` segments (fast-forward without materializing).
    pub fn skip(&mut self, n: usize) {
        for _ in 0..n {
            let _ = self.next_segment();
        }
    }
}

impl Iterator for SyntheticCamera {
    type Item = Segment;
    fn next(&mut self) -> Option<Segment> {
        Some(self.next_segment())
    }
}

/// Spike pattern of the MOSEI workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoseiMode {
    /// Short, tall peaks to 62 concurrent streams.
    High,
    /// One long sustained plateau.
    Long,
}

/// Number of concurrently incoming Twitch-like streams over time.
///
/// The baseline curve mimics the diurnal shape of Twitch's active-streamer
/// counts (evening peak), scaled to `base_max` streams; the spike pattern is
/// layered on top.
#[derive(Debug, Clone)]
pub struct StreamCountProcess {
    mode: MoseiMode,
    base_min: usize,
    base_max: usize,
    spike_level: usize,
    rng: StdRng,
    seg_len: f64,
    t: f64,
    /// Remaining seconds of an active HIGH spike (0 = none).
    spike_remaining: f64,
}

impl StreamCountProcess {
    /// Create a stream-count process with the paper's levels (spikes of 62
    /// concurrent streams for HIGH).
    pub fn new(mode: MoseiMode, seg_len: f64, seed: u64) -> Self {
        Self {
            mode,
            base_min: 10,
            base_max: 40,
            spike_level: 62,
            rng: StdRng::seed_from_u64(seed),
            seg_len,
            t: 0.0,
            spike_remaining: 0.0,
        }
    }

    /// Spike stream level.
    pub fn spike_level(&self) -> usize {
        self.spike_level
    }

    /// Baseline (no spike) count at time `t`: twitch-like evening peak.
    fn baseline(&self, time: SimTime) -> usize {
        let h = time.hour_of_day();
        let mut d = (h - 20.0).abs();
        if d > 12.0 {
            d = 24.0 - d;
        }
        let bump = (-0.5 * (d / 4.0) * (d / 4.0)).exp();
        let range = (self.base_max - self.base_min) as f64;
        self.base_min + (range * bump).round() as usize
    }

    /// Whether a LONG-mode plateau is active at `time`: one 6-hour plateau
    /// per day starting at 14:00.
    fn long_plateau(&self, time: SimTime) -> bool {
        let h = time.hour_of_day();
        (14.0..20.0).contains(&h)
    }

    /// Number of concurrent streams for the next segment.
    pub fn step(&mut self) -> usize {
        let time = SimTime::from_secs(self.t);
        self.t += self.seg_len;
        let base = self.baseline(time);
        match self.mode {
            MoseiMode::High => {
                if self.spike_remaining > 0.0 {
                    self.spike_remaining -= self.seg_len;
                    return self.spike_level;
                }
                // ~6 short spikes per day, 2–5 minutes each.
                let p_per_sec = 6.0 / SECONDS_PER_DAY;
                if self.rng.gen::<f64>() < p_per_sec * self.seg_len {
                    self.spike_remaining = 120.0 + self.rng.gen::<f64>() * 180.0;
                    return self.spike_level;
                }
                base
            }
            MoseiMode::Long => {
                if self.long_plateau(time) {
                    // Long plateau at ~72 % of the HIGH spike level.
                    (self.spike_level as f64 * 0.72).round() as usize
                } else {
                    base
                }
            }
        }
    }

    /// Generate counts for `n` segments.
    pub fn take_counts(&mut self, n: usize) -> Vec<usize> {
        (0..n).map(|_| self.step()).collect()
    }

    /// Plateau duration per day for LONG mode (seconds).
    pub fn long_plateau_secs(&self) -> f64 {
        6.0 * SECONDS_PER_HOUR
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn camera_segments_are_consecutive() {
        let mut cam = SyntheticCamera::new(ContentParams::default(), 2.0);
        let segs = cam.take_segments(10);
        for (i, s) in segs.iter().enumerate() {
            assert_eq!(s.index, i as u64);
            assert!((s.start().as_secs() - 2.0 * i as f64).abs() < 1e-9);
            assert!(s.bytes > 0.0);
        }
    }

    #[test]
    fn camera_bitrate_tracks_activity() {
        let mut cam = SyntheticCamera::new(ContentParams::traffic_intersection(11), 2.0);
        let segs = cam.take_segments((SECONDS_PER_DAY / 2.0) as usize);
        let busy: Vec<&Segment> = segs.iter().filter(|s| s.content.activity > 0.7).collect();
        let quiet: Vec<&Segment> = segs.iter().filter(|s| s.content.activity < 0.2).collect();
        assert!(!busy.is_empty() && !quiet.is_empty());
        let avg = |v: &[&Segment]| v.iter().map(|s| s.bytes).sum::<f64>() / v.len() as f64;
        assert!(avg(&busy) > avg(&quiet));
    }

    #[test]
    fn high_mode_reaches_62_streams() {
        let mut p = StreamCountProcess::new(MoseiMode::High, 7.0, 1);
        let counts = p.take_counts((2.0 * SECONDS_PER_DAY / 7.0) as usize);
        assert_eq!(counts.iter().max().copied().unwrap(), 62);
        // Spikes are short: the 62-level must be a small share of time.
        let at_peak = counts.iter().filter(|&&c| c == 62).count() as f64 / counts.len() as f64;
        assert!(at_peak < 0.1, "HIGH spikes should be short, got {at_peak}");
    }

    #[test]
    fn long_mode_has_sustained_plateau() {
        let mut p = StreamCountProcess::new(MoseiMode::Long, 7.0, 1);
        let counts = p.take_counts((SECONDS_PER_DAY / 7.0) as usize);
        let plateau = (62.0f64 * 0.72).round() as usize;
        let at_plateau = counts.iter().filter(|&&c| c == plateau).count() as f64;
        let frac = at_plateau * 7.0 / SECONDS_PER_DAY;
        assert!(
            (0.2..0.3).contains(&frac),
            "plateau covers {frac} of the day, expected ~0.25"
        );
    }

    #[test]
    fn baseline_peaks_in_the_evening() {
        let p = StreamCountProcess::new(MoseiMode::High, 7.0, 1);
        let evening = p.baseline(SimTime::from_hours(20.0));
        let morning = p.baseline(SimTime::from_hours(6.0));
        assert!(evening > morning);
    }
}
