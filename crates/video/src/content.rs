//! The latent content process.
//!
//! Real video streams expose Skyscraper to content whose *analysis
//! difficulty* varies on several time scales at once: seconds (a group of
//! pedestrians), minutes (a burst of traffic), hours (rush hour vs. night),
//! days (weekday vs. weekend) and multiple days (weather). This module
//! generates a latent difficulty/activity trajectory with exactly this
//! multi-scale structure:
//!
//! ```text
//! difficulty(t) = clamp( diurnal(t) · weekday(t) · weather(day)
//!                        + Σ active burst events + OU noise , 0, 1 )
//! ```
//!
//! * `diurnal` — a per-profile smooth time-of-day curve (rush-hour peaks for
//!   the traffic intersection, an afternoon/evening peak for the shopping
//!   street, a mild evening bump for talking-head streams);
//! * `weekday` — weekday/weekend multiplier;
//! * `weather` — a per-day AR(1) regime, linearly interpolated within the
//!   day. Its ~2–3 day correlation length is what makes the paper's 1–4-day
//!   forecasts accurate and its 8-day forecasts inaccurate (Table 5);
//! * burst events — Poisson arrivals with exponential duration (~30 s),
//!   modelling the "large group of pedestrians" the paper calls
//!   unforecastable randomness;
//! * OU noise — mean-reverting noise with a ~25 s correlation time, giving
//!   the content-category change cadence the paper reports (~42 s for COVID,
//!   ~43 s for MOT at 2 s segments).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::SimTime;

/// Time-of-day shape of the latent intensity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiurnalProfile {
    /// Tokyo traffic intersection: morning + evening rush-hour peaks
    /// (the MOT workload, and the EV-counting example of Fig. 3).
    TrafficIntersection,
    /// Koen-Dori shopping street: broad afternoon peak with an evening bump
    /// (the COVID workload).
    ShoppingStreet,
    /// Talking-head streams (CMU-MOSEI): mostly flat with a mild evening rise.
    TalkingHead,
    /// Constant intensity — useful in tests and calibration.
    Flat,
}

impl DiurnalProfile {
    /// Base intensity in `[0, 1]` at hour-of-day `h ∈ [0, 24)`.
    pub fn intensity(&self, h: f64) -> f64 {
        fn bump(h: f64, center: f64, width: f64) -> f64 {
            // Wrap-around Gaussian bump on the 24 h circle.
            let mut d = (h - center).abs();
            if d > 12.0 {
                d = 24.0 - d;
            }
            (-0.5 * (d / width) * (d / width)).exp()
        }
        fn plateau(h: f64, start: f64, end: f64, ramp: f64) -> f64 {
            // Smooth trapezoid between `start` and `end` hours.
            let rise = 1.0 / (1.0 + (-(h - start) / ramp).exp());
            let fall = 1.0 / (1.0 + (-(end - h) / ramp).exp());
            rise * fall
        }
        let v = match self {
            DiurnalProfile::TrafficIntersection => {
                0.08 + 0.55 * plateau(h, 7.0, 20.0, 1.0)
                    + 0.32 * bump(h, 8.5, 1.4)
                    + 0.37 * bump(h, 17.5, 1.7)
            }
            DiurnalProfile::ShoppingStreet => 0.08 + 0.87 * plateau(h, 10.0, 21.0, 0.9),
            DiurnalProfile::TalkingHead => 0.42 + 0.28 * bump(h, 20.0, 3.5),
            DiurnalProfile::Flat => 0.5,
        };
        v.clamp(0.0, 1.0)
    }
}

/// Parameters of the content process; defaults reproduce the paper's
/// traffic-camera statistics.
#[derive(Debug, Clone)]
pub struct ContentParams {
    /// Time-of-day shape.
    pub profile: DiurnalProfile,
    /// Multiplier applied on Saturdays/Sundays (traffic < 1, retail > 1).
    pub weekend_factor: f64,
    /// AR(1) coefficient of the per-day weather regime.
    pub weather_rho: f64,
    /// Amplitude of the weather multiplier (multiplier = 1 + amp·w).
    pub weather_amp: f64,
    /// OU noise correlation time in seconds.
    pub ou_tau: f64,
    /// OU noise stationary standard deviation.
    pub ou_sigma: f64,
    /// Mean burst-event inter-arrival time at peak intensity, seconds.
    pub event_interval: f64,
    /// Mean burst-event duration, seconds.
    pub event_duration: f64,
    /// Maximum burst-event amplitude.
    pub event_amplitude: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ContentParams {
    fn default() -> Self {
        Self {
            profile: DiurnalProfile::TrafficIntersection,
            weekend_factor: 0.75,
            weather_rho: 0.70,
            weather_amp: 0.22,
            ou_tau: 25.0,
            ou_sigma: 0.10,
            event_interval: 90.0,
            event_duration: 30.0,
            event_amplitude: 0.38,
            seed: 1,
        }
    }
}

impl ContentParams {
    /// Defaults for the COVID workload's shopping-street camera.
    pub fn shopping_street(seed: u64) -> Self {
        Self {
            profile: DiurnalProfile::ShoppingStreet,
            weekend_factor: 1.18,
            seed,
            ..Default::default()
        }
    }

    /// Defaults for the MOT / EV traffic-intersection camera.
    pub fn traffic_intersection(seed: u64) -> Self {
        Self {
            profile: DiurnalProfile::TrafficIntersection,
            seed,
            ..Default::default()
        }
    }

    /// Defaults for a MOSEI talking-head stream; difficulty is dominated by
    /// speaker/sentiment volatility rather than diurnal structure.
    pub fn talking_head(seed: u64) -> Self {
        Self {
            profile: DiurnalProfile::TalkingHead,
            weekend_factor: 1.0,
            weather_amp: 0.12,
            ou_sigma: 0.14,
            event_interval: 60.0,
            event_duration: 20.0,
            event_amplitude: 0.30,
            seed,
            ..Default::default()
        }
    }
}

/// The latent state of one video segment — everything the synthetic CV
/// models need to produce realistic costs and qualities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentState {
    /// Segment start time.
    pub time: SimTime,
    /// Analysis difficulty in `[0, 1]` (occlusions, crowding, lighting).
    pub difficulty: f64,
    /// Scene activity in `[0, 1]` (number of moving objects; drives the
    /// encoded bitrate and per-object tracker cost).
    pub activity: f64,
    /// Whether at least one burst event is active.
    pub event_active: bool,
}

/// An active burst event.
#[derive(Debug, Clone, Copy)]
struct Event {
    amplitude: f64,
    remaining: f64,
}

/// Stateful generator of [`ContentState`]s at fixed segment granularity.
///
/// The process is deterministic given its parameters (including the seed);
/// advancing it is O(1) per segment.
#[derive(Debug, Clone)]
pub struct ContentProcess {
    params: ContentParams,
    seg_len: f64,
    rng: StdRng,
    t: f64,
    ou: f64,
    events: Vec<Event>,
    /// `(day_index, w_today, w_next)` for within-day interpolation.
    weather: (u64, f64, f64),
}

impl ContentProcess {
    /// Create a process emitting one state every `seg_len` seconds.
    pub fn new(params: ContentParams, seg_len: f64) -> Self {
        assert!(seg_len > 0.0, "segment length must be positive");
        let mut rng = StdRng::seed_from_u64(params.seed);
        let w0 = gauss(&mut rng) * 0.5;
        let w1 = params.weather_rho * w0
            + (1.0 - params.weather_rho.powi(2)).sqrt() * gauss(&mut rng) * 0.5;
        Self {
            params,
            seg_len,
            rng,
            t: 0.0,
            ou: 0.0,
            events: Vec::new(),
            weather: (0, w0, w1),
        }
    }

    /// Segment length in seconds.
    pub fn segment_len(&self) -> f64 {
        self.seg_len
    }

    /// Current simulated time (start of the *next* emitted segment).
    pub fn now(&self) -> SimTime {
        SimTime::from_secs(self.t)
    }

    /// Advance the per-day weather AR(1) chain up to `day`.
    fn weather_at(&mut self, time: SimTime) -> f64 {
        let day = time.day_index();
        while self.weather.0 < day {
            let (d, _w0, w1) = self.weather;
            let rho = self.params.weather_rho;
            let w2 = rho * w1 + (1.0 - rho * rho).sqrt() * gauss(&mut self.rng) * 0.5;
            self.weather = (d + 1, w1, w2);
        }
        let frac = time.day_fraction();
        let w = self.weather.1 * (1.0 - frac) + self.weather.2 * frac;
        (1.0 + self.params.weather_amp * w).clamp(0.55, 1.45)
    }

    /// Produce the next segment's content state.
    pub fn step(&mut self) -> ContentState {
        let time = SimTime::from_secs(self.t);
        let dt = self.seg_len;
        let weather = self.weather_at(time);
        let p = &self.params;

        let base = p.profile.intensity(time.hour_of_day());
        let weekday = if time.is_weekend() {
            p.weekend_factor
        } else {
            1.0
        };
        let trend = (base * weekday * weather).clamp(0.0, 1.2);

        // OU noise: x ← x·(1 - dt/τ) + σ·sqrt(2·dt/τ)·ε.
        let tau = p.ou_tau.max(dt);
        let decay = (1.0 - dt / tau).max(0.0);
        self.ou = self.ou * decay + p.ou_sigma * (2.0 * dt / tau).sqrt() * gauss(&mut self.rng);

        // Burst events: Poisson arrivals whose rate scales with the trend.
        let rate = (0.25 + trend) / p.event_interval; // events per second
        if self.rng.gen::<f64>() < (rate * dt).min(1.0) {
            let amplitude = self.rng.gen::<f64>() * p.event_amplitude;
            let duration = -p.event_duration * (1.0 - self.rng.gen::<f64>()).ln();
            self.events.push(Event {
                amplitude,
                remaining: duration,
            });
        }
        let mut event_sum = 0.0;
        for e in &mut self.events {
            event_sum += e.amplitude;
            e.remaining -= dt;
        }
        self.events.retain(|e| e.remaining > 0.0);

        let difficulty = (0.92 * trend + event_sum + self.ou).clamp(0.0, 1.0);
        let activity = (0.12 + 0.80 * trend + 0.55 * event_sum + 0.35 * self.ou).clamp(0.0, 1.0);

        self.t += dt;
        ContentState {
            time,
            difficulty,
            activity,
            event_active: !self.events.is_empty(),
        }
    }

    /// Generate `n` consecutive segment states.
    pub fn take_segments(&mut self, n: usize) -> Vec<ContentState> {
        (0..n).map(|_| self.step()).collect()
    }

    /// Skip forward by `n` segments without materializing them.
    pub fn skip_segments(&mut self, n: usize) {
        for _ in 0..n {
            let _ = self.step();
        }
    }
}

impl Iterator for ContentProcess {
    type Item = ContentState;
    fn next(&mut self) -> Option<ContentState> {
        Some(self.step())
    }
}

/// Standard normal sample via Box-Muller (keeps us off `rand_distr`).
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SECONDS_PER_DAY;

    #[test]
    fn states_stay_in_unit_interval() {
        let mut p = ContentProcess::new(ContentParams::default(), 2.0);
        for s in p.take_segments(50_000) {
            assert!(
                (0.0..=1.0).contains(&s.difficulty),
                "difficulty {}",
                s.difficulty
            );
            assert!((0.0..=1.0).contains(&s.activity), "activity {}", s.activity);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<_> = ContentProcess::new(ContentParams::default(), 2.0).take_segments(500);
        let b: Vec<_> = ContentProcess::new(ContentParams::default(), 2.0).take_segments(500);
        assert_eq!(a, b);
        let p2 = ContentParams {
            seed: 99,
            ..Default::default()
        };
        let c: Vec<_> = ContentProcess::new(p2, 2.0).take_segments(500);
        assert_ne!(a, c);
    }

    #[test]
    fn rush_hour_is_harder_than_night() {
        // Average difficulty 17:00–18:00 vs 02:00–03:00 over several days.
        let mut p = ContentProcess::new(ContentParams::traffic_intersection(3), 2.0);
        let days = 4;
        let segs = p.take_segments((days as f64 * SECONDS_PER_DAY / 2.0) as usize);
        let avg = |lo: f64, hi: f64| {
            let sel: Vec<f64> = segs
                .iter()
                .filter(|s| {
                    let h = s.time.hour_of_day();
                    h >= lo && h < hi
                })
                .map(|s| s.difficulty)
                .collect();
            sel.iter().sum::<f64>() / sel.len() as f64
        };
        let rush = avg(17.0, 18.0);
        let night = avg(2.0, 3.0);
        assert!(
            rush > night + 0.25,
            "rush-hour difficulty {rush:.3} should clearly exceed night {night:.3}"
        );
    }

    #[test]
    fn difficulty_has_tens_of_seconds_regime_changes() {
        // The paper reports content-category changes every ~42 s on 2 s
        // segments. Use difficulty terciles as a category proxy and check
        // the mean run length lands in the right order of magnitude.
        let mut p = ContentProcess::new(ContentParams::traffic_intersection(5), 2.0);
        let segs = p.take_segments((SECONDS_PER_DAY / 2.0) as usize);
        let label = |d: f64| {
            if d < 0.33 {
                0
            } else if d < 0.66 {
                1
            } else {
                2
            }
        };
        let mut runs = 0usize;
        let mut prev = label(segs[0].difficulty);
        for s in &segs[1..] {
            let l = label(s.difficulty);
            if l != prev {
                runs += 1;
                prev = l;
            }
        }
        let mean_run_secs = SECONDS_PER_DAY / (runs.max(1) as f64);
        assert!(
            (8.0..300.0).contains(&mean_run_secs),
            "mean regime duration {mean_run_secs:.1}s should be tens of seconds"
        );
    }

    #[test]
    fn weekend_factor_changes_weekend_level() {
        let mut params = ContentParams::traffic_intersection(7);
        params.ou_sigma = 0.0;
        params.event_amplitude = 0.0;
        params.weather_amp = 0.0;
        let mut p = ContentProcess::new(params, 60.0);
        let segs = p.take_segments((7.0 * SECONDS_PER_DAY / 60.0) as usize);
        let weekday_avg: f64 = {
            let v: Vec<f64> = segs
                .iter()
                .filter(|s| !s.time.is_weekend())
                .map(|s| s.difficulty)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let weekend_avg: f64 = {
            let v: Vec<f64> = segs
                .iter()
                .filter(|s| s.time.is_weekend())
                .map(|s| s.difficulty)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(
            weekend_avg < weekday_avg,
            "weekend {weekend_avg} vs weekday {weekday_avg}"
        );
    }

    #[test]
    fn diurnal_profiles_are_bounded_and_smooth() {
        for profile in [
            DiurnalProfile::TrafficIntersection,
            DiurnalProfile::ShoppingStreet,
            DiurnalProfile::TalkingHead,
            DiurnalProfile::Flat,
        ] {
            let mut prev = profile.intensity(0.0);
            let mut h = 0.0;
            while h < 24.0 {
                let v = profile.intensity(h);
                assert!((0.0..=1.0).contains(&v));
                assert!((v - prev).abs() < 0.05, "jump at h={h} for {profile:?}");
                prev = v;
                h += 0.05;
            }
            // Midnight wrap-around continuity.
            assert!((profile.intensity(23.999) - profile.intensity(0.0)).abs() < 0.05);
        }
    }

    #[test]
    fn skip_matches_take() {
        let mut a = ContentProcess::new(ContentParams::default(), 2.0);
        let mut b = ContentProcess::new(ContentParams::default(), 2.0);
        a.skip_segments(100);
        let _ = b.take_segments(100);
        assert_eq!(a.step(), b.step());
    }
}
