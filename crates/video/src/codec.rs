//! Encoded-video size and decode-cost models.
//!
//! Calibrated to the paper's measurements (§5.1 and Appendix K.2):
//!
//! * one HD H.264 traffic-camera feed produces ≈ 7.8 GB/day ≈ 90 KB/s,
//!   modulated by scene activity (motion costs bits);
//! * decoding one frame takes ≈ 1.6 ms on a reference core — about 5 % of
//!   the total processing work;
//! * frames shipped to the cloud are JPEG-compressed and Base64-encoded
//!   before being sent over HTTPS (§5.1), inflating the payload by 4/3.

/// Static stream parameters.
#[derive(Debug, Clone, Copy)]
pub struct CodecParams {
    /// Frames per second of the source (paper: 30).
    pub fps: f64,
    /// Frame width in pixels (paper: 1280).
    pub width: u32,
    /// Frame height in pixels (paper: 720).
    pub height: u32,
}

impl Default for CodecParams {
    fn default() -> Self {
        Self {
            fps: 30.0,
            width: 1280,
            height: 720,
        }
    }
}

impl CodecParams {
    /// Pixels per frame.
    pub fn pixels(&self) -> u64 {
        self.width as u64 * self.height as u64
    }
}

/// H.264 bitrate model: bytes produced per second of video as a function of
/// scene activity.
#[derive(Debug, Clone, Copy)]
pub struct BitrateModel {
    /// Mean bytes per second at average activity (~90 KB/s for the paper's
    /// 7.8 GB/day feed).
    pub mean_bytes_per_sec: f64,
    /// Relative swing with activity: rate = mean · (1 - swing/2 + swing·a).
    pub activity_swing: f64,
}

impl Default for BitrateModel {
    fn default() -> Self {
        Self {
            mean_bytes_per_sec: 90_000.0,
            activity_swing: 0.9,
        }
    }
}

impl BitrateModel {
    /// Encoded bytes for `secs` seconds of video at `activity ∈ [0,1]`.
    pub fn bytes(&self, secs: f64, activity: f64) -> f64 {
        let a = activity.clamp(0.0, 1.0);
        self.mean_bytes_per_sec * secs * (1.0 - self.activity_swing / 2.0 + self.activity_swing * a)
    }

    /// JPEG size of a single frame at a resolution scale (1.0 = full HD);
    /// used for cloud-offload payload estimation. ≈ 100 KB at 720p.
    pub fn jpeg_frame_bytes(&self, resolution_scale: f64) -> f64 {
        100_000.0 * resolution_scale.clamp(0.05, 1.0).powi(2)
    }

    /// Base64 inflation applied to HTTPS payloads (§5.1: frames are Base64
    /// serialized JPEGs).
    pub fn base64_inflate(bytes: f64) -> f64 {
        bytes * 4.0 / 3.0
    }
}

/// CPU cost of H.264 decode.
#[derive(Debug, Clone, Copy)]
pub struct DecodeCostModel {
    /// Core-seconds to decode one frame on a reference core (paper: 1.6 ms).
    pub secs_per_frame: f64,
}

impl Default for DecodeCostModel {
    fn default() -> Self {
        Self {
            secs_per_frame: 0.0016,
        }
    }
}

impl DecodeCostModel {
    /// Core-seconds to decode `secs` seconds of video at `fps`, at the frame
    /// rate actually consumed (`rate_fraction` of source frames; decode of
    /// skipped frames is still partially necessary for H.264 reference
    /// chains, modelled at 30 % cost).
    pub fn cost(&self, secs: f64, fps: f64, rate_fraction: f64) -> f64 {
        let r = rate_fraction.clamp(0.0, 1.0);
        let full = secs * fps * self.secs_per_frame;
        full * (r + 0.3 * (1.0 - r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bitrate_matches_paper_volume() {
        // 7.8 GB/day at average activity (a = 0.5 makes the swing cancel).
        let m = BitrateModel::default();
        let per_day = m.bytes(86_400.0, 0.5);
        assert!((per_day - 7.776e9).abs() / 7.776e9 < 0.01, "got {per_day}");
    }

    #[test]
    fn busier_scenes_cost_more_bits() {
        let m = BitrateModel::default();
        assert!(m.bytes(1.0, 0.9) > m.bytes(1.0, 0.1));
        assert!(m.bytes(1.0, 0.0) > 0.0);
    }

    #[test]
    fn jpeg_scales_quadratically_with_resolution() {
        let m = BitrateModel::default();
        let full = m.jpeg_frame_bytes(1.0);
        let half = m.jpeg_frame_bytes(0.5);
        assert!((full / half - 4.0).abs() < 1e-9);
    }

    #[test]
    fn base64_inflates_by_third() {
        assert!((BitrateModel::base64_inflate(3.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn decode_cost_is_about_five_percent_of_yolo_pipeline() {
        // Paper: decode 1.6 ms/frame vs YOLO 86 ms/frame ⇒ ~2 % per frame;
        // amortized over detect-to-track pipelines decode lands near 5 %.
        let d = DecodeCostModel::default();
        let one_second_full = d.cost(1.0, 30.0, 1.0);
        assert!((one_second_full - 0.048).abs() < 1e-9);
    }

    #[test]
    fn skipped_frames_still_cost_some_decode() {
        let d = DecodeCostModel::default();
        let full = d.cost(1.0, 30.0, 1.0);
        let sampled = d.cost(1.0, 30.0, 0.0);
        assert!(sampled > 0.0);
        assert!(sampled < full * 0.5);
    }

    #[test]
    fn codec_params_pixels() {
        assert_eq!(CodecParams::default().pixels(), 1280 * 720);
    }
}
