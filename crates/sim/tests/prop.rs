//! Property tests for the hardware simulator.

use proptest::prelude::*;
use vetl_sim::{
    pareto_frontier, simulate, CloudSpec, ClusterSpec, Placement, PlacementPoint, TaskGraph,
    TaskNode, VideoBuffer,
};

fn random_graph(secs: &[f64], chain: bool) -> TaskGraph {
    let mut g = TaskGraph::new();
    let mut prev = None;
    for (i, &s) in secs.iter().enumerate() {
        let n = g.add_node(TaskNode::new(format!("t{i}"), s, s * 0.6).with_payload(1e5 * s, 1e4));
        if chain {
            if let Some(p) = prev {
                g.add_edge(p, n);
            }
            prev = Some(n);
        }
    }
    g
}

proptest! {
    /// The Pareto frontier contains no dominated points and loses no
    /// undominated ones.
    #[test]
    fn pareto_frontier_is_exact(
        pts in prop::collection::vec((0.1f64..10.0, 0.0f64..5.0), 1..40),
    ) {
        let points: Vec<PlacementPoint> = pts
            .iter()
            .map(|&(runtime, cloud_usd)| PlacementPoint {
                placement: Placement::all_onprem(1),
                runtime,
                cloud_usd,
            })
            .collect();
        let frontier = pareto_frontier(points.clone());
        let dominates = |a: &PlacementPoint, b: &PlacementPoint| {
            a.runtime <= b.runtime + 1e-12
                && a.cloud_usd <= b.cloud_usd + 1e-12
                && (a.runtime < b.runtime - 1e-12 || a.cloud_usd < b.cloud_usd - 1e-12)
        };
        // No frontier point is dominated by any input point.
        for f in &frontier {
            for p in &points {
                prop_assert!(!dominates(p, f),
                    "frontier point ({}, {}) dominated by ({}, {})",
                    f.runtime, f.cloud_usd, p.runtime, p.cloud_usd);
            }
        }
        // Every input point is dominated-or-equalled by some frontier point.
        for p in &points {
            let covered = frontier.iter().any(|f| {
                f.runtime <= p.runtime + 1e-12 && f.cloud_usd <= p.cloud_usd + 1e-12
            });
            prop_assert!(covered, "({}, {}) uncovered", p.runtime, p.cloud_usd);
        }
    }

    /// Offloading work to the cloud never increases on-premise busy time,
    /// and cloud cost is monotone in the number of cloud-placed nodes along
    /// a fixed nesting chain of placements.
    #[test]
    fn cloud_offload_monotonicity(
        secs in prop::collection::vec(0.05f64..1.0, 2..8),
        chain in prop::bool::ANY,
    ) {
        let g = random_graph(&secs, chain);
        let cluster = ClusterSpec::with_cores(2);
        let cloud = CloudSpec::default();
        let mut prev_onprem = f64::INFINITY;
        let mut prev_usd = -1.0;
        for k in 0..=g.len() {
            // Nested placements: first k nodes on the cloud.
            let mut p = Placement::all_onprem(g.len());
            for i in 0..k {
                p.set_cloud(vetl_sim::NodeId(i), true);
            }
            let r = simulate(&g, &p, &cluster, &cloud);
            prop_assert!(r.onprem_busy_secs <= prev_onprem + 1e-9);
            prop_assert!(r.cloud_usd >= prev_usd - 1e-12);
            prev_onprem = r.onprem_busy_secs;
            prev_usd = r.cloud_usd;
        }
    }

    /// Buffer arithmetic: a sequence of pushes/drains never exceeds
    /// capacity when pushes are checked with `fits` first.
    #[test]
    fn checked_pushes_never_overflow(
        ops in prop::collection::vec((0.0f64..50.0, 0.0f64..40.0), 1..100),
        capacity in 10.0f64..200.0,
    ) {
        let mut buf = VideoBuffer::new(capacity);
        for (push, drain) in ops {
            if buf.fits(push) {
                buf.push(push).expect("fits was checked");
            }
            buf.drain(drain);
            prop_assert!(buf.used() <= capacity + 1e-6);
            prop_assert!(buf.used() >= 0.0);
        }
    }

    /// Makespan scales inversely with core speed for on-premise-only runs.
    #[test]
    fn makespan_scales_with_core_speed(
        secs in prop::collection::vec(0.05f64..1.0, 1..8),
        speed in 0.5f64..4.0,
    ) {
        let g = random_graph(&secs, false);
        let p = Placement::all_onprem(g.len());
        let cloud = CloudSpec::default();
        let base = simulate(&g, &p, &ClusterSpec { cores: 2, core_speed: 1.0 }, &cloud);
        let fast = simulate(&g, &p, &ClusterSpec { cores: 2, core_speed: speed }, &cloud);
        prop_assert!((fast.makespan * speed - base.makespan).abs() < 1e-6 * base.makespan.max(1.0));
    }
}
