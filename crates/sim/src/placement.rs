//! Task placements: which UDFs run on the cloud.
//!
//! A placement of task graph `G_k` marks every node as on-premise or cloud.
//! The offline phase filters the exponential placement space down to the
//! cost/runtime Pareto frontier `P_k` (Appendix A.2) so the online knob
//! switcher only iterates over promising candidates.

use crate::task::{NodeId, TaskGraph};

/// A cloud/on-premise assignment for every node of a task graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Placement {
    cloud: Vec<bool>,
}

impl Placement {
    /// Everything on premises.
    pub fn all_onprem(n_nodes: usize) -> Self {
        Self {
            cloud: vec![false; n_nodes],
        }
    }

    /// Everything on the cloud.
    pub fn all_cloud(n_nodes: usize) -> Self {
        Self {
            cloud: vec![true; n_nodes],
        }
    }

    /// From a bitmask (bit `i` = node `i` on cloud). Handy for enumeration.
    pub fn from_mask(n_nodes: usize, mask: u64) -> Self {
        assert!(n_nodes <= 64, "mask-based placement limited to 64 nodes");
        Self {
            cloud: (0..n_nodes).map(|i| mask >> i & 1 == 1).collect(),
        }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.cloud.len()
    }

    /// True when the placement covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.cloud.is_empty()
    }

    /// Is `node` placed on the cloud?
    pub fn is_cloud(&self, node: NodeId) -> bool {
        self.cloud[node.0]
    }

    /// Move a node to the cloud (or back).
    pub fn set_cloud(&mut self, node: NodeId, on_cloud: bool) {
        self.cloud[node.0] = on_cloud;
    }

    /// Number of cloud-placed nodes.
    pub fn cloud_count(&self) -> usize {
        self.cloud.iter().filter(|&&c| c).count()
    }

    /// Enumerate all `2^n` placements of an `n`-node graph (n ≤ 20 guarded).
    ///
    /// The paper uses a learned Placeto search because its framework targets
    /// arbitrary DAGs; the evaluation DAGs have ≤ 10 nodes, where exhaustive
    /// enumeration yields the *exact* Pareto frontier (see DESIGN.md).
    pub fn enumerate(n_nodes: usize) -> impl Iterator<Item = Placement> {
        assert!(
            n_nodes <= 20,
            "exhaustive enumeration capped at 20 nodes; use beam search"
        );
        (0u64..(1u64 << n_nodes)).map(move |mask| Placement::from_mask(n_nodes, mask))
    }
}

/// A placement evaluated by the simulator: its wall-clock runtime and cloud
/// dollars for one execution of the graph.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementPoint {
    /// The placement itself.
    pub placement: Placement,
    /// Simulated makespan, seconds.
    pub runtime: f64,
    /// Simulated cloud cost, dollars.
    pub cloud_usd: f64,
}

/// Filter to the cost/runtime Pareto frontier: keep a point iff no other
/// point is at least as good in both dimensions and strictly better in one.
/// The result is sorted by ascending cloud cost (so "cheapest placement
/// first" iteration in the knob switcher is a plain scan).
pub fn pareto_frontier(mut points: Vec<PlacementPoint>) -> Vec<PlacementPoint> {
    // Sort by (cost asc, runtime asc); sweep keeping strictly-improving
    // runtimes. Deduplicate equal (cost, runtime) pairs.
    points.sort_by(|a, b| {
        a.cloud_usd
            .partial_cmp(&b.cloud_usd)
            .expect("finite cost")
            .then(a.runtime.partial_cmp(&b.runtime).expect("finite runtime"))
    });
    let mut frontier: Vec<PlacementPoint> = Vec::new();
    for p in points {
        match frontier.last() {
            None => frontier.push(p),
            Some(last) => {
                if p.runtime < last.runtime - 1e-12 {
                    frontier.push(p);
                }
                // Same or worse runtime at same-or-higher cost: dominated.
            }
        }
    }
    frontier
}

/// Greedy beam search over placements for graphs too large to enumerate:
/// start from all-on-premise, repeatedly move the single node to the cloud
/// that best improves runtime per added dollar, keeping the `beam_width`
/// best frontiers. `evaluate` maps a placement to (runtime, cloud_usd).
pub fn beam_search(
    graph: &TaskGraph,
    beam_width: usize,
    mut evaluate: impl FnMut(&Placement) -> (f64, f64),
) -> Vec<PlacementPoint> {
    let n = graph.len();
    let mut beam: Vec<Placement> = vec![Placement::all_onprem(n)];
    let mut seen: Vec<PlacementPoint> = Vec::new();
    for p in &beam {
        let (runtime, cloud_usd) = evaluate(p);
        seen.push(PlacementPoint {
            placement: p.clone(),
            runtime,
            cloud_usd,
        });
    }

    for _depth in 0..n {
        let mut candidates: Vec<PlacementPoint> = Vec::new();
        for base in &beam {
            for i in 0..n {
                let id = NodeId(i);
                if base.is_cloud(id) {
                    continue;
                }
                let mut next = base.clone();
                next.set_cloud(id, true);
                if seen.iter().any(|s| s.placement == next)
                    || candidates.iter().any(|c| c.placement == next)
                {
                    continue;
                }
                let (runtime, cloud_usd) = evaluate(&next);
                candidates.push(PlacementPoint {
                    placement: next,
                    runtime,
                    cloud_usd,
                });
            }
        }
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by(|a, b| a.runtime.partial_cmp(&b.runtime).expect("finite"));
        candidates.truncate(beam_width);
        beam = candidates.iter().map(|c| c.placement.clone()).collect();
        seen.extend(candidates);
    }
    pareto_frontier(seen)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(runtime: f64, cloud_usd: f64) -> PlacementPoint {
        PlacementPoint {
            placement: Placement::all_onprem(1),
            runtime,
            cloud_usd,
        }
    }

    #[test]
    fn enumerate_covers_all_masks() {
        let all: Vec<Placement> = Placement::enumerate(3).collect();
        assert_eq!(all.len(), 8);
        assert_eq!(all[0].cloud_count(), 0);
        assert_eq!(all[7].cloud_count(), 3);
    }

    #[test]
    fn pareto_removes_dominated_points() {
        let pts = vec![
            point(10.0, 0.0), // frontier: free but slow
            point(5.0, 1.0),  // frontier
            point(6.0, 2.0),  // dominated by (5,1)
            point(2.0, 3.0),  // frontier
            point(2.0, 4.0),  // dominated (same runtime, pricier)
        ];
        let f = pareto_frontier(pts);
        let rts: Vec<f64> = f.iter().map(|p| p.runtime).collect();
        assert_eq!(rts, vec![10.0, 5.0, 2.0]);
        // Sorted by ascending cost.
        assert!(f.windows(2).all(|w| w[0].cloud_usd <= w[1].cloud_usd));
    }

    #[test]
    fn pareto_keeps_single_point() {
        let f = pareto_frontier(vec![point(1.0, 1.0)]);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn pareto_handles_duplicates() {
        let f = pareto_frontier(vec![point(1.0, 1.0), point(1.0, 1.0)]);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn beam_search_finds_the_enumerated_frontier_on_small_graph() {
        // Synthetic evaluation: runtime decreases, cost increases with each
        // cloud-placed node — frontier should include every cloud count.
        let mut g = TaskGraph::new();
        for i in 0..4 {
            g.add_node(crate::task::TaskNode::new(format!("n{i}"), 1.0, 0.5));
        }
        let eval = |p: &Placement| {
            let c = p.cloud_count() as f64;
            (4.0 - c * 0.9, c * 0.1)
        };
        let beam = beam_search(&g, 4, eval);
        assert_eq!(beam.len(), 5, "all five cloud counts are Pareto-optimal");
    }
}
