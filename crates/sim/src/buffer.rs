//! The video buffer and processing backlog.
//!
//! Eq. 1 of the paper is Skyscraper's throughput guarantee: the bytes of
//! produced-but-unprocessed frames may never exceed the buffer size `B`.
//! [`VideoBuffer`] enforces that invariant; [`Backlog`] tracks the FIFO of
//! set-aside segments together with the compute work still owed to them, so
//! the ingestion loop can convert spare core-seconds into freed buffer
//! bytes.

/// Error returned when a push would exceed the buffer capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferOverflow {
    /// Bytes that were attempted.
    pub attempted: f64,
    /// Bytes currently used.
    pub used: f64,
    /// Capacity in bytes.
    pub capacity: f64,
}

impl std::fmt::Display for BufferOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "buffer overflow: push of {:.0} B onto {:.0}/{:.0} B",
            self.attempted, self.used, self.capacity
        )
    }
}

impl std::error::Error for BufferOverflow {}

/// A fixed-capacity byte buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VideoBuffer {
    capacity: f64,
    used: f64,
}

impl VideoBuffer {
    /// Create an empty buffer of `capacity` bytes.
    pub fn new(capacity: f64) -> Self {
        assert!(capacity >= 0.0, "capacity must be non-negative");
        Self {
            capacity,
            used: 0.0,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Bytes currently buffered.
    pub fn used(&self) -> f64 {
        self.used
    }

    /// Remaining headroom in bytes.
    pub fn headroom(&self) -> f64 {
        (self.capacity - self.used).max(0.0)
    }

    /// Fill level in `[0, 1]`.
    pub fn fill_fraction(&self) -> f64 {
        if self.capacity == 0.0 {
            if self.used > 0.0 {
                1.0
            } else {
                0.0
            }
        } else {
            (self.used / self.capacity).clamp(0.0, 1.0)
        }
    }

    /// Add bytes, failing if capacity would be exceeded.
    pub fn push(&mut self, bytes: f64) -> Result<(), BufferOverflow> {
        assert!(bytes >= 0.0, "cannot push negative bytes");
        if self.used + bytes > self.capacity + 1e-6 {
            return Err(BufferOverflow {
                attempted: bytes,
                used: self.used,
                capacity: self.capacity,
            });
        }
        self.used += bytes;
        Ok(())
    }

    /// Would `bytes` fit right now?
    pub fn fits(&self, bytes: f64) -> bool {
        self.used + bytes <= self.capacity + 1e-6
    }

    /// Remove bytes (clamped at zero).
    pub fn drain(&mut self, bytes: f64) {
        assert!(bytes >= 0.0, "cannot drain negative bytes");
        self.used = (self.used - bytes).max(0.0);
    }
}

/// One set-aside chunk of video: its buffered bytes and the on-premise
/// core-seconds of work still owed before the bytes can be released.
#[derive(Debug, Clone, Copy, PartialEq)]
struct BacklogEntry {
    bytes: f64,
    work_remaining: f64,
}

/// FIFO backlog of set-aside video.
///
/// `process(core_secs)` retires work head-first and frees bytes
/// *proportionally* to the work completed within each entry — the fluid
/// approximation the paper's own simulator uses (Appendix M.1 treats video
/// as a continuous stream of per-segment work items).
#[derive(Debug, Clone, Default)]
pub struct Backlog {
    entries: std::collections::VecDeque<BacklogEntry>,
    total_bytes: f64,
    total_work: f64,
}

impl Backlog {
    /// Empty backlog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue a chunk with `bytes` buffered and `work` core-seconds owed.
    pub fn push(&mut self, bytes: f64, work: f64) {
        assert!(
            bytes >= 0.0 && work >= 0.0,
            "bytes/work must be non-negative"
        );
        self.entries.push_back(BacklogEntry {
            bytes,
            work_remaining: work,
        });
        self.total_bytes += bytes;
        self.total_work += work;
    }

    /// Spend up to `core_secs` of compute, returning the bytes freed.
    pub fn process(&mut self, mut core_secs: f64) -> f64 {
        assert!(core_secs >= 0.0, "cannot process negative work");
        let mut freed = 0.0;
        while core_secs > 0.0 {
            let Some(head) = self.entries.front_mut() else {
                break;
            };
            if head.work_remaining <= core_secs {
                core_secs -= head.work_remaining;
                self.total_work -= head.work_remaining;
                freed += head.bytes;
                self.total_bytes -= head.bytes;
                self.entries.pop_front();
            } else {
                let fraction = core_secs / head.work_remaining;
                let released = head.bytes * fraction;
                head.bytes -= released;
                head.work_remaining -= core_secs;
                self.total_work -= core_secs;
                self.total_bytes -= released;
                freed += released;
                core_secs = 0.0;
            }
        }
        // Guard against negative drift from float arithmetic.
        if self.entries.is_empty() {
            self.total_bytes = 0.0;
            self.total_work = 0.0;
        }
        freed
    }

    /// Outstanding buffered bytes.
    pub fn bytes(&self) -> f64 {
        self.total_bytes.max(0.0)
    }

    /// Outstanding core-seconds of work.
    pub fn work(&self) -> f64 {
        self.total_work.max(0.0)
    }

    /// Number of queued chunks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Snapshot the FIFO as `(bytes, work_remaining)` pairs, head first —
    /// the serialization surface for durable checkpoints.
    pub fn entries(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.entries.iter().map(|e| (e.bytes, e.work_remaining))
    }

    /// The raw aggregate `(bytes, work)` accumulators. Unlike
    /// [`bytes`](Self::bytes) / [`work`](Self::work) these are not clamped:
    /// `process` decrements the aggregates with different float operations
    /// than the per-entry fields, so a checkpoint must persist them verbatim
    /// — recomputing them as a sum over [`entries`](Self::entries) would not
    /// be bitwise faithful.
    pub fn raw_totals(&self) -> (f64, f64) {
        (self.total_bytes, self.total_work)
    }

    /// Rebuild a backlog from a snapshot captured with
    /// [`entries`](Self::entries) and [`raw_totals`](Self::raw_totals).
    /// The aggregates are restored verbatim, so the rebuilt backlog is
    /// indistinguishable from the snapshotted one.
    pub fn from_parts(
        entries: impl IntoIterator<Item = (f64, f64)>,
        raw_totals: (f64, f64),
    ) -> Self {
        let mut b = Self::new();
        for (bytes, work) in entries {
            b.push(bytes, work);
        }
        b.total_bytes = raw_totals.0;
        b.total_work = raw_totals.1;
        b
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_push_and_drain() {
        let mut b = VideoBuffer::new(100.0);
        b.push(60.0).unwrap();
        assert_eq!(b.used(), 60.0);
        assert_eq!(b.headroom(), 40.0);
        b.drain(80.0);
        assert_eq!(b.used(), 0.0);
    }

    #[test]
    fn buffer_rejects_overflow() {
        let mut b = VideoBuffer::new(100.0);
        b.push(90.0).unwrap();
        let err = b.push(20.0).unwrap_err();
        assert_eq!(err.capacity, 100.0);
        assert_eq!(b.used(), 90.0, "failed push must not change state");
        assert!(!b.fits(20.0));
        assert!(b.fits(10.0));
    }

    #[test]
    fn fill_fraction_bounds() {
        let mut b = VideoBuffer::new(10.0);
        assert_eq!(b.fill_fraction(), 0.0);
        b.push(5.0).unwrap();
        assert!((b.fill_fraction() - 0.5).abs() < 1e-12);
        let z = VideoBuffer::new(0.0);
        assert_eq!(z.fill_fraction(), 0.0);
    }

    #[test]
    fn backlog_fifo_processing() {
        let mut q = Backlog::new();
        q.push(100.0, 10.0);
        q.push(200.0, 5.0);
        assert_eq!(q.bytes(), 300.0);
        assert_eq!(q.work(), 15.0);
        // Complete the first entry exactly.
        let freed = q.process(10.0);
        assert!((freed - 100.0).abs() < 1e-9);
        assert_eq!(q.len(), 1);
        // Half of the second entry.
        let freed = q.process(2.5);
        assert!((freed - 100.0).abs() < 1e-9);
        assert!((q.bytes() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn backlog_processing_more_than_work_empties_it() {
        let mut q = Backlog::new();
        q.push(50.0, 1.0);
        let freed = q.process(100.0);
        assert!((freed - 50.0).abs() < 1e-9);
        assert!(q.is_empty());
        assert_eq!(q.bytes(), 0.0);
        assert_eq!(q.work(), 0.0);
    }

    #[test]
    fn backlog_partial_processing_frees_proportionally() {
        let mut q = Backlog::new();
        q.push(100.0, 4.0);
        let freed = q.process(1.0);
        assert!((freed - 25.0).abs() < 1e-9);
        assert!((q.work() - 3.0).abs() < 1e-9);
    }
}
