//! # vetl-sim — task graphs, hardware model and the Appendix-M simulator
//!
//! Skyscraper executes each knob configuration's **task graph** (a DAG of
//! UDFs) on a mix of on-premise cores and on-demand cloud workers. The paper
//! relies on a makespan **simulator** (Appendix M) in three places:
//!
//! 1. the offline *placement search* evaluates thousands of candidate
//!    placements without paying real cloud invocations (Appendix A.2),
//! 2. the ablation study (§5.4) and the design-decision study (Appendix B)
//!    run entirely on the simulator,
//! 3. the simulator itself is validated against real executions within ≈ 9 %
//!    (Figs. 22–23) — our reproduction validates it against the
//!    `vetl-exec` thread-pool executor instead of real hardware.
//!
//! This crate implements the simulator exactly as described in Appendix M.1:
//! per-core availability times, serialized uplink/downlink bandwidth
//! occupancy, cloud round-trip latency, and ready-time-ordered scheduling.
//! It also provides the byte-bounded video [`buffer`] that gives Skyscraper
//! its throughput guarantee (Eq. 1) and the [`trace`] records behind Fig. 3.

pub mod buffer;
pub mod cost;
pub mod hardware;
pub mod makespan;
pub mod placement;
pub mod task;
pub mod trace;

pub use buffer::{Backlog, BufferOverflow, VideoBuffer};
pub use cost::CostModel;
pub use hardware::{CloudSpec, ClusterSpec, HardwareSpec};
pub use makespan::{simulate, simulate_into, SimResult, SimScratch, SimStats};
pub use placement::{pareto_frontier, Placement, PlacementPoint};
pub use task::{NodeId, TaskGraph, TaskNode};
pub use trace::{Trace, TracePoint};
