//! The Appendix-M makespan simulator.
//!
//! Faithful implementation of the algorithm in Appendix M.1:
//!
//! * tasks are simulated in order of earliest dependency-resolution time;
//! * an on-premise task occupies the core with the lowest availability time
//!   (UDFs are assumed single-core, §M.1);
//! * a cloud task first waits for uplink bandwidth — the simulator "assumes
//!   that each task will occupy the bandwidth fully for the amount of time
//!   required to upload/download their payloads" — then pays the round-trip
//!   latency and its billed compute time, then serializes on the downlink;
//! * the makespan is the time the last task finishes.

use crate::hardware::{CloudSpec, ClusterSpec};
use crate::placement::Placement;
use crate::task::TaskGraph;

/// Outcome of simulating one task-graph execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Wall-clock time at which the last task finishes (seconds).
    pub makespan: f64,
    /// Cloud dollars spent (billed compute + invocation fees).
    pub cloud_usd: f64,
    /// Per-task finish times, indexed by node id.
    pub finish_times: Vec<f64>,
    /// Core-seconds of on-premise occupancy.
    pub onprem_busy_secs: f64,
    /// Billed cloud compute seconds.
    pub cloud_busy_secs: f64,
}

/// Reusable buffers for [`simulate_into`]: the per-task finish/scheduled
/// arrays and the per-core availability times. One scratch serves any
/// graph/cluster size — buffers are resized (retaining capacity) on entry,
/// so the steady serving state allocates nothing per simulated segment.
#[derive(Debug, Clone, Default)]
pub struct SimScratch {
    finish: Vec<f64>,
    scheduled: Vec<bool>,
    core_avail: Vec<f64>,
}

impl SimScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-task finish times of the most recent [`simulate_into`] run.
    pub fn finish_times(&self) -> &[f64] {
        &self.finish
    }
}

/// The scalar outcomes of one simulated execution — [`SimResult`] minus the
/// owned `finish_times` vector (read those from [`SimScratch::finish_times`]
/// when needed). Produced by the allocation-free [`simulate_into`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimStats {
    /// Wall-clock time at which the last task finishes (seconds).
    pub makespan: f64,
    /// Cloud dollars spent (billed compute + invocation fees).
    pub cloud_usd: f64,
    /// Core-seconds of on-premise occupancy.
    pub onprem_busy_secs: f64,
    /// Billed cloud compute seconds.
    pub cloud_busy_secs: f64,
}

/// Simulate one execution of `graph` under `placement` on the given
/// hardware.
///
/// # Panics
/// Panics if the cluster has zero cores while any task is placed on-premise,
/// or if a cloud-placed task transfers bytes over a zero-bandwidth link.
pub fn simulate(
    graph: &TaskGraph,
    placement: &Placement,
    cluster: &ClusterSpec,
    cloud: &CloudSpec,
) -> SimResult {
    let mut scratch = SimScratch::new();
    let stats = simulate_into(graph, placement, cluster, cloud, &mut scratch);
    SimResult {
        makespan: stats.makespan,
        cloud_usd: stats.cloud_usd,
        finish_times: scratch.finish,
        onprem_busy_secs: stats.onprem_busy_secs,
        cloud_busy_secs: stats.cloud_busy_secs,
    }
}

/// [`simulate`] with caller-owned scratch buffers: bitwise-identical
/// arithmetic (it *is* the implementation behind [`simulate`]), but the
/// steady state touches no allocator — the ingest hot path calls this once
/// per segment with a per-session [`SimScratch`].
///
/// # Panics
/// Same contract as [`simulate`].
pub fn simulate_into(
    graph: &TaskGraph,
    placement: &Placement,
    cluster: &ClusterSpec,
    cloud: &CloudSpec,
    scratch: &mut SimScratch,
) -> SimStats {
    assert_eq!(
        placement.len(),
        graph.len(),
        "placement/graph size mismatch"
    );
    let n = graph.len();
    scratch.finish.clear();
    scratch.finish.resize(n, f64::NAN);
    scratch.scheduled.clear();
    scratch.scheduled.resize(n, false);
    scratch.core_avail.clear();
    scratch.core_avail.resize(cluster.cores, 0.0);
    let finish = &mut scratch.finish;
    let scheduled = &mut scratch.scheduled;
    let core_avail = &mut scratch.core_avail;

    let mut uplink_free = 0.0f64;
    let mut downlink_free = 0.0f64;
    let mut cloud_usd = 0.0f64;
    let mut onprem_busy = 0.0f64;
    let mut cloud_busy = 0.0f64;

    for _ in 0..n {
        // Pick the unscheduled, dependency-resolved task with the earliest
        // ready time (Appendix M.1).
        let mut chosen: Option<(usize, f64)> = None;
        for i in 0..n {
            if scheduled[i] {
                continue;
            }
            let id = crate::task::NodeId(i);
            let mut ready = 0.0f64;
            let mut ok = true;
            for p in graph.predecessors(id) {
                if !scheduled[p.0] {
                    ok = false;
                    break;
                }
                ready = ready.max(finish[p.0]);
            }
            if !ok {
                continue;
            }
            match chosen {
                None => chosen = Some((i, ready)),
                Some((_, best)) if ready < best => chosen = Some((i, ready)),
                _ => {}
            }
        }
        let (i, ready) = chosen.expect("acyclic graph always has a ready task");
        let id = crate::task::NodeId(i);
        let node = graph.node(id);

        if placement.is_cloud(id) {
            // Upload serializes on the uplink.
            let upload_time = if node.upload_bytes > 0.0 {
                assert!(cloud.uplink_bytes_per_sec > 0.0, "zero uplink bandwidth");
                node.upload_bytes / cloud.uplink_bytes_per_sec
            } else {
                0.0
            };
            let upload_start = ready.max(uplink_free);
            let upload_end = upload_start + upload_time;
            uplink_free = upload_end;

            let compute_done = upload_end + cloud.rtt_secs + node.cloud_compute_secs;

            let download_time = if node.download_bytes > 0.0 {
                assert!(
                    cloud.downlink_bytes_per_sec > 0.0,
                    "zero downlink bandwidth"
                );
                node.download_bytes / cloud.downlink_bytes_per_sec
            } else {
                0.0
            };
            let download_start = compute_done.max(downlink_free);
            let download_end = download_start + download_time;
            downlink_free = downlink_free.max(download_end);

            finish[i] = download_end;
            cloud_usd +=
                node.cloud_compute_secs * cloud.usd_per_compute_sec + cloud.usd_per_invocation;
            cloud_busy += node.cloud_compute_secs;
        } else {
            assert!(
                cluster.cores > 0,
                "on-premise task but cluster has no cores"
            );
            // Cheapest-available core.
            let (c, &avail) = core_avail
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .expect("at least one core");
            let start = ready.max(avail);
            let runtime = node.onprem_secs / cluster.core_speed;
            finish[i] = start + runtime;
            core_avail[c] = finish[i];
            onprem_busy += runtime;
        }
        scheduled[i] = true;
    }

    let makespan = finish.iter().cloned().fold(0.0f64, f64::max);
    SimStats {
        makespan,
        cloud_usd,
        onprem_busy_secs: onprem_busy,
        cloud_busy_secs: cloud_busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{TaskGraph, TaskNode};

    fn indep(n: usize, secs: f64) -> TaskGraph {
        let mut g = TaskGraph::new();
        for i in 0..n {
            g.add_node(TaskNode::new(format!("t{i}"), secs, secs / 2.0));
        }
        g
    }

    #[test]
    fn independent_tasks_pack_onto_cores() {
        // 4 tasks of 1 s on 2 cores → makespan 2 s.
        let g = indep(4, 1.0);
        let r = simulate(
            &g,
            &Placement::all_onprem(4),
            &ClusterSpec::with_cores(2),
            &CloudSpec::default(),
        );
        assert!((r.makespan - 2.0).abs() < 1e-9);
        assert!((r.onprem_busy_secs - 4.0).abs() < 1e-9);
        assert_eq!(r.cloud_usd, 0.0);
    }

    #[test]
    fn chain_serializes() {
        let mut g = TaskGraph::new();
        let a = g.add_node(TaskNode::new("a", 1.0, 0.5));
        let b = g.add_node(TaskNode::new("b", 2.0, 1.0));
        g.add_edge(a, b);
        let r = simulate(
            &g,
            &Placement::all_onprem(2),
            &ClusterSpec::with_cores(8),
            &CloudSpec::default(),
        );
        assert!((r.makespan - 3.0).abs() < 1e-9);
    }

    #[test]
    fn faster_cores_shrink_makespan() {
        let g = indep(2, 1.0);
        let slow = simulate(
            &g,
            &Placement::all_onprem(2),
            &ClusterSpec {
                cores: 1,
                core_speed: 1.0,
            },
            &CloudSpec::default(),
        );
        let fast = simulate(
            &g,
            &Placement::all_onprem(2),
            &ClusterSpec {
                cores: 1,
                core_speed: 2.0,
            },
            &CloudSpec::default(),
        );
        assert!((slow.makespan - 2.0).abs() < 1e-9);
        assert!((fast.makespan - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cloud_pays_rtt_and_bandwidth() {
        let mut g = TaskGraph::new();
        g.add_node(TaskNode::new("up", 10.0, 1.0).with_payload(50e6, 0.0));
        let cloud = CloudSpec {
            rtt_secs: 0.1,
            uplink_bytes_per_sec: 50e6,
            downlink_bytes_per_sec: 100e6,
            usd_per_compute_sec: 1e-4,
            usd_per_invocation: 0.0,
        };
        let r = simulate(
            &g,
            &Placement::all_cloud(1),
            &ClusterSpec::with_cores(1),
            &cloud,
        );
        // 1 s upload + 0.1 s RTT + 1 s compute.
        assert!((r.makespan - 2.1).abs() < 1e-9);
        assert!((r.cloud_usd - 1e-4).abs() < 1e-12);
        assert_eq!(r.onprem_busy_secs, 0.0);
    }

    #[test]
    fn uplink_serializes_concurrent_cloud_tasks() {
        // Two cloud tasks each needing 1 s of upload: the second waits.
        let mut g = TaskGraph::new();
        for i in 0..2 {
            g.add_node(TaskNode::new(format!("c{i}"), 5.0, 0.5).with_payload(50e6, 0.0));
        }
        let cloud = CloudSpec {
            rtt_secs: 0.0,
            ..CloudSpec::default()
        };
        let r = simulate(
            &g,
            &Placement::all_cloud(2),
            &ClusterSpec::with_cores(1),
            &cloud,
        );
        // Task A: upload 0–1, compute 1–1.5. Task B: upload 1–2, compute 2–2.5.
        assert!((r.makespan - 2.5).abs() < 1e-9);
    }

    #[test]
    fn offloading_helps_when_cluster_is_saturated() {
        // 4 × 1 s tasks on one core: 4 s on-prem; offloading two of them
        // overlaps cloud latency with local compute.
        let mut g = TaskGraph::new();
        for i in 0..4 {
            g.add_node(TaskNode::new(format!("t{i}"), 1.0, 1.0).with_payload(1e6, 1e5));
        }
        let onprem = simulate(
            &g,
            &Placement::all_onprem(4),
            &ClusterSpec::with_cores(1),
            &CloudSpec::default(),
        );
        let hybrid = simulate(
            &g,
            &Placement::from_mask(4, 0b1100),
            &ClusterSpec::with_cores(1),
            &CloudSpec::default(),
        );
        assert!(hybrid.makespan < onprem.makespan);
        assert!(hybrid.cloud_usd > 0.0);
    }

    #[test]
    fn adding_work_never_reduces_makespan() {
        let mut g = indep(3, 1.0);
        let r3 = simulate(
            &g,
            &Placement::all_onprem(3),
            &ClusterSpec::with_cores(2),
            &CloudSpec::default(),
        );
        g.add_node(TaskNode::new("extra", 0.5, 0.2));
        let r4 = simulate(
            &g,
            &Placement::all_onprem(4),
            &ClusterSpec::with_cores(2),
            &CloudSpec::default(),
        );
        assert!(r4.makespan >= r3.makespan - 1e-12);
    }

    #[test]
    fn diamond_respects_dependencies() {
        let mut g = TaskGraph::new();
        let a = g.add_node(TaskNode::new("a", 1.0, 0.5));
        let b = g.add_node(TaskNode::new("b", 1.0, 0.5));
        let c = g.add_node(TaskNode::new("c", 1.0, 0.5));
        let d = g.add_node(TaskNode::new("d", 1.0, 0.5));
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        let r = simulate(
            &g,
            &Placement::all_onprem(4),
            &ClusterSpec::with_cores(2),
            &CloudSpec::default(),
        );
        // a: 0–1, b and c in parallel 1–2, d 2–3.
        assert!((r.makespan - 3.0).abs() < 1e-9);
        assert!(r.finish_times[3] >= r.finish_times[1].max(r.finish_times[2]));
    }

    #[test]
    fn simulate_into_matches_simulate_bitwise_across_reuse() {
        // One scratch reused across graphs of different sizes and shapes —
        // including shrinking — must reproduce the allocating `simulate`
        // bit for bit every time.
        let mut scratch = SimScratch::new();
        let diamond = {
            let mut g = TaskGraph::new();
            let a = g.add_node(TaskNode::new("a", 1.3, 0.5).with_payload(2e6, 1e5));
            let b = g.add_node(TaskNode::new("b", 2.7, 1.0));
            let c = g.add_node(TaskNode::new("c", 3.1, 1.5).with_payload(5e5, 5e4));
            let d = g.add_node(TaskNode::new("d", 0.9, 0.5));
            g.add_edge(a, b);
            g.add_edge(a, c);
            g.add_edge(b, d);
            g.add_edge(c, d);
            g
        };
        let cases = [
            (diamond.clone(), Placement::all_onprem(4)),
            (diamond.clone(), Placement::from_mask(4, 0b0101)),
            (indep(7, 0.3), Placement::from_mask(7, 0b101_0101)),
            (indep(2, 1.1), Placement::all_onprem(2)),
        ];
        for (g, placement) in &cases {
            let cluster = ClusterSpec::with_cores(3);
            let cloud = CloudSpec::default();
            let want = simulate(g, placement, &cluster, &cloud);
            let got = simulate_into(g, placement, &cluster, &cloud, &mut scratch);
            assert_eq!(got.makespan.to_bits(), want.makespan.to_bits());
            assert_eq!(got.cloud_usd.to_bits(), want.cloud_usd.to_bits());
            assert_eq!(
                got.onprem_busy_secs.to_bits(),
                want.onprem_busy_secs.to_bits()
            );
            assert_eq!(
                got.cloud_busy_secs.to_bits(),
                want.cloud_busy_secs.to_bits()
            );
            assert_eq!(scratch.finish_times().len(), want.finish_times.len());
            for (a, b) in scratch.finish_times().iter().zip(&want.finish_times) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn empty_graph_is_instant() {
        let g = TaskGraph::new();
        let r = simulate(
            &g,
            &Placement::all_onprem(0),
            &ClusterSpec::with_cores(1),
            &CloudSpec::default(),
        );
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.cloud_usd, 0.0);
    }
}
