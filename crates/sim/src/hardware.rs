//! Hardware provisioning model.
//!
//! Industrial live-video deployments are provisioned with three resource
//! types (§1, citing VideoEdge): a local compute cluster, a fixed-size video
//! buffer, and on-demand cloud credits. [`HardwareSpec`] bundles the three.
//! Cloud constants default to the paper's AWS-Lambda setup (3 GB functions,
//! §5.1) and Appendix-L pricing.

/// The on-premise cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Number of (v)CPU cores.
    pub cores: usize,
    /// Speed multiplier relative to the reference core that UDF runtimes
    /// were profiled on (1.0 = reference).
    pub core_speed: f64,
}

impl ClusterSpec {
    /// A cluster of `cores` reference-speed cores.
    pub fn with_cores(cores: usize) -> Self {
        Self {
            cores,
            core_speed: 1.0,
        }
    }

    /// Core-seconds of work the cluster retires per wall-clock second.
    pub fn throughput(&self) -> f64 {
        self.cores as f64 * self.core_speed
    }
}

/// On-demand cloud (AWS-Lambda-like FaaS).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloudSpec {
    /// Network round-trip latency to the cloud, seconds.
    pub rtt_secs: f64,
    /// Uplink bandwidth from the cluster to the cloud, bytes/second.
    pub uplink_bytes_per_sec: f64,
    /// Downlink bandwidth from the cloud, bytes/second.
    pub downlink_bytes_per_sec: f64,
    /// Price per billed second of one cloud function.
    pub usd_per_compute_sec: f64,
    /// Flat price per invocation (Lambda request fee).
    pub usd_per_invocation: f64,
}

impl Default for CloudSpec {
    fn default() -> Self {
        // AWS Lambda 3 GB: $0.0000166667/GB-s ⇒ 3 GB ≈ $0.00005/s, plus the
        // $0.20 per 1M request fee. Bandwidth reflects the commodity uplink
        // the paper verified between GCP VMs and Lambda (~50 MB/s up).
        Self {
            rtt_secs: 0.06,
            uplink_bytes_per_sec: 50e6,
            downlink_bytes_per_sec: 100e6,
            usd_per_compute_sec: 5.0e-5,
            usd_per_invocation: 2.0e-7,
        }
    }
}

/// Full provisioning: cluster + buffer + cloud.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareSpec {
    /// On-premise cluster.
    pub cluster: ClusterSpec,
    /// Cloud parameters.
    pub cloud: CloudSpec,
    /// Video buffer capacity in bytes (paper's Fig. 3 uses 4 GB).
    pub buffer_bytes: f64,
}

impl HardwareSpec {
    /// A typical provisioning: `cores` reference cores, 4 GB buffer,
    /// default cloud.
    pub fn with_cores(cores: usize) -> Self {
        Self {
            cluster: ClusterSpec::with_cores(cores),
            cloud: CloudSpec::default(),
            buffer_bytes: 4e9,
        }
    }

    /// Replace the buffer size.
    pub fn with_buffer(mut self, bytes: f64) -> Self {
        self.buffer_bytes = bytes;
        self
    }

    /// Replace the cloud spec.
    pub fn with_cloud(mut self, cloud: CloudSpec) -> Self {
        self.cloud = cloud;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_throughput() {
        let c = ClusterSpec {
            cores: 8,
            core_speed: 1.5,
        };
        assert!((c.throughput() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn default_cloud_is_lambda_priced() {
        let c = CloudSpec::default();
        // 1 hour of one 3 GB function ≈ $0.18.
        let hourly = c.usd_per_compute_sec * 3600.0;
        assert!((hourly - 0.18).abs() < 0.01);
    }

    #[test]
    fn hardware_builders() {
        let h = HardwareSpec::with_cores(16).with_buffer(1e9);
        assert_eq!(h.cluster.cores, 16);
        assert_eq!(h.buffer_bytes, 1e9);
    }
}
