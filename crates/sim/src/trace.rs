//! Execution traces — the raw data behind Fig. 3.
//!
//! The ingestion loop records one [`TracePoint`] per processed segment:
//! quality, instantaneous workload, buffer fill and cumulative cloud spend.
//! [`Trace::bucket_average`] reproduces the smoothing the paper applies
//! ("the data in Figure 3 is smoothed and hides that Skyscraper switched
//! 4 500 times between knob configurations").

/// One observation of the running system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Stream time, seconds.
    pub t_secs: f64,
    /// Result quality of the processed segment, relative to best (0–1).
    pub quality: f64,
    /// Work induced by the chosen configuration, core-seconds per second of
    /// video (multiply by a FLOP rate to get the paper's TFLOP/s axis).
    pub work_rate: f64,
    /// Buffer fill, bytes.
    pub buffer_bytes: f64,
    /// Cumulative cloud spend, dollars.
    pub cloud_usd: f64,
    /// Index of the knob configuration used.
    pub config: usize,
    /// Content category the switcher assigned.
    pub category: usize,
}

/// A time-ordered sequence of [`TracePoint`]s.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    points: Vec<TracePoint>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an observation (must be non-decreasing in time).
    pub fn push(&mut self, p: TracePoint) {
        if let Some(last) = self.points.last() {
            debug_assert!(p.t_secs >= last.t_secs, "trace must be time-ordered");
        }
        self.points.push(p);
    }

    /// All recorded points.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of knob switches (changes of configuration between
    /// consecutive segments) — the paper reports 4 500/day for Fig. 3.
    pub fn switch_count(&self) -> usize {
        self.points
            .windows(2)
            .filter(|w| w[0].config != w[1].config)
            .count()
    }

    /// Average points into `bucket_secs` buckets for plotting; `quality`,
    /// `work_rate` and `buffer_bytes` are averaged, `cloud_usd` takes the
    /// bucket's last value.
    pub fn bucket_average(&self, bucket_secs: f64) -> Vec<TracePoint> {
        assert!(bucket_secs > 0.0, "bucket size must be positive");
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.points.len() {
            let start = self.points[i].t_secs;
            let mut j = i;
            let (mut q, mut w, mut b) = (0.0, 0.0, 0.0);
            while j < self.points.len() && self.points[j].t_secs < start + bucket_secs {
                q += self.points[j].quality;
                w += self.points[j].work_rate;
                b += self.points[j].buffer_bytes;
                j += 1;
            }
            let n = (j - i) as f64;
            out.push(TracePoint {
                t_secs: start,
                quality: q / n,
                work_rate: w / n,
                buffer_bytes: b / n,
                cloud_usd: self.points[j - 1].cloud_usd,
                config: self.points[i].config,
                category: self.points[i].category,
            });
            i = j;
        }
        out
    }

    /// Mean quality over the whole trace.
    pub fn mean_quality(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.quality).sum::<f64>() / self.points.len() as f64
    }

    /// Total work in core-seconds (`work_rate` integrated over segments of
    /// `seg_len` seconds).
    pub fn total_work(&self, seg_len: f64) -> f64 {
        self.points.iter().map(|p| p.work_rate * seg_len).sum()
    }

    /// Final cumulative cloud spend.
    pub fn final_cloud_usd(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.cloud_usd)
    }

    /// Peak buffer fill in bytes.
    pub fn peak_buffer(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.buffer_bytes)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(t: f64, config: usize) -> TracePoint {
        TracePoint {
            t_secs: t,
            quality: 0.5,
            work_rate: 1.0,
            buffer_bytes: 100.0,
            cloud_usd: t * 0.01,
            config,
            category: 0,
        }
    }

    #[test]
    fn switch_counting() {
        let mut tr = Trace::new();
        for (i, c) in [0, 0, 1, 1, 2, 0].iter().enumerate() {
            tr.push(point(i as f64, *c));
        }
        assert_eq!(tr.switch_count(), 3);
    }

    #[test]
    fn bucket_average_reduces_points() {
        let mut tr = Trace::new();
        for i in 0..100 {
            tr.push(point(i as f64, 0));
        }
        let buckets = tr.bucket_average(10.0);
        assert_eq!(buckets.len(), 10);
        assert!((buckets[0].quality - 0.5).abs() < 1e-12);
        // cloud_usd is last-of-bucket.
        assert!((buckets[0].cloud_usd - 0.09).abs() < 1e-9);
    }

    #[test]
    fn summaries() {
        let mut tr = Trace::new();
        for i in 0..10 {
            tr.push(point(i as f64, 0));
        }
        assert!((tr.mean_quality() - 0.5).abs() < 1e-12);
        assert!((tr.total_work(2.0) - 20.0).abs() < 1e-12);
        assert!((tr.final_cloud_usd() - 0.09).abs() < 1e-9);
        assert_eq!(tr.peak_buffer(), 100.0);
    }

    #[test]
    fn empty_trace_summaries() {
        let tr = Trace::new();
        assert_eq!(tr.mean_quality(), 0.0);
        assert_eq!(tr.final_cloud_usd(), 0.0);
        assert_eq!(tr.switch_count(), 0);
    }
}
