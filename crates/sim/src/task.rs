//! Task graphs: DAGs of user-defined functions.
//!
//! Each knob configuration `k` corresponds to a task graph `G_k` whose nodes
//! are UDF executions (object detector, tracker, classifier, …) and whose
//! edges are data dependencies (§2, Appendix A.2). Nodes carry the profile
//! data the Appendix-M simulator needs: on-premise runtime, cloud compute
//! time, and the payload sizes exchanged when the node runs in the cloud.

/// Index of a node within its [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Raw index.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// One UDF execution with its profiled characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskNode {
    /// Human-readable UDF name ("yolo", "kcf", …).
    pub name: String,
    /// Runtime on a single reference on-premise core, seconds (Appendix M:
    /// UDFs are assumed to occupy one core each).
    pub onprem_secs: f64,
    /// Billed compute time of the cloud version, seconds.
    pub cloud_compute_secs: f64,
    /// Bytes uploaded when the node is placed on the cloud (JPEG + Base64).
    pub upload_bytes: f64,
    /// Bytes downloaded back on completion.
    pub download_bytes: f64,
}

impl TaskNode {
    /// Convenience constructor for a node with symmetric small payloads.
    pub fn new(name: impl Into<String>, onprem_secs: f64, cloud_compute_secs: f64) -> Self {
        Self {
            name: name.into(),
            onprem_secs,
            cloud_compute_secs,
            upload_bytes: 0.0,
            download_bytes: 0.0,
        }
    }

    /// Set the cloud transfer payloads.
    pub fn with_payload(mut self, upload_bytes: f64, download_bytes: f64) -> Self {
        self.upload_bytes = upload_bytes;
        self.download_bytes = download_bytes;
        self
    }
}

/// A directed acyclic graph of [`TaskNode`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskGraph {
    nodes: Vec<TaskNode>,
    /// Adjacency: `edges[i]` lists successors of node `i`.
    succ: Vec<Vec<usize>>,
    /// Reverse adjacency: predecessors of node `i`.
    pred: Vec<Vec<usize>>,
}

impl TaskGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, node: TaskNode) -> NodeId {
        self.nodes.push(node);
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        NodeId(self.nodes.len() - 1)
    }

    /// Add a dependency edge `from → to` (`to` consumes `from`'s output).
    ///
    /// # Panics
    /// Panics if either id is out of range, on self-edges, or if the edge
    /// would close a cycle.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        assert!(
            from.0 < self.nodes.len() && to.0 < self.nodes.len(),
            "node id out of range"
        );
        assert_ne!(from, to, "self-dependencies are not allowed");
        self.succ[from.0].push(to.0);
        self.pred[to.0].push(from.0);
        assert!(
            self.topo_order().is_some(),
            "edge {} -> {} would create a cycle",
            from.0,
            to.0
        );
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node data.
    pub fn node(&self, id: NodeId) -> &TaskNode {
        &self.nodes[id.0]
    }

    /// Mutable node data (used when knobs rescale runtimes).
    pub fn node_mut(&mut self, id: NodeId) -> &mut TaskNode {
        &mut self.nodes[id.0]
    }

    /// All nodes in insertion order.
    pub fn nodes(&self) -> &[TaskNode] {
        &self.nodes
    }

    /// Predecessors of a node.
    pub fn predecessors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.pred[id.0].iter().map(|&i| NodeId(i))
    }

    /// Successors of a node.
    pub fn successors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.succ[id.0].iter().map(|&i| NodeId(i))
    }

    /// Kahn topological order; `None` if the graph contains a cycle.
    pub fn topo_order(&self) -> Option<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut indeg: Vec<usize> = self.pred.iter().map(Vec::len).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            order.push(NodeId(i));
            for &s in &self.succ[i] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Total on-premise work if every node runs on premises (core-seconds).
    pub fn total_onprem_secs(&self) -> f64 {
        self.nodes.iter().map(|n| n.onprem_secs).sum()
    }

    /// Longest on-premise path (critical path) — a lower bound on makespan
    /// with unlimited cores and no cloud.
    pub fn critical_path_secs(&self) -> f64 {
        let order = self.topo_order().expect("graph is a DAG");
        let mut dist = vec![0.0f64; self.nodes.len()];
        let mut best: f64 = 0.0;
        for id in order.iter().rev() {
            let i = id.0;
            let succ_max = self.succ[i].iter().map(|&s| dist[s]).fold(0.0f64, f64::max);
            dist[i] = self.nodes[i].onprem_secs + succ_max;
            best = best.max(dist[i]);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TaskGraph {
        // a → b, a → c, b → d, c → d
        let mut g = TaskGraph::new();
        let a = g.add_node(TaskNode::new("a", 1.0, 0.5));
        let b = g.add_node(TaskNode::new("b", 2.0, 1.0));
        let c = g.add_node(TaskNode::new("c", 3.0, 1.5));
        let d = g.add_node(TaskNode::new("d", 1.0, 0.5));
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        g
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let order = g.topo_order().unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (rank, id) in order.iter().enumerate() {
                p[id.0] = rank;
            }
            p
        };
        assert!(pos[0] < pos[1] && pos[0] < pos[2]);
        assert!(pos[1] < pos[3] && pos[2] < pos[3]);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_detection() {
        let mut g = TaskGraph::new();
        let a = g.add_node(TaskNode::new("a", 1.0, 1.0));
        let b = g.add_node(TaskNode::new("b", 1.0, 1.0));
        g.add_edge(a, b);
        g.add_edge(b, a);
    }

    #[test]
    #[should_panic(expected = "self-dependencies")]
    fn self_edge_rejected() {
        let mut g = TaskGraph::new();
        let a = g.add_node(TaskNode::new("a", 1.0, 1.0));
        g.add_edge(a, a);
    }

    #[test]
    fn work_and_critical_path() {
        let g = diamond();
        assert!((g.total_onprem_secs() - 7.0).abs() < 1e-12);
        // Critical path a → c → d = 1 + 3 + 1.
        assert!((g.critical_path_secs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn predecessors_and_successors() {
        let g = diamond();
        let d_preds: Vec<usize> = g.predecessors(NodeId(3)).map(|n| n.0).collect();
        assert_eq!(d_preds, vec![1, 2]);
        let a_succs: Vec<usize> = g.successors(NodeId(0)).map(|n| n.0).collect();
        assert_eq!(a_succs, vec![1, 2]);
    }

    #[test]
    fn payload_builder() {
        let n = TaskNode::new("x", 1.0, 0.2).with_payload(1000.0, 200.0);
        assert_eq!(n.upload_bytes, 1000.0);
        assert_eq!(n.download_bytes, 200.0);
    }
}
