//! Cost accounting: converting between dollars, core-seconds and cloud
//! credits.
//!
//! Appendix L estimates the total cost of ownership of a commodity on-premise
//! server (Dell R240: $47.2/month amortized hardware + $28.6/month power for
//! 2 cores) against AWS Lambda ($130.78/month for a comparable 3 GB
//! function), yielding the paper's **1.8× cloud : on-premise cost ratio**.
//! Footnote 4 (§4.1) notes that the planner budget is expressed in
//! `core·s` of the on-premise server and that Skyscraper internally converts
//! the user's cloud-credit budget into that unit — [`CostModel`] performs
//! those conversions.

/// Cost conversion parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Dollars per on-premise core-hour (Appendix L: ≈ $0.051).
    pub onprem_usd_per_core_hour: f64,
    /// Cloud-to-on-premise price ratio for the same computation
    /// (Appendix L: 1.8).
    pub cloud_onprem_ratio: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // (47.2 + 28.6) $/month for 2 cores over 744 h.
        Self {
            onprem_usd_per_core_hour: 75.8 / (744.0 * 2.0),
            cloud_onprem_ratio: 1.8,
        }
    }
}

impl CostModel {
    /// Construct with a specific cloud:on-prem ratio (the ablation sweeps
    /// 1:1, 1.8:1 and 5:2).
    pub fn with_ratio(ratio: f64) -> Self {
        Self {
            cloud_onprem_ratio: ratio,
            ..Default::default()
        }
    }

    /// Dollars per on-premise core-second.
    pub fn onprem_usd_per_core_sec(&self) -> f64 {
        self.onprem_usd_per_core_hour / 3600.0
    }

    /// Dollar cost of `core_secs` of on-premise compute.
    pub fn onprem_usd(&self, core_secs: f64) -> f64 {
        core_secs * self.onprem_usd_per_core_sec()
    }

    /// Dollar cost of `core_secs` of equivalent compute bought on the cloud.
    pub fn cloud_usd(&self, core_secs: f64) -> f64 {
        self.onprem_usd(core_secs) * self.cloud_onprem_ratio
    }

    /// Convert a cloud-credit budget (dollars) into the equivalent
    /// on-premise `core·s` the knob planner reasons in (footnote 4).
    pub fn cloud_usd_to_core_secs(&self, usd: f64) -> f64 {
        usd / (self.onprem_usd_per_core_sec() * self.cloud_onprem_ratio)
    }

    /// Effective on-premise cost when the "on-premise server" is rented as a
    /// cloud VM, as in the paper's experiments: rental divided by the ratio
    /// (§5.3: "total cost is given by the cost of renting the Google Cloud
    /// VMs divided by 1.8 plus the cost of the AWS Lambda workers").
    pub fn vm_rental_as_onprem_usd(&self, vm_usd: f64) -> f64 {
        vm_usd / self.cloud_onprem_ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_appendix_l() {
        let m = CostModel::default();
        assert!((m.cloud_onprem_ratio - 1.8).abs() < 1e-12);
        // ≈ $0.051 per core-hour.
        assert!((m.onprem_usd_per_core_hour - 0.0509).abs() < 0.001);
    }

    #[test]
    fn conversions_roundtrip() {
        let m = CostModel::default();
        let usd = m.cloud_usd(1000.0);
        let back = m.cloud_usd_to_core_secs(usd);
        assert!((back - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn cloud_is_pricier_than_onprem() {
        let m = CostModel::default();
        assert!(m.cloud_usd(100.0) > m.onprem_usd(100.0));
        let even = CostModel::with_ratio(1.0);
        assert!((even.cloud_usd(100.0) - even.onprem_usd(100.0)).abs() < 1e-12);
    }

    #[test]
    fn vm_rental_discount() {
        let m = CostModel::default();
        assert!((m.vm_rental_as_onprem_usd(18.0) - 10.0).abs() < 1e-12);
    }
}
