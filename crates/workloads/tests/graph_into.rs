//! `task_graph_into` == `task_graph`, bit for bit, across cache reuse.
//!
//! The ingest hot path rebuilds each segment's task graph into a per-config
//! cached graph (`Workload::task_graph_into`) instead of allocating a fresh
//! one. The contract is bit identity: a reused graph — even one previously
//! filled for a *different* config or content — must come out identical to
//! what the allocating builder returns, node names, edges, and every `f64`
//! cost/payload bit included.

use skyscraper::Workload;
use vetl_sim::{NodeId, TaskGraph};
use vetl_video::{ContentParams, ContentProcess, ContentState};
use vetl_workloads::{CovidWorkload, EvWorkload, MoseiVariant, MoseiWorkload, MotWorkload};

fn assert_graphs_bitwise_equal(workload: &str, fresh: &TaskGraph, reused: &TaskGraph) {
    assert_eq!(fresh.len(), reused.len(), "{workload}: node count");
    for i in 0..fresh.len() {
        let id = NodeId(i);
        let (a, b) = (fresh.node(id), reused.node(id));
        assert_eq!(a.name, b.name, "{workload}: node {i} name");
        for (field, x, y) in [
            ("onprem_secs", a.onprem_secs, b.onprem_secs),
            (
                "cloud_compute_secs",
                a.cloud_compute_secs,
                b.cloud_compute_secs,
            ),
            ("upload_bytes", a.upload_bytes, b.upload_bytes),
            ("download_bytes", a.download_bytes, b.download_bytes),
        ] {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{workload}: node {i} {field}: {x} vs {y}"
            );
        }
        let succ_a: Vec<_> = fresh.successors(id).collect();
        let succ_b: Vec<_> = reused.successors(id).collect();
        assert_eq!(succ_a, succ_b, "{workload}: node {i} successors");
        let pred_a: Vec<_> = fresh.predecessors(id).collect();
        let pred_b: Vec<_> = reused.predecessors(id).collect();
        assert_eq!(pred_a, pred_b, "{workload}: node {i} predecessors");
    }
}

fn exercise(w: &dyn Workload, contents: &[ContentState]) {
    // ONE graph reused across every (config, content) pair — the cost
    // rewrite must fully overwrite whatever the previous pair left behind.
    let mut reused = TaskGraph::new();
    for config in w.config_space().iter() {
        for content in contents {
            let fresh = w.task_graph(&config, content);
            w.task_graph_into(&config, content, &mut reused);
            assert_graphs_bitwise_equal(w.name(), &fresh, &reused);
        }
    }
}

#[test]
fn task_graph_into_matches_task_graph_bitwise_for_all_workloads() {
    let contents: Vec<ContentState> = ContentProcess::new(ContentParams::default(), 2.0)
        .take(40)
        .collect();
    let spiky: Vec<ContentState> = ContentProcess::new(ContentParams::shopping_street(7), 2.0)
        .take(40)
        .collect();

    for contents in [&contents, &spiky] {
        exercise(&CovidWorkload::new(), contents);
        exercise(&EvWorkload::new(), contents);
        exercise(&MotWorkload::new(), contents);
        exercise(&MoseiWorkload::new(MoseiVariant::High), contents);
    }
}
