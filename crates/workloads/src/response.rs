//! Shared cost/quality response machinery for the synthetic workloads.
//!
//! Every knob configuration maps to a **capability** κ ∈ (0, 1]; content
//! maps to a **difficulty** d ∈ [0, 1]. Quality follows the logistic
//! response
//!
//! ```text
//! q(κ, d) = σ(12·(κ − 0.85·d) + 0.8)
//! ```
//!
//! which encodes the two empirical facts Skyscraper's design rests on
//! (§1, §2.2): expensive configurations reliably deliver good results even
//! on difficult content (κ = 1 ⇒ q ≥ 0.93 everywhere — the 0.85 difficulty
//! scale keeps the best configuration a safe margin above the hardest
//! content), while cheap configurations collapse on hard content
//! (κ − 0.85·d = −0.3 ⇒ q ≈ 0.06). The steepness is calibrated so the best
//! *static* configuration affordable on a small machine lands at the paper's
//! ~35–50 % quality while content-adaptive tuning reaches ~90 %.
//! The reported-quality channel adds small Gaussian observation noise,
//! modelling the spread of detector confidences and tracker error counts.

use rand::rngs::StdRng;
use rand::Rng;

use skyscraper::{ConfigSpace, Knob, KnobConfig};

/// The logistic quality response `σ(12·(κ − 0.85·d) + 0.8)`.
pub fn logistic_quality(capability: f64, difficulty: f64) -> f64 {
    let z = 12.0 * (capability - 0.85 * difficulty) + 0.8;
    1.0 / (1.0 + (-z).exp())
}

/// Reported-quality observation: `q` plus clamped Gaussian noise.
pub fn noisy(q: f64, sigma: f64, rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (q + sigma * g).clamp(0.0, 1.0)
}

/// Linear rank of a configuration in the row-major order of its knob
/// domains — the index scheme of the workloads' precomputed capability
/// tables (see [`capability_table`]).
pub fn config_rank(knobs: &[Knob], c: &KnobConfig) -> usize {
    let mut rank = 0usize;
    for (i, k) in knobs.iter().enumerate() {
        rank = rank * k.cardinality() + c.index(i);
    }
    rank
}

/// Evaluate `formula` over the whole configuration space, indexed by
/// [`config_rank`].
///
/// Capability is pure in the configuration, so the ingest hot path — which
/// evaluates quality for *every* profiled configuration on *every* segment
/// (`FittedModel::ground_truth_category`) — looks capability up here
/// instead of re-deriving knob values, square roots, and domain positions
/// ~14 times per segment. Each entry is the formula's own output, so the
/// lookup is bitwise-identical to evaluating the formula (asserted per
/// workload in their unit tests).
pub fn capability_table(knobs: &[Knob], formula: impl Fn(&KnobConfig) -> f64) -> Vec<f64> {
    let space = ConfigSpace::new(knobs);
    let mut table = vec![0.0; space.size()];
    for c in space.iter() {
        table[config_rank(knobs, &c)] = formula(&c);
    }
    table
}

/// Normalized position of index `i` within a domain of `n` values, in
/// `[0, 1]` — the building block for capability terms.
pub fn domain_position(i: usize, n: usize) -> f64 {
    if n <= 1 {
        1.0
    } else {
        i as f64 / (n - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn expensive_configs_are_reliable() {
        // κ = 1 keeps quality ≥ 0.9 across the whole difficulty range.
        for d in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert!(logistic_quality(1.0, d) >= 0.9, "d={d}");
        }
    }

    #[test]
    fn cheap_configs_collapse_on_hard_content() {
        assert!(logistic_quality(0.3, 0.1) > 0.9);
        assert!(logistic_quality(0.3, 0.9) < 0.05);
    }

    #[test]
    fn mid_configs_are_mediocre_on_mid_content() {
        // The calibration point: matched capability is clearly sub-optimal
        // (this is what separates static from adaptive quality).
        let q = logistic_quality(0.5, 0.5 / 0.85);
        assert!((0.6..0.8).contains(&q), "matched-capability quality {q}");
    }

    #[test]
    fn quality_is_monotone_in_capability() {
        let d = 0.6;
        let mut prev = 0.0;
        for k in 0..=10 {
            let q = logistic_quality(k as f64 / 10.0, d);
            assert!(q >= prev);
            prev = q;
        }
    }

    #[test]
    fn domain_position_bounds() {
        assert_eq!(domain_position(0, 5), 0.0);
        assert_eq!(domain_position(4, 5), 1.0);
        assert_eq!(domain_position(0, 1), 1.0);
    }

    #[test]
    fn noise_stays_clamped() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..500 {
            let v = noisy(0.02, 0.05, &mut rng);
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
