//! Seeded network-condition model: what a camera fleet's best-effort links
//! do to a segment stream before it reaches the ingest front door.
//!
//! The PAPERS.md best-effort-networks survey catalogs the menagerie —
//! bandwidth collapse, jitter, reordering, loss, diurnal load, synchronized
//! flash crowds — and this module turns each into a **pure, seeded
//! function** of the input stream: no wall clock, no sampling at delivery
//! time, same seed ⇒ bitwise-identical schedule. The output is a
//! [`DeliverySchedule`] (defined in `skyscraper::testkit::chaos` so core
//! tests can reason about schedules without this crate): the arrival order
//! plus the dropped indices, which degraded-run tests and benches replay
//! against the runtime's reorder gate and lateness policies.
//!
//! Mechanically, each segment gets an *arrival time*:
//!
//! ```text
//! depart  = capture time (the segment's own timeline)
//! finish  = transmission end under the piecewise bandwidth schedule
//!           (a single-queue link: max(prev finish, depart) + bytes/rate)
//! arrival = finish + base_delay + jitter·U + reorder penalty
//! ```
//!
//! then the schedule is the stable sort of segments by arrival time. Drops
//! are decided per segment before any timing draw, so toggling `drop_prob`
//! does not shift the other impairments' random draws.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skyscraper::testkit::chaos::DeliverySchedule;
use vetl_video::Segment;

/// One piece of a piecewise-constant bandwidth schedule: from
/// `start_secs` (on the stream's capture timeline) the link sustains
/// `bytes_per_sec`. Phases must be sorted by `start_secs`; the schedule
/// before the first phase is unlimited.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthPhase {
    /// Phase start on the capture timeline, seconds.
    pub start_secs: f64,
    /// Sustained link rate during the phase, bytes per second.
    pub bytes_per_sec: f64,
}

/// A seeded model of one camera's network path.
///
/// [`NetConditions::clean`] (all impairments zero) produces the identity
/// schedule for every input — asserted by the clean-network bitwise tests.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConditions {
    /// Fixed propagation delay added to every arrival, seconds.
    pub base_delay_secs: f64,
    /// Uniform jitter bound: each arrival is delayed by `U(0, jitter)`
    /// seconds. Jitter larger than the inter-segment gap reorders.
    pub jitter_secs: f64,
    /// Per-segment loss probability in `[0, 1]`. Dropped segments never
    /// arrive — they appear in [`DeliverySchedule::dropped`].
    pub drop_prob: f64,
    /// Probability that a segment takes a slow path and is additionally
    /// delayed by up to [`reorder_span`](Self::reorder_span) segment
    /// durations — the controllable reordering knob.
    pub reorder_prob: f64,
    /// Maximum slow-path penalty, in whole segment durations.
    pub reorder_span: usize,
    /// Piecewise-constant bandwidth schedule (sorted by `start_secs`).
    /// Empty = unlimited link; a phase whose rate cannot keep up with the
    /// stream's byte rate builds a transmission queue, delaying (and with
    /// jitter, reordering) everything behind it.
    pub bandwidth: Vec<BandwidthPhase>,
    /// Seed for every random draw the model makes.
    pub seed: u64,
}

impl NetConditions {
    /// The unimpaired path: zero delay, jitter, loss, and reordering on an
    /// unlimited link. Produces [`DeliverySchedule::clean`] for any input.
    pub fn clean(seed: u64) -> Self {
        Self {
            base_delay_secs: 0.0,
            jitter_secs: 0.0,
            drop_prob: 0.0,
            reorder_prob: 0.0,
            reorder_span: 0,
            bandwidth: Vec::new(),
            seed,
        }
    }

    /// A moderately hostile cellular-like path: 80 ms base delay, jitter on
    /// the order of a segment, 1 % loss, occasional slow-path reordering.
    pub fn hostile(seg_len_secs: f64, seed: u64) -> Self {
        Self {
            base_delay_secs: 0.08,
            jitter_secs: 1.5 * seg_len_secs,
            drop_prob: 0.01,
            reorder_prob: 0.05,
            reorder_span: 3,
            bandwidth: Vec::new(),
            seed,
        }
    }

    /// Link rate at `t` under the piecewise schedule (`None` = unlimited).
    fn rate_at(&self, t: f64) -> Option<f64> {
        self.bandwidth
            .iter()
            .rev()
            .find(|p| p.start_secs <= t)
            .map(|p| p.bytes_per_sec)
    }

    /// Compute the delivery schedule the modelled path imposes on an
    /// in-order segment stream. Pure: same conditions + same stream ⇒
    /// bitwise-identical schedule.
    pub fn delivery_schedule(&self, segments: &[Segment]) -> DeliverySchedule {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut arrivals: Vec<(f64, usize)> = Vec::with_capacity(segments.len());
        let mut dropped = Vec::new();
        let mut link_free_at = 0.0f64;
        for (i, s) in segments.iter().enumerate() {
            // Draw order is fixed per segment (drop, jitter, reorder) so a
            // schedule is a stable function of the condition parameters.
            if self.drop_prob > 0.0 && rng.gen::<f64>() < self.drop_prob {
                dropped.push(i);
                continue;
            }
            let depart = s.content.time.as_secs();
            let start = link_free_at.max(depart);
            let finish = match self.rate_at(start) {
                Some(rate) if rate > 0.0 => start + s.bytes / rate,
                Some(_) => start + s.duration, // stalled link: one segment per slot
                None => depart,
            };
            link_free_at = finish;
            let mut arrival = finish + self.base_delay_secs;
            if self.jitter_secs > 0.0 {
                arrival += rng.gen::<f64>() * self.jitter_secs;
            }
            if self.reorder_prob > 0.0 && rng.gen::<f64>() < self.reorder_prob {
                let span = rng.gen_range(1..=self.reorder_span.max(1));
                arrival += span as f64 * s.duration;
            }
            arrivals.push((arrival, i));
        }
        // Stable sort by arrival time: ties (and the clean path, where every
        // arrival equals its departure) keep capture order.
        arrivals.sort_by(|a, b| a.0.total_cmp(&b.0));
        DeliverySchedule {
            order: arrivals.into_iter().map(|(_, i)| i).collect(),
            dropped,
        }
    }
}

/// Synchronized flash-crowd opens: `cameras` sessions all (re)connect at
/// `at_secs`, smeared over `spread_secs` by a seeded uniform draw. Returned
/// sorted ascending — the order the front door sees the `open` storm.
pub fn flash_crowd_opens(cameras: usize, at_secs: f64, spread_secs: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut opens: Vec<f64> = (0..cameras)
        .map(|_| at_secs + rng.gen::<f64>() * spread_secs)
        .collect();
    opens.sort_by(f64::total_cmp);
    opens
}

/// Diurnal open times: `cameras` session starts over `period_secs` (one
/// "day"), with density following `1 + cos` peaking at `peak_secs` —
/// morning rush hours produce clustered opens, night a thin trickle.
/// Sampled by seeded rejection; sorted ascending.
pub fn diurnal_opens(cameras: usize, period_secs: f64, peak_secs: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let density = |t: f64| {
        let phase = (t - peak_secs) / period_secs * std::f64::consts::TAU;
        (1.0 + phase.cos()) / 2.0
    };
    let mut opens = Vec::with_capacity(cameras);
    while opens.len() < cameras {
        let t = rng.gen::<f64>() * period_secs;
        if rng.gen::<f64>() < density(t) {
            opens.push(t);
        }
    }
    opens.sort_by(f64::total_cmp);
    opens
}

/// Rolling disconnect/reconnect churn for one session: alternating
/// connected intervals `(up_start, up_end)` over `duration_secs`, with
/// exponential-ish up/down times drawn from a seeded generator (inverse
/// transform of `U(0,1)`, mean `mean_up_secs` / `mean_down_secs`). The
/// gaps between intervals are the outages — segments captured there arrive
/// late (after reconnect) or not at all.
pub fn churn_intervals(
    duration_secs: f64,
    mean_up_secs: f64,
    mean_down_secs: f64,
    seed: u64,
) -> Vec<(f64, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut draw = |mean: f64| -> f64 {
        // Inverse-transform exponential; clamp the uniform away from 0 so
        // the log stays finite.
        -mean * (1.0 - rng.gen::<f64>()).max(1e-12).ln()
    };
    let mut intervals = Vec::new();
    let mut t = 0.0;
    while t < duration_secs {
        let up_end = (t + draw(mean_up_secs)).min(duration_secs);
        if up_end > t {
            intervals.push((t, up_end));
        }
        t = up_end + draw(mean_down_secs);
    }
    intervals
}

#[cfg(test)]
mod tests {
    use super::*;
    use vetl_video::{ContentParams, SyntheticCamera};

    fn stream(n: usize) -> Vec<Segment> {
        SyntheticCamera::new(ContentParams::traffic_intersection(3), 2.0).take_segments(n)
    }

    #[test]
    fn clean_conditions_produce_the_identity_schedule() {
        let segs = stream(200);
        let sched = NetConditions::clean(42).delivery_schedule(&segs);
        assert!(sched.is_clean());
        assert_eq!(sched, DeliverySchedule::clean(segs.len()));
        assert_eq!(sched.max_displacement(), 0);
    }

    #[test]
    fn same_seed_is_bitwise_reproducible_and_seeds_decorrelate() {
        let segs = stream(300);
        let cond = NetConditions::hostile(2.0, 7);
        let a = cond.delivery_schedule(&segs);
        let b = cond.delivery_schedule(&segs);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = NetConditions::hostile(2.0, 8).delivery_schedule(&segs);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn hostile_conditions_actually_reorder_and_drop() {
        let segs = stream(400);
        let sched = NetConditions::hostile(2.0, 11).delivery_schedule(&segs);
        assert!(!sched.is_clean());
        assert!(
            sched.max_displacement() > 0,
            "jitter above the segment gap must reorder"
        );
        assert!(!sched.dropped.is_empty(), "1% loss over 400 segments");
        // Conservation: every index is delivered exactly once or dropped.
        let mut seen = vec![0u8; segs.len()];
        for &p in &sched.order {
            seen[p] += 1;
        }
        for &p in &sched.dropped {
            seen[p] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn bandwidth_collapse_queues_but_preserves_order_without_jitter() {
        let segs = stream(100);
        let byte_rate = segs.iter().map(|s| s.bytes).sum::<f64>() / (100.0 * 2.0);
        let cond = NetConditions {
            // Half the stream's byte rate from t=60: a growing queue.
            bandwidth: vec![BandwidthPhase {
                start_secs: 60.0,
                bytes_per_sec: byte_rate / 2.0,
            }],
            ..NetConditions::clean(3)
        };
        let sched = cond.delivery_schedule(&segs);
        assert_eq!(
            sched.order,
            (0..100).collect::<Vec<_>>(),
            "a FIFO queue never reorders"
        );
        assert!(sched.dropped.is_empty());
    }

    #[test]
    fn flash_crowd_opens_are_sorted_bounded_and_reproducible() {
        let a = flash_crowd_opens(50, 120.0, 5.0, 9);
        let b = flash_crowd_opens(50, 120.0, 5.0, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(a.iter().all(|&t| (120.0..125.0).contains(&t)));
    }

    #[test]
    fn diurnal_opens_cluster_at_the_peak() {
        let period = 86_400.0;
        let peak = 8.0 * 3_600.0;
        let opens = diurnal_opens(600, period, peak, 13);
        assert_eq!(opens.len(), 600);
        assert!(opens.windows(2).all(|w| w[0] <= w[1]));
        let near = opens
            .iter()
            .filter(|&&t| (t - peak).abs() < period / 8.0)
            .count();
        let far = opens
            .iter()
            .filter(|&&t| {
                let d = (t - peak).abs();
                let d = d.min(period - d); // circular distance
                d > 3.0 * period / 8.0
            })
            .count();
        assert!(
            near > 2 * far,
            "peak density {near} must dominate trough {far}"
        );
    }

    #[test]
    fn churn_intervals_tile_the_duration_without_overlap() {
        let iv = churn_intervals(3_600.0, 300.0, 60.0, 21);
        assert!(!iv.is_empty());
        assert!(iv.iter().all(|&(a, b)| a < b && b <= 3_600.0));
        assert!(iv.windows(2).all(|w| w[0].1 < w[1].0), "outage between ups");
        assert_eq!(iv, churn_intervals(3_600.0, 300.0, 60.0, 21));
    }
}
