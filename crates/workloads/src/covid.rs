//! The COVID-19 safety-measures workload (§5.2, Appendix J).
//!
//! Pipeline: YOLOv5 pedestrian detection ("detect-to-track" with a KCF
//! tracker on intermediary frames), homography-based social-distance
//! measurement, and a ResNet-50 mask classifier per detected pedestrian.
//! Executed on an 8-day stream of the Koen-Dori shopping street in Shibuya.
//!
//! Knobs (Appendix J):
//! * **frame rate** — {1, 5, 10, 15, 30} FPS,
//! * **object detection rate** — run YOLO every {60, 30, 5, 1} frames,
//! * **tiling** — {1×1, 2×2} tiles for small-object detection.
//!
//! Quality is measured in tracked person-seconds; the reported metric
//! leverages YOLO's low false-positive rate and KCF's reliable
//! tracking-failure reports.

use rand::rngs::StdRng;

use skyscraper::{Knob, KnobConfig, KnobValue, Workload};
use vetl_sim::{NodeId, TaskGraph, TaskNode};
use vetl_video::{ContentState, DecodeCostModel};

use crate::models;
use crate::response::{capability_table, config_rank, domain_position, logistic_quality, noisy};

/// Source frame rate of the shopping-street camera.
const SOURCE_FPS: f64 = 30.0;

/// The COVID workload.
#[derive(Debug, Clone)]
pub struct CovidWorkload {
    knobs: Vec<Knob>,
    seg_len: f64,
    decode: DecodeCostModel,
    /// Capability per [`config_rank`] — filled once at construction from
    /// `capability_formula`, so lookups are bitwise-identical to it.
    cap: Vec<f64>,
}

impl CovidWorkload {
    /// Create with the paper's 2-second switching segments.
    pub fn new() -> Self {
        let mut w = Self {
            knobs: vec![
                Knob::new(
                    "frame_rate",
                    vec![
                        KnobValue::Int(1),
                        KnobValue::Int(5),
                        KnobValue::Int(10),
                        KnobValue::Int(15),
                        KnobValue::Int(30),
                    ],
                ),
                Knob::new(
                    "det_interval",
                    vec![
                        KnobValue::Int(60),
                        KnobValue::Int(30),
                        KnobValue::Int(5),
                        KnobValue::Int(1),
                    ],
                ),
                Knob::new("tiles", vec![KnobValue::Int(1), KnobValue::Int(2)]),
            ],
            seg_len: 2.0,
            decode: DecodeCostModel::default(),
            cap: Vec::new(),
        };
        w.cap = capability_table(&w.knobs, |c| w.capability_formula(c));
        w
    }

    fn fps(&self, c: &KnobConfig) -> f64 {
        c.value(&self.knobs, 0).as_float().expect("fps")
    }

    fn det_interval(&self, c: &KnobConfig) -> f64 {
        c.value(&self.knobs, 1).as_float().expect("interval")
    }

    fn tiles(&self, c: &KnobConfig) -> f64 {
        c.value(&self.knobs, 2).as_float().expect("tiles")
    }

    /// Capability κ of a configuration.
    ///
    /// Capability is tied to the knob *values* rather than index positions:
    /// the frame rate is the primary axis (√(fps/30): missing frames cannot
    /// be compensated by other knobs) and detection interval/tiling modulate
    /// it multiplicatively. Spans [0.25, 1.0].
    pub fn capability(&self, c: &KnobConfig) -> f64 {
        self.cap[config_rank(&self.knobs, c)]
    }

    pub(crate) fn capability_formula(&self, c: &KnobConfig) -> f64 {
        let r = (self.fps(c) / 30.0).sqrt();
        let d = (1.0 / self.det_interval(c)).sqrt();
        let t = domain_position(c.index(2), 2);
        0.22 + 0.78 * r * (0.45 + 0.35 * d + 0.20 * t)
    }
}

impl Default for CovidWorkload {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload for CovidWorkload {
    fn name(&self) -> &str {
        "covid"
    }

    fn knobs(&self) -> &[Knob] {
        &self.knobs
    }

    fn segment_len(&self) -> f64 {
        self.seg_len
    }

    fn task_graph(&self, config: &KnobConfig, content: &ContentState) -> TaskGraph {
        let mut g = TaskGraph::new();
        self.task_graph_into(config, content, &mut g);
        g
    }

    fn task_graph_into(&self, config: &KnobConfig, content: &ContentState, g: &mut TaskGraph) {
        // Topology is fixed — only the costs depend on config/content — so
        // a reused graph skips straight to the cost rewrite.
        if g.is_empty() {
            let decode = g.add_node(TaskNode::new("decode", 0.0, 0.0));
            let detect = g.add_node(TaskNode::new("yolo", 0.0, 0.0));
            let track = g.add_node(TaskNode::new("kcf", 0.0, 0.0));
            let homography = g.add_node(TaskNode::new("homography", 0.0, 0.0));
            let mask = g.add_node(TaskNode::new("mask_classifier", 0.0, 0.0));
            g.add_edge(decode, detect);
            g.add_edge(detect, track);
            g.add_edge(track, homography);
            g.add_edge(detect, mask);
        }

        let fps = self.fps(config);
        let frames = self.seg_len * fps;
        let det_runs = (frames / self.det_interval(config)).max(1.0 / 30.0);
        let tiles = self.tiles(config);
        let objects = models::objects_at_activity(content.activity);

        let decode_cost = self.decode.cost(self.seg_len, SOURCE_FPS, fps / SOURCE_FPS);
        let detect_cost = det_runs * models::YOLO_SECS[2] * tiles * tiles;
        let track_cost = (frames - det_runs).max(0.0) * models::KCF_SECS_PER_OBJECT * objects;
        let homography_cost = frames * models::HOMOGRAPHY_SECS;
        // The mask classifier runs per person on every processed frame —
        // this is what makes the frame-rate knob the decisive cost axis.
        let mask_cost = frames * objects * models::MASK_CLASSIFIER_SECS;

        // JPEG+Base64 payloads shipped when a node runs on the cloud (§5.1).
        let frame_jpeg = 100_000.0 * 4.0 / 3.0;
        let crop_jpeg = 9_000.0 * 4.0 / 3.0;

        let n = g.node_mut(NodeId(0));
        n.onprem_secs = decode_cost;
        let n = g.node_mut(NodeId(1));
        n.onprem_secs = detect_cost;
        n.cloud_compute_secs = detect_cost / models::CLOUD_SPEEDUP;
        n.upload_bytes = det_runs * frame_jpeg;
        n.download_bytes = det_runs * 2_000.0;
        let n = g.node_mut(NodeId(2));
        n.onprem_secs = track_cost;
        n.cloud_compute_secs = track_cost / models::CLOUD_SPEEDUP;
        n.upload_bytes = frames * 4_000.0;
        n.download_bytes = frames * 1_000.0;
        let n = g.node_mut(NodeId(3));
        n.onprem_secs = homography_cost;
        let n = g.node_mut(NodeId(4));
        n.onprem_secs = mask_cost;
        n.cloud_compute_secs = mask_cost / models::CLOUD_SPEEDUP;
        n.upload_bytes = frames * objects * crop_jpeg;
        n.download_bytes = frames * 200.0;
    }

    fn true_quality(&self, config: &KnobConfig, content: &ContentState) -> f64 {
        logistic_quality(self.capability(config), content.difficulty)
    }

    fn reported_quality(
        &self,
        config: &KnobConfig,
        content: &ContentState,
        rng: &mut StdRng,
    ) -> f64 {
        noisy(self.true_quality(config, content), 0.02, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vetl_video::{ContentParams, ContentProcess};

    fn content(difficulty: f64, activity: f64) -> ContentState {
        let mut p = ContentProcess::new(ContentParams::shopping_street(1), 2.0);
        let mut c = p.step();
        c.difficulty = difficulty;
        c.activity = activity;
        c
    }

    #[test]
    fn config_space_is_forty() {
        let w = CovidWorkload::new();
        assert_eq!(w.config_space().size(), 5 * 4 * 2);
    }

    #[test]
    fn capability_table_matches_formula_bitwise() {
        let w = CovidWorkload::new();
        for c in w.config_space().iter() {
            assert_eq!(
                w.capability(&c).to_bits(),
                w.capability_formula(&c).to_bits(),
                "config {:?}",
                c.indices()
            );
        }
    }

    #[test]
    fn work_spans_two_orders_of_magnitude() {
        let w = CovidWorkload::new();
        let c = content(0.5, 0.6);
        let cheap = w.work(&w.config_space().min_config(), &c);
        let dear = w.work(&w.config_space().max_config(), &c);
        assert!(
            dear / cheap > 50.0,
            "expensive/cheap work ratio {:.1} too small",
            dear / cheap
        );
        // Most expensive ≈ tens of core-seconds per 2 s segment — the
        // c2-standard-60 scale of the paper.
        assert!(dear > 20.0 && dear < 120.0, "max work {dear}");
    }

    #[test]
    fn decode_is_a_small_fraction_of_expensive_configs() {
        // §5.1: decode ≈ 5 % of total runtime.
        let w = CovidWorkload::new();
        let c = content(0.5, 0.6);
        let g = w.task_graph(&w.config_space().max_config(), &c);
        let decode = g.node(vetl_sim::NodeId(0)).onprem_secs;
        let total = g.total_onprem_secs();
        assert!(decode / total < 0.08, "decode share {}", decode / total);
    }

    #[test]
    fn busier_scenes_cost_more() {
        let w = CovidWorkload::new();
        let k = w.config_space().max_config();
        assert!(w.work(&k, &content(0.5, 0.9)) > w.work(&k, &content(0.5, 0.1)));
    }

    #[test]
    fn quality_responds_to_difficulty_and_knobs() {
        let w = CovidWorkload::new();
        let cheap = w.config_space().min_config();
        let dear = w.config_space().max_config();
        let hard = content(0.9, 0.8);
        let easy = content(0.1, 0.2);
        assert!(w.true_quality(&dear, &hard) > 0.85);
        assert!(w.true_quality(&cheap, &hard) < 0.25);
        assert!(w.true_quality(&cheap, &easy) > 0.85);
    }

    #[test]
    fn cheapest_config_runs_realtime_on_four_cores() {
        let w = CovidWorkload::new();
        let c = content(0.9, 1.0); // worst case content
        let rate = w.work_rate(&w.config_space().min_config(), &c);
        assert!(
            rate < 4.0,
            "cheapest config must fit an e2-standard-4, got {rate}"
        );
    }
}
