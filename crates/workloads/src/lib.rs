//! # vetl-workloads — the paper's evaluation workloads
//!
//! Implements the four workloads of §5.2 plus the EV-counting example from
//! the introduction, as calibrated synthetic equivalents (see DESIGN.md for
//! the substitution argument):
//!
//! * **COVID** — YOLOv5 pedestrian detection + KCF tracking + homography
//!   distancing + ResNet-50 mask classification on a Shibuya shopping-street
//!   camera. Knobs: frame rate {1,5,10,15,30} FPS, detector interval
//!   {60,30,5,1} frames, tiling {1×1, 2×2}.
//! * **MOT** — TransMOT multi-object tracking on a traffic intersection.
//!   Knobs: frame rate, tiling, history length {1,2,3,5}, model size
//!   {small, medium, large}.
//! * **MOSEI-HIGH / MOSEI-LONG** — multimodal sentiment over a varying
//!   number of Twitch-like streams with short-tall or long spike patterns.
//!   Knobs: sentence skip {0..6}, per-sentence frame fraction, model size,
//!   number of streams analysed.
//! * **EV** — the introduction's electric-vehicle counting example
//!   (detector + tracker; Fig. 1 and Fig. 3).
//!
//! Model runtimes are calibrated to the paper's measurements (YOLOv5 ≈ 86 ms
//! per frame on the reference core, decode ≈ 1.6 ms per frame, most
//! expensive EV configuration ≈ 5.2 TFLOP/s at 0.1 TFLOP/s per core).
//! [`scenario`] provides the Google-Cloud machine/price table of §5.3.

pub mod covid;
pub mod ev;
pub mod models;
pub mod mosei;
pub mod mot;
pub mod netcond;
pub mod response;
pub mod scenario;
pub mod spec;

pub use covid::CovidWorkload;
pub use ev::EvWorkload;
pub use mosei::{MoseiVariant, MoseiWorkload};
pub use mot::MotWorkload;
pub use netcond::{
    churn_intervals, diurnal_opens, flash_crowd_opens, BandwidthPhase, NetConditions,
};
pub use scenario::{
    co_located_fleet, machine_by_name, total_cost_usd, Machine, CORE_TFLOPS, MACHINES,
};
pub use spec::{paper_workloads, PaperWorkload, WorkloadSpec};
