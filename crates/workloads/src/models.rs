//! The synthetic model zoo: per-operator cost constants.
//!
//! Runtimes are **reference-core seconds** calibrated to the paper's own
//! measurements where available:
//!
//! * YOLOv5 ≈ 86 ms per frame (§K.2, Intel Xeon Platinum 8260, 4 cores —
//!   we take the large model at 86 ms and scale smaller variants),
//! * H.264 decode ≈ 1.6 ms per frame ≈ 5 % of pipeline work (§5.1, §K.2),
//! * KCF is orders of magnitude cheaper than detection (that is the whole
//!   point of detect-to-track),
//! * TransMOT/classifier/sentiment runtimes follow their published
//!   parameter-count ratios.

/// Seconds per frame for YOLOv5 variants on the reference core.
pub const YOLO_SECS: [f64; 3] = [0.022, 0.048, 0.086]; // small, medium, large

/// Seconds per tracked object per frame for the KCF tracker.
pub const KCF_SECS_PER_OBJECT: f64 = 0.000_35;

/// Seconds per frame for the homography distance measurement.
pub const HOMOGRAPHY_SECS: f64 = 0.000_6;

/// Seconds per detected person for the ResNet-50 mask classifier.
pub const MASK_CLASSIFIER_SECS: f64 = 0.021;

/// Seconds per processed frame for TransMOT variants (small/medium/large).
pub const TRANSMOT_SECS: [f64; 3] = [0.055, 0.115, 0.230];

/// Seconds per frame for the VGG-style appearance embedding TransMOT needs.
pub const EMBED_SECS: f64 = 0.014;

/// Seconds per second of audio for CMUSphinx-style transcription.
pub const TRANSCRIBE_SECS_PER_SEC: f64 = 0.35;

/// Seconds per analysed sentence for the multimodal feature extraction
/// (MTCNN face detection + DeepFace embedding + acoustic features).
pub const MOSEI_FEATURE_SECS: [f64; 1] = [2.4];

/// Seconds per analysed sentence for the sentiment models (small/med/large).
pub const SENTIMENT_SECS: [f64; 3] = [0.06, 0.18, 0.50];

/// Average spoken-sentence duration in seconds (drives sentences/segment).
pub const SENTENCE_SECS: f64 = 3.2;

/// Typical number of visible objects at activity level `a ∈ [0,1]`
/// (pedestrians/cars in frame) — drives tracker and classifier cost.
pub fn objects_at_activity(a: f64) -> f64 {
    3.0 + 15.0 * a.clamp(0.0, 1.0)
}

/// Cloud speed-up factor: a 3 GB Lambda function (≈ 2 vCPUs) plus
/// fan-out parallelism retires a node's work faster than one local core.
pub const CLOUD_SPEEDUP: f64 = 2.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yolo_large_matches_paper_measurement() {
        assert!((YOLO_SECS[2] - 0.086).abs() < 1e-9);
    }

    #[test]
    fn model_sizes_are_ordered() {
        assert!(YOLO_SECS.windows(2).all(|w| w[0] < w[1]));
        assert!(TRANSMOT_SECS.windows(2).all(|w| w[0] < w[1]));
        assert!(SENTIMENT_SECS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn detect_to_track_economics_hold() {
        // Tracking 30 objects for one frame must be far cheaper than one
        // YOLO inference — otherwise detect-to-track would be pointless.
        let track_30 = 30.0 * KCF_SECS_PER_OBJECT;
        assert!(track_30 * 5.0 < YOLO_SECS[2]);
    }

    #[test]
    fn object_counts_scale_with_activity() {
        assert!(objects_at_activity(0.0) < objects_at_activity(1.0));
        assert!(objects_at_activity(1.0) <= 30.0);
    }
}
