//! The electric-vehicle counting example (§1, Fig. 1, Fig. 3, Appendix F).
//!
//! The introduction's motivating workload: a YOLO object detector finds cars
//! (EVs are recognizable by their green licence plates), a KCF tracker
//! follows them across frames to avoid double counting. The Appendix-F code
//! snippet registers exactly two knobs — the detection interval and the YOLO
//! model size — which this type mirrors.

use rand::rngs::StdRng;

use skyscraper::{Knob, KnobConfig, KnobValue, Workload};
use vetl_sim::{NodeId, TaskGraph, TaskNode};
use vetl_video::{ContentState, DecodeCostModel};

use crate::models;
use crate::response::{capability_table, config_rank, domain_position, logistic_quality, noisy};

/// Source frame rate (Appendix F: `Skyscraper(..., fps=30)`).
const SOURCE_FPS: f64 = 30.0;

/// The EV-counting workload.
#[derive(Debug, Clone)]
pub struct EvWorkload {
    knobs: Vec<Knob>,
    seg_len: f64,
    decode: DecodeCostModel,
    /// Capability per [`config_rank`] — filled once at construction from
    /// `capability_formula`, so lookups are bitwise-identical to it.
    cap: Vec<f64>,
}

impl EvWorkload {
    /// Create with 2-second switching segments.
    pub fn new() -> Self {
        let mut w = Self {
            knobs: vec![
                // Appendix F: sky.register_knob("det_interval", [1, 5, 10]) —
                // cheapest (largest interval) first by our convention.
                Knob::new(
                    "det_interval",
                    vec![KnobValue::Int(10), KnobValue::Int(5), KnobValue::Int(1)],
                ),
                Knob::new(
                    "yolo_size",
                    vec![
                        KnobValue::Text("small"),
                        KnobValue::Text("medium"),
                        KnobValue::Text("large"),
                    ],
                ),
            ],
            seg_len: 2.0,
            decode: DecodeCostModel::default(),
            cap: Vec::new(),
        };
        w.cap = capability_table(&w.knobs, |c| w.capability_formula(c));
        w
    }

    fn det_interval(&self, c: &KnobConfig) -> f64 {
        c.value(&self.knobs, 0).as_float().expect("interval")
    }

    fn yolo_idx(&self, c: &KnobConfig) -> usize {
        c.index(1)
    }

    /// Capability κ spanning ≈ [0.33, 1.0]: detection rate is the primary
    /// axis, model size modulates it.
    pub fn capability(&self, c: &KnobConfig) -> f64 {
        self.cap[config_rank(&self.knobs, c)]
    }

    pub(crate) fn capability_formula(&self, c: &KnobConfig) -> f64 {
        let d = (1.0 / self.det_interval(c)).sqrt();
        let m = domain_position(c.index(1), 3);
        0.25 + 0.75 * d * (0.55 + 0.45 * m)
    }
}

impl Default for EvWorkload {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload for EvWorkload {
    fn name(&self) -> &str {
        "ev"
    }

    fn knobs(&self) -> &[Knob] {
        &self.knobs
    }

    fn segment_len(&self) -> f64 {
        self.seg_len
    }

    fn task_graph(&self, config: &KnobConfig, content: &ContentState) -> TaskGraph {
        let mut g = TaskGraph::new();
        self.task_graph_into(config, content, &mut g);
        g
    }

    fn task_graph_into(&self, config: &KnobConfig, content: &ContentState, g: &mut TaskGraph) {
        if g.is_empty() {
            let decode = g.add_node(TaskNode::new("decode", 0.0, 0.0));
            let detect = g.add_node(TaskNode::new("yolo", 0.0, 0.0));
            let track = g.add_node(TaskNode::new("kcf", 0.0, 0.0));
            g.add_edge(decode, detect);
            g.add_edge(detect, track);
        }

        let frames = self.seg_len * SOURCE_FPS;
        let det_runs = frames / self.det_interval(config);
        let objects = models::objects_at_activity(content.activity);

        let decode_cost = self.decode.cost(self.seg_len, SOURCE_FPS, 1.0);
        let detect_cost = det_runs * models::YOLO_SECS[self.yolo_idx(config)];
        let track_cost = (frames - det_runs).max(0.0) * models::KCF_SECS_PER_OBJECT * objects;

        let frame_jpeg = 100_000.0 * 4.0 / 3.0;
        let n = g.node_mut(NodeId(0));
        n.onprem_secs = decode_cost;
        let n = g.node_mut(NodeId(1));
        n.onprem_secs = detect_cost;
        n.cloud_compute_secs = detect_cost / models::CLOUD_SPEEDUP;
        n.upload_bytes = det_runs * frame_jpeg;
        n.download_bytes = det_runs * 2_000.0;
        let n = g.node_mut(NodeId(2));
        n.onprem_secs = track_cost;
        n.cloud_compute_secs = track_cost / models::CLOUD_SPEEDUP;
        n.upload_bytes = frames * 4_000.0;
        n.download_bytes = frames * 1_000.0;
    }

    fn true_quality(&self, config: &KnobConfig, content: &ContentState) -> f64 {
        // Result quality for EV counting is mainly affected by object
        // occlusions (§2.2's processing example) — our difficulty axis.
        logistic_quality(self.capability(config), content.difficulty)
    }

    fn reported_quality(
        &self,
        config: &KnobConfig,
        content: &ContentState,
        rng: &mut StdRng,
    ) -> f64 {
        noisy(self.true_quality(config, content), 0.02, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vetl_video::{ContentParams, ContentProcess};

    fn content(difficulty: f64, activity: f64) -> ContentState {
        let mut p = ContentProcess::new(ContentParams::traffic_intersection(1), 2.0);
        let mut c = p.step();
        c.difficulty = difficulty;
        c.activity = activity;
        c
    }

    #[test]
    fn two_knobs_nine_configs() {
        let w = EvWorkload::new();
        assert_eq!(w.knobs().len(), 2);
        assert_eq!(w.config_space().size(), 9);
    }

    #[test]
    fn capability_table_matches_formula_bitwise() {
        let w = EvWorkload::new();
        for c in w.config_space().iter() {
            assert_eq!(
                w.capability(&c).to_bits(),
                w.capability_formula(&c).to_bits(),
                "config {:?}",
                c.indices()
            );
        }
    }

    #[test]
    fn expensive_config_quality_is_reliable_cheap_only_at_night() {
        // §2.2: "the expensive configuration reliably produces high-quality
        // results while the cheap one only produces high-quality results at
        // night, when there is little traffic and few occlusions."
        let w = EvWorkload::new();
        let cheap = w.config_space().min_config();
        let dear = w.config_space().max_config();
        let night = content(0.12, 0.1);
        let rush = content(0.85, 0.9);
        assert!(w.true_quality(&dear, &night) > 0.9);
        assert!(w.true_quality(&dear, &rush) > 0.85);
        assert!(w.true_quality(&cheap, &night) > 0.85);
        assert!(w.true_quality(&cheap, &rush) < 0.3);
    }

    #[test]
    fn work_ratio_between_extremes() {
        let w = EvWorkload::new();
        let c = content(0.5, 0.5);
        let lo = w.work(&w.config_space().min_config(), &c);
        let hi = w.work(&w.config_space().max_config(), &c);
        assert!(hi / lo > 8.0, "ratio {}", hi / lo);
    }

    #[test]
    fn cheapest_runs_realtime_on_one_core() {
        let w = EvWorkload::new();
        let rate = w.work_rate(&w.config_space().min_config(), &content(0.9, 1.0));
        assert!(rate < 1.0, "cheapest EV config rate {rate}");
    }
}
