//! The multimodal sentiment workloads MOSEI-HIGH and MOSEI-LONG (§5.2,
//! Appendix J).
//!
//! Simulates Twitch-scale ingestion of talking-head streams: the number of
//! concurrently incoming streams follows the diurnal Twitch curve plus the
//! variant's synthetic spikes (62-stream short peaks for HIGH, a 6-hour
//! plateau for LONG). Each analysed stream runs transcription (always),
//! multimodal feature extraction (MTCNN + DeepFace + acoustic features) and
//! a sentiment classifier on a knob-controlled subset of sentences.
//!
//! Knobs (Appendix J):
//! * **sentence skip** — skip {6,…,0} sentences between analyses,
//! * **frame fraction** — {1/6, 1/3, 1/2, 2/3, 5/6, 1} of each analysed
//!   sentence's frames,
//! * **model size** — {small, medium, large} sentiment model,
//! * **streams** — fraction {¼, ½, ¾, 1} of incoming streams analysed.
//!
//! Quality is `Σ_i a_i` over ingested streams weighted by model certainty;
//! normalized here to `[0, 1]` by the all-streams-perfect optimum.
//!
//! The cloud payload of the feature-extraction node ships Base64 JPEG frames
//! (§5.1), which makes cloud bursting bandwidth-bound exactly when many
//! streams spike — the effect MOSEI-HIGH was designed to expose.

use rand::rngs::StdRng;

use skyscraper::{Knob, KnobConfig, KnobValue, Workload};
use vetl_sim::{NodeId, TaskGraph, TaskNode};
use vetl_video::{
    ContentParams, ContentProcess, ContentState, MoseiMode, Segment, StreamCountProcess,
};

use crate::models;
use crate::response::{capability_table, config_rank, domain_position, logistic_quality, noisy};

/// Which spike pattern the stream-count process injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoseiVariant {
    /// Short, tall peaks (62 concurrent streams).
    High,
    /// One long plateau per day.
    Long,
}

impl MoseiVariant {
    fn mode(self) -> MoseiMode {
        match self {
            MoseiVariant::High => MoseiMode::High,
            MoseiVariant::Long => MoseiMode::Long,
        }
    }
}

/// Maximum concurrent streams (the HIGH spike level).
pub const MAX_STREAMS: f64 = 62.0;

/// The MOSEI workload.
#[derive(Debug, Clone)]
pub struct MoseiWorkload {
    knobs: Vec<Knob>,
    seg_len: f64,
    variant: MoseiVariant,
    /// Capability per [`config_rank`] — filled once at construction from
    /// `capability_formula`, so lookups are bitwise-identical to it.
    cap: Vec<f64>,
}

impl MoseiWorkload {
    /// Create with the paper's 7-second switching segments (Appendix K.1).
    pub fn new(variant: MoseiVariant) -> Self {
        let mut w = Self {
            knobs: vec![
                Knob::new("sentence_skip", (0..7).rev().map(KnobValue::Int).collect()),
                Knob::new(
                    "frame_fraction",
                    vec![
                        KnobValue::Float(1.0 / 6.0),
                        KnobValue::Float(1.0 / 3.0),
                        KnobValue::Float(0.5),
                        KnobValue::Float(2.0 / 3.0),
                        KnobValue::Float(5.0 / 6.0),
                        KnobValue::Float(1.0),
                    ],
                ),
                Knob::new(
                    "model",
                    vec![
                        KnobValue::Text("small"),
                        KnobValue::Text("medium"),
                        KnobValue::Text("large"),
                    ],
                ),
                Knob::new(
                    "streams",
                    vec![
                        KnobValue::Float(0.25),
                        KnobValue::Float(0.5),
                        KnobValue::Float(0.75),
                        KnobValue::Float(1.0),
                    ],
                ),
            ],
            seg_len: 7.0,
            variant,
            cap: Vec::new(),
        };
        w.cap = capability_table(&w.knobs, |c| w.capability_formula(c));
        w
    }

    /// The spike variant.
    pub fn variant(&self) -> MoseiVariant {
        self.variant
    }

    fn skip(&self, c: &KnobConfig) -> f64 {
        c.value(&self.knobs, 0).as_float().expect("skip")
    }

    fn frame_fraction(&self, c: &KnobConfig) -> f64 {
        c.value(&self.knobs, 1).as_float().expect("fraction")
    }

    fn model_idx(&self, c: &KnobConfig) -> usize {
        c.index(2)
    }

    fn streams_fraction(&self, c: &KnobConfig) -> f64 {
        c.value(&self.knobs, 3).as_float().expect("streams")
    }

    /// Per-analysed-stream capability, spanning ≈ [0.33, 1.0]: the sentence
    /// analysis frequency is the primary axis, frame fraction and model size
    /// modulate it.
    pub fn analysis_capability(&self, c: &KnobConfig) -> f64 {
        self.cap[config_rank(&self.knobs, c)]
    }

    pub(crate) fn capability_formula(&self, c: &KnobConfig) -> f64 {
        let s = (1.0 / (1.0 + self.skip(c))).sqrt();
        let f = domain_position(c.index(1), 6);
        let m = domain_position(c.index(2), 3);
        0.30 + 0.70 * s * (0.45 + 0.25 * f + 0.30 * m)
    }

    /// Concurrent incoming streams encoded in a content state.
    pub fn streams_at(content: &ContentState) -> f64 {
        (content.activity * MAX_STREAMS).round().max(1.0)
    }
}

impl Workload for MoseiWorkload {
    fn name(&self) -> &str {
        match self.variant {
            MoseiVariant::High => "mosei-high",
            MoseiVariant::Long => "mosei-long",
        }
    }

    fn knobs(&self) -> &[Knob] {
        &self.knobs
    }

    fn segment_len(&self) -> f64 {
        self.seg_len
    }

    fn task_graph(&self, config: &KnobConfig, content: &ContentState) -> TaskGraph {
        let mut g = TaskGraph::new();
        self.task_graph_into(config, content, &mut g);
        g
    }

    fn task_graph_into(&self, config: &KnobConfig, content: &ContentState, g: &mut TaskGraph) {
        if g.is_empty() {
            let transcribe = g.add_node(TaskNode::new("transcribe", 0.0, 0.0));
            let features = g.add_node(TaskNode::new("features", 0.0, 0.0));
            let sentiment = g.add_node(TaskNode::new("sentiment", 0.0, 0.0));
            g.add_edge(transcribe, sentiment);
            g.add_edge(features, sentiment);
        }

        let streams = Self::streams_at(content);
        let analysed = (streams * self.streams_fraction(config)).max(1.0);
        let sentences = self.seg_len / models::SENTENCE_SECS;
        let analysed_sentences = sentences / (1.0 + self.skip(config));
        let frac = self.frame_fraction(config);
        let m = self.model_idx(config);

        let transcribe_cost = analysed * self.seg_len * models::TRANSCRIBE_SECS_PER_SEC;
        let feature_cost = analysed * analysed_sentences * frac * models::MOSEI_FEATURE_SECS[0];
        let sentiment_cost = analysed * analysed_sentences * models::SENTIMENT_SECS[m];

        // Feature extraction ships JPEG frames: sentence_secs × 30 fps ×
        // ~100 KB × 4/3 Base64 per fully-sampled sentence — the payload that
        // saturates the uplink during 62-stream spikes.
        let sentence_frames_bytes = models::SENTENCE_SECS * 30.0 * 100_000.0 * 4.0 / 3.0;
        let feature_upload = analysed * analysed_sentences * frac * sentence_frames_bytes;

        let n = g.node_mut(NodeId(0));
        n.onprem_secs = transcribe_cost;
        n.cloud_compute_secs = transcribe_cost / models::CLOUD_SPEEDUP;
        n.upload_bytes = analysed * self.seg_len * 16_000.0;
        n.download_bytes = analysed * 2_000.0;
        let n = g.node_mut(NodeId(1));
        n.onprem_secs = feature_cost;
        n.cloud_compute_secs = feature_cost / models::CLOUD_SPEEDUP;
        n.upload_bytes = feature_upload;
        n.download_bytes = analysed * analysed_sentences * 12_000.0;
        let n = g.node_mut(NodeId(2));
        n.onprem_secs = sentiment_cost;
        n.cloud_compute_secs = sentiment_cost / models::CLOUD_SPEEDUP;
        n.upload_bytes = analysed * analysed_sentences * 14_000.0;
        n.download_bytes = analysed * 500.0;
    }

    fn true_quality(&self, config: &KnobConfig, content: &ContentState) -> f64 {
        // Quality = (fraction of streams analysed) × per-stream accuracy.
        self.streams_fraction(config)
            * logistic_quality(self.analysis_capability(config), content.difficulty)
    }

    fn reported_quality(
        &self,
        config: &KnobConfig,
        content: &ContentState,
        rng: &mut StdRng,
    ) -> f64 {
        noisy(self.true_quality(config, content), 0.02, rng)
    }
}

/// Generator producing the MOSEI segment stream: talking-head difficulty
/// joined with the variant's stream-count process. Segment bytes scale with
/// the number of concurrent streams — spikes pressure the buffer too.
#[derive(Debug, Clone)]
pub struct MoseiStreamGen {
    counts: StreamCountProcess,
    content: ContentProcess,
    seg_len: f64,
    next_index: u64,
}

impl MoseiStreamGen {
    /// Create the generator for one variant.
    pub fn new(variant: MoseiVariant, seed: u64) -> Self {
        let seg_len = 7.0;
        Self {
            counts: StreamCountProcess::new(variant.mode(), seg_len, seed),
            content: ContentProcess::new(ContentParams::talking_head(seed ^ 0x5eed), seg_len),
            seg_len,
            next_index: 0,
        }
    }

    /// Produce the next aggregate segment.
    pub fn next_segment(&mut self) -> Segment {
        let count = self.counts.step() as f64;
        let mut state = self.content.step();
        state.activity = (count / MAX_STREAMS).clamp(0.0, 1.0);
        // Per-stream talking-head video ≈ 45 KB/s.
        let bytes = count * 45_000.0 * self.seg_len;
        let seg = Segment {
            index: self.next_index,
            duration: self.seg_len,
            content: state,
            bytes,
        };
        self.next_index += 1;
        seg
    }

    /// Produce `n` segments.
    pub fn take_segments(&mut self, n: usize) -> Vec<Segment> {
        (0..n).map(|_| self.next_segment()).collect()
    }

    /// Record `secs` seconds of the aggregate stream.
    pub fn record(&mut self, secs: f64) -> vetl_video::Recording {
        let n = (secs / self.seg_len).ceil() as usize;
        vetl_video::Recording::from_segments(self.take_segments(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn content(difficulty: f64, streams: f64) -> ContentState {
        let mut p = ContentProcess::new(ContentParams::talking_head(1), 7.0);
        let mut c = p.step();
        c.difficulty = difficulty;
        c.activity = streams / MAX_STREAMS;
        c
    }

    #[test]
    fn config_space_is_504() {
        let w = MoseiWorkload::new(MoseiVariant::High);
        assert_eq!(w.config_space().size(), 7 * 6 * 3 * 4);
    }

    #[test]
    fn capability_table_matches_formula_bitwise() {
        let w = MoseiWorkload::new(MoseiVariant::High);
        for c in w.config_space().iter() {
            assert_eq!(
                w.analysis_capability(&c).to_bits(),
                w.capability_formula(&c).to_bits(),
                "config {:?}",
                c.indices()
            );
        }
    }

    #[test]
    fn work_scales_with_stream_count() {
        let w = MoseiWorkload::new(MoseiVariant::High);
        let k = w.config_space().max_config();
        let low = w.work(&k, &content(0.5, 10.0));
        let spike = w.work(&k, &content(0.5, 62.0));
        assert!(spike / low > 4.0, "spike/low work ratio {}", spike / low);
    }

    #[test]
    fn quality_is_bounded_by_streams_fraction() {
        let w = MoseiWorkload::new(MoseiVariant::High);
        let quarter = KnobConfig::new(vec![6, 5, 2, 0]); // best analysis, ¼ streams
        let q = w.true_quality(&quarter, &content(0.1, 30.0));
        assert!(
            q <= 0.25 + 1e-9,
            "quality {q} must be capped by streams fraction"
        );
    }

    #[test]
    fn spike_upload_exceeds_uplink_capacity() {
        // At 62 streams the feature node's payload must exceed what a
        // 50 MB/s uplink moves in one 7 s segment — the MOSEI-HIGH effect.
        let w = MoseiWorkload::new(MoseiVariant::High);
        let k = w.config_space().max_config();
        let g = w.task_graph(&k, &content(0.5, 62.0));
        let upload = g.node(vetl_sim::NodeId(1)).upload_bytes;
        assert!(upload > 50e6 * 7.0, "spike upload {upload} too small");
        // While at baseline (12 streams, cheap config) it fits easily.
        let cheap = w.config_space().min_config();
        let g = w.task_graph(&cheap, &content(0.5, 12.0));
        assert!(g.node(vetl_sim::NodeId(1)).upload_bytes < 50e6 * 7.0 * 0.5);
    }

    #[test]
    fn generator_reproduces_variant_patterns() {
        let mut gen = MoseiStreamGen::new(MoseiVariant::High, 3);
        let segs = gen.take_segments((2.0 * 86_400.0 / 7.0) as usize);
        let max_activity = segs.iter().map(|s| s.content.activity).fold(0.0, f64::max);
        assert!(
            (max_activity - 1.0).abs() < 1e-9,
            "HIGH must reach 62 streams"
        );
        // Bytes track stream count.
        let busiest = segs
            .iter()
            .max_by(|a, b| a.bytes.partial_cmp(&b.bytes).unwrap())
            .unwrap();
        let calmest = segs
            .iter()
            .min_by(|a, b| a.bytes.partial_cmp(&b.bytes).unwrap())
            .unwrap();
        assert!(
            busiest.bytes > 2.0 * calmest.bytes,
            "byte rate must follow stream count: {} vs {}",
            busiest.bytes,
            calmest.bytes
        );
    }

    #[test]
    fn cheapest_config_work_rates() {
        // At baseline traffic the cheapest config fits an e2-standard-4 in
        // real time; during a 62-stream spike it temporarily exceeds 4 cores
        // (the buffer absorbs short spikes) but stays within 8.
        let w = MoseiWorkload::new(MoseiVariant::High);
        let cheapest = w.config_space().min_config();
        let baseline = w.work_rate(&cheapest, &content(0.6, 25.0));
        assert!(baseline < 4.0, "baseline cheapest rate {baseline}");
        let spike = w.work_rate(&cheapest, &content(0.9, 62.0));
        assert!(spike < 8.0, "spike cheapest rate {spike}");
    }
}
