//! Hardware scenarios and pricing (§5.3, Appendix L), plus fleet-shaped
//! stream scenarios for the cross-stream dedup experiments.
//!
//! The paper provisions Skyscraper and the baselines with Google Cloud VM
//! instances standing in for on-premise servers, and prices runs as
//! `VM rental / 1.8 + AWS Lambda spend` (the Appendix-L cloud:on-premise
//! ratio).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vetl_sim::{CostModel, HardwareSpec};
use vetl_video::{ContentParams, Segment, SyntheticCamera};

/// Conversion from reference-core work to the paper's TFLOP/s axis
/// (Fig. 3): one reference core retires ≈ 0.1 TFLOP/s.
pub const CORE_TFLOPS: f64 = 0.1;

/// One rentable machine type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Machine {
    /// GCP instance name.
    pub name: &'static str,
    /// Number of vCPUs.
    pub vcpus: usize,
    /// On-demand price, USD per hour.
    pub usd_per_hour: f64,
}

impl Machine {
    /// Hardware spec for running on this machine with a given buffer.
    pub fn hardware(&self, buffer_bytes: f64) -> HardwareSpec {
        HardwareSpec::with_cores(self.vcpus).with_buffer(buffer_bytes)
    }

    /// Rental cost of running this machine for `secs` seconds.
    pub fn rental_usd(&self, secs: f64) -> f64 {
        self.usd_per_hour * secs / 3_600.0
    }
}

/// The §5.3 machine table.
pub const MACHINES: [Machine; 5] = [
    Machine {
        name: "e2-standard-4",
        vcpus: 4,
        usd_per_hour: 0.14,
    },
    Machine {
        name: "e2-standard-8",
        vcpus: 8,
        usd_per_hour: 0.27,
    },
    Machine {
        name: "e2-standard-16",
        vcpus: 16,
        usd_per_hour: 0.54,
    },
    Machine {
        name: "e2-standard-32",
        vcpus: 32,
        usd_per_hour: 1.07,
    },
    Machine {
        name: "c2-standard-60",
        vcpus: 60,
        usd_per_hour: 2.51,
    },
];

/// Look a machine up by its GCP name.
pub fn machine_by_name(name: &str) -> Option<Machine> {
    MACHINES.iter().copied().find(|m| m.name == name)
}

/// Total experiment cost as the paper computes it (§5.3): VM rental divided
/// by the cloud:on-premise ratio, plus Lambda spend.
pub fn total_cost_usd(
    machine: &Machine,
    duration_secs: f64,
    lambda_usd: f64,
    cost_model: &CostModel,
) -> f64 {
    cost_model.vm_rental_as_onprem_usd(machine.rental_usd(duration_secs)) + lambda_usd
}

/// Decorrelates per-camera jitter generators (the golden-ratio SplitMix64
/// increment, same constant the runtime uses to stride per-stream seeds).
const CAMERA_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// A fleet of `cameras` co-located cameras watching the **same** content
/// process — the high-redundancy workload shape of PAPER.md §1 (adjacent
/// cameras on one street corner see the same crowd).
///
/// One base camera records the shared timeline once; each fleet member gets
/// that timeline with its perceptual fields (`difficulty`, `activity`)
/// perturbed by a per-camera seeded generator, scaled by `jitter` and
/// clamped back to `[0, 1]`. The time axis, segment durations and encoded
/// byte sizes are identical across the fleet — co-located cameras share a
/// codec ladder and a wall clock.
///
/// `jitter == 0.0` skips perturbation entirely, so every camera's segments
/// are **bit-identical** to the base timeline — the exact-mode dedup
/// cache's best case, and the input the bitwise-equivalence property tests
/// feed. Small positive jitter (≲ the dedup tolerance) keeps segments
/// within one perceptual bucket, exercising near-duplicate hits.
pub fn co_located_fleet(
    params: ContentParams,
    seg_len: f64,
    cameras: usize,
    jitter: f64,
    duration_secs: f64,
    seed: u64,
) -> Vec<Vec<Segment>> {
    let mut base_cam = SyntheticCamera::new(params, seg_len);
    let n = (duration_secs / seg_len).ceil().max(1.0) as usize;
    let base = base_cam.take_segments(n);
    (0..cameras)
        .map(|cam| {
            if jitter <= 0.0 {
                return base.clone();
            }
            let mut rng = StdRng::seed_from_u64(
                seed.wrapping_add((cam as u64).wrapping_mul(CAMERA_SEED_STRIDE)),
            );
            base.iter()
                .map(|s| {
                    let mut s = *s;
                    let c = &mut s.content;
                    c.difficulty =
                        (c.difficulty + jitter * (2.0 * rng.gen::<f64>() - 1.0)).clamp(0.0, 1.0);
                    c.activity =
                        (c.activity + jitter * (2.0 * rng.gen::<f64>() - 1.0)).clamp(0.0, 1.0);
                    s
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_prices() {
        assert_eq!(MACHINES[0].usd_per_hour, 0.14);
        assert_eq!(MACHINES[4].vcpus, 60);
        assert_eq!(MACHINES[4].usd_per_hour, 2.51);
    }

    #[test]
    fn covid_8day_static_costs_match_table_2() {
        // Table 2: COVID static on 4 vCPUs for 8 days = $14.9; on 60 vCPUs
        // = $267.7 (before the /1.8 on-premise conversion... the table's
        // totals are rental / 1.8: 0.14 * 24 * 8 / 1.8 ≈ 14.9).
        let cm = CostModel::default();
        let secs = 8.0 * 86_400.0;
        let c4 = total_cost_usd(&MACHINES[0], secs, 0.0, &cm);
        assert!((c4 - 14.93).abs() < 0.1, "got {c4}");
        let c60 = total_cost_usd(&MACHINES[4], secs, 0.0, &cm);
        assert!((c60 - 267.7).abs() < 1.0, "got {c60}");
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(machine_by_name("e2-standard-16").unwrap().vcpus, 16);
        assert!(machine_by_name("m1-ultramem").is_none());
    }

    #[test]
    fn lambda_spend_adds_linearly() {
        let cm = CostModel::default();
        let base = total_cost_usd(&MACHINES[0], 3_600.0, 0.0, &cm);
        let with = total_cost_usd(&MACHINES[0], 3_600.0, 2.5, &cm);
        assert!((with - base - 2.5).abs() < 1e-9);
    }

    #[test]
    fn zero_jitter_fleet_is_bit_identical_across_cameras() {
        let fleet = co_located_fleet(ContentParams::shopping_street(7), 2.0, 4, 0.0, 120.0, 7);
        assert_eq!(fleet.len(), 4);
        assert_eq!(fleet[0].len(), 60);
        for cam in &fleet[1..] {
            for (a, b) in fleet[0].iter().zip(cam) {
                assert_eq!(a.identity_words(), b.identity_words());
            }
        }
    }

    #[test]
    fn jittered_fleet_shares_timeline_but_perturbs_perception() {
        let jitter = 0.05;
        let fleet = co_located_fleet(ContentParams::shopping_street(7), 2.0, 3, jitter, 120.0, 7);
        let base = &fleet[0];
        let mut any_differs = false;
        for cam in &fleet[1..] {
            for (a, b) in base.iter().zip(cam) {
                // Shared clock, shared codec ladder.
                assert_eq!(a.index, b.index);
                assert_eq!(
                    a.content.time.as_secs().to_bits(),
                    b.content.time.as_secs().to_bits()
                );
                assert_eq!(a.duration.to_bits(), b.duration.to_bits());
                assert_eq!(a.bytes.to_bits(), b.bytes.to_bits());
                assert_eq!(a.content.event_active, b.content.event_active);
                // Perception perturbed, but bounded and clamped.
                assert!((a.content.difficulty - b.content.difficulty).abs() <= 2.0 * jitter);
                assert!((0.0..=1.0).contains(&b.content.difficulty));
                assert!((0.0..=1.0).contains(&b.content.activity));
                any_differs |= a.content.difficulty != b.content.difficulty;
            }
        }
        assert!(any_differs, "jitter must actually perturb the fleet");
    }

    #[test]
    fn fleet_cameras_are_mutually_decorrelated() {
        let fleet = co_located_fleet(ContentParams::shopping_street(7), 2.0, 3, 0.05, 60.0, 7);
        let differs = fleet[1]
            .iter()
            .zip(&fleet[2])
            .any(|(a, b)| a.content.difficulty != b.content.difficulty);
        assert!(differs, "distinct cameras must draw distinct jitter");
    }
}
