//! Hardware scenarios and pricing (§5.3, Appendix L).
//!
//! The paper provisions Skyscraper and the baselines with Google Cloud VM
//! instances standing in for on-premise servers, and prices runs as
//! `VM rental / 1.8 + AWS Lambda spend` (the Appendix-L cloud:on-premise
//! ratio).

use vetl_sim::{CostModel, HardwareSpec};

/// Conversion from reference-core work to the paper's TFLOP/s axis
/// (Fig. 3): one reference core retires ≈ 0.1 TFLOP/s.
pub const CORE_TFLOPS: f64 = 0.1;

/// One rentable machine type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Machine {
    /// GCP instance name.
    pub name: &'static str,
    /// Number of vCPUs.
    pub vcpus: usize,
    /// On-demand price, USD per hour.
    pub usd_per_hour: f64,
}

impl Machine {
    /// Hardware spec for running on this machine with a given buffer.
    pub fn hardware(&self, buffer_bytes: f64) -> HardwareSpec {
        HardwareSpec::with_cores(self.vcpus).with_buffer(buffer_bytes)
    }

    /// Rental cost of running this machine for `secs` seconds.
    pub fn rental_usd(&self, secs: f64) -> f64 {
        self.usd_per_hour * secs / 3_600.0
    }
}

/// The §5.3 machine table.
pub const MACHINES: [Machine; 5] = [
    Machine {
        name: "e2-standard-4",
        vcpus: 4,
        usd_per_hour: 0.14,
    },
    Machine {
        name: "e2-standard-8",
        vcpus: 8,
        usd_per_hour: 0.27,
    },
    Machine {
        name: "e2-standard-16",
        vcpus: 16,
        usd_per_hour: 0.54,
    },
    Machine {
        name: "e2-standard-32",
        vcpus: 32,
        usd_per_hour: 1.07,
    },
    Machine {
        name: "c2-standard-60",
        vcpus: 60,
        usd_per_hour: 2.51,
    },
];

/// Look a machine up by its GCP name.
pub fn machine_by_name(name: &str) -> Option<Machine> {
    MACHINES.iter().copied().find(|m| m.name == name)
}

/// Total experiment cost as the paper computes it (§5.3): VM rental divided
/// by the cloud:on-premise ratio, plus Lambda spend.
pub fn total_cost_usd(
    machine: &Machine,
    duration_secs: f64,
    lambda_usd: f64,
    cost_model: &CostModel,
) -> f64 {
    cost_model.vm_rental_as_onprem_usd(machine.rental_usd(duration_secs)) + lambda_usd
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_prices() {
        assert_eq!(MACHINES[0].usd_per_hour, 0.14);
        assert_eq!(MACHINES[4].vcpus, 60);
        assert_eq!(MACHINES[4].usd_per_hour, 2.51);
    }

    #[test]
    fn covid_8day_static_costs_match_table_2() {
        // Table 2: COVID static on 4 vCPUs for 8 days = $14.9; on 60 vCPUs
        // = $267.7 (before the /1.8 on-premise conversion... the table's
        // totals are rental / 1.8: 0.14 * 24 * 8 / 1.8 ≈ 14.9).
        let cm = CostModel::default();
        let secs = 8.0 * 86_400.0;
        let c4 = total_cost_usd(&MACHINES[0], secs, 0.0, &cm);
        assert!((c4 - 14.93).abs() < 0.1, "got {c4}");
        let c60 = total_cost_usd(&MACHINES[4], secs, 0.0, &cm);
        assert!((c60 - 267.7).abs() < 1.0, "got {c60}");
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(machine_by_name("e2-standard-16").unwrap().vcpus, 16);
        assert!(machine_by_name("m1-ultramem").is_none());
    }

    #[test]
    fn lambda_spend_adds_linearly() {
        let cm = CostModel::default();
        let base = total_cost_usd(&MACHINES[0], 3_600.0, 0.0, &cm);
        let with = total_cost_usd(&MACHINES[0], 3_600.0, 2.5, &cm);
        assert!((with - base - 2.5).abs() < 1e-9);
    }
}
