//! Bundled workload specifications for the experiment harnesses.
//!
//! A [`WorkloadSpec`] packages a workload with its data (labeled recording,
//! unlabeled recording, online segments) and its per-workload
//! hyperparameters (Appendix K.1: 3 content categories and 2 s switching for
//! COVID/MOT, 5 categories and 7 s switching for MOSEI).

use skyscraper::{SkyscraperConfig, Workload};
use vetl_video::{ContentParams, Recording, Segment, SyntheticCamera};

use crate::covid::CovidWorkload;
use crate::ev::EvWorkload;
use crate::mosei::{MoseiStreamGen, MoseiVariant, MoseiWorkload};
use crate::mot::MotWorkload;

/// The four evaluation workloads plus the EV example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperWorkload {
    /// COVID-19 safety measures (shopping street).
    Covid,
    /// Multi-object tracking (traffic intersection).
    Mot,
    /// Multimodal sentiment, short tall spikes.
    MoseiHigh,
    /// Multimodal sentiment, long plateau.
    MoseiLong,
    /// EV counting (introduction example).
    Ev,
}

impl PaperWorkload {
    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            PaperWorkload::Covid => "COVID",
            PaperWorkload::Mot => "MOT",
            PaperWorkload::MoseiHigh => "MOSEI-HIGH",
            PaperWorkload::MoseiLong => "MOSEI-LONG",
            PaperWorkload::Ev => "EV",
        }
    }
}

/// The §5.3 evaluation quartet.
pub fn paper_workloads() -> [PaperWorkload; 4] {
    [
        PaperWorkload::Covid,
        PaperWorkload::Mot,
        PaperWorkload::MoseiHigh,
        PaperWorkload::MoseiLong,
    ]
}

/// Data scale of a generated spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataScale {
    /// Scaled-down data for CI/benches: 2 unlabeled days, 1 online day,
    /// 6-hour planned intervals.
    Fast,
    /// The paper's scale: 16 unlabeled days, 8 online days (2 for MOSEI),
    /// 2-day planned intervals.
    Paper,
}

/// A workload bundled with its data and hyperparameters.
pub struct WorkloadSpec {
    /// Which paper workload this is.
    pub which: PaperWorkload,
    /// The workload object.
    pub workload: Box<dyn Workload>,
    /// Per-workload hyperparameters (Appendix K.1).
    pub hyper: SkyscraperConfig,
    /// Small labeled recording (~20 min).
    pub labeled: Recording,
    /// Large unlabeled recording.
    pub unlabeled: Recording,
    /// The online stream to ingest.
    pub online: Vec<Segment>,
}

impl WorkloadSpec {
    /// Build a spec with generated data.
    pub fn build(which: PaperWorkload, scale: DataScale, seed: u64) -> Self {
        Self::build_grown(which, scale, seed, 0.0).0
    }

    /// [`build`](Self::build), additionally returning an **extended**
    /// unlabeled recording: the same camera kept recording for another
    /// `growth` × the unlabeled duration after the first harvest, so the
    /// extension's prefix is bit-identical to `spec.unlabeled`. This is the
    /// input shape of incremental refit (fit on `spec.unlabeled`, refit on
    /// the extension) — used by the `offline_refit` bench and the
    /// knowledge-base property tests.
    pub fn build_grown(
        which: PaperWorkload,
        scale: DataScale,
        seed: u64,
        growth: f64,
    ) -> (Self, Recording) {
        let day = 86_400.0;
        let (unlabeled_secs, online_secs, planned, splits) = match (which, scale) {
            (PaperWorkload::MoseiHigh | PaperWorkload::MoseiLong, DataScale::Paper) => {
                (10.0 * day, 2.0 * day, day, 8)
            }
            (_, DataScale::Paper) => (16.0 * day, 8.0 * day, 2.0 * day, 8),
            (_, DataScale::Fast) => (2.0 * day, 1.0 * day, 0.25 * day, 4),
        };
        let extra_secs = unlabeled_secs * growth.max(0.0);

        let (workload, labeled, unlabeled, extra, online): (
            Box<dyn Workload>,
            Recording,
            Recording,
            Recording,
            Vec<Segment>,
        ) = match which {
            PaperWorkload::Covid => {
                let mut cam = SyntheticCamera::new(ContentParams::shopping_street(seed), 2.0);
                let labeled = Recording::record(&mut cam, 20.0 * 60.0);
                let unlabeled = Recording::record(&mut cam, unlabeled_secs);
                let extra = if extra_secs > 0.0 {
                    Recording::record(&mut cam, extra_secs)
                } else {
                    Recording::default()
                };
                let online = Recording::record(&mut cam, online_secs).segments().to_vec();
                (
                    Box::new(CovidWorkload::new()),
                    labeled,
                    unlabeled,
                    extra,
                    online,
                )
            }
            PaperWorkload::Mot => {
                let mut cam = SyntheticCamera::new(ContentParams::traffic_intersection(seed), 2.0);
                let labeled = Recording::record(&mut cam, 20.0 * 60.0);
                let unlabeled = Recording::record(&mut cam, unlabeled_secs);
                let extra = if extra_secs > 0.0 {
                    Recording::record(&mut cam, extra_secs)
                } else {
                    Recording::default()
                };
                let online = Recording::record(&mut cam, online_secs).segments().to_vec();
                (
                    Box::new(MotWorkload::new()),
                    labeled,
                    unlabeled,
                    extra,
                    online,
                )
            }
            PaperWorkload::MoseiHigh | PaperWorkload::MoseiLong => {
                let variant = if which == PaperWorkload::MoseiHigh {
                    MoseiVariant::High
                } else {
                    MoseiVariant::Long
                };
                let mut gen = MoseiStreamGen::new(variant, seed);
                let labeled = gen.record(20.0 * 60.0);
                let unlabeled = gen.record(unlabeled_secs);
                let extra = if extra_secs > 0.0 {
                    gen.record(extra_secs)
                } else {
                    Recording::default()
                };
                let online = gen.record(online_secs).segments().to_vec();
                (
                    Box::new(MoseiWorkload::new(variant)),
                    labeled,
                    unlabeled,
                    extra,
                    online,
                )
            }
            PaperWorkload::Ev => {
                let mut cam = SyntheticCamera::new(ContentParams::traffic_intersection(seed), 2.0);
                let labeled = Recording::record(&mut cam, 20.0 * 60.0);
                let unlabeled = Recording::record(&mut cam, unlabeled_secs);
                let extra = if extra_secs > 0.0 {
                    Recording::record(&mut cam, extra_secs)
                } else {
                    Recording::default()
                };
                let online = Recording::record(&mut cam, online_secs).segments().to_vec();
                (
                    Box::new(EvWorkload::new()),
                    labeled,
                    unlabeled,
                    extra,
                    online,
                )
            }
        };

        let n_categories = match which {
            PaperWorkload::MoseiHigh | PaperWorkload::MoseiLong => 5,
            _ => 3,
        };
        let switch = match which {
            PaperWorkload::MoseiHigh | PaperWorkload::MoseiLong => 7.0,
            _ => 2.0,
        };
        let hyper = SkyscraperConfig {
            n_categories,
            switch_period_secs: switch,
            planned_interval_secs: planned,
            forecast_input_secs: planned,
            forecast_input_splits: splits,
            forecast_sample_every_secs: 15.0 * 60.0,
            seed,
            ..SkyscraperConfig::default()
        };

        let mut extended = unlabeled.segments().to_vec();
        extended.extend_from_slice(extra.segments());
        let extended = Recording::from_segments(extended);

        (
            Self {
                which,
                workload,
                hyper,
                labeled,
                unlabeled,
                online,
            },
            extended,
        )
    }

    /// Online stream duration in seconds.
    pub fn online_secs(&self) -> f64 {
        self.online.iter().map(|s| s.duration).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_specs_build_for_all_workloads() {
        for which in paper_workloads() {
            let spec = WorkloadSpec::build(which, DataScale::Fast, 7);
            assert!(!spec.labeled.is_empty(), "{which:?} labeled");
            assert!(
                spec.unlabeled.duration() >= 1.9 * 86_400.0,
                "{which:?} unlabeled"
            );
            assert!(spec.online_secs() >= 0.9 * 86_400.0, "{which:?} online");
            assert!(spec.workload.config_space().size() > 8);
        }
    }

    #[test]
    fn grown_spec_extends_the_unlabeled_prefix_bitwise() {
        let (spec, extended) =
            WorkloadSpec::build_grown(PaperWorkload::Mot, DataScale::Fast, 7, 0.25);
        assert!(extended.len() > spec.unlabeled.len());
        for (a, b) in spec.unlabeled.segments().iter().zip(extended.segments()) {
            assert_eq!(a.index, b.index);
            assert_eq!(
                a.content.time.as_secs().to_bits(),
                b.content.time.as_secs().to_bits()
            );
            assert_eq!(
                a.content.difficulty.to_bits(),
                b.content.difficulty.to_bits()
            );
            assert_eq!(a.bytes.to_bits(), b.bytes.to_bits());
        }
        // Zero growth degrades to the plain build.
        let (spec0, extended0) =
            WorkloadSpec::build_grown(PaperWorkload::Mot, DataScale::Fast, 7, 0.0);
        assert_eq!(extended0.len(), spec0.unlabeled.len());
    }

    #[test]
    fn mosei_uses_five_categories_and_seven_second_switching() {
        let spec = WorkloadSpec::build(PaperWorkload::MoseiHigh, DataScale::Fast, 7);
        assert_eq!(spec.hyper.n_categories, 5);
        assert_eq!(spec.hyper.switch_period_secs, 7.0);
        let spec = WorkloadSpec::build(PaperWorkload::Covid, DataScale::Fast, 7);
        assert_eq!(spec.hyper.n_categories, 3);
        assert_eq!(spec.hyper.switch_period_secs, 2.0);
    }

    #[test]
    fn online_continues_after_offline_data() {
        let spec = WorkloadSpec::build(PaperWorkload::Covid, DataScale::Fast, 7);
        let end_offline = spec.unlabeled.end().as_secs();
        let start_online = spec.online[0].start().as_secs();
        assert!((start_online - end_offline).abs() < 1e-6);
    }
}
