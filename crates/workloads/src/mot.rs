//! The multi-object tracking workload (§5.2, Appendix J).
//!
//! Adopts a TransMOT-style tracker: YOLO detection, VGG-style appearance
//! embeddings, then a spatial-temporal graph transformer over the current
//! and historical frames. Executed on a stream of the Shibuya traffic
//! intersection. Quality is the certainty-weighted count of correctly
//! tracked pedestrians (ground truth: TransMOT at the most expensive knob
//! setting).
//!
//! Knobs (Appendix J):
//! * **frame rate** — process every {60, 30, 5, 1} frames,
//! * **tiling** — {1×1, 2×2},
//! * **history length** — {1, 2, 3, 5} previous frames fed to the graph
//!   transformer,
//! * **model size** — {small, medium, large} pre-trained TransMOT.

use rand::rngs::StdRng;

use skyscraper::{Knob, KnobConfig, KnobValue, Workload};
use vetl_sim::{NodeId, TaskGraph, TaskNode};
use vetl_video::{ContentState, DecodeCostModel};

use crate::models;
use crate::response::{capability_table, config_rank, domain_position, logistic_quality, noisy};

/// Source frame rate of the intersection camera.
const SOURCE_FPS: f64 = 30.0;

/// The MOT workload.
#[derive(Debug, Clone)]
pub struct MotWorkload {
    knobs: Vec<Knob>,
    seg_len: f64,
    decode: DecodeCostModel,
    /// Capability per [`config_rank`] — filled once at construction from
    /// `capability_formula`, so lookups are bitwise-identical to it.
    cap: Vec<f64>,
}

impl MotWorkload {
    /// Create with the paper's 2-second switching segments.
    pub fn new() -> Self {
        let mut w = Self {
            knobs: vec![
                Knob::new(
                    "frame_interval",
                    vec![
                        KnobValue::Int(60),
                        KnobValue::Int(30),
                        KnobValue::Int(5),
                        KnobValue::Int(1),
                    ],
                ),
                Knob::new("tiles", vec![KnobValue::Int(1), KnobValue::Int(2)]),
                Knob::new(
                    "history",
                    vec![
                        KnobValue::Int(1),
                        KnobValue::Int(2),
                        KnobValue::Int(3),
                        KnobValue::Int(5),
                    ],
                ),
                Knob::new(
                    "model",
                    vec![
                        KnobValue::Text("small"),
                        KnobValue::Text("medium"),
                        KnobValue::Text("large"),
                    ],
                ),
            ],
            seg_len: 2.0,
            decode: DecodeCostModel::default(),
            cap: Vec::new(),
        };
        w.cap = capability_table(&w.knobs, |c| w.capability_formula(c));
        w
    }

    fn frames(&self, c: &KnobConfig) -> f64 {
        let interval = c.value(&self.knobs, 0).as_float().expect("interval");
        (self.seg_len * SOURCE_FPS / interval).max(1.0)
    }

    fn tiles(&self, c: &KnobConfig) -> f64 {
        c.value(&self.knobs, 1).as_float().expect("tiles")
    }

    fn history(&self, c: &KnobConfig) -> f64 {
        c.value(&self.knobs, 2).as_float().expect("history")
    }

    fn model_idx(&self, c: &KnobConfig) -> usize {
        c.index(3)
    }

    /// Capability κ.
    ///
    /// The processed frame rate is the primary axis (√(1/interval): a
    /// tracker cannot recover motion it never saw); tiling, history and
    /// model size modulate multiplicatively. Spans ≈ [0.25, 1.0].
    pub fn capability(&self, c: &KnobConfig) -> f64 {
        self.cap[config_rank(&self.knobs, c)]
    }

    pub(crate) fn capability_formula(&self, c: &KnobConfig) -> f64 {
        let interval = c.value(&self.knobs, 0).as_float().expect("interval");
        let r = (1.0 / interval).sqrt();
        let t = domain_position(c.index(1), 2);
        let h = domain_position(c.index(2), 4);
        let m = domain_position(c.index(3), 3);
        0.22 + 0.78 * r * (0.35 + 0.15 * t + 0.20 * h + 0.30 * m)
    }
}

impl Default for MotWorkload {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload for MotWorkload {
    fn name(&self) -> &str {
        "mot"
    }

    fn knobs(&self) -> &[Knob] {
        &self.knobs
    }

    fn segment_len(&self) -> f64 {
        self.seg_len
    }

    fn task_graph(&self, config: &KnobConfig, content: &ContentState) -> TaskGraph {
        let mut g = TaskGraph::new();
        self.task_graph_into(config, content, &mut g);
        g
    }

    fn task_graph_into(&self, config: &KnobConfig, content: &ContentState, g: &mut TaskGraph) {
        if g.is_empty() {
            let decode = g.add_node(TaskNode::new("decode", 0.0, 0.0));
            let detect = g.add_node(TaskNode::new("yolo", 0.0, 0.0));
            let embed = g.add_node(TaskNode::new("embed", 0.0, 0.0));
            let transmot = g.add_node(TaskNode::new("transmot", 0.0, 0.0));
            g.add_edge(decode, detect);
            g.add_edge(detect, embed);
            g.add_edge(embed, transmot);
        }

        let frames = self.frames(config);
        let tiles = self.tiles(config);
        let history = self.history(config);
        let m = self.model_idx(config);
        let objects = models::objects_at_activity(content.activity);

        let rate_fraction = frames / (self.seg_len * SOURCE_FPS);
        let decode_cost = self.decode.cost(self.seg_len, SOURCE_FPS, rate_fraction);
        let detect_cost = frames * models::YOLO_SECS[2] * tiles * tiles;
        let embed_cost = frames * (models::EMBED_SECS + 0.002 * objects);
        let transmot_cost = frames
            * models::TRANSMOT_SECS[m]
            * (0.80 + 0.08 * history)
            * (0.6 + 0.6 * content.activity);

        let frame_jpeg = 100_000.0 * 4.0 / 3.0;
        let n = g.node_mut(NodeId(0));
        n.onprem_secs = decode_cost;
        let n = g.node_mut(NodeId(1));
        n.onprem_secs = detect_cost;
        n.cloud_compute_secs = detect_cost / models::CLOUD_SPEEDUP;
        n.upload_bytes = frames * frame_jpeg;
        n.download_bytes = frames * 2_000.0;
        let n = g.node_mut(NodeId(2));
        n.onprem_secs = embed_cost;
        n.cloud_compute_secs = embed_cost / models::CLOUD_SPEEDUP;
        n.upload_bytes = frames * objects * 8_000.0;
        n.download_bytes = frames * objects * 512.0;
        let n = g.node_mut(NodeId(3));
        n.onprem_secs = transmot_cost;
        n.cloud_compute_secs = transmot_cost / models::CLOUD_SPEEDUP;
        n.upload_bytes = frames * objects * 2_048.0 * history;
        n.download_bytes = frames * 4_000.0;
    }

    fn true_quality(&self, config: &KnobConfig, content: &ContentState) -> f64 {
        logistic_quality(self.capability(config), content.difficulty)
    }

    fn reported_quality(
        &self,
        config: &KnobConfig,
        content: &ContentState,
        rng: &mut StdRng,
    ) -> f64 {
        // MOT's metric is certainty-weighted: certainty estimates are
        // noisier than detector confidences (§5.6 reports a higher switcher
        // error rate on MOT: 6.6 % vs 2.1 %).
        noisy(self.true_quality(config, content), 0.035, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vetl_video::{ContentParams, ContentProcess};

    fn content(difficulty: f64, activity: f64) -> ContentState {
        let mut p = ContentProcess::new(ContentParams::traffic_intersection(1), 2.0);
        let mut c = p.step();
        c.difficulty = difficulty;
        c.activity = activity;
        c
    }

    #[test]
    fn config_space_is_ninety_six() {
        let w = MotWorkload::new();
        assert_eq!(w.config_space().size(), 4 * 2 * 4 * 3);
    }

    #[test]
    fn capability_table_matches_formula_bitwise() {
        let w = MotWorkload::new();
        for c in w.config_space().iter() {
            assert_eq!(
                w.capability(&c).to_bits(),
                w.capability_formula(&c).to_bits(),
                "config {:?}",
                c.indices()
            );
        }
    }

    #[test]
    fn knob_axes_all_increase_work() {
        let w = MotWorkload::new();
        let c = content(0.5, 0.5);
        let base = KnobConfig::new(vec![1, 0, 1, 1]);
        for axis in 0..4 {
            let mut idx = base.indices().to_vec();
            idx[axis] += 1;
            let upgraded = KnobConfig::new(idx);
            assert!(
                w.work(&upgraded, &c) > w.work(&base, &c),
                "axis {axis} must increase work"
            );
        }
    }

    #[test]
    fn max_config_is_c2_standard_60_scale() {
        let w = MotWorkload::new();
        let rate = w.work_rate(&w.config_space().max_config(), &content(0.8, 0.9));
        assert!(rate > 10.0 && rate < 60.0, "max work rate {rate}");
    }

    #[test]
    fn cheapest_fits_four_cores() {
        let w = MotWorkload::new();
        let rate = w.work_rate(&w.config_space().min_config(), &content(0.9, 1.0));
        assert!(rate < 4.0, "cheapest rate {rate}");
    }

    #[test]
    fn capability_endpoints() {
        let w = MotWorkload::new();
        let min = w.capability(&w.config_space().min_config());
        let max = w.capability(&w.config_space().max_config());
        assert!((0.2..0.3).contains(&min), "min capability {min}");
        assert!((max - 1.0).abs() < 1e-9, "max capability {max}");
    }

    #[test]
    fn reported_quality_is_noisier_than_covid() {
        // Statistical check: the MOT noise σ = 0.035 yields larger average
        // deviation from the truth than COVID's 0.02.
        use rand::SeedableRng;
        let w = MotWorkload::new();
        let cw = crate::covid::CovidWorkload::new();
        let c = content(0.5, 0.5);
        let k = w.config_space().min_config();
        let ck = cw.config_space().min_config();
        let mut rng = StdRng::seed_from_u64(5);
        let mut dev_mot = 0.0;
        let mut dev_covid = 0.0;
        for _ in 0..2000 {
            dev_mot += (w.reported_quality(&k, &c, &mut rng) - w.true_quality(&k, &c)).abs();
            dev_covid += (cw.reported_quality(&ck, &c, &mut rng) - cw.true_quality(&ck, &c)).abs();
        }
        assert!(dev_mot > dev_covid);
    }
}
