//! Property tests for the LP and knapsack solvers.

use proptest::prelude::*;
use vetl_lp::{solve, solve_warm, LpBasis, LpError, LpProblem, Relation};

proptest! {
    /// Randomized planner-shaped LPs (k configs × c categories): the solve
    /// must succeed, every histogram row must normalize, the budget must
    /// hold, and the objective must beat the all-cheapest plan.
    #[test]
    fn planner_shaped_lps_solve_correctly(
        n_k in 2usize..6,
        n_c in 1usize..5,
        quals in prop::collection::vec(0.0f64..1.0, 30),
        budget_scale in 0.1f64..1.0,
    ) {
        // Costs grow with k; qualities arbitrary in [0,1] but monotone in k
        // (sorted per category) so "cheapest" is never optimal by accident.
        let cost = |k: usize| 1.0 + 3.0 * k as f64;
        let r = vec![1.0 / n_c as f64; n_c];
        let qual: Vec<Vec<f64>> = (0..n_c)
            .map(|c| {
                let mut col: Vec<f64> =
                    (0..n_k).map(|k| quals[(c * n_k + k) % quals.len()]).collect();
                col.sort_by(|a, b| a.partial_cmp(b).unwrap());
                col
            })
            .collect();
        let budget = cost(0) + budget_scale * (cost(n_k - 1) - cost(0));

        let mut lp = LpProblem::new();
        let mut vars = vec![vec![]; n_c];
        for (c, row) in vars.iter_mut().enumerate() {
            for (k, &q) in qual[c].iter().enumerate() {
                row.push(lp.add_var(format!("a{k}_{c}"), r[c] * q));
            }
        }
        let mut budget_terms = Vec::new();
        for (c, row) in vars.iter().enumerate() {
            for (k, &var) in row.iter().enumerate() {
                budget_terms.push((var, r[c] * cost(k)));
            }
        }
        lp.add_constraint(budget_terms, Relation::Le, budget);
        for row in &vars {
            let terms: Vec<_> = row.iter().map(|&v| (v, 1.0)).collect();
            lp.add_constraint(terms, Relation::Eq, 1.0);
        }

        let s = solve(&lp).expect("feasible planner LP");
        prop_assert!(lp.is_feasible(&s.values, 1e-6));
        // Objective ≥ the all-cheapest feasible plan's objective.
        let cheapest_obj: f64 = (0..n_c).map(|c| r[c] * qual[c][0]).sum();
        prop_assert!(s.objective >= cheapest_obj - 1e-6);
        // Rows normalize.
        for row in &vars {
            let total: f64 = row.iter().map(|&v| s.value(v)).sum();
            prop_assert!((total - 1.0).abs() < 1e-6);
        }
    }

    /// Warm-started solves over a randomized *drifting* problem sequence —
    /// the planner's epoch-to-epoch shape, where qualities and budget move
    /// a little each step — are bitwise identical to cold solves: same
    /// value bits, same objective bits, and a basis whose hit/miss ledger
    /// accounts for every step. A warm hit must also certify the carried
    /// basis without running a single pivot.
    #[test]
    fn warm_solves_match_cold_bitwise_on_drifting_sequences(
        n_k in 2usize..6,
        n_c in 1usize..5,
        quals in prop::collection::vec(0.05f64..1.0, 30),
        drifts in prop::collection::vec(-0.02f64..0.02, 10),
        budget_scale in 0.15f64..0.9,
    ) {
        let cost = |k: usize| 1.0 + 3.0 * k as f64;
        let r = vec![1.0 / n_c as f64; n_c];
        let base_qual: Vec<Vec<f64>> = (0..n_c)
            .map(|c| {
                let mut col: Vec<f64> =
                    (0..n_k).map(|k| quals[(c * n_k + k) % quals.len()]).collect();
                col.sort_by(|a, b| a.partial_cmp(b).unwrap());
                col
            })
            .collect();

        let build = |step: usize, drift: f64| {
            // Qualities shear slightly (more at higher k, preserving the
            // sorted order) and the budget creeps, the way consecutive
            // epochs drift in the planner.
            let budget = cost(0)
                + (budget_scale + 0.01 * step as f64) * (cost(n_k - 1) - cost(0));
            let mut lp = LpProblem::new();
            let mut vars = vec![vec![]; n_c];
            for (c, row) in vars.iter_mut().enumerate() {
                for (k, &q) in base_qual[c].iter().enumerate() {
                    let q = (q + drift * (k as f64 + 1.0) / n_k as f64).clamp(0.01, 2.0);
                    row.push(lp.add_var(format!("a{k}_{c}"), r[c] * q));
                }
            }
            let mut budget_terms = Vec::new();
            for (c, row) in vars.iter().enumerate() {
                for (k, &var) in row.iter().enumerate() {
                    budget_terms.push((var, r[c] * cost(k)));
                }
            }
            lp.add_constraint(budget_terms, Relation::Le, budget);
            for row in &vars {
                let terms: Vec<_> = row.iter().map(|&v| (v, 1.0)).collect();
                lp.add_constraint(terms, Relation::Eq, 1.0);
            }
            lp
        };

        let mut basis = LpBasis::new();
        for (step, &drift) in drifts.iter().enumerate() {
            let lp = build(step, drift);
            let warm = solve_warm(&lp, &mut basis).expect("feasible drifting LP");
            let cold = solve(&lp).expect("feasible drifting LP");
            prop_assert_eq!(
                warm.objective.to_bits(),
                cold.objective.to_bits(),
                "step {}: objective bits",
                step
            );
            prop_assert_eq!(warm.values.len(), cold.values.len());
            for (i, (w, c)) in warm.values.iter().zip(&cold.values).enumerate() {
                prop_assert_eq!(
                    w.to_bits(),
                    c.to_bits(),
                    "step {}: value {} bits",
                    step,
                    i
                );
            }
            if warm.pivots == 0 && cold.pivots > 0 {
                // Pivot-free warm solves only happen on certified hits.
                prop_assert!(basis.hits() > 0, "step {}: pivot-free but no hit", step);
            }
        }
        // Every step is accounted as exactly one hit or one miss.
        prop_assert_eq!(basis.hits() + basis.misses(), drifts.len() as u64);
        prop_assert!(!basis.is_empty(), "the basis carries the last optimum");
    }

    /// Contradictory bounds must be reported infeasible, never mis-solved.
    #[test]
    fn contradictions_are_infeasible(lo in 1.0f64..50.0, gap in 0.1f64..10.0) {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", 1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, lo + gap);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, lo);
        prop_assert_eq!(solve(&lp).unwrap_err(), LpError::Infeasible);
    }

    /// Scaling the objective scales the optimum but not the argmax.
    #[test]
    fn objective_scaling_invariance(c in 0.1f64..10.0, b in 1.0f64..20.0, scale in 0.5f64..4.0) {
        let build = |coef: f64| {
            let mut lp = LpProblem::new();
            let x = lp.add_var("x", coef);
            lp.add_constraint(vec![(x, 1.0)], Relation::Le, b);
            (lp, x)
        };
        let (lp1, x1) = build(c);
        let (lp2, x2) = build(c * scale);
        let s1 = solve(&lp1).unwrap();
        let s2 = solve(&lp2).unwrap();
        prop_assert!((s1.value(x1) - s2.value(x2)).abs() < 1e-9);
        prop_assert!((s2.objective - s1.objective * scale).abs() < 1e-6 * s2.objective.abs().max(1.0));
    }
}
