//! Property tests for the LP and knapsack solvers.

use proptest::prelude::*;
use vetl_lp::{solve, LpError, LpProblem, Relation};

proptest! {
    /// Randomized planner-shaped LPs (k configs × c categories): the solve
    /// must succeed, every histogram row must normalize, the budget must
    /// hold, and the objective must beat the all-cheapest plan.
    #[test]
    fn planner_shaped_lps_solve_correctly(
        n_k in 2usize..6,
        n_c in 1usize..5,
        quals in prop::collection::vec(0.0f64..1.0, 30),
        budget_scale in 0.1f64..1.0,
    ) {
        // Costs grow with k; qualities arbitrary in [0,1] but monotone in k
        // (sorted per category) so "cheapest" is never optimal by accident.
        let cost = |k: usize| 1.0 + 3.0 * k as f64;
        let r = vec![1.0 / n_c as f64; n_c];
        let qual: Vec<Vec<f64>> = (0..n_c)
            .map(|c| {
                let mut col: Vec<f64> =
                    (0..n_k).map(|k| quals[(c * n_k + k) % quals.len()]).collect();
                col.sort_by(|a, b| a.partial_cmp(b).unwrap());
                col
            })
            .collect();
        let budget = cost(0) + budget_scale * (cost(n_k - 1) - cost(0));

        let mut lp = LpProblem::new();
        let mut vars = vec![vec![]; n_c];
        for (c, row) in vars.iter_mut().enumerate() {
            for (k, &q) in qual[c].iter().enumerate() {
                row.push(lp.add_var(format!("a{k}_{c}"), r[c] * q));
            }
        }
        let mut budget_terms = Vec::new();
        for (c, row) in vars.iter().enumerate() {
            for (k, &var) in row.iter().enumerate() {
                budget_terms.push((var, r[c] * cost(k)));
            }
        }
        lp.add_constraint(budget_terms, Relation::Le, budget);
        for row in &vars {
            let terms: Vec<_> = row.iter().map(|&v| (v, 1.0)).collect();
            lp.add_constraint(terms, Relation::Eq, 1.0);
        }

        let s = solve(&lp).expect("feasible planner LP");
        prop_assert!(lp.is_feasible(&s.values, 1e-6));
        // Objective ≥ the all-cheapest feasible plan's objective.
        let cheapest_obj: f64 = (0..n_c).map(|c| r[c] * qual[c][0]).sum();
        prop_assert!(s.objective >= cheapest_obj - 1e-6);
        // Rows normalize.
        for row in &vars {
            let total: f64 = row.iter().map(|&v| s.value(v)).sum();
            prop_assert!((total - 1.0).abs() < 1e-6);
        }
    }

    /// Contradictory bounds must be reported infeasible, never mis-solved.
    #[test]
    fn contradictions_are_infeasible(lo in 1.0f64..50.0, gap in 0.1f64..10.0) {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", 1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, lo + gap);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, lo);
        prop_assert_eq!(solve(&lp).unwrap_err(), LpError::Infeasible);
    }

    /// Scaling the objective scales the optimum but not the argmax.
    #[test]
    fn objective_scaling_invariance(c in 0.1f64..10.0, b in 1.0f64..20.0, scale in 0.5f64..4.0) {
        let build = |coef: f64| {
            let mut lp = LpProblem::new();
            let x = lp.add_var("x", coef);
            lp.add_constraint(vec![(x, 1.0)], Relation::Le, b);
            (lp, x)
        };
        let (lp1, x1) = build(c);
        let (lp2, x2) = build(c * scale);
        let s1 = solve(&lp1).unwrap();
        let s2 = solve(&lp2).unwrap();
        prop_assert!((s1.value(x1) - s2.value(x2)).abs() < 1e-9);
        prop_assert!((s2.objective - s1.objective * scale).abs() < 1e-6 * s2.objective.abs().max(1.0));
    }
}
