//! # vetl-lp — linear programming and knapsack solvers
//!
//! Skyscraper's knob planner formulates the assignment of knob configurations
//! to content categories as a linear program (§4.1, Eqs. 2–4) and solves it
//! with an off-the-shelf solver (SciPy `linprog` in the original artifact).
//! The *Optimum* oracle baseline and the idealized system of Appendix B use a
//! greedy 0-1 knapsack approximation.
//!
//! This crate supplies both from scratch:
//!
//! * [`LpProblem`] / [`solve`] — a dense two-phase primal simplex supporting
//!   `≤`, `≥` and `=` constraints over non-negative variables. The planner's
//!   LPs have `|C|·|K|` variables and `1 + 2|C|` constraints (Fig. 13), i.e.
//!   at most a few hundred variables — well within dense-tableau territory.
//! * [`knapsack`] — greedy ratio approximation (with the classic best-item
//!   fix-up giving a ½-approximation guarantee) and an exact dynamic program
//!   used in tests and the Appendix-B idealized system.

pub mod knapsack;
pub mod problem;
pub mod simplex;

pub use knapsack::{knapsack_exact, knapsack_greedy, KnapsackItem, KnapsackSolution};
pub use problem::{Constraint, LpProblem, LpSolution, Relation, VarId};
pub use simplex::{solve, solve_warm, LpBasis, LpError};
