//! 0-1 knapsack solvers.
//!
//! The *Optimum* baseline of the ablation study (§5.4, baseline 2c) "uses the
//! greedy 0-1 knapsack approximation to choose knob configurations that
//! maximize quality under a certain budget", and the idealized system of
//! Appendix B solves the same shape of problem per time slice. We implement
//! the greedy density heuristic (with the classic best-single-item fix-up
//! that restores the ½-approximation guarantee) and an exact dynamic program
//! over integerized weights used for validation and small instances.

/// One candidate item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnapsackItem {
    /// Value gained when the item is packed.
    pub value: f64,
    /// Capacity consumed when the item is packed (non-negative).
    pub weight: f64,
}

/// Result of a knapsack solve.
#[derive(Debug, Clone, PartialEq)]
pub struct KnapsackSolution {
    /// Indices of chosen items, ascending.
    pub chosen: Vec<usize>,
    /// Total value of the chosen items.
    pub value: f64,
    /// Total weight of the chosen items.
    pub weight: f64,
}

/// Greedy value/weight-density heuristic with best-single-item fix-up.
///
/// Sorts items by density, packs greedily, and returns the better of the
/// greedy pack and the single most valuable fitting item — the standard
/// ½-approximation for 0-1 knapsack.
pub fn knapsack_greedy(items: &[KnapsackItem], capacity: f64) -> KnapsackSolution {
    assert!(capacity >= 0.0, "capacity must be non-negative");
    assert!(
        items.iter().all(|i| i.weight >= 0.0),
        "weights must be non-negative"
    );

    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| {
        let da = density(items[a]);
        let db = density(items[b]);
        db.partial_cmp(&da).expect("densities are finite")
    });

    let mut chosen = Vec::new();
    let mut weight = 0.0;
    let mut value = 0.0;
    for &i in &order {
        if weight + items[i].weight <= capacity + 1e-12 {
            chosen.push(i);
            weight += items[i].weight;
            value += items[i].value;
        }
    }

    // Fix-up: the single best fitting item may beat the greedy pack.
    let best_single = (0..items.len())
        .filter(|&i| items[i].weight <= capacity + 1e-12)
        .max_by(|&a, &b| items[a].value.partial_cmp(&items[b].value).expect("finite"));
    if let Some(i) = best_single {
        if items[i].value > value {
            return KnapsackSolution {
                chosen: vec![i],
                value: items[i].value,
                weight: items[i].weight,
            };
        }
    }

    chosen.sort_unstable();
    KnapsackSolution {
        chosen,
        value,
        weight,
    }
}

fn density(item: KnapsackItem) -> f64 {
    if item.weight <= 0.0 {
        // Zero-weight items are infinitely dense; pack them first.
        f64::INFINITY
    } else {
        item.value / item.weight
    }
}

/// Exact 0-1 knapsack via dynamic programming over an integer weight grid.
///
/// Weights are scaled by `resolution` grid cells per unit capacity, so the
/// answer is exact for weights that are multiples of `capacity / resolution`
/// and a (1-ε) approximation otherwise (weights round *up*, keeping the
/// solution always feasible). Runtime is `O(items · resolution)`.
pub fn knapsack_exact(
    items: &[KnapsackItem],
    capacity: f64,
    resolution: usize,
) -> KnapsackSolution {
    assert!(capacity >= 0.0, "capacity must be non-negative");
    assert!(resolution > 0, "resolution must be positive");
    if items.is_empty() || capacity == 0.0 {
        let chosen: Vec<usize> = (0..items.len())
            .filter(|&i| items[i].weight == 0.0)
            .collect();
        let value = chosen.iter().map(|&i| items[i].value).sum();
        return KnapsackSolution {
            chosen,
            value,
            weight: 0.0,
        };
    }

    let cell = capacity / resolution as f64;
    let scaled: Vec<usize> = items
        .iter()
        .map(|i| (i.weight / cell).ceil() as usize) // round up: stay feasible
        .collect();

    // dp[w] = best value using capacity w; parent pointers for reconstruction.
    let mut dp = vec![0.0f64; resolution + 1];
    let mut take = vec![vec![false; resolution + 1]; items.len()];
    for (i, (&sw, item)) in scaled.iter().zip(items.iter()).enumerate() {
        if sw > resolution {
            continue;
        }
        for w in (sw..=resolution).rev() {
            let candidate = dp[w - sw] + item.value;
            if candidate > dp[w] + 1e-15 {
                dp[w] = candidate;
                take[i][w] = true;
            }
        }
    }

    // Reconstruct.
    let mut w = resolution;
    let mut chosen = Vec::new();
    for i in (0..items.len()).rev() {
        if take[i][w] {
            chosen.push(i);
            w -= scaled[i];
        }
    }
    chosen.sort_unstable();
    let value = chosen.iter().map(|&i| items[i].value).sum();
    let weight = chosen.iter().map(|&i| items[i].weight).sum();
    KnapsackSolution {
        chosen,
        value,
        weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(pairs: &[(f64, f64)]) -> Vec<KnapsackItem> {
        pairs
            .iter()
            .map(|&(value, weight)| KnapsackItem { value, weight })
            .collect()
    }

    #[test]
    fn greedy_packs_by_density() {
        let its = items(&[(6.0, 2.0), (10.0, 5.0), (12.0, 8.0)]);
        let s = knapsack_greedy(&its, 10.0);
        // densities: 3.0, 2.0, 1.5 → pack item 0 (w=2) and item 1 (w=5) = 16.
        assert_eq!(s.chosen, vec![0, 1]);
        assert!((s.value - 16.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_fixup_prefers_big_single_item() {
        // Density favours the small item, but one big item dominates.
        let its = items(&[(1.0, 0.1), (10.0, 10.0)]);
        let s = knapsack_greedy(&its, 10.0);
        assert_eq!(s.chosen, vec![1]);
        assert!((s.value - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_items_always_fit() {
        let its = items(&[(5.0, 0.0), (3.0, 1.0)]);
        let s = knapsack_greedy(&its, 0.5);
        assert!(s.chosen.contains(&0));
    }

    #[test]
    fn exact_matches_brute_force() {
        let its = items(&[(6.0, 2.0), (10.0, 5.0), (12.0, 8.0), (7.0, 3.0)]);
        let capacity = 10.0;
        let s = knapsack_exact(&its, capacity, 1000);
        // Brute force over all 16 subsets.
        let mut best = 0.0f64;
        for mask in 0..16u32 {
            let (mut v, mut w) = (0.0, 0.0);
            for (i, item) in its.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    v += item.value;
                    w += item.weight;
                }
            }
            if w <= capacity {
                best = best.max(v);
            }
        }
        assert!(
            (s.value - best).abs() < 1e-9,
            "dp {} vs brute {}",
            s.value,
            best
        );
    }

    #[test]
    fn greedy_is_at_least_half_of_exact() {
        let its = items(&[
            (4.0, 3.0),
            (9.0, 6.0),
            (3.0, 2.0),
            (7.0, 7.0),
            (2.0, 1.0),
            (8.0, 5.0),
        ]);
        // Capacity and resolution chosen so every weight is an exact
        // multiple of the DP grid cell (12/1200 = 0.01); otherwise the DP's
        // round-up makes it a lower bound rather than the exact optimum.
        let cap = 12.0;
        let g = knapsack_greedy(&its, cap);
        let e = knapsack_exact(&its, cap, 1200);
        assert!(
            g.value >= 0.5 * e.value - 1e-9,
            "greedy {} exact {}",
            g.value,
            e.value
        );
        assert!(g.value <= e.value + 1e-9);
    }

    #[test]
    fn exact_respects_capacity() {
        let its = items(&[(10.0, 4.0), (10.0, 4.0), (10.0, 4.0)]);
        let s = knapsack_exact(&its, 8.0, 100);
        assert!(s.weight <= 8.0 + 1e-9);
        assert_eq!(s.chosen.len(), 2);
    }

    #[test]
    fn empty_and_zero_capacity() {
        assert_eq!(knapsack_greedy(&[], 5.0).value, 0.0);
        let its = items(&[(3.0, 1.0)]);
        let s = knapsack_exact(&its, 0.0, 10);
        assert!(s.chosen.is_empty());
    }
}
