//! LP problem construction API.
//!
//! A thin builder over the dense data the simplex solver consumes. Variables
//! are non-negative reals; the objective is always *maximized* (Skyscraper
//! maximizes expected quality). Minimization callers negate their objective.

/// Opaque handle to a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of the variable in solution vectors.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

/// A linear constraint over a sparse set of variables.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// `(variable, coefficient)` terms.
    pub terms: Vec<(VarId, f64)>,
    /// Relation between the linear form and `rhs`.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program `maximize c·x  s.t.  constraints, x ≥ 0`.
#[derive(Debug, Clone, Default)]
pub struct LpProblem {
    pub(crate) objective: Vec<f64>,
    pub(crate) names: Vec<String>,
    pub(crate) constraints: Vec<Constraint>,
}

impl LpProblem {
    /// Create an empty problem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a non-negative variable with the given objective coefficient.
    pub fn add_var(&mut self, name: impl Into<String>, objective_coeff: f64) -> VarId {
        self.objective.push(objective_coeff);
        self.names.push(name.into());
        VarId(self.objective.len() - 1)
    }

    /// Add a constraint `Σ terms  relation  rhs`.
    ///
    /// # Panics
    /// Panics if a term references an unknown variable.
    pub fn add_constraint(&mut self, terms: Vec<(VarId, f64)>, relation: Relation, rhs: f64) {
        for (v, _) in &terms {
            assert!(
                v.0 < self.objective.len(),
                "constraint references unknown variable"
            );
        }
        self.constraints.push(Constraint {
            terms,
            relation,
            rhs,
        });
    }

    /// Convenience: add an upper bound `x ≤ bound` on a single variable.
    pub fn add_upper_bound(&mut self, var: VarId, bound: f64) {
        self.add_constraint(vec![(var, 1.0)], Relation::Le, bound);
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable (diagnostics).
    pub fn var_name(&self, var: VarId) -> &str {
        &self.names[var.0]
    }

    /// Evaluate the objective at a candidate point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_vars(), "point dimension mismatch");
        self.objective
            .iter()
            .zip(x.iter())
            .map(|(c, v)| c * v)
            .sum()
    }

    /// Check feasibility of a candidate point within tolerance `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars() || x.iter().any(|&v| v < -tol) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.terms.iter().map(|(v, a)| a * x[v.0]).sum();
            match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

/// Solution returned by [`crate::solve`].
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Optimal variable assignment, indexed by [`VarId::index`].
    pub values: Vec<f64>,
    /// Objective value at the optimum.
    pub objective: f64,
    /// Simplex pivots performed (diagnostics; Fig. 13 overhead reporting).
    pub pivots: usize,
}

impl LpSolution {
    /// Value of a variable.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_vars_and_constraints() {
        let mut p = LpProblem::new();
        let x = p.add_var("x", 1.0);
        let y = p.add_var("y", 2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 10.0);
        p.add_upper_bound(y, 4.0);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_constraints(), 2);
        assert_eq!(p.var_name(x), "x");
        assert_eq!(p.objective_value(&[1.0, 2.0]), 5.0);
    }

    #[test]
    fn feasibility_check() {
        let mut p = LpProblem::new();
        let x = p.add_var("x", 1.0);
        p.add_constraint(vec![(x, 1.0)], Relation::Le, 5.0);
        p.add_constraint(vec![(x, 1.0)], Relation::Ge, 1.0);
        assert!(p.is_feasible(&[3.0], 1e-9));
        assert!(!p.is_feasible(&[6.0], 1e-9));
        assert!(!p.is_feasible(&[0.5], 1e-9));
        assert!(!p.is_feasible(&[-1.0], 1e-9));
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn constraint_on_unknown_variable_panics() {
        let mut p = LpProblem::new();
        let _ = p.add_var("x", 1.0);
        p.add_constraint(vec![(VarId(3), 1.0)], Relation::Le, 1.0);
    }
}
