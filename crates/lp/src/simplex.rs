//! Two-phase primal simplex on a dense tableau, with warm-started re-solves.
//!
//! The solver handles `maximize c·x` subject to mixed `≤ / ≥ / =` constraints
//! over non-negative variables. Rows are normalized to non-negative
//! right-hand sides; slack, surplus and artificial variables are appended as
//! needed; phase 1 drives the artificials to zero (detecting infeasibility),
//! phase 2 optimizes the real objective. Bland's rule breaks ties, which
//! guarantees termination in the presence of degeneracy — the planner LPs are
//! degenerate whenever a content category's forecast ratio `r_c` is zero.
//!
//! # Warm starts
//!
//! Skyscraper re-solves nearly identical planner LPs at every epoch barrier:
//! the constraint *structure* is fixed and only the objective and a few
//! coefficients drift. [`solve_warm`] exploits that by remembering the
//! optimal basis of the previous solve in an [`LpBasis`]. A warm solve
//! *verifies* the stored basis against the new problem — primal feasibility,
//! dual feasibility, and strict nondegeneracy margins — with two small `m×m`
//! triangular solves instead of running the simplex. When the verification
//! passes, the basis is provably the unique optimal basis and the solution is
//! read off the basis system directly; otherwise the solver falls back to the
//! exact cold path and stores the new basis.
//!
//! Warm and cold results are **bitwise identical**: both paths extract the
//! final solution through the same canonical basis solve
//! (`B·x_B = b` factored from the original normalized constraint data), so
//! whenever warm verification succeeds — which implies cold simplex would
//! terminate on the very same basis — the extracted bits match exactly. The
//! cross-check mode (`VETL_LP_CROSSCHECK=1`, default-on in debug builds)
//! runs the cold solver next to every warm hit and asserts this.

use std::sync::OnceLock;

use crate::problem::{LpProblem, LpSolution, Relation};

/// Failure modes of [`solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpError {
    /// No point satisfies all constraints.
    Infeasible,
    /// The objective can be increased without bound.
    Unbounded,
    /// Pivot limit exceeded (numerical trouble; should not happen with
    /// Bland's rule on well-scaled planner inputs).
    IterationLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

const EPS: f64 = 1e-9;

/// Strict margin for accepting a warm basis. Primal values and reduced costs
/// must clear this (scaled) bound, which certifies the stored basis is the
/// *unique* optimal basis — any degeneracy or alternate optimum forces the
/// exact cold path instead, because there Bland's rule is what picks the
/// winner and only the cold solver runs Bland's rule.
const WARM_MARGIN: f64 = 1e-7;

/// Pivots smaller than this during the basis-system factorization mean the
/// candidate basis is numerically singular.
const SINGULAR: f64 = 1e-12;

/// Dense simplex tableau.
struct Tableau {
    /// `rows × cols` coefficient matrix; the last column is the RHS.
    a: Vec<Vec<f64>>,
    /// Objective row (reduced costs), length `cols` (last entry = objective).
    z: Vec<f64>,
    /// Basis: for each row, the column index of its basic variable.
    basis: Vec<usize>,
    /// Number of structural + slack/surplus columns (artificials live after).
    #[allow(dead_code)]
    n_real: usize,
    pivots: usize,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        self.pivots += 1;
        let piv = self.a[row][col];
        debug_assert!(piv.abs() > EPS, "pivot on (near-)zero element");
        let inv = 1.0 / piv;
        for v in self.a[row].iter_mut() {
            *v *= inv;
        }
        // Split borrows: the pivot row is borrowed immutably while every
        // other row is eliminated in place — no per-pivot clone.
        let (before, rest) = self.a.split_at_mut(row);
        let (pivot_row, after) = rest.split_first_mut().expect("pivot row in range");
        for arow in before.iter_mut().chain(after.iter_mut()) {
            let factor = arow[col];
            if factor.abs() > EPS {
                for (v, &p) in arow.iter_mut().zip(pivot_row.iter()) {
                    *v -= factor * p;
                }
            }
        }
        let zfactor = self.z[col];
        if zfactor.abs() > EPS {
            for (v, &p) in self.z.iter_mut().zip(pivot_row.iter()) {
                *v -= zfactor * p;
            }
        }
        self.basis[row] = col;
    }

    /// Run simplex iterations until optimal / unbounded / iteration limit.
    /// `allowed_cols` restricts entering variables (phase 2 excludes
    /// artificial columns).
    fn optimize(&mut self, allowed_cols: usize, max_pivots: usize) -> Result<(), LpError> {
        loop {
            if self.pivots > max_pivots {
                return Err(LpError::IterationLimit);
            }
            // Bland's rule: smallest-index column with positive reduced cost
            // (we maximize, tableau stores z-row as c reduced costs negated —
            // here z holds the *negated* objective, so we enter on z < -EPS).
            let mut entering = None;
            for c in 0..allowed_cols {
                if self.z[c] < -EPS {
                    entering = Some(c);
                    break;
                }
            }
            let Some(col) = entering else { return Ok(()) };

            // Ratio test with Bland's tie-break on the smallest basis index.
            let rhs_col = self.a[0].len() - 1;
            let mut leaving: Option<(usize, f64)> = None;
            for (r, arow) in self.a.iter().enumerate() {
                let coeff = arow[col];
                if coeff > EPS {
                    let ratio = arow[rhs_col] / coeff;
                    match leaving {
                        None => leaving = Some((r, ratio)),
                        Some((br, bratio)) => {
                            if ratio < bratio - EPS
                                || ((ratio - bratio).abs() <= EPS && self.basis[r] < self.basis[br])
                            {
                                leaving = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            let Some((row, _)) = leaving else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
        }
    }
}

/// Per-row normalization of the constraint system: non-negative RHS, the
/// relation after a possible sign flip, and the slack/surplus/artificial
/// column assigned to the row. Shared by the cold tableau build, the
/// canonical extraction, and the warm verification so all three see the
/// exact same normalized data.
struct NormRows {
    n: usize,
    n_slack: usize,
    n_artificial: usize,
    /// `(flip, normalized relation)` per row.
    specs: Vec<(bool, Relation)>,
    /// Slack/surplus column per row (`Le`/`Ge` rows only).
    slack_col: Vec<Option<usize>>,
    /// Artificial column per row (`Ge`/`Eq` rows only).
    art_col: Vec<Option<usize>>,
    /// Normalized right-hand side per row.
    rhs: Vec<f64>,
}

impl NormRows {
    fn build(problem: &LpProblem) -> Self {
        let n = problem.num_vars();
        let m = problem.num_constraints();
        let mut specs = Vec::with_capacity(m);
        let mut n_slack = 0;
        let mut n_artificial = 0;
        for c in &problem.constraints {
            let flip = c.rhs < 0.0;
            let rel = match (c.relation, flip) {
                (Relation::Le, false) | (Relation::Ge, true) => Relation::Le,
                (Relation::Ge, false) | (Relation::Le, true) => Relation::Ge,
                (Relation::Eq, _) => Relation::Eq,
            };
            match rel {
                Relation::Le => n_slack += 1,
                Relation::Ge => {
                    n_slack += 1;
                    n_artificial += 1;
                }
                Relation::Eq => n_artificial += 1,
            }
            specs.push((flip, rel));
        }
        let mut slack_col = Vec::with_capacity(m);
        let mut art_col = Vec::with_capacity(m);
        let mut rhs = Vec::with_capacity(m);
        let mut slack_cursor = n;
        let mut art_cursor = n + n_slack;
        for (r, c) in problem.constraints.iter().enumerate() {
            let (flip, rel) = specs[r];
            rhs.push(if flip { -c.rhs } else { c.rhs });
            match rel {
                Relation::Le => {
                    slack_col.push(Some(slack_cursor));
                    art_col.push(None);
                    slack_cursor += 1;
                }
                Relation::Ge => {
                    slack_col.push(Some(slack_cursor));
                    slack_cursor += 1;
                    art_col.push(Some(art_cursor));
                    art_cursor += 1;
                }
                Relation::Eq => {
                    slack_col.push(None);
                    art_col.push(Some(art_cursor));
                    art_cursor += 1;
                }
            }
        }
        Self {
            n,
            n_slack,
            n_artificial,
            specs,
            slack_col,
            art_col,
            rhs,
        }
    }

    fn m(&self) -> usize {
        self.specs.len()
    }

    /// Structural + slack/surplus columns; artificial columns live after.
    fn n_real(&self) -> usize {
        self.n + self.n_slack
    }

    /// One byte per row describing its normalization: `rel << 1 | flip`.
    /// Two problems with equal patterns (and equal `n`) have structurally
    /// interchangeable bases.
    fn pattern(&self) -> Vec<u8> {
        self.specs
            .iter()
            .map(|&(flip, rel)| {
                let r = match rel {
                    Relation::Le => 0u8,
                    Relation::Ge => 1,
                    Relation::Eq => 2,
                };
                (r << 1) | u8::from(flip)
            })
            .collect()
    }

    /// Visit the normalized nonzero entries of row `r` as `(col, val)`, in
    /// the same order the dense tableau build accumulates them (structural
    /// terms first, then slack/surplus, then artificial). Duplicate
    /// structural columns are emitted repeatedly, matching the tableau's
    /// `+=` accumulation.
    fn for_each_entry(&self, problem: &LpProblem, r: usize, mut f: impl FnMut(usize, f64)) {
        let (flip, rel) = self.specs[r];
        let sign = if flip { -1.0 } else { 1.0 };
        for (v, coeff) in &problem.constraints[r].terms {
            f(v.0, sign * coeff);
        }
        match rel {
            Relation::Le => f(self.slack_col[r].expect("Le row has slack"), 1.0),
            Relation::Ge => {
                f(self.slack_col[r].expect("Ge row has surplus"), -1.0);
                f(self.art_col[r].expect("Ge row has artificial"), 1.0);
            }
            Relation::Eq => f(self.art_col[r].expect("Eq row has artificial"), 1.0),
        }
    }

    /// Objective coefficient of column `col` (zero for slack/surplus and
    /// artificial columns).
    fn objective_coeff(&self, problem: &LpProblem, col: usize) -> f64 {
        if col < self.n {
            problem.objective[col]
        } else {
            0.0
        }
    }
}

/// LU factorization (Doolittle, partial pivoting) of the `m×m` basis matrix.
/// Row selection is deterministic — strictly larger magnitude wins, first
/// occurrence on ties — so repeated factorizations of the same basis produce
/// identical bits.
struct FactoredBasis {
    m: usize,
    /// Packed L (unit diagonal, below) and U (on/above diagonal).
    lu: Vec<f64>,
    /// Row swapped with `k` at elimination step `k`.
    perm: Vec<usize>,
}

impl FactoredBasis {
    /// Build and factor the basis matrix whose columns are `basis_cols`
    /// (sorted ascending) of the normalized constraint system. Returns
    /// `None` when the matrix is numerically singular.
    fn factor(problem: &LpProblem, norm: &NormRows, basis_cols: &[usize]) -> Option<Self> {
        let m = norm.m();
        debug_assert_eq!(basis_cols.len(), m, "basis must have one column per row");
        let mut lu = vec![0.0; m * m];
        for r in 0..m {
            norm.for_each_entry(problem, r, |col, val| {
                if let Ok(j) = basis_cols.binary_search(&col) {
                    lu[r * m + j] += val;
                }
            });
        }
        let mut perm = Vec::with_capacity(m);
        for k in 0..m {
            let mut p = k;
            let mut best = lu[k * m + k].abs();
            for i in (k + 1)..m {
                let v = lu[i * m + k].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best <= SINGULAR {
                return None;
            }
            if p != k {
                for j in 0..m {
                    lu.swap(k * m + j, p * m + j);
                }
            }
            perm.push(p);
            let inv = 1.0 / lu[k * m + k];
            for i in (k + 1)..m {
                let f = lu[i * m + k] * inv;
                lu[i * m + k] = f;
                if f != 0.0 {
                    for j in (k + 1)..m {
                        lu[i * m + j] -= f * lu[k * m + j];
                    }
                }
            }
        }
        Some(Self { m, lu, perm })
    }

    /// Solve `B·x = b` in place.
    fn solve(&self, b: &mut [f64]) {
        let m = self.m;
        for (k, &p) in self.perm.iter().enumerate() {
            b.swap(k, p);
        }
        for i in 1..m {
            let mut s = b[i];
            let row = &self.lu[i * m..i * m + i];
            for (j, &l) in row.iter().enumerate() {
                s -= l * b[j];
            }
            b[i] = s;
        }
        for i in (0..m).rev() {
            let mut s = b[i];
            let row = &self.lu[i * m + i + 1..(i + 1) * m];
            for (k, &u) in row.iter().enumerate() {
                s -= u * b[i + 1 + k];
            }
            b[i] = s / self.lu[i * m + i];
        }
    }

    /// Solve `Bᵀ·x = c` in place (used for the dual vector).
    fn solve_transposed(&self, c: &mut [f64]) {
        let m = self.m;
        // Bᵀ = Uᵀ Lᵀ P: forward with Uᵀ, backward with unit-diagonal Lᵀ,
        // then undo the permutation.
        for i in 0..m {
            let mut s = c[i];
            for (j, &cj) in c.iter().enumerate().take(i) {
                s -= self.lu[j * m + i] * cj;
            }
            c[i] = s / self.lu[i * m + i];
        }
        for i in (0..m).rev() {
            let mut s = c[i];
            for (j, &cj) in c.iter().enumerate().skip(i + 1) {
                s -= self.lu[j * m + i] * cj;
            }
            c[i] = s;
        }
        for (k, &p) in self.perm.iter().enumerate().rev() {
            c.swap(k, p);
        }
    }
}

/// Canonical solution extraction: solve `B·x_B = b` from the original
/// normalized constraint data for the given (sorted) basis and read off the
/// structural values, clamped at zero. Both the cold and the warm path end
/// here, which is what makes warm == cold bitwise whenever they agree on the
/// basis. Returns `None` when the basis matrix is singular (redundant rows
/// can leave a zero-level artificial basic; callers fall back to tableau
/// values).
fn extract_values(problem: &LpProblem, norm: &NormRows, basis_cols: &[usize]) -> Option<Vec<f64>> {
    let factored = FactoredBasis::factor(problem, norm, basis_cols)?;
    let mut x = norm.rhs.clone();
    factored.solve(&mut x);
    let mut values = vec![0.0; norm.n];
    for (j, &col) in basis_cols.iter().enumerate() {
        if col < norm.n {
            values[col] = x[j].max(0.0);
        }
    }
    Some(values)
}

// ---------------------------------------------------------------------------
// Warm-started solving
// ---------------------------------------------------------------------------

/// Reusable solver state: the optimal basis of the previous [`solve_warm`]
/// call plus the shape signature of the problem it solved.
///
/// The basis is invalidated (forcing a cold solve that stores a fresh one)
/// whenever the variable count or the per-row normalization pattern changes,
/// when it contains an artificial column (redundant rows), when the basis
/// matrix turns singular, or when the strict optimality margins fail on the
/// new problem — i.e. on any degeneracy or drift large enough to move the
/// optimal vertex.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LpBasis {
    /// Structural variable count of the problem the basis belongs to.
    n: usize,
    /// Per-row normalization pattern (`rel << 1 | flip`).
    pattern: Vec<u8>,
    /// Sorted basic column indices (structural/slack/artificial space).
    cols: Vec<usize>,
    hits: u64,
    misses: u64,
}

impl LpBasis {
    /// An empty basis; the first [`solve_warm`] call is a cold solve.
    pub fn new() -> Self {
        Self::default()
    }

    /// Warm solves that verified the stored basis and skipped the simplex.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Warm solves that fell back to the exact cold path.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// True before the first successful solve stores a basis.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty() && self.pattern.is_empty() && self.n == 0
    }

    /// Serialize to a flat word vector (for embedding in checkpoints).
    pub fn to_words(&self) -> Vec<u64> {
        let mut w = Vec::with_capacity(5 + self.pattern.len() + self.cols.len());
        w.push(1); // layout version
        w.push(self.n as u64);
        w.push(self.pattern.len() as u64);
        w.extend(self.pattern.iter().map(|&p| p as u64));
        w.push(self.cols.len() as u64);
        w.extend(self.cols.iter().map(|&c| c as u64));
        w.push(self.hits);
        w.push(self.misses);
        w
    }

    /// Inverse of [`to_words`](Self::to_words); `None` on malformed input.
    pub fn from_words(words: &[u64]) -> Option<Self> {
        let mut it = words.iter().copied();
        if it.next()? != 1 {
            return None;
        }
        let n = usize::try_from(it.next()?).ok()?;
        let np = usize::try_from(it.next()?).ok()?;
        if np > it.len() {
            return None; // corrupt length — refuse before allocating
        }
        let mut pattern = Vec::with_capacity(np);
        for _ in 0..np {
            pattern.push(u8::try_from(it.next()?).ok()?);
        }
        let nc = usize::try_from(it.next()?).ok()?;
        if nc > it.len() {
            return None; // corrupt length — refuse before allocating
        }
        let mut cols = Vec::with_capacity(nc);
        for _ in 0..nc {
            cols.push(usize::try_from(it.next()?).ok()?);
        }
        let hits = it.next()?;
        let misses = it.next()?;
        if it.next().is_some() {
            return None;
        }
        Some(Self {
            n,
            pattern,
            cols,
            hits,
            misses,
        })
    }
}

/// Whether every warm hit must be re-verified against a full cold solve.
/// Controlled by `VETL_LP_CROSSCHECK` (`1`/`0`); defaults to **on** in debug
/// builds so the entire test suite exercises the bitwise guarantee.
fn crosscheck_enabled() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(|| match std::env::var("VETL_LP_CROSSCHECK") {
        Ok(v) => !(v.is_empty() || v == "0" || v.eq_ignore_ascii_case("false")),
        Err(_) => cfg!(debug_assertions),
    })
}

/// Verify the stored basis against the new problem. On success the basis is
/// the unique optimal basis and the returned solution equals what the cold
/// solver would extract, bit for bit.
fn warm_attempt(problem: &LpProblem, norm: &NormRows, cols: &[usize]) -> Option<LpSolution> {
    let m = norm.m();
    let n_real = norm.n_real();
    if cols.len() != m || cols.iter().any(|&c| c >= n_real) {
        return None;
    }
    let factored = FactoredBasis::factor(problem, norm, cols)?;

    // Primal: B·x_B = b must be strictly positive (feasible + nondegenerate).
    let mut x = norm.rhs.clone();
    factored.solve(&mut x);
    let b_scale = 1.0 + norm.rhs.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
    if x.iter().any(|&v| v <= WARM_MARGIN * b_scale) {
        return None;
    }

    // Dual: Bᵀ·y = c_B, then every nonbasic reduced cost c_j − yᵀA_j must be
    // strictly negative (optimal + no alternate optimum).
    let mut y: Vec<f64> = cols
        .iter()
        .map(|&c| norm.objective_coeff(problem, c))
        .collect();
    factored.solve_transposed(&mut y);
    let mut yta = vec![0.0; n_real];
    for (r, &yr) in y.iter().enumerate() {
        if yr != 0.0 {
            norm.for_each_entry(problem, r, |col, val| {
                if col < n_real {
                    yta[col] += yr * val;
                }
            });
        }
    }
    for (col, &yta_col) in yta.iter().enumerate() {
        if cols.binary_search(&col).is_ok() {
            continue;
        }
        let c_j = norm.objective_coeff(problem, col);
        let reduced = c_j - yta_col;
        if reduced >= -WARM_MARGIN * (1.0 + c_j.abs() + yta_col.abs()) {
            return None;
        }
    }

    // Certified: read the solution off the already-solved basis system using
    // the canonical extraction rule (clamp at zero, objective recomputed
    // from the structural values) — identical to the cold path's epilogue.
    let mut values = vec![0.0; norm.n];
    for (j, &col) in cols.iter().enumerate() {
        if col < norm.n {
            values[col] = x[j].max(0.0);
        }
    }
    let objective = problem.objective_value(&values);
    Some(LpSolution {
        values,
        objective,
        pivots: 0,
    })
}

/// Solve a linear program, seeding from (and updating) a stored basis.
///
/// Behaviourally identical to [`solve`] — same `Ok` bits, same errors — but
/// when `basis` still verifies as the unique optimal basis of the new
/// problem the simplex is skipped entirely. Pass a fresh [`LpBasis`] for a
/// cold solve that primes the state.
pub fn solve_warm(problem: &LpProblem, basis: &mut LpBasis) -> Result<LpSolution, LpError> {
    let n = problem.num_vars();
    if n == 0 {
        return Ok(LpSolution {
            values: Vec::new(),
            objective: 0.0,
            pivots: 0,
        });
    }
    let norm = NormRows::build(problem);
    let pattern = norm.pattern();
    if basis.n == n && basis.pattern == pattern {
        if let Some(sol) = warm_attempt(problem, &norm, &basis.cols) {
            basis.hits += 1;
            if crosscheck_enabled() {
                let cold = solve_cold(problem, &norm)
                    .expect("warm solve verified a basis on a problem the cold solver rejects")
                    .0;
                assert!(
                    cold.values.len() == sol.values.len()
                        && cold
                            .values
                            .iter()
                            .zip(&sol.values)
                            .all(|(a, b)| a.to_bits() == b.to_bits())
                        && cold.objective.to_bits() == sol.objective.to_bits(),
                    "warm LP solve diverged from cold: warm {:?} (obj {}), cold {:?} (obj {})",
                    sol.values,
                    sol.objective,
                    cold.values,
                    cold.objective,
                );
            }
            return Ok(sol);
        }
    }
    basis.misses += 1;
    let (sol, cols) = solve_cold(problem, &norm)?;
    basis.n = n;
    basis.pattern = pattern;
    basis.cols = cols;
    Ok(sol)
}

/// Solve a linear program with the two-phase primal simplex method.
///
/// Returns the optimal solution or an [`LpError`]. A problem with zero
/// variables trivially solves to the empty assignment.
pub fn solve(problem: &LpProblem) -> Result<LpSolution, LpError> {
    if problem.num_vars() == 0 {
        return Ok(LpSolution {
            values: Vec::new(),
            objective: 0.0,
            pivots: 0,
        });
    }
    let norm = NormRows::build(problem);
    solve_cold(problem, &norm).map(|(sol, _)| sol)
}

/// The exact two-phase simplex. Returns the solution together with the
/// sorted final basis columns (for storing in an [`LpBasis`]).
fn solve_cold(problem: &LpProblem, norm: &NormRows) -> Result<(LpSolution, Vec<usize>), LpError> {
    let n = norm.n;
    let m = norm.m();
    let n_real = norm.n_real();
    let cols = n_real + norm.n_artificial + 1; // +1 for RHS
    let rhs_col = cols - 1;

    let mut a = vec![vec![0.0; cols]; m];
    let mut basis = vec![usize::MAX; m];
    let mut artificial_rows = Vec::new();

    for (r, arow) in a.iter_mut().enumerate() {
        let (flip, rel) = norm.specs[r];
        let sign = if flip { -1.0 } else { 1.0 };
        for (v, coeff) in &problem.constraints[r].terms {
            arow[v.0] += sign * coeff;
        }
        arow[rhs_col] = norm.rhs[r];
        match rel {
            Relation::Le => {
                let s = norm.slack_col[r].expect("Le row has slack");
                arow[s] = 1.0;
                basis[r] = s;
            }
            Relation::Ge => {
                let s = norm.slack_col[r].expect("Ge row has surplus");
                arow[s] = -1.0;
                let art = norm.art_col[r].expect("Ge row has artificial");
                arow[art] = 1.0;
                basis[r] = art;
                artificial_rows.push(r);
            }
            Relation::Eq => {
                let art = norm.art_col[r].expect("Eq row has artificial");
                arow[art] = 1.0;
                basis[r] = art;
                artificial_rows.push(r);
            }
        }
    }

    let max_pivots = 2000 + 200 * (n + m);
    let mut tab = Tableau {
        a,
        z: vec![0.0; cols],
        basis,
        n_real,
        pivots: 0,
    };

    // Phase 1: minimize the sum of artificials ⇔ maximize -(sum). The z-row
    // stores negated reduced costs: start with +1 on artificial columns and
    // eliminate basic artificial columns from the row.
    if norm.n_artificial > 0 {
        for c in n_real..(cols - 1) {
            tab.z[c] = 1.0;
        }
        for &r in &artificial_rows {
            for c in 0..cols {
                tab.z[c] -= tab.a[r][c];
            }
        }
        tab.optimize(cols - 1, max_pivots)?;
        let phase1 = -tab.z[rhs_col];
        if phase1 > 1e-6 {
            return Err(LpError::Infeasible);
        }
        // Drive remaining basic artificials out of the basis where possible.
        for r in 0..m {
            if tab.basis[r] >= n_real {
                if let Some(col) = (0..n_real).find(|&c| tab.a[r][c].abs() > EPS) {
                    tab.pivot(r, col);
                }
                // A row with no real coefficients is redundant; its basic
                // artificial stays at value ~0 which is harmless.
            }
        }
    }

    // Phase 2: restore the real objective. z-row = -c (for maximization),
    // then eliminate basic columns.
    for v in tab.z.iter_mut() {
        *v = 0.0;
    }
    for (c, &coeff) in problem.objective.iter().enumerate() {
        tab.z[c] = -coeff;
    }
    // Zero out artificial columns so they never re-enter.
    for r in 0..m {
        for c in n_real..(cols - 1) {
            if tab.basis[r] != c {
                tab.a[r][c] = 0.0;
            }
        }
    }
    {
        // Disjoint field borrows: z is edited against immutably borrowed
        // tableau rows — no per-row clone.
        let Tableau { a, z, basis, .. } = &mut tab;
        for (r, arow) in a.iter().enumerate() {
            let b = basis[r];
            if b < cols - 1 {
                let factor = z[b];
                if factor.abs() > EPS {
                    for (v, &p) in z.iter_mut().zip(arow.iter()) {
                        *v -= factor * p;
                    }
                }
            }
        }
    }
    tab.optimize(n_real, max_pivots)?;

    let mut final_basis = tab.basis.clone();
    final_basis.sort_unstable();
    // Canonical extraction from the original constraint data; fall back to
    // tableau values when the basis matrix is singular (redundant rows).
    let values = extract_values(problem, norm, &final_basis).unwrap_or_else(|| {
        let mut values = vec![0.0; n];
        for (r, &b) in tab.basis.iter().enumerate() {
            if b < n {
                values[b] = tab.a[r][rhs_col].max(0.0);
            }
        }
        values
    });
    let objective = problem.objective_value(&values);
    Ok((
        LpSolution {
            values,
            objective,
            pivots: tab.pivots,
        },
        final_basis,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LpProblem, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_two_variable_max() {
        // maximize 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), z=36.
        let mut p = LpProblem::new();
        let x = p.add_var("x", 3.0);
        let y = p.add_var("y", 5.0);
        p.add_constraint(vec![(x, 1.0)], Relation::Le, 4.0);
        p.add_constraint(vec![(y, 2.0)], Relation::Le, 12.0);
        p.add_constraint(vec![(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let s = solve(&p).unwrap();
        assert_close(s.objective, 36.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 6.0);
    }

    #[test]
    fn equality_constraints() {
        // maximize x + y s.t. x + y = 5, x ≤ 3 → objective 5.
        let mut p = LpProblem::new();
        let x = p.add_var("x", 1.0);
        let y = p.add_var("y", 1.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 5.0);
        p.add_constraint(vec![(x, 1.0)], Relation::Le, 3.0);
        let s = solve(&p).unwrap();
        assert_close(s.objective, 5.0);
        assert_close(s.value(x) + s.value(y), 5.0);
    }

    #[test]
    fn ge_constraints_need_phase_one() {
        // maximize -x (i.e. minimize x) s.t. x ≥ 7 → x = 7.
        let mut p = LpProblem::new();
        let x = p.add_var("x", -1.0);
        p.add_constraint(vec![(x, 1.0)], Relation::Ge, 7.0);
        let s = solve(&p).unwrap();
        assert_close(s.value(x), 7.0);
        assert_close(s.objective, -7.0);
    }

    #[test]
    fn detects_infeasibility() {
        let mut p = LpProblem::new();
        let x = p.add_var("x", 1.0);
        p.add_constraint(vec![(x, 1.0)], Relation::Le, 1.0);
        p.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(solve(&p).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        let mut p = LpProblem::new();
        let x = p.add_var("x", 1.0);
        let y = p.add_var("y", 0.0);
        p.add_constraint(vec![(x, 1.0), (y, -1.0)], Relation::Le, 1.0);
        assert_eq!(solve(&p).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // x - y ≤ -2 with x,y ≥ 0 ⇔ y ≥ x + 2; maximize -y → y = 2, x = 0.
        let mut p = LpProblem::new();
        let x = p.add_var("x", 0.0);
        let y = p.add_var("y", -1.0);
        p.add_constraint(vec![(x, 1.0), (y, -1.0)], Relation::Le, -2.0);
        let s = solve(&p).unwrap();
        assert_close(s.value(y), 2.0);
    }

    #[test]
    fn knob_planner_shape_lp() {
        // A miniature of the paper's planner LP: 2 categories × 3 configs.
        // maximize Σ α_{k,c} r_c q(k,c)
        // s.t. Σ α_{k,c} r_c cost(k) ≤ budget; Σ_k α_{k,c} = 1 ∀c; α ≥ 0.
        let r = [0.6, 0.4];
        let qual = [[0.5, 0.8, 1.0], [0.2, 0.6, 0.95]]; // [c][k]
        let cost = [1.0, 2.0, 4.0];
        let budget = 2.0;

        let mut p = LpProblem::new();
        let mut vars = [[None; 3]; 2];
        for c in 0..2 {
            for k in 0..3 {
                vars[c][k] = Some(p.add_var(format!("a_{k}_{c}"), r[c] * qual[c][k]));
            }
        }
        let budget_terms: Vec<_> = (0..2)
            .flat_map(|c| (0..3).map(move |k| (c, k)))
            .map(|(c, k)| (vars[c][k].unwrap(), r[c] * cost[k]))
            .collect();
        p.add_constraint(budget_terms, Relation::Le, budget);
        for row in vars.iter().take(2) {
            let terms: Vec<_> = row.iter().map(|v| (v.unwrap(), 1.0)).collect();
            p.add_constraint(terms, Relation::Eq, 1.0);
        }
        let s = solve(&p).unwrap();
        // Histograms normalize.
        for row in vars.iter().take(2) {
            let total: f64 = row.iter().map(|v| s.value(v.unwrap())).sum();
            assert_close(total, 1.0);
        }
        // Budget holds.
        let spent: f64 = (0..2)
            .flat_map(|c| (0..3).map(move |k| (c, k)))
            .map(|(c, k)| r[c] * cost[k] * s.value(vars[c][k].unwrap()))
            .sum();
        assert!(spent <= budget + 1e-6);
        // The optimum must beat the trivial all-cheap plan.
        let all_cheap: f64 = r[0] * qual[0][0] + r[1] * qual[1][0];
        assert!(s.objective > all_cheap);
    }

    #[test]
    fn degenerate_zero_ratio_category() {
        // A category with r_c = 0 contributes nothing but still needs its
        // normalization row satisfied — a degenerate LP that must not cycle.
        let mut p = LpProblem::new();
        let a = p.add_var("a", 0.0);
        let b = p.add_var("b", 0.0);
        p.add_constraint(vec![(a, 1.0), (b, 1.0)], Relation::Eq, 1.0);
        p.add_constraint(vec![(a, 0.0), (b, 0.0)], Relation::Le, 5.0);
        let s = solve(&p).unwrap();
        assert_close(s.value(a) + s.value(b), 1.0);
    }

    #[test]
    fn empty_problem_is_trivially_solved() {
        let p = LpProblem::new();
        let s = solve(&p).unwrap();
        assert_eq!(s.objective, 0.0);
        assert!(s.values.is_empty());
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 2 stated twice; maximize x s.t. x ≤ 1.5.
        let mut p = LpProblem::new();
        let x = p.add_var("x", 1.0);
        let y = p.add_var("y", 0.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 2.0);
        p.add_constraint(vec![(x, 1.0)], Relation::Le, 1.5);
        let s = solve(&p).unwrap();
        assert_close(s.value(x), 1.5);
        assert_close(s.value(y), 0.5);
    }

    // --- warm-start tests -------------------------------------------------

    /// A planner-shaped LP whose coefficients drift with `t`.
    fn drifting_planner_lp(t: f64) -> LpProblem {
        let r = [0.6 + 0.02 * t, 0.4 - 0.02 * t];
        let qual = [[0.5, 0.8, 1.0], [0.2, 0.6 + 0.01 * t, 0.95]];
        let cost = [1.0, 2.0, 4.0];
        let budget = 2.3 + 0.05 * t;
        let mut p = LpProblem::new();
        let mut vars = [[None; 3]; 2];
        for c in 0..2 {
            for k in 0..3 {
                vars[c][k] = Some(p.add_var(format!("a_{k}_{c}"), r[c] * qual[c][k]));
            }
        }
        let budget_terms: Vec<_> = (0..2)
            .flat_map(|c| (0..3).map(move |k| (c, k)))
            .map(|(c, k)| (vars[c][k].unwrap(), r[c] * cost[k]))
            .collect();
        p.add_constraint(budget_terms, Relation::Le, budget);
        for row in vars.iter().take(2) {
            let terms: Vec<_> = row.iter().map(|v| (v.unwrap(), 1.0)).collect();
            p.add_constraint(terms, Relation::Eq, 1.0);
        }
        p
    }

    #[test]
    fn warm_solve_matches_cold_bitwise_on_drifting_sequence() {
        let mut basis = LpBasis::new();
        for i in 0..20 {
            let p = drifting_planner_lp(i as f64 * 0.1);
            let warm = solve_warm(&p, &mut basis).unwrap();
            let cold = solve(&p).unwrap();
            assert_eq!(warm.values.len(), cold.values.len());
            for (w, c) in warm.values.iter().zip(&cold.values) {
                assert_eq!(w.to_bits(), c.to_bits(), "value bits diverged");
            }
            assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
        }
        assert!(
            basis.hits() > 0,
            "slow drift should re-certify the stored basis ({} misses)",
            basis.misses()
        );
    }

    #[test]
    fn warm_hit_skips_the_simplex() {
        let p = drifting_planner_lp(0.0);
        let mut basis = LpBasis::new();
        let first = solve_warm(&p, &mut basis).unwrap();
        assert!(first.pivots > 0, "cold prime runs the simplex");
        assert_eq!(basis.misses(), 1);
        let second = solve_warm(&p, &mut basis).unwrap();
        assert_eq!(second.pivots, 0, "warm hit must not pivot");
        assert_eq!(basis.hits(), 1);
        for (a, b) in first.values.iter().zip(&second.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn shape_change_invalidates_the_basis() {
        let mut basis = LpBasis::new();
        let p = drifting_planner_lp(0.0);
        solve_warm(&p, &mut basis).unwrap();
        // Different variable count: must cold-solve, not mis-apply the basis.
        let mut q = LpProblem::new();
        let x = q.add_var("x", 3.0);
        q.add_constraint(vec![(x, 1.0)], Relation::Le, 4.0);
        let s = solve_warm(&q, &mut basis).unwrap();
        assert_close(s.value(x), 4.0);
        assert_eq!(basis.misses(), 2);
        assert_eq!(basis.hits(), 0);
    }

    #[test]
    fn degenerate_problems_fall_back_to_cold() {
        // Alternate optima (two equally-priced configs): the strict margin
        // must reject the warm basis every time rather than risk picking a
        // different vertex than Bland's rule would.
        let mut p = LpProblem::new();
        let a = p.add_var("a", 1.0);
        let b = p.add_var("b", 1.0);
        p.add_constraint(vec![(a, 1.0), (b, 1.0)], Relation::Eq, 1.0);
        let mut basis = LpBasis::new();
        let s1 = solve_warm(&p, &mut basis).unwrap();
        let s2 = solve_warm(&p, &mut basis).unwrap();
        assert_eq!(basis.hits(), 0, "degenerate optimum must never warm-hit");
        for (x, y) in s1.values.iter().zip(&s2.values) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn warm_errors_match_cold_errors() {
        let mut basis = LpBasis::new();
        let mut p = LpProblem::new();
        let x = p.add_var("x", 1.0);
        p.add_constraint(vec![(x, 1.0)], Relation::Le, 1.0);
        p.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(solve_warm(&p, &mut basis).unwrap_err(), LpError::Infeasible);

        let mut q = LpProblem::new();
        let x = q.add_var("x", 1.0);
        let y = q.add_var("y", 0.0);
        q.add_constraint(vec![(x, 1.0), (y, -1.0)], Relation::Le, 1.0);
        assert_eq!(solve_warm(&q, &mut basis).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn basis_words_round_trip() {
        let mut basis = LpBasis::new();
        let p = drifting_planner_lp(1.0);
        solve_warm(&p, &mut basis).unwrap();
        solve_warm(&p, &mut basis).unwrap();
        let words = basis.to_words();
        let back = LpBasis::from_words(&words).unwrap();
        assert_eq!(back, basis);
        // A restored basis keeps warm-hitting.
        let mut restored = back;
        let s = solve_warm(&p, &mut restored).unwrap();
        assert_eq!(s.pivots, 0);
        assert!(LpBasis::from_words(&words[..words.len() - 1]).is_none());
        assert!(LpBasis::from_words(&[2, 0, 0, 0, 0, 0]).is_none());
    }

    #[test]
    fn empty_basis_reports_empty() {
        assert!(LpBasis::new().is_empty());
        let mut basis = LpBasis::new();
        solve_warm(&drifting_planner_lp(0.0), &mut basis).unwrap();
        assert!(!basis.is_empty());
    }
}
