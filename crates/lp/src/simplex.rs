//! Two-phase primal simplex on a dense tableau.
//!
//! The solver handles `maximize c·x` subject to mixed `≤ / ≥ / =` constraints
//! over non-negative variables. Rows are normalized to non-negative
//! right-hand sides; slack, surplus and artificial variables are appended as
//! needed; phase 1 drives the artificials to zero (detecting infeasibility),
//! phase 2 optimizes the real objective. Bland's rule breaks ties, which
//! guarantees termination in the presence of degeneracy — the planner LPs are
//! degenerate whenever a content category's forecast ratio `r_c` is zero.

use crate::problem::{LpProblem, LpSolution, Relation};

/// Failure modes of [`solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpError {
    /// No point satisfies all constraints.
    Infeasible,
    /// The objective can be increased without bound.
    Unbounded,
    /// Pivot limit exceeded (numerical trouble; should not happen with
    /// Bland's rule on well-scaled planner inputs).
    IterationLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

const EPS: f64 = 1e-9;

/// Dense simplex tableau.
struct Tableau {
    /// `rows × cols` coefficient matrix; the last column is the RHS.
    a: Vec<Vec<f64>>,
    /// Objective row (reduced costs), length `cols` (last entry = objective).
    z: Vec<f64>,
    /// Basis: for each row, the column index of its basic variable.
    basis: Vec<usize>,
    /// Number of structural + slack/surplus columns (artificials live after).
    #[allow(dead_code)]
    n_real: usize,
    pivots: usize,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        self.pivots += 1;
        let piv = self.a[row][col];
        debug_assert!(piv.abs() > EPS, "pivot on (near-)zero element");
        let inv = 1.0 / piv;
        for v in self.a[row].iter_mut() {
            *v *= inv;
        }
        let pivot_row = self.a[row].clone();
        for (r, arow) in self.a.iter_mut().enumerate() {
            if r == row {
                continue;
            }
            let factor = arow[col];
            if factor.abs() > EPS {
                for (v, &p) in arow.iter_mut().zip(pivot_row.iter()) {
                    *v -= factor * p;
                }
            }
        }
        let zfactor = self.z[col];
        if zfactor.abs() > EPS {
            for (v, &p) in self.z.iter_mut().zip(pivot_row.iter()) {
                *v -= zfactor * p;
            }
        }
        self.basis[row] = col;
    }

    /// Run simplex iterations until optimal / unbounded / iteration limit.
    /// `allowed_cols` restricts entering variables (phase 2 excludes
    /// artificial columns).
    fn optimize(&mut self, allowed_cols: usize, max_pivots: usize) -> Result<(), LpError> {
        loop {
            if self.pivots > max_pivots {
                return Err(LpError::IterationLimit);
            }
            // Bland's rule: smallest-index column with positive reduced cost
            // (we maximize, tableau stores z-row as c reduced costs negated —
            // here z holds the *negated* objective, so we enter on z < -EPS).
            let mut entering = None;
            for c in 0..allowed_cols {
                if self.z[c] < -EPS {
                    entering = Some(c);
                    break;
                }
            }
            let Some(col) = entering else { return Ok(()) };

            // Ratio test with Bland's tie-break on the smallest basis index.
            let rhs_col = self.a[0].len() - 1;
            let mut leaving: Option<(usize, f64)> = None;
            for (r, arow) in self.a.iter().enumerate() {
                let coeff = arow[col];
                if coeff > EPS {
                    let ratio = arow[rhs_col] / coeff;
                    match leaving {
                        None => leaving = Some((r, ratio)),
                        Some((br, bratio)) => {
                            if ratio < bratio - EPS
                                || ((ratio - bratio).abs() <= EPS && self.basis[r] < self.basis[br])
                            {
                                leaving = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            let Some((row, _)) = leaving else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
        }
    }
}

/// Solve a linear program with the two-phase primal simplex method.
///
/// Returns the optimal solution or an [`LpError`]. A problem with zero
/// variables trivially solves to the empty assignment.
pub fn solve(problem: &LpProblem) -> Result<LpSolution, LpError> {
    let n = problem.num_vars();
    let m = problem.num_constraints();
    if n == 0 {
        return Ok(LpSolution {
            values: Vec::new(),
            objective: 0.0,
            pivots: 0,
        });
    }

    // Count auxiliary columns. Each row gets either a slack (≤), a surplus +
    // artificial (≥) or an artificial (=) after RHS normalization.
    let mut n_slack = 0;
    let mut n_artificial = 0;
    let mut row_specs = Vec::with_capacity(m);
    for c in &problem.constraints {
        let flip = c.rhs < 0.0;
        let rel = match (c.relation, flip) {
            (Relation::Le, false) | (Relation::Ge, true) => Relation::Le,
            (Relation::Ge, false) | (Relation::Le, true) => Relation::Ge,
            (Relation::Eq, _) => Relation::Eq,
        };
        match rel {
            Relation::Le => n_slack += 1,
            Relation::Ge => {
                n_slack += 1;
                n_artificial += 1;
            }
            Relation::Eq => n_artificial += 1,
        }
        row_specs.push((flip, rel));
    }

    let n_real = n + n_slack;
    let cols = n_real + n_artificial + 1; // +1 for RHS
    let rhs_col = cols - 1;

    let mut a = vec![vec![0.0; cols]; m];
    let mut basis = vec![usize::MAX; m];
    let mut slack_cursor = n;
    let mut art_cursor = n_real;
    let mut artificial_rows = Vec::new();

    for (r, c) in problem.constraints.iter().enumerate() {
        let (flip, rel) = row_specs[r];
        let sign = if flip { -1.0 } else { 1.0 };
        for (v, coeff) in &c.terms {
            a[r][v.0] += sign * coeff;
        }
        a[r][rhs_col] = sign * c.rhs;
        match rel {
            Relation::Le => {
                a[r][slack_cursor] = 1.0;
                basis[r] = slack_cursor;
                slack_cursor += 1;
            }
            Relation::Ge => {
                a[r][slack_cursor] = -1.0; // surplus
                slack_cursor += 1;
                a[r][art_cursor] = 1.0;
                basis[r] = art_cursor;
                artificial_rows.push(r);
                art_cursor += 1;
            }
            Relation::Eq => {
                a[r][art_cursor] = 1.0;
                basis[r] = art_cursor;
                artificial_rows.push(r);
                art_cursor += 1;
            }
        }
    }

    let max_pivots = 2000 + 200 * (n + m);
    let mut tab = Tableau {
        a,
        z: vec![0.0; cols],
        basis,
        n_real,
        pivots: 0,
    };

    // Phase 1: minimize the sum of artificials ⇔ maximize -(sum). The z-row
    // stores negated reduced costs: start with +1 on artificial columns and
    // eliminate basic artificial columns from the row.
    if n_artificial > 0 {
        for c in n_real..(cols - 1) {
            tab.z[c] = 1.0;
        }
        for &r in &artificial_rows {
            for c in 0..cols {
                tab.z[c] -= tab.a[r][c];
            }
        }
        tab.optimize(cols - 1, max_pivots)?;
        let phase1 = -tab.z[rhs_col];
        if phase1 > 1e-6 {
            return Err(LpError::Infeasible);
        }
        // Drive remaining basic artificials out of the basis where possible.
        for r in 0..m {
            if tab.basis[r] >= n_real {
                if let Some(col) = (0..n_real).find(|&c| tab.a[r][c].abs() > EPS) {
                    tab.pivot(r, col);
                }
                // A row with no real coefficients is redundant; its basic
                // artificial stays at value ~0 which is harmless.
            }
        }
    }

    // Phase 2: restore the real objective. z-row = -c (for maximization),
    // then eliminate basic columns.
    for v in tab.z.iter_mut() {
        *v = 0.0;
    }
    for (c, &coeff) in problem.objective.iter().enumerate() {
        tab.z[c] = -coeff;
    }
    // Zero out artificial columns so they never re-enter.
    for r in 0..m {
        for c in n_real..(cols - 1) {
            if tab.basis[r] != c {
                tab.a[r][c] = 0.0;
            }
        }
    }
    for r in 0..m {
        let b = tab.basis[r];
        if b < cols - 1 {
            let factor = tab.z[b];
            if factor.abs() > EPS {
                let row = tab.a[r].clone();
                for (v, &p) in tab.z.iter_mut().zip(row.iter()) {
                    *v -= factor * p;
                }
            }
        }
    }
    tab.optimize(n_real, max_pivots)?;

    let mut values = vec![0.0; n];
    for (r, &b) in tab.basis.iter().enumerate() {
        if b < n {
            values[b] = tab.a[r][rhs_col].max(0.0);
        }
    }
    let objective = problem.objective_value(&values);
    Ok(LpSolution {
        values,
        objective,
        pivots: tab.pivots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LpProblem, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_two_variable_max() {
        // maximize 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), z=36.
        let mut p = LpProblem::new();
        let x = p.add_var("x", 3.0);
        let y = p.add_var("y", 5.0);
        p.add_constraint(vec![(x, 1.0)], Relation::Le, 4.0);
        p.add_constraint(vec![(y, 2.0)], Relation::Le, 12.0);
        p.add_constraint(vec![(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let s = solve(&p).unwrap();
        assert_close(s.objective, 36.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 6.0);
    }

    #[test]
    fn equality_constraints() {
        // maximize x + y s.t. x + y = 5, x ≤ 3 → objective 5.
        let mut p = LpProblem::new();
        let x = p.add_var("x", 1.0);
        let y = p.add_var("y", 1.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 5.0);
        p.add_constraint(vec![(x, 1.0)], Relation::Le, 3.0);
        let s = solve(&p).unwrap();
        assert_close(s.objective, 5.0);
        assert_close(s.value(x) + s.value(y), 5.0);
    }

    #[test]
    fn ge_constraints_need_phase_one() {
        // maximize -x (i.e. minimize x) s.t. x ≥ 7 → x = 7.
        let mut p = LpProblem::new();
        let x = p.add_var("x", -1.0);
        p.add_constraint(vec![(x, 1.0)], Relation::Ge, 7.0);
        let s = solve(&p).unwrap();
        assert_close(s.value(x), 7.0);
        assert_close(s.objective, -7.0);
    }

    #[test]
    fn detects_infeasibility() {
        let mut p = LpProblem::new();
        let x = p.add_var("x", 1.0);
        p.add_constraint(vec![(x, 1.0)], Relation::Le, 1.0);
        p.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(solve(&p).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        let mut p = LpProblem::new();
        let x = p.add_var("x", 1.0);
        let y = p.add_var("y", 0.0);
        p.add_constraint(vec![(x, 1.0), (y, -1.0)], Relation::Le, 1.0);
        assert_eq!(solve(&p).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // x - y ≤ -2 with x,y ≥ 0 ⇔ y ≥ x + 2; maximize -y → y = 2, x = 0.
        let mut p = LpProblem::new();
        let x = p.add_var("x", 0.0);
        let y = p.add_var("y", -1.0);
        p.add_constraint(vec![(x, 1.0), (y, -1.0)], Relation::Le, -2.0);
        let s = solve(&p).unwrap();
        assert_close(s.value(y), 2.0);
    }

    #[test]
    fn knob_planner_shape_lp() {
        // A miniature of the paper's planner LP: 2 categories × 3 configs.
        // maximize Σ α_{k,c} r_c q(k,c)
        // s.t. Σ α_{k,c} r_c cost(k) ≤ budget; Σ_k α_{k,c} = 1 ∀c; α ≥ 0.
        let r = [0.6, 0.4];
        let qual = [[0.5, 0.8, 1.0], [0.2, 0.6, 0.95]]; // [c][k]
        let cost = [1.0, 2.0, 4.0];
        let budget = 2.0;

        let mut p = LpProblem::new();
        let mut vars = [[None; 3]; 2];
        for c in 0..2 {
            for k in 0..3 {
                vars[c][k] = Some(p.add_var(format!("a_{k}_{c}"), r[c] * qual[c][k]));
            }
        }
        let budget_terms: Vec<_> = (0..2)
            .flat_map(|c| (0..3).map(move |k| (c, k)))
            .map(|(c, k)| (vars[c][k].unwrap(), r[c] * cost[k]))
            .collect();
        p.add_constraint(budget_terms, Relation::Le, budget);
        for row in vars.iter().take(2) {
            let terms: Vec<_> = row.iter().map(|v| (v.unwrap(), 1.0)).collect();
            p.add_constraint(terms, Relation::Eq, 1.0);
        }
        let s = solve(&p).unwrap();
        // Histograms normalize.
        for row in vars.iter().take(2) {
            let total: f64 = row.iter().map(|v| s.value(v.unwrap())).sum();
            assert_close(total, 1.0);
        }
        // Budget holds.
        let spent: f64 = (0..2)
            .flat_map(|c| (0..3).map(move |k| (c, k)))
            .map(|(c, k)| r[c] * cost[k] * s.value(vars[c][k].unwrap()))
            .sum();
        assert!(spent <= budget + 1e-6);
        // The optimum must beat the trivial all-cheap plan.
        let all_cheap: f64 = r[0] * qual[0][0] + r[1] * qual[1][0];
        assert!(s.objective > all_cheap);
    }

    #[test]
    fn degenerate_zero_ratio_category() {
        // A category with r_c = 0 contributes nothing but still needs its
        // normalization row satisfied — a degenerate LP that must not cycle.
        let mut p = LpProblem::new();
        let a = p.add_var("a", 0.0);
        let b = p.add_var("b", 0.0);
        p.add_constraint(vec![(a, 1.0), (b, 1.0)], Relation::Eq, 1.0);
        p.add_constraint(vec![(a, 0.0), (b, 0.0)], Relation::Le, 5.0);
        let s = solve(&p).unwrap();
        assert_close(s.value(a) + s.value(b), 1.0);
    }

    #[test]
    fn empty_problem_is_trivially_solved() {
        let p = LpProblem::new();
        let s = solve(&p).unwrap();
        assert_eq!(s.objective, 0.0);
        assert!(s.values.is_empty());
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 2 stated twice; maximize x s.t. x ≤ 1.5.
        let mut p = LpProblem::new();
        let x = p.add_var("x", 1.0);
        let y = p.add_var("y", 0.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 2.0);
        p.add_constraint(vec![(x, 1.0)], Relation::Le, 1.5);
        let s = solve(&p).unwrap();
        assert_close(s.value(x), 1.5);
        assert_close(s.value(y), 0.5);
    }
}
