//! Configuration profiling.
//!
//! The offline phase measures, for every surviving knob configuration,
//! (a) the on-premise work it induces per segment and (b) the runtime and
//! cloud cost of every Pareto-optimal task placement on the provisioned
//! hardware (§3.1, Appendix A.2). The online knob switcher then only ever
//! consults these profiles — it never reasons about UDF internals.

use vetl_exec::ActorPool;
use vetl_sim::{pareto_frontier, simulate, HardwareSpec, Placement, PlacementPoint};
use vetl_video::ContentState;

use crate::knob::KnobConfig;
use crate::workload::Workload;

/// One Pareto-optimal placement of a configuration's task graph.
#[derive(Debug, Clone)]
pub struct PlacementProfile {
    /// The cloud/on-premise assignment.
    pub placement: Placement,
    /// Mean wall-clock runtime per segment over the profiled contents.
    pub runtime_mean: f64,
    /// Worst observed runtime (the switcher's overflow check uses this,
    /// times a safety factor).
    pub runtime_max: f64,
    /// Mean cloud dollars per segment.
    pub cloud_usd: f64,
    /// Mean on-premise core-seconds per segment under this placement.
    pub onprem_work: f64,
    /// Worst observed on-premise core-seconds per segment (the switcher's
    /// real-time check uses this).
    pub onprem_work_max: f64,
}

/// Profile of one knob configuration on the provisioned hardware.
#[derive(Debug, Clone)]
pub struct ConfigProfile {
    /// The configuration.
    pub config: KnobConfig,
    /// Mean all-on-premise work per segment, core-seconds.
    pub work_mean: f64,
    /// Worst-case all-on-premise work per segment, core-seconds.
    pub work_max: f64,
    /// Cost/runtime Pareto placements, ascending cloud cost. Index 0 is the
    /// free (typically all-on-premise) placement.
    pub placements: Vec<PlacementProfile>,
    /// Mean quality per content category (cluster-center column for this
    /// configuration), filled in by the categorization step.
    pub qual_by_category: Vec<f64>,
    /// Mean work per segment *conditioned on the content category*,
    /// core-seconds; filled in by the categorization step. The knob
    /// planner's budget constraint uses these (work correlates with content
    /// difficulty, so a flat mean would over- or under-charge categories).
    pub cost_by_category: Vec<f64>,
}

impl ConfigProfile {
    /// Average quality across categories weighted by `r` (forecast ratios).
    pub fn expected_quality(&self, r: &[f64]) -> f64 {
        self.qual_by_category
            .iter()
            .zip(r.iter())
            .map(|(q, w)| q * w)
            .sum()
    }

    /// The cheapest placement (always present).
    pub fn free_placement(&self) -> &PlacementProfile {
        &self.placements[0]
    }

    /// Work rate in core-seconds per second of video.
    pub fn work_rate(&self, seg_len: f64) -> f64 {
        self.work_mean / seg_len
    }
}

/// Profile `configs` on `hardware` using the Appendix-M simulator.
///
/// `mean_samples` must be *representative* content (they determine the
/// expected costs the knob planner's LP consumes); `extreme_samples` are
/// additional worst-case contents that only contribute to the `*_max`
/// statistics the switcher's overflow check relies on.
pub fn profile_configs<W: Workload + ?Sized>(
    workload: &W,
    configs: &[KnobConfig],
    mean_samples: &[ContentState],
    extreme_samples: &[ContentState],
    hardware: &HardwareSpec,
) -> Vec<ConfigProfile> {
    assert!(
        !mean_samples.is_empty(),
        "profiling needs at least one sample segment"
    );
    configs
        .iter()
        .map(|config| profile_one(workload, config, mean_samples, extreme_samples, hardware))
        .collect()
}

/// [`profile_configs`] scattered across a worker pool, one configuration per
/// task. Profiling is deterministic (no random draws), so the output is
/// identical to the sequential version for any pool size — simulation of
/// every candidate placement on every sample segment is simply the offline
/// phase's "filter task placements" hot loop (Table 3) run `|K|`-way
/// parallel.
pub fn profile_configs_on<W: Workload + ?Sized>(
    workload: &W,
    configs: &[KnobConfig],
    mean_samples: &[ContentState],
    extreme_samples: &[ContentState],
    hardware: &HardwareSpec,
    pool: &ActorPool,
) -> Vec<ConfigProfile> {
    assert!(
        !mean_samples.is_empty(),
        "profiling needs at least one sample segment"
    );
    pool.par_map(configs, |_, config| {
        profile_one(workload, config, mean_samples, extreme_samples, hardware)
    })
}

fn profile_one<W: Workload + ?Sized>(
    workload: &W,
    config: &KnobConfig,
    mean_samples: &[ContentState],
    extreme_samples: &[ContentState],
    hardware: &HardwareSpec,
) -> ConfigProfile {
    let samples = mean_samples;
    let n_nodes = workload.task_graph(config, &samples[0]).len();
    let candidates: Vec<Placement> = if n_nodes <= 12 {
        Placement::enumerate(n_nodes).collect()
    } else {
        // For larger DAGs fall back to single-node moves from all-on-prem:
        // all placements with at most 2 cloud nodes plus the extremes.
        let mut v = vec![
            Placement::all_onprem(n_nodes),
            Placement::all_cloud(n_nodes),
        ];
        for i in 0..n_nodes {
            let mut p = Placement::all_onprem(n_nodes);
            p.set_cloud(vetl_sim::NodeId(i), true);
            v.push(p);
        }
        v
    };

    let mut work_sum = 0.0;
    let mut work_max = 0.0f64;
    // Per-candidate aggregates: (runtime sum, runtime max, cloud usd sum,
    // on-prem work sum, on-prem work max).
    let mut agg: Vec<(f64, f64, f64, f64, f64)> = vec![(0.0, 0.0, 0.0, 0.0, 0.0); candidates.len()];
    for content in samples {
        let graph = workload.task_graph(config, content);
        let w = graph.total_onprem_secs();
        work_sum += w;
        work_max = work_max.max(w);
        for (ci, placement) in candidates.iter().enumerate() {
            let r = simulate(&graph, placement, &hardware.cluster, &hardware.cloud);
            let a = &mut agg[ci];
            a.0 += r.makespan;
            a.1 = a.1.max(r.makespan);
            a.2 += r.cloud_usd;
            a.3 += r.onprem_busy_secs;
            a.4 = a.4.max(r.onprem_busy_secs);
        }
    }

    // Extreme samples contribute to the max statistics only.
    for content in extreme_samples {
        let graph = workload.task_graph(config, content);
        work_max = work_max.max(graph.total_onprem_secs());
        for (ci, placement) in candidates.iter().enumerate() {
            let r = simulate(&graph, placement, &hardware.cluster, &hardware.cloud);
            let a = &mut agg[ci];
            a.1 = a.1.max(r.makespan);
            a.4 = a.4.max(r.onprem_busy_secs);
        }
    }

    let n = samples.len() as f64;
    let points: Vec<PlacementPoint> = candidates
        .iter()
        .enumerate()
        .map(|(ci, p)| PlacementPoint {
            placement: p.clone(),
            runtime: agg[ci].0 / n,
            cloud_usd: agg[ci].2 / n,
        })
        .collect();
    let frontier = pareto_frontier(points);
    let placements: Vec<PlacementProfile> = frontier
        .into_iter()
        .map(|pt| {
            let ci = candidates
                .iter()
                .position(|c| *c == pt.placement)
                .expect("from candidates");
            PlacementProfile {
                placement: pt.placement,
                runtime_mean: pt.runtime,
                runtime_max: agg[ci].1,
                cloud_usd: pt.cloud_usd,
                onprem_work: agg[ci].3 / n,
                onprem_work_max: agg[ci].4,
            }
        })
        .collect();

    ConfigProfile {
        config: config.clone(),
        work_mean: work_sum / n,
        work_max,
        placements,
        qual_by_category: Vec::new(),
        cost_by_category: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::ToyWorkload;
    use crate::workload::Workload;
    use vetl_video::{ContentParams, ContentProcess};

    fn samples(n: usize) -> Vec<ContentState> {
        let mut p = ContentProcess::new(ContentParams::default(), 2.0);
        (0..n).map(|_| p.step()).collect()
    }

    #[test]
    fn profiles_cover_all_configs() {
        let w = ToyWorkload::new();
        let configs: Vec<_> = w.config_space().iter().collect();
        let profs = profile_configs(&w, &configs, &samples(8), &[], &HardwareSpec::with_cores(4));
        assert_eq!(profs.len(), configs.len());
        for p in &profs {
            assert!(p.work_mean > 0.0);
            assert!(p.work_max >= p.work_mean);
            assert!(!p.placements.is_empty());
            // Placements sorted by ascending cloud cost; first one is free.
            assert!(p
                .placements
                .windows(2)
                .all(|w| w[0].cloud_usd <= w[1].cloud_usd));
            assert_eq!(p.free_placement().cloud_usd, 0.0);
        }
    }

    #[test]
    fn pricier_placements_are_faster() {
        let w = ToyWorkload::new();
        // The most expensive config on a small cluster benefits from cloud.
        let config = w.config_space().max_config();
        let profs = profile_configs(
            &w,
            &[config],
            &samples(8),
            &[],
            &HardwareSpec::with_cores(1),
        );
        let pls = &profs[0].placements;
        if pls.len() > 1 {
            assert!(
                pls.last().unwrap().runtime_mean < pls[0].runtime_mean,
                "paying for cloud must buy runtime on the Pareto frontier"
            );
        }
    }

    #[test]
    fn expensive_config_induces_more_work() {
        let w = ToyWorkload::new();
        let cheap = w.config_space().min_config();
        let dear = w.config_space().max_config();
        let profs = profile_configs(
            &w,
            &[cheap, dear],
            &samples(6),
            &[],
            &HardwareSpec::with_cores(4),
        );
        assert!(profs[1].work_mean > 3.0 * profs[0].work_mean);
    }

    #[test]
    fn expected_quality_weights_by_ratio() {
        let w = ToyWorkload::new();
        let configs: Vec<_> = vec![w.config_space().min_config()];
        let mut profs =
            profile_configs(&w, &configs, &samples(4), &[], &HardwareSpec::with_cores(4));
        profs[0].qual_by_category = vec![0.2, 0.8];
        assert!((profs[0].expected_quality(&[0.5, 0.5]) - 0.5).abs() < 1e-12);
        assert!((profs[0].expected_quality(&[1.0, 0.0]) - 0.2).abs() < 1e-12);
    }
}
