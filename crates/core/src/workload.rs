//! The workload contract: what a V-ETL user provides to Skyscraper.
//!
//! A workload is (1) a set of UDFs arranged in a DAG per knob configuration,
//! (2) the registered knobs with their domains, and (3) a *quality metric*
//! that the user code measures and returns while processing (§2.1, §4.2,
//! Appendix F). Skyscraper is deliberately agnostic to everything else — it
//! never inspects frames, which is why a synthetic workload with calibrated
//! cost/quality responses exercises the identical decision logic as the
//! paper's YOLO/KCF/TransMOT pipelines.

use rand::rngs::StdRng;

use vetl_sim::TaskGraph;
use vetl_video::ContentState;

use crate::knob::{ConfigSpace, Knob, KnobConfig, KnobValue};

/// A user-defined V-ETL workload.
///
/// Workloads must be `Send + Sync`: the offline phase scatters profiling,
/// hill-climbing and labelling across a worker pool, and every worker
/// evaluates the same shared workload object (all methods take `&self`).
pub trait Workload: Send + Sync {
    /// Workload name (for reports).
    fn name(&self) -> &str;

    /// The registered knobs, in a fixed order.
    fn knobs(&self) -> &[Knob];

    /// Segment length in seconds — the knob-switching granularity
    /// (2 s for COVID/MOT, 7 s for MOSEI; §5.2, Appendix K.1).
    fn segment_len(&self) -> f64;

    /// Build the task graph executed when processing one segment of
    /// `content` under `config`. Node runtimes may depend on the content
    /// (more objects ⇒ more tracker work).
    fn task_graph(&self, config: &KnobConfig, content: &ContentState) -> TaskGraph;

    /// Rebuild the task graph for (`config`, `content`) **into** `g`,
    /// reusing its allocations. The result must be bitwise-identical to
    /// what [`Self::task_graph`] returns for the same arguments (the ingest
    /// session property-tests this); `g` must be either empty or a graph
    /// previously filled by *this* workload.
    ///
    /// The ingest hot path calls this once per segment with a per-session
    /// cached graph. Workloads whose topology (node names and edges) does
    /// not depend on config or content — all of the paper's pipelines —
    /// should build the skeleton only when `g` is empty and then overwrite
    /// the node costs/payloads in place, so the steady state never touches
    /// the allocator. The default implementation just rebuilds from
    /// scratch, which is always correct.
    fn task_graph_into(&self, config: &KnobConfig, content: &ContentState, g: &mut TaskGraph) {
        *g = self.task_graph(config, content);
    }

    /// Ground-truth quality of `config` on `content`, in `[0, 1]` relative
    /// to the best achievable. Only the *Optimum* oracle and evaluation
    /// metrics may consult this.
    fn true_quality(&self, config: &KnobConfig, content: &ContentState) -> f64;

    /// The quality metric the user code reports while processing — a noisy
    /// observation of [`Self::true_quality`] (detector confidences, tracker
    /// error counts, model certainty; §5.2).
    fn reported_quality(
        &self,
        config: &KnobConfig,
        content: &ContentState,
        rng: &mut StdRng,
    ) -> f64;

    /// The full configuration space spanned by [`Self::knobs`].
    fn config_space(&self) -> ConfigSpace {
        ConfigSpace::new(self.knobs())
    }

    /// Total on-premise work of processing one segment of `content` under
    /// `config`, in reference-core-seconds.
    fn work(&self, config: &KnobConfig, content: &ContentState) -> f64 {
        self.task_graph(config, content).total_onprem_secs()
    }

    /// Work rate of a configuration: core-seconds of compute per second of
    /// video, at the given content.
    fn work_rate(&self, config: &KnobConfig, content: &ContentState) -> f64 {
        self.work(config, content) / self.segment_len()
    }

    /// Stable identity of this workload: name, segment length, and the full
    /// knob registry (names, domains). The knowledge base scopes persisted
    /// artifacts and memoized evaluations to this fingerprint — changing the
    /// knob space triggers the full-refit fallback. Workloads whose
    /// cost/quality responses have additional tunable parameters should
    /// override this and fold those in.
    fn fingerprint(&self) -> u64 {
        let mut h = crate::fingerprint::Fnv::new();
        h.eat_str(self.name());
        h.eat_f64(self.segment_len());
        for knob in self.knobs() {
            h.eat_str(&knob.name);
            h.eat(knob.domain.len() as u64);
            for value in &knob.domain {
                match value {
                    KnobValue::Int(v) => {
                        h.eat(1).eat(*v as u64);
                    }
                    KnobValue::Float(v) => {
                        h.eat(2).eat_f64(*v);
                    }
                    KnobValue::Text(v) => {
                        h.eat(3).eat_str(v);
                    }
                }
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::ToyWorkload;
    use rand::SeedableRng;
    use vetl_video::{ContentParams, ContentProcess};

    #[test]
    fn toy_workload_honours_the_contract() {
        let w = ToyWorkload::new();
        assert!(!w.knobs().is_empty());
        assert!(w.segment_len() > 0.0);
        let space = w.config_space();
        assert!(space.size() > 1);

        let mut proc = ContentProcess::new(ContentParams::default(), w.segment_len());
        let content = proc.step();
        let mut rng = StdRng::seed_from_u64(1);
        for config in space.iter() {
            let g = w.task_graph(&config, &content);
            assert!(!g.is_empty());
            let q = w.true_quality(&config, &content);
            assert!((0.0..=1.0).contains(&q));
            let r = w.reported_quality(&config, &content, &mut rng);
            assert!((0.0..=1.0).contains(&r));
            assert!(w.work(&config, &content) > 0.0);
        }
    }

    #[test]
    fn expensive_configs_do_better_on_hard_content() {
        let w = ToyWorkload::new();
        let space = w.config_space();
        let mut proc = ContentProcess::new(ContentParams::default(), w.segment_len());
        let mut hard = proc.step();
        hard.difficulty = 0.95;
        let cheap_q = w.true_quality(&space.min_config(), &hard);
        let best_q = w.true_quality(&space.max_config(), &hard);
        assert!(best_q > cheap_q + 0.2, "best {best_q} vs cheap {cheap_q}");
        // And the expensive config costs more.
        assert!(w.work(&space.max_config(), &hard) > w.work(&space.min_config(), &hard));
    }

    #[test]
    fn fingerprint_is_stable_and_knob_sensitive() {
        let w = ToyWorkload::new();
        assert_eq!(w.fingerprint(), ToyWorkload::new().fingerprint());

        struct Renamed(ToyWorkload);
        impl Workload for Renamed {
            fn name(&self) -> &str {
                "toy-renamed"
            }
            fn knobs(&self) -> &[Knob] {
                self.0.knobs()
            }
            fn segment_len(&self) -> f64 {
                self.0.segment_len()
            }
            fn task_graph(&self, c: &KnobConfig, s: &ContentState) -> TaskGraph {
                self.0.task_graph(c, s)
            }
            fn true_quality(&self, c: &KnobConfig, s: &ContentState) -> f64 {
                self.0.true_quality(c, s)
            }
            fn reported_quality(&self, c: &KnobConfig, s: &ContentState, r: &mut StdRng) -> f64 {
                self.0.reported_quality(c, s, r)
            }
        }
        assert_ne!(
            w.fingerprint(),
            Renamed(ToyWorkload::new()).fingerprint(),
            "name must distinguish workloads"
        );
    }
}
