//! The predictive knob planner (§4.1).
//!
//! Every planned interval (default 2 days) the planner (1) forecasts the
//! content-category distribution `r` with the trained model and (2) solves
//! the linear program of Eqs. 2–4 to obtain the knob plan:
//!
//! ```text
//! maximize   Σ_{k,c} α_{k,c} · r_c · q̂(k,c)              (2)
//! subject to Σ_{k,c} α_{k,c} · r_c · cost(k) ≤ budget    (3)
//!            Σ_k α_{k,c} = 1,  α_{k,c} ≥ 0   ∀c          (4)
//! ```
//!
//! The budget is expressed in on-premise `core·s` per segment; Skyscraper
//! internally converts the user's cloud-credit budget into that unit
//! (footnote 4) via [`vetl_sim::CostModel`].

use vetl_lp::{solve_warm, LpBasis, LpProblem, Relation};

use crate::error::SkyError;
use crate::offline::FittedModel;
use crate::online::plan::KnobPlan;

/// Planner statistics (Fig. 13 reports its sub-second runtime).
#[derive(Debug, Clone, Copy, Default)]
pub struct PlannerStats {
    /// LP variables (`|C| · |K|`).
    pub n_vars: usize,
    /// LP constraints (`1 + |C|` plus non-negativity).
    pub n_constraints: usize,
    /// Simplex pivots.
    pub pivots: usize,
}

/// The knob planner.
#[derive(Debug, Clone, Default)]
pub struct KnobPlanner {
    /// Statistics of the last solve.
    pub last_stats: PlannerStats,
    /// Optimal basis of the previous epoch's LP; consecutive replans drift
    /// slowly, so most solves re-certify it and skip the simplex entirely.
    pub(crate) basis: LpBasis,
}

impl KnobPlanner {
    /// Create a planner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replans that re-certified the previous epoch's basis (no simplex).
    pub fn warm_hits(&self) -> u64 {
        self.basis.hits()
    }

    /// Replans that ran the exact cold simplex.
    pub fn warm_misses(&self) -> u64 {
        self.basis.misses()
    }

    /// Compute the optimal plan for forecast `r` (a distribution over
    /// categories) under `budget_per_seg` core-seconds per segment.
    ///
    /// Infeasibility cannot occur as long as the cheapest configuration fits
    /// the budget; if the LP is infeasible regardless (budget below the
    /// cheapest configuration's cost), the planner degrades to the
    /// all-cheapest plan rather than failing the pipeline — mirroring the
    /// paper's guarantee that Skyscraper keeps ingesting.
    pub fn plan(
        &mut self,
        model: &FittedModel,
        r: &[f64],
        budget_per_seg: f64,
    ) -> Result<KnobPlan, SkyError> {
        let n_k = model.n_configs();
        let n_c = model.n_categories();
        assert_eq!(r.len(), n_c, "forecast dimension mismatch");

        let mut lp = LpProblem::new();
        // Variable layout: alpha[c][k] at index c * n_k + k.
        let mut vars = Vec::with_capacity(n_c * n_k);
        for (c, &rc) in r.iter().enumerate() {
            for k in 0..n_k {
                let obj = rc * model.categories.avg_quality(k, c);
                vars.push(lp.add_var(format!("a_{k}_{c}"), obj));
            }
        }
        // Eq. 3: budget, with category-conditional expected costs.
        let budget_terms: Vec<_> = (0..n_c)
            .flat_map(|c| (0..n_k).map(move |k| (c, k)))
            .map(|(c, k)| (vars[c * n_k + k], r[c] * model.cost(k, c)))
            .collect();
        lp.add_constraint(budget_terms, Relation::Le, budget_per_seg);
        // Eq. 4: normalization per category.
        for c in 0..n_c {
            let terms: Vec<_> = (0..n_k).map(|k| (vars[c * n_k + k], 1.0)).collect();
            lp.add_constraint(terms, Relation::Eq, 1.0);
        }

        self.last_stats = PlannerStats {
            n_vars: lp.num_vars(),
            n_constraints: lp.num_constraints(),
            pivots: 0,
        };

        match solve_warm(&lp, &mut self.basis) {
            Ok(sol) => {
                self.last_stats.pivots = sol.pivots;
                let alpha: Vec<Vec<f64>> = (0..n_c)
                    .map(|c| (0..n_k).map(|k| sol.value(vars[c * n_k + k])).collect())
                    .collect();
                Ok(KnobPlan::new(alpha))
            }
            Err(vetl_lp::LpError::Infeasible) => {
                // Budget below even the cheapest plan: degrade gracefully.
                Ok(KnobPlan::single_config(n_c, n_k, model.cheapest()))
            }
            Err(e) => Err(SkyError::PlannerLp(e)),
        }
    }

    /// Convenience: plan from the model's own forecaster given a recent
    /// category timeline.
    pub fn plan_from_history(
        &mut self,
        model: &FittedModel,
        recent: &crate::offline::forecast::CategoryTimeline,
        budget_per_seg: f64,
    ) -> Result<(KnobPlan, Vec<f64>), SkyError> {
        let r = model.forecaster.forecast(recent);
        let plan = self.plan(model, &r, budget_per_seg)?;
        Ok((plan, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SkyscraperConfig;
    use crate::offline::run_offline;
    use crate::testkit::ToyWorkload;
    use vetl_sim::HardwareSpec;
    use vetl_video::{ContentParams, Recording, SyntheticCamera};

    fn model() -> FittedModel {
        let w = ToyWorkload::new();
        let mut cam = SyntheticCamera::new(ContentParams::traffic_intersection(3), 2.0);
        let labeled = Recording::record(&mut cam, 20.0 * 60.0);
        let unlabeled = Recording::record(&mut cam, 2.0 * 86_400.0);
        run_offline(
            &w,
            &labeled,
            &unlabeled,
            HardwareSpec::with_cores(4),
            &SkyscraperConfig::fast_test(),
        )
        .unwrap()
        .0
    }

    #[test]
    fn plan_rows_normalize_and_respect_budget() {
        let m = model();
        let r = vec![1.0 / m.n_categories() as f64; m.n_categories()];
        let budget = 2.0; // core-s per 2 s segment = 1 core sustained
        let plan = KnobPlanner::new().plan(&m, &r, budget).unwrap();
        for c in 0..m.n_categories() {
            let s: f64 = plan.histogram(c).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        let cost = plan.expected_cost(&r, |k| m.configs[k].work_mean);
        assert!(
            cost <= budget + 1e-6,
            "plan cost {cost} exceeds budget {budget}"
        );
    }

    #[test]
    fn bigger_budgets_buy_more_quality() {
        let m = model();
        let r = vec![1.0 / m.n_categories() as f64; m.n_categories()];
        let mut planner = KnobPlanner::new();
        let q_small = planner
            .plan(&m, &r, 0.6)
            .unwrap()
            .expected_quality(&r, |k, c| m.categories.avg_quality(k, c));
        let q_large = planner
            .plan(&m, &r, 8.0)
            .unwrap()
            .expected_quality(&r, |k, c| m.categories.avg_quality(k, c));
        assert!(q_large > q_small, "quality {q_large} should beat {q_small}");
    }

    #[test]
    fn impossible_budget_degrades_to_cheapest() {
        let m = model();
        let r = vec![1.0 / m.n_categories() as f64; m.n_categories()];
        let plan = KnobPlanner::new().plan(&m, &r, 1e-9).unwrap();
        for c in 0..m.n_categories() {
            assert!((plan.frequency(c, m.cheapest()) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn hard_categories_get_expensive_configs_first() {
        // With a moderate budget, the plan should allocate expensive configs
        // to the category where they help most (the hard one) and cheap
        // configs where quality saturates anyway.
        let m = model();
        // Identify the hardest category: lowest cheap-config quality.
        let cheap = m.cheapest();
        let hard_c = (0..m.n_categories())
            .min_by(|&a, &b| {
                m.categories
                    .avg_quality(cheap, a)
                    .partial_cmp(&m.categories.avg_quality(cheap, b))
                    .unwrap()
            })
            .unwrap();
        let easy_c = (0..m.n_categories())
            .max_by(|&a, &b| {
                m.categories
                    .avg_quality(cheap, a)
                    .partial_cmp(&m.categories.avg_quality(cheap, b))
                    .unwrap()
            })
            .unwrap();
        let r = vec![1.0 / m.n_categories() as f64; m.n_categories()];
        // Budget halfway between cheapest and most expensive.
        let w_min = m
            .configs
            .iter()
            .map(|p| p.work_mean)
            .fold(f64::INFINITY, f64::min);
        let w_max = m.configs.iter().map(|p| p.work_mean).fold(0.0f64, f64::max);
        let plan = KnobPlanner::new()
            .plan(&m, &r, 0.5 * (w_min + w_max))
            .unwrap();
        let planned_work = |c: usize| -> f64 {
            (0..m.n_configs())
                .map(|k| plan.frequency(c, k) * m.configs[k].work_mean)
                .sum()
        };
        assert!(
            planned_work(hard_c) > planned_work(easy_c),
            "hard category should receive more work: {} vs {}",
            planned_work(hard_c),
            planned_work(easy_c)
        );
    }

    #[test]
    fn stats_report_problem_size() {
        let m = model();
        let r = vec![1.0 / m.n_categories() as f64; m.n_categories()];
        let mut planner = KnobPlanner::new();
        let _ = planner.plan(&m, &r, 2.0).unwrap();
        assert_eq!(planner.last_stats.n_vars, m.n_configs() * m.n_categories());
        assert_eq!(planner.last_stats.n_constraints, 1 + m.n_categories());
    }
}
