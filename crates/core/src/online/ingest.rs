//! The online ingestion driver (§4, Appendix N.2).
//!
//! Drives one stream through Skyscraper: per segment it classifies the
//! content category, lets the knob switcher pick a configuration and
//! placement, "executes" the resulting task graph on the Appendix-M
//! simulator, and settles the buffer/backlog and cloud-credit accounting.
//! Every planned interval it re-runs the knob planner on a fresh forecast.
//!
//! The driver exposes the feature gates the evaluation needs: buffering and
//! cloud bursting can be disabled independently (§5.4 ablation), the
//! classifier can be switched between *Standard*, *No-Type-B* and
//! *Ground truth* (§5.6, Fig. 15), and the forecast can come from the model,
//! from the ground truth, or be uniform (Fig. 14).

use rand::rngs::StdRng;
use rand::SeedableRng;

use vetl_sim::{simulate, Backlog, CostModel, Trace, TracePoint};
use vetl_video::Segment;

use crate::error::SkyError;
use crate::offline::forecast::CategoryTimeline;
use crate::offline::FittedModel;
use crate::online::plan::KnobPlan;
use crate::online::planner::KnobPlanner;
use crate::online::switcher::{KnobSwitcher, SwitcherLimits};
use crate::workload::Workload;

/// How the current content category is determined (§5.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClassificationMode {
    /// Eq. 5 on the *previous* segment's reported quality (production mode;
    /// subject to Type-A and Type-B errors).
    #[default]
    Standard,
    /// Eq. 5 on the *current* segment's quality under the current
    /// configuration — eliminates the timing mismatch (Type-B) and leaves
    /// only Type-A errors (Fig. 15's "No Type-B errors" baseline).
    NoTypeB,
    /// Oracle: the ground-truth category (Fig. 15's "Ground truth").
    GroundTruth,
}

/// Where the planner's forecast comes from (Fig. 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ForecastMode {
    /// The trained forecasting model (production mode).
    #[default]
    Model,
    /// Oracle: the actual category distribution of the upcoming interval.
    GroundTruth,
    /// A uniform distribution (ablation lower bound).
    Uniform,
}

/// Options for one ingestion run.
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// Allow setting video aside in the buffer (§5.4 gate 1b/1d).
    pub enable_buffering: bool,
    /// Allow cloud placements (§5.4 gate 1c/1d).
    pub enable_cloud: bool,
    /// Cloud credits granted per planned interval, dollars.
    pub cloud_budget_usd: f64,
    /// Category classification mode.
    pub classification: ClassificationMode,
    /// Forecast source.
    pub forecast: ForecastMode,
    /// Knob-switcher period in seconds (defaults to the fitted
    /// hyperparameter; clamped to ≥ one segment).
    pub switch_period_secs: Option<f64>,
    /// Cost conversions.
    pub cost_model: CostModel,
    /// RNG seed for reported-quality noise.
    pub seed: u64,
    /// Record a full trace (Fig. 3); summaries are always computed.
    pub record_trace: bool,
    /// Run the Appendix-E.2 drift detector over classification residuals.
    pub detect_drift: bool,
    /// Fine-tune the forecaster online at every replanning point (§3.3).
    pub finetune_forecaster: bool,
}

impl Default for IngestOptions {
    fn default() -> Self {
        Self {
            enable_buffering: true,
            enable_cloud: true,
            cloud_budget_usd: 1.0,
            classification: ClassificationMode::Standard,
            forecast: ForecastMode::Model,
            switch_period_secs: None,
            cost_model: CostModel::default(),
            seed: 1234,
            record_trace: false,
            detect_drift: false,
            finetune_forecaster: false,
        }
    }
}

/// Outcome of an ingestion run.
#[derive(Debug, Clone)]
pub struct IngestOutcome {
    /// Full trace (empty unless `record_trace`).
    pub trace: Trace,
    /// Mean ground-truth quality across segments (0–1).
    pub mean_quality: f64,
    /// Total on-premise work performed, core-seconds.
    pub work_core_secs: f64,
    /// Cloud dollars spent.
    pub cloud_usd: f64,
    /// Peak buffer fill in bytes.
    pub buffer_peak: f64,
    /// Throughput-guarantee violations (must be 0 for Skyscraper).
    pub overflows: usize,
    /// Knob switches performed.
    pub switches: usize,
    /// Fraction of segments whose category was misclassified w.r.t. the
    /// ground truth.
    pub misclassification_rate: f64,
    /// Times the knob planner ran.
    pub plans: usize,
    /// Segments processed.
    pub segments: usize,
    /// Stream duration covered, seconds.
    pub duration_secs: f64,
    /// Segments at which the drift alarm fired (0 unless `detect_drift`).
    pub drift_alarms: usize,
}

impl IngestOutcome {
    /// Work rate in core-seconds per second of video.
    pub fn work_rate(&self) -> f64 {
        if self.duration_secs > 0.0 {
            self.work_core_secs / self.duration_secs
        } else {
            0.0
        }
    }
}

/// The ingestion driver.
pub struct IngestDriver<'a, W: Workload + ?Sized> {
    model: &'a FittedModel,
    workload: &'a W,
    options: IngestOptions,
}

impl<'a, W: Workload + ?Sized> IngestDriver<'a, W> {
    /// Create a driver for a fitted model.
    pub fn new(model: &'a FittedModel, workload: &'a W, options: IngestOptions) -> Self {
        Self {
            model,
            workload,
            options,
        }
    }

    /// Ingest a pre-materialized stream of segments.
    pub fn run(&self, segments: &[Segment]) -> Result<IngestOutcome, SkyError> {
        let model = self.model;
        let opts = &self.options;
        let seg_len = model.seg_len;
        let n_c = model.n_categories();
        let mut rng = StdRng::seed_from_u64(opts.seed);

        let capacity_per_seg = model.hardware.cluster.throughput() * seg_len;
        let seg_bytes_est = segments.iter().take(100).map(|s| s.bytes).sum::<f64>()
            / segments.len().clamp(1, 100) as f64;
        let seg_bytes_max = segments
            .iter()
            .map(|s| s.bytes)
            .fold(seg_bytes_est, f64::max);
        let buffer_capacity = if opts.enable_buffering {
            model.hardware.buffer_bytes
        } else {
            // Without buffering only frame-level pipelining slack remains.
            3.0 * seg_bytes_max
        };
        // The byte reserve uses the worst-case segment size: accepting work
        // against today's calm byte rate must still be safe when a stream
        // spike multiplies arrivals while the backlog drains (MOSEI-LONG).
        let limits = SwitcherLimits {
            buffer_capacity,
            seg_bytes_reserve: seg_bytes_max,
            capacity_per_seg,
            safety: model.hyper.runtime_safety,
            cloud_enabled: opts.enable_cloud,
        };

        // Budget for the LP: on-premise capacity plus converted cloud
        // credits, in core-seconds per segment (footnote 4).
        let interval_secs = model.hyper.planned_interval_secs;
        let segs_per_interval = (interval_secs / seg_len).max(1.0);
        let cloud_core_secs = if opts.enable_cloud {
            opts.cost_model
                .cloud_usd_to_core_secs(opts.cloud_budget_usd)
        } else {
            0.0
        };
        let budget_per_seg = capacity_per_seg + cloud_core_secs / segs_per_interval;

        // Ground-truth categories (for accuracy stats and oracle modes).
        let gt_categories: Vec<usize> = segments
            .iter()
            .map(|s| model.ground_truth_category(self.workload, &s.content))
            .collect();

        let mut planner = KnobPlanner::new();
        let mut history: Vec<usize> = model.tail.categories.clone();
        let forecast_r = |history: &[usize], start_seg: usize| -> Vec<f64> {
            match opts.forecast {
                ForecastMode::Model => {
                    let tl = CategoryTimeline::new(history.to_vec(), seg_len, n_c);
                    model.forecaster.forecast(&tl)
                }
                ForecastMode::GroundTruth => {
                    let end = (start_seg + segs_per_interval as usize).min(segments.len());
                    let window =
                        &gt_categories[start_seg..end.max(start_seg + 1).min(segments.len())];
                    let mut r = vec![0.0; n_c];
                    for &c in window {
                        r[c] += 1.0;
                    }
                    let s: f64 = r.iter().sum();
                    if s > 0.0 {
                        r.iter_mut().for_each(|v| *v /= s);
                    }
                    r
                }
                ForecastMode::Uniform => vec![1.0 / n_c as f64; n_c],
            }
        };

        // Optional online machinery: drift detection (App. E.2) and
        // forecaster fine-tuning (§3.3) on a driver-local copy.
        let mut drift = opts
            .detect_drift
            .then(|| crate::online::drift::DriftDetector::for_model(model));
        let mut drift_alarms = 0usize;
        let mut tuned_forecaster = opts.finetune_forecaster.then(|| model.forecaster.clone());

        let r0 = forecast_r(&history, 0);
        let plan0 = planner.plan(model, &r0, budget_per_seg)?;
        let mut switcher = KnobSwitcher::new(model, plan0);
        let mut plans = 1usize;

        let switch_period = opts
            .switch_period_secs
            .unwrap_or(model.hyper.switch_period_secs)
            .max(seg_len);
        let switch_every = (switch_period / seg_len).round().max(1.0) as usize;

        let mut backlog = Backlog::new();
        let mut cloud_left = opts.cloud_budget_usd;
        let mut cloud_spent_total = 0.0;
        let mut work_total = 0.0;
        let mut quality_total = 0.0;
        let mut buffer_peak = 0.0f64;
        let mut overflows = 0usize;
        let mut misclassified = 0usize;
        let mut trace = Trace::new();
        let mut last_reported: Option<f64> = None;
        let mut decision = None;
        let mut prev_config = usize::MAX;
        let mut switches = 0usize;

        for (i, seg) in segments.iter().enumerate() {
            // ---- Replanning at interval boundaries. ----
            if i > 0 && (i % segs_per_interval as usize) == 0 {
                let tail_len = history
                    .len()
                    .min((model.hyper.forecast_input_secs / seg_len).round() as usize);
                let recent = &history[history.len() - tail_len..];
                let r = match (&mut tuned_forecaster, opts.forecast) {
                    (Some(f), ForecastMode::Model) => {
                        // §3.3: fine-tune on the recently observed categories
                        // before forecasting from them.
                        let observed = CategoryTimeline::new(history.clone(), seg_len, n_c);
                        let _ = f.fine_tune(&observed, 3, opts.seed ^ i as u64);
                        let tl = CategoryTimeline::new(recent.to_vec(), seg_len, n_c);
                        f.forecast(&tl)
                    }
                    _ => forecast_r(recent, i),
                };
                let plan: KnobPlan = planner.plan(model, &r, budget_per_seg)?;
                switcher.set_plan(plan);
                cloud_left = opts.cloud_budget_usd;
                plans += 1;
            }

            // ---- Classification (§5.6 modes). ----
            let category = match opts.classification {
                ClassificationMode::Standard => match last_reported {
                    Some(q) => switcher.classify(model, q),
                    None => gt_categories[i], // first segment: no observation yet
                },
                ClassificationMode::NoTypeB => {
                    let cur = switcher.current_config();
                    let q = self.workload.reported_quality(
                        &model.configs[cur].config,
                        &seg.content,
                        &mut rng,
                    );
                    switcher.classify(model, q)
                }
                ClassificationMode::GroundTruth => gt_categories[i],
            };
            if category != gt_categories[i] {
                misclassified += 1;
            }

            // ---- Knob switching. ----
            let seg_limits = limits;
            let need_decision = decision.is_none() || i % switch_every == 0 || {
                // Re-decide early when the held decision is no longer
                // affordable or the buffer projection got tight.
                let d: &crate::online::switcher::Decision =
                    decision.as_ref().expect("checked above");
                let p = &model.configs[d.config].placements[d.placement];
                let drain_segs = (backlog.work() + p.onprem_work_max * seg_limits.safety)
                    / capacity_per_seg.max(1e-9);
                p.cloud_usd > cloud_left
                    || backlog.bytes() + (drain_segs + 1.0) * seg_limits.seg_bytes_reserve
                        > buffer_capacity
            };
            if need_decision {
                decision = Some(switcher.decide(
                    model,
                    category,
                    backlog.bytes(),
                    backlog.work(),
                    cloud_left,
                    &seg_limits,
                ));
            }
            let d = decision.expect("decision just ensured");
            if d.config != prev_config {
                switches += usize::from(prev_config != usize::MAX);
                prev_config = d.config;
            }

            // ---- Execute the segment on the simulator. ----
            let profile = &model.configs[d.config];
            let graph = self.workload.task_graph(&profile.config, &seg.content);
            let placement = &profile.placements[d.placement].placement;
            let result = simulate(
                &graph,
                placement,
                &model.hardware.cluster,
                &model.hardware.cloud,
            );
            cloud_left -= result.cloud_usd;
            cloud_spent_total += result.cloud_usd;
            work_total += result.onprem_busy_secs + result.cloud_busy_secs;

            // ---- Buffer / backlog settlement (Eq. 1). ----
            backlog.push(seg.bytes, result.onprem_busy_secs);
            let _freed = backlog.process(capacity_per_seg);
            let buffered = backlog.bytes();
            buffer_peak = buffer_peak.max(buffered);
            if buffered > buffer_capacity + seg_bytes_max {
                overflows += 1;
            }

            // ---- Quality bookkeeping. ----
            let true_q = self.workload.true_quality(&profile.config, &seg.content);
            quality_total += true_q;
            let reported = self
                .workload
                .reported_quality(&profile.config, &seg.content, &mut rng);
            if let Some(det) = drift.as_mut() {
                if det.observe(&model.categories, d.config, reported) {
                    drift_alarms += 1;
                }
            }
            last_reported = Some(reported);
            history.push(category);

            if opts.record_trace {
                trace.push(TracePoint {
                    t_secs: seg.start().as_secs(),
                    quality: true_q,
                    work_rate: (result.onprem_busy_secs + result.cloud_busy_secs) / seg_len,
                    buffer_bytes: buffered,
                    cloud_usd: cloud_spent_total,
                    config: d.config,
                    category,
                });
            }
        }

        let n = segments.len().max(1);
        Ok(IngestOutcome {
            trace,
            mean_quality: quality_total / n as f64,
            work_core_secs: work_total,
            cloud_usd: cloud_spent_total,
            buffer_peak,
            overflows,
            switches,
            misclassification_rate: misclassified as f64 / n as f64,
            plans,
            segments: segments.len(),
            duration_secs: segments.len() as f64 * seg_len,
            drift_alarms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SkyscraperConfig;
    use crate::offline::run_offline;
    use crate::testkit::ToyWorkload;
    use vetl_sim::HardwareSpec;
    use vetl_video::{ContentParams, Recording, SyntheticCamera};

    fn setup(cores: usize) -> (ToyWorkload, FittedModel, Vec<Segment>) {
        let w = ToyWorkload::new();
        let mut cam = SyntheticCamera::new(ContentParams::traffic_intersection(3), 2.0);
        let labeled = Recording::record(&mut cam, 20.0 * 60.0);
        let unlabeled = Recording::record(&mut cam, 2.0 * 86_400.0);
        let (model, _) = run_offline(
            &w,
            &labeled,
            &unlabeled,
            HardwareSpec::with_cores(cores),
            &SkyscraperConfig::fast_test(),
        )
        .unwrap();
        let online = Recording::record(&mut cam, 12.0 * 3_600.0);
        (w, model, online.segments().to_vec())
    }

    #[test]
    fn ingest_never_violates_the_throughput_guarantee() {
        let (w, model, segments) = setup(2);
        let driver = IngestDriver::new(&model, &w, IngestOptions::default());
        let out = driver.run(&segments).unwrap();
        assert_eq!(out.overflows, 0, "Eq. 1 must hold");
        assert!(out.buffer_peak <= model.hardware.buffer_bytes + 1e6);
        assert_eq!(out.segments, segments.len());
    }

    #[test]
    fn more_cores_buy_more_quality() {
        let (w2, m2, segs2) = setup(1);
        let small = IngestDriver::new(&m2, &w2, IngestOptions::default())
            .run(&segs2)
            .unwrap();
        let (w8, m8, segs8) = setup(8);
        let large = IngestDriver::new(&m8, &w8, IngestOptions::default())
            .run(&segs8)
            .unwrap();
        assert!(
            large.mean_quality >= small.mean_quality,
            "8 cores ({}) must not lose to 1 core ({})",
            large.mean_quality,
            small.mean_quality
        );
    }

    #[test]
    fn skyscraper_beats_always_cheapest_quality() {
        let (w, model, segments) = setup(2);
        let out = IngestDriver::new(&model, &w, IngestOptions::default())
            .run(&segments)
            .unwrap();
        // Quality of always-cheapest:
        let cheap = &model.configs[model.cheapest()].config;
        let cheap_q: f64 = segments
            .iter()
            .map(|s| w.true_quality(cheap, &s.content))
            .sum::<f64>()
            / segments.len() as f64;
        assert!(
            out.mean_quality > cheap_q + 0.02,
            "adaptive ({}) must beat always-cheapest ({})",
            out.mean_quality,
            cheap_q
        );
    }

    #[test]
    fn disabling_cloud_spends_nothing() {
        let (w, model, segments) = setup(2);
        let opts = IngestOptions {
            enable_cloud: false,
            ..Default::default()
        };
        let out = IngestDriver::new(&model, &w, opts).run(&segments).unwrap();
        assert_eq!(out.cloud_usd, 0.0);
        assert_eq!(out.overflows, 0);
    }

    #[test]
    fn cloud_spending_respects_budget() {
        let (w, model, segments) = setup(1);
        let budget = 0.05;
        let opts = IngestOptions {
            cloud_budget_usd: budget,
            ..Default::default()
        };
        let out = IngestDriver::new(&model, &w, opts).run(&segments).unwrap();
        // Budget is per planned interval; the run covers at most 3 intervals
        // under the fast-test config (4 h each).
        let intervals = (out.duration_secs / model.hyper.planned_interval_secs)
            .ceil()
            .max(1.0);
        assert!(
            out.cloud_usd <= budget * intervals + 1e-9,
            "spent {} over {} intervals of {}",
            out.cloud_usd,
            intervals,
            budget
        );
    }

    #[test]
    fn ground_truth_classification_beats_standard() {
        let (w, model, segments) = setup(2);
        let std_out = IngestDriver::new(&model, &w, IngestOptions::default())
            .run(&segments)
            .unwrap();
        let gt_opts = IngestOptions {
            classification: ClassificationMode::GroundTruth,
            ..Default::default()
        };
        let gt_out = IngestDriver::new(&model, &w, gt_opts)
            .run(&segments)
            .unwrap();
        assert_eq!(gt_out.misclassification_rate, 0.0);
        assert!(std_out.misclassification_rate >= 0.0);
        assert!(gt_out.mean_quality >= std_out.mean_quality - 0.02);
    }

    #[test]
    fn trace_is_recorded_on_request() {
        let (w, model, segments) = setup(2);
        let opts = IngestOptions {
            record_trace: true,
            ..Default::default()
        };
        let out = IngestDriver::new(&model, &w, opts)
            .run(&segments[..1000])
            .unwrap();
        assert_eq!(out.trace.len(), 1000);
        assert!(out.trace.mean_quality() > 0.0);
    }

    #[test]
    fn drift_detector_stays_quiet_on_stationary_content() {
        let (w, model, segments) = setup(2);
        let opts = IngestOptions {
            detect_drift: true,
            ..Default::default()
        };
        let out = IngestDriver::new(&model, &w, opts)
            .run(&segments[..5000])
            .unwrap();
        // The online stream is drawn from the same process the model was
        // fitted on: the alarm must fire on at most a sliver of segments.
        assert!(
            (out.drift_alarms as f64) < 0.02 * 5000.0,
            "{} drift alarms on stationary content",
            out.drift_alarms
        );
    }

    #[test]
    fn finetuned_forecaster_keeps_guarantees_and_quality() {
        let (w, model, segments) = setup(2);
        let base = IngestDriver::new(&model, &w, IngestOptions::default())
            .run(&segments)
            .unwrap();
        let opts = IngestOptions {
            finetune_forecaster: true,
            ..Default::default()
        };
        let tuned = IngestDriver::new(&model, &w, opts).run(&segments).unwrap();
        assert_eq!(tuned.overflows, 0);
        assert!(
            tuned.mean_quality > base.mean_quality - 0.05,
            "fine-tuning must not collapse quality: {} vs {}",
            tuned.mean_quality,
            base.mean_quality
        );
    }

    #[test]
    fn uniform_forecast_does_not_crash_and_is_reasonable() {
        let (w, model, segments) = setup(2);
        let opts = IngestOptions {
            forecast: ForecastMode::Uniform,
            ..Default::default()
        };
        let out = IngestDriver::new(&model, &w, opts).run(&segments).unwrap();
        assert!(out.mean_quality > 0.3);
        assert_eq!(out.overflows, 0);
    }
}
