//! Session-based streaming ingestion (§4, Appendix F, Appendix N.2).
//!
//! The paper's online phase is inherently incremental — `sky.process(frame,
//! state)` is called per arrival with explicit carried state. This module
//! models exactly that: an [`IngestSession`] owns all per-stream online
//! state (knob switcher, backlog, planner cadence, cloud-credit wallet,
//! drift detector, trace) and is fed one [`Segment`] at a time through
//! [`IngestSession::push`], which returns a [`StepReport`] describing every
//! decision taken for that segment. [`IngestSession::finish`] settles the
//! run into the same [`IngestOutcome`] the batch API reports.
//!
//! Per segment the session classifies the content category, lets the knob
//! switcher pick a configuration and placement, "executes" the resulting
//! task graph on the Appendix-M simulator, and settles the buffer/backlog
//! and cloud-credit accounting. Every planned interval it re-runs the knob
//! planner on a fresh forecast (unless the session is driven by an external
//! planner, e.g. the [`crate::multistream::MultiStreamServer`] joint LP).
//!
//! The session exposes the feature gates the evaluation needs: buffering
//! and cloud bursting can be disabled independently (§5.4 ablation), the
//! classifier can be switched between *Standard*, *No-Type-B* and *Ground
//! truth* (§5.6, Fig. 15), and the forecast can come from the model, from
//! the ground truth, or be uniform (Fig. 14).
//!
//! ## Batch compatibility
//!
//! [`IngestSession::batch`] is the one-shot loop over a pre-materialized
//! stream. It pins the stream's byte statistics ([`StreamStats`]) and the
//! ground-truth category feed upfront — the two quantities the legacy batch
//! driver derived from the whole slice — so a hand-rolled `push` loop over
//! the same segments with the same pins produces a bitwise-identical
//! outcome (regression- and property-tested). A live session without pins
//! tracks both quantities incrementally and stays conservative instead of
//! clairvoyant; the throughput guarantee (Eq. 1) holds either way.
//!
//! ## Checkpoint / resume
//!
//! [`IngestSession::checkpoint`] snapshots the entire carried state
//! (including the RNG) into an owned [`SessionCheckpoint`];
//! [`IngestSession::resume`] re-attaches it to the fitted model and
//! workload. A resumed session continues bit-for-bit where the checkpoint
//! was taken.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use vetl_sim::{simulate_into, Backlog, CostModel, SimScratch, TaskGraph, Trace, TracePoint};
use vetl_video::Segment;

use crate::dedupe::{self, DedupCache, DedupEntry, DedupKey, DedupPolicy, DedupStats};
use crate::error::SkyError;
use crate::fingerprint::Fnv;
use crate::offline::codec::{self, dec_opt, enc_opt, Dec, DecodeResult, Enc};
use crate::offline::forecast::{CategoryTimeline, Forecaster};
use crate::offline::FittedModel;
use crate::online::drift::DriftDetector;
use crate::online::plan::KnobPlan;
use crate::online::planner::KnobPlanner;
use crate::online::switcher::{Decision, KnobSwitcher, SwitcherLimits};
use crate::workload::Workload;

/// How the current content category is determined (§5.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClassificationMode {
    /// Eq. 5 on the *previous* segment's reported quality (production mode;
    /// subject to Type-A and Type-B errors).
    #[default]
    Standard,
    /// Eq. 5 on the *current* segment's quality under the current
    /// configuration — eliminates the timing mismatch (Type-B) and leaves
    /// only Type-A errors (Fig. 15's "No Type-B errors" baseline).
    NoTypeB,
    /// Oracle: the ground-truth category (Fig. 15's "Ground truth").
    GroundTruth,
}

/// Where the planner's forecast comes from (Fig. 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ForecastMode {
    /// The trained forecasting model (production mode).
    #[default]
    Model,
    /// Oracle: the actual category distribution of the upcoming interval.
    /// Requires a ground-truth feed ([`IngestSession::pin_ground_truth`],
    /// installed automatically by [`IngestSession::batch`]); a live session
    /// without one degrades to the trailing observed window.
    GroundTruth,
    /// A uniform distribution (ablation lower bound).
    Uniform,
}

/// Options for one ingestion session.
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// Allow setting video aside in the buffer (§5.4 gate 1b/1d).
    pub enable_buffering: bool,
    /// Allow cloud placements (§5.4 gate 1c/1d).
    pub enable_cloud: bool,
    /// Cloud credits granted per planned interval, dollars.
    pub cloud_budget_usd: f64,
    /// Category classification mode.
    pub classification: ClassificationMode,
    /// Forecast source.
    pub forecast: ForecastMode,
    /// Knob-switcher period in seconds (defaults to the fitted
    /// hyperparameter; clamped to ≥ one segment).
    pub switch_period_secs: Option<f64>,
    /// Cost conversions.
    pub cost_model: CostModel,
    /// RNG seed for reported-quality noise.
    pub seed: u64,
    /// Record a full trace (Fig. 3); summaries are always computed.
    pub record_trace: bool,
    /// Run the Appendix-E.2 drift detector over classification residuals.
    pub detect_drift: bool,
    /// Fine-tune the forecaster online at every replanning point (§3.3).
    pub finetune_forecaster: bool,
    /// Consult the cross-stream dedup cache before extraction
    /// ([`crate::dedupe`]). Exact mode (`tolerance == 0`) is bitwise
    /// invisible; tolerant mode short-circuits near-duplicates at zero
    /// charged cost. `None` disables dedup entirely.
    pub dedup: Option<DedupPolicy>,
    /// Out-of-order tolerance for the arrival path
    /// ([`IngestSession::push_arrival`] and the runtime's ingest front
    /// door): up to this many segments are held awaiting a gap before the
    /// watermark is forced past it (the skipped indices are declared lost,
    /// never silently dropped). Arrivals behind the watermark are rejected
    /// with typed [`SkyError::LateSegment`].
    /// `None` disables the gate entirely: every arrival is processed as-is
    /// and in-order runs are bitwise unchanged. `Some(w)` on in-order
    /// input is also bitwise identical to `None` — the gate only acts on
    /// actual reordering.
    pub reorder_window: Option<usize>,
}

impl Default for IngestOptions {
    fn default() -> Self {
        Self {
            enable_buffering: true,
            enable_cloud: true,
            cloud_budget_usd: 1.0,
            classification: ClassificationMode::Standard,
            forecast: ForecastMode::Model,
            switch_period_secs: None,
            cost_model: CostModel::default(),
            seed: 1234,
            record_trace: false,
            detect_drift: false,
            finetune_forecaster: false,
            dedup: None,
            reorder_window: None,
        }
    }
}

/// Outcome of an ingestion run.
#[derive(Debug, Clone, Default)]
pub struct IngestOutcome {
    /// Full trace (empty unless `record_trace`).
    pub trace: Trace,
    /// Mean ground-truth quality across segments (0–1).
    pub mean_quality: f64,
    /// Total on-premise work performed, core-seconds.
    pub work_core_secs: f64,
    /// Cloud dollars spent.
    pub cloud_usd: f64,
    /// Peak buffer fill in bytes.
    pub buffer_peak: f64,
    /// Throughput-guarantee violations (must be 0 for Skyscraper).
    pub overflows: usize,
    /// Knob switches performed.
    pub switches: usize,
    /// Fraction of segments whose category was misclassified w.r.t. the
    /// ground truth.
    pub misclassification_rate: f64,
    /// Times the knob planner ran.
    pub plans: usize,
    /// Segments processed.
    pub segments: usize,
    /// Stream duration covered, seconds.
    pub duration_secs: f64,
    /// Segments at which the drift alarm fired (0 unless `detect_drift`).
    pub drift_alarms: usize,
    /// Dedup counters (all zero unless [`IngestOptions::dedup`] was set).
    pub dedup: DedupStats,
}

impl IngestOutcome {
    /// Work rate in core-seconds per second of video.
    pub fn work_rate(&self) -> f64 {
        if self.duration_secs > 0.0 {
            self.work_core_secs / self.duration_secs
        } else {
            0.0
        }
    }
}

/// Byte-size statistics of a stream, used to size the buffer reserve.
///
/// The switcher's overflow projection keeps one worst-case segment of bytes
/// free per segment of backlog drain; the batch path measures that
/// worst case over the whole recording upfront, while a live session grows
/// it as segments arrive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamStats {
    /// Mean segment size over (up to) the first 100 segments, bytes.
    pub seg_bytes_mean: f64,
    /// Worst-case segment size, bytes (floored at the mean).
    pub seg_bytes_max: f64,
}

impl StreamStats {
    /// Measure a pre-materialized stream — the exact statistics the batch
    /// ingestion path pins at the start of a run.
    pub fn from_segments(segments: &[Segment]) -> Self {
        let seg_bytes_mean = segments.iter().take(100).map(|s| s.bytes).sum::<f64>()
            / segments.len().clamp(1, 100) as f64;
        let seg_bytes_max = segments
            .iter()
            .map(|s| s.bytes)
            .fold(seg_bytes_mean, f64::max);
        Self {
            seg_bytes_mean,
            seg_bytes_max,
        }
    }
}

/// How the session learns the stream's byte statistics.
#[derive(Debug, Clone)]
enum ByteStats {
    /// Pinned upfront (batch path / caller-provided prior).
    Pinned(StreamStats),
    /// Grown incrementally from arrivals (live session).
    Running { sum: f64, count: usize, max: f64 },
}

impl ByteStats {
    fn observe(&mut self, bytes: f64) {
        if let ByteStats::Running { sum, count, max } = self {
            if *count < 100 {
                *sum += bytes;
                *count += 1;
            }
            *max = max.max(bytes);
        }
    }

    fn current(&self) -> StreamStats {
        match self {
            ByteStats::Pinned(s) => *s,
            ByteStats::Running { sum, count, max } => {
                let mean = sum / (*count).max(1) as f64;
                StreamStats {
                    seg_bytes_mean: mean,
                    seg_bytes_max: max.max(mean),
                }
            }
        }
    }
}

/// Everything the session decided and observed for one pushed segment.
#[derive(Debug, Clone, Copy)]
pub struct StepReport {
    /// 0-based index of the segment within the session.
    pub seg_index: usize,
    /// Segment start time, stream seconds.
    pub t_secs: f64,
    /// Content category the decision was made for.
    pub category: usize,
    /// Chosen configuration index.
    pub config: usize,
    /// Chosen placement index within the configuration's Pareto set.
    pub placement: usize,
    /// The buffer/budget checks forced a deviation from the plan.
    pub deviated: bool,
    /// The configuration changed relative to the previous segment.
    pub switched: bool,
    /// The knob planner ran before this segment.
    pub replanned: bool,
    /// Buffer fill after settling this segment, bytes.
    pub buffer_bytes: f64,
    /// Outstanding backlog work after settling, core-seconds.
    pub backlog_work: f64,
    /// Cloud dollars spent on this segment.
    pub cloud_usd_step: f64,
    /// Cloud credits remaining in the wallet.
    pub cloud_credits_left: f64,
    /// Work performed for this segment (on-premise + cloud), core-seconds.
    pub work_core_secs: f64,
    /// The quality metric the workload reported for this segment.
    pub reported_quality: f64,
    /// This segment violated the throughput guarantee (Eq. 1).
    pub overflowed: bool,
    /// The drift detector fired on this segment.
    pub drift_alarm: bool,
}

/// An owned snapshot of a session's carried state (plus the options it ran
/// under). Produced by [`IngestSession::checkpoint`], consumed by
/// [`IngestSession::resume`].
#[derive(Debug, Clone)]
pub struct SessionCheckpoint {
    options: IngestOptions,
    state: SessionState,
}

impl SessionCheckpoint {
    /// Segments the checkpointed session had processed.
    pub fn segments_pushed(&self) -> usize {
        self.state.seg_index
    }

    /// Options the checkpointed session ran under.
    pub fn options(&self) -> &IngestOptions {
        &self.options
    }

    /// Serialize the whole carried state (RNG words included) with the
    /// knowledge-base codec. `decode(encode(c))` rebuilds a checkpoint whose
    /// resumed session continues bit-for-bit — the primitive behind the
    /// runtime WAL's durable snapshots.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        enc_options(&mut e, &self.options);
        enc_state(&mut e, &self.state);
        e.into_bytes()
    }

    /// Decode a checkpoint serialized with [`encode`](Self::encode).
    /// Structural corruption degrades into a decode error, never a panic;
    /// model-dependent invariants are checked by
    /// [`validate_against`](Self::validate_against).
    pub fn decode(bytes: &[u8]) -> DecodeResult<Self> {
        let mut d = Dec::new(bytes);
        let options = dec_options(&mut d)?;
        let state = dec_state(&mut d)?;
        codec::expect_finished(&d, "session checkpoint")?;
        Ok(Self { options, state })
    }

    /// Cross-check the decoded state against the model it will resume on:
    /// category/config indices in bounds, plan shapes matching. A
    /// checksum-valid but crafted snapshot must fail here instead of
    /// panicking mid-push.
    pub fn validate_against(&self, model: &crate::offline::FittedModel) -> DecodeResult<()> {
        let n_c = model.n_categories();
        let n_k = model.n_configs();
        let s = &self.state;
        if s.history.iter().chain(&s.gt_history).any(|&c| c >= n_c)
            || s.gt_feed
                .as_ref()
                .is_some_and(|f| f.iter().any(|&c| c >= n_c))
        {
            return Err("checkpoint category history out of range".into());
        }
        if let Some(sw) = &s.switcher {
            let (plan, _, _) = sw.parts();
            if plan.n_categories() != n_c || plan.n_configs() != n_k {
                return Err("checkpoint plan shape does not match the model".into());
            }
        }
        if let Some(d) = &s.decision {
            if d.config >= n_k
                || d.category >= n_c
                || d.placement >= model.configs[d.config].placements.len()
            {
                return Err("checkpoint decision out of range".into());
            }
        }
        if s.prev_config != usize::MAX && s.prev_config >= n_k {
            return Err("checkpoint prev_config out of range".into());
        }
        if let Some(f) = &s.tuned_forecaster {
            if f.n_categories() != n_c {
                return Err("checkpoint forecaster category count mismatch".into());
            }
        }
        let entry_in_range = |e: &crate::dedupe::DedupEntry| {
            e.gt_category < n_c
                && e.config < n_k
                && e.placement < model.configs[e.config].placements.len()
        };
        if !s.dedup_pending.iter().all(|(_, e)| entry_in_range(e))
            || !s
                .dedup_own
                .as_ref()
                .is_none_or(|c| c.sorted_entries().iter().all(|(_, e)| entry_in_range(e)))
        {
            return Err("checkpoint dedup entry out of range".into());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Checkpoint codec (little-endian, floats as raw bits — the same format
// discipline as the knowledge base, so snapshots survive bitwise).
// ---------------------------------------------------------------------

pub(crate) fn enc_trace(e: &mut Enc, t: &Trace) {
    e.usize(t.len());
    for p in t.points() {
        e.f64(p.t_secs);
        e.f64(p.quality);
        e.f64(p.work_rate);
        e.f64(p.buffer_bytes);
        e.f64(p.cloud_usd);
        e.usize(p.config);
        e.usize(p.category);
    }
}

pub(crate) fn dec_trace(d: &mut Dec) -> DecodeResult<Trace> {
    let n = d.len(7 * 8, "trace points")?;
    let mut trace = Trace::new();
    let mut prev_t = f64::NEG_INFINITY;
    for _ in 0..n {
        let p = TracePoint {
            t_secs: d.f64("trace t_secs")?,
            quality: d.f64("trace quality")?,
            work_rate: d.f64("trace work_rate")?,
            buffer_bytes: d.f64("trace buffer_bytes")?,
            cloud_usd: d.f64("trace cloud_usd")?,
            config: d.usize("trace config")?,
            category: d.usize("trace category")?,
        };
        // Trace::push debug-asserts time order; a crafted snapshot must
        // fail typed here instead.
        if p.t_secs.is_nan() || p.t_secs < prev_t {
            return Err("trace points out of time order".into());
        }
        prev_t = p.t_secs;
        trace.push(p);
    }
    Ok(trace)
}

pub(crate) fn enc_outcome(e: &mut Enc, o: &IngestOutcome) {
    enc_trace(e, &o.trace);
    e.f64(o.mean_quality);
    e.f64(o.work_core_secs);
    e.f64(o.cloud_usd);
    e.f64(o.buffer_peak);
    e.usize(o.overflows);
    e.usize(o.switches);
    e.f64(o.misclassification_rate);
    e.usize(o.plans);
    e.usize(o.segments);
    e.f64(o.duration_secs);
    e.usize(o.drift_alarms);
    dedupe::enc_stats(e, &o.dedup);
}

pub(crate) fn dec_outcome(d: &mut Dec) -> DecodeResult<IngestOutcome> {
    Ok(IngestOutcome {
        trace: dec_trace(d)?,
        mean_quality: d.f64("outcome mean_quality")?,
        work_core_secs: d.f64("outcome work_core_secs")?,
        cloud_usd: d.f64("outcome cloud_usd")?,
        buffer_peak: d.f64("outcome buffer_peak")?,
        overflows: d.usize("outcome overflows")?,
        switches: d.usize("outcome switches")?,
        misclassification_rate: d.f64("outcome misclassification_rate")?,
        plans: d.usize("outcome plans")?,
        segments: d.usize("outcome segments")?,
        duration_secs: d.f64("outcome duration_secs")?,
        drift_alarms: d.usize("outcome drift_alarms")?,
        dedup: dedupe::dec_stats(d)?,
    })
}

pub(crate) fn enc_options(e: &mut Enc, o: &IngestOptions) {
    e.bool(o.enable_buffering);
    e.bool(o.enable_cloud);
    e.f64(o.cloud_budget_usd);
    e.u8(match o.classification {
        ClassificationMode::Standard => 0,
        ClassificationMode::NoTypeB => 1,
        ClassificationMode::GroundTruth => 2,
    });
    e.u8(match o.forecast {
        ForecastMode::Model => 0,
        ForecastMode::GroundTruth => 1,
        ForecastMode::Uniform => 2,
    });
    enc_opt(e, &o.switch_period_secs, |e, v| e.f64(*v));
    e.f64(o.cost_model.onprem_usd_per_core_hour);
    e.f64(o.cost_model.cloud_onprem_ratio);
    e.u64(o.seed);
    e.bool(o.record_trace);
    e.bool(o.detect_drift);
    e.bool(o.finetune_forecaster);
    enc_opt(e, &o.dedup, dedupe::enc_policy);
    enc_opt(e, &o.reorder_window, |e, v| e.usize(*v));
}

pub(crate) fn dec_options(d: &mut Dec) -> DecodeResult<IngestOptions> {
    Ok(IngestOptions {
        enable_buffering: d.bool("options enable_buffering")?,
        enable_cloud: d.bool("options enable_cloud")?,
        cloud_budget_usd: d.f64("options cloud_budget_usd")?,
        classification: match d.u8("options classification")? {
            0 => ClassificationMode::Standard,
            1 => ClassificationMode::NoTypeB,
            2 => ClassificationMode::GroundTruth,
            v => return Err(format!("unknown classification tag {v}")),
        },
        forecast: match d.u8("options forecast")? {
            0 => ForecastMode::Model,
            1 => ForecastMode::GroundTruth,
            2 => ForecastMode::Uniform,
            v => return Err(format!("unknown forecast tag {v}")),
        },
        switch_period_secs: dec_opt(d, "options switch_period", |d| d.f64("switch_period"))?,
        cost_model: CostModel {
            onprem_usd_per_core_hour: d.f64("options onprem_usd_per_core_hour")?,
            cloud_onprem_ratio: d.f64("options cloud_onprem_ratio")?,
        },
        seed: d.u64("options seed")?,
        record_trace: d.bool("options record_trace")?,
        detect_drift: d.bool("options detect_drift")?,
        finetune_forecaster: d.bool("options finetune_forecaster")?,
        dedup: dec_opt(d, "options dedup", dedupe::dec_policy)?,
        reorder_window: dec_opt(d, "options reorder_window", |d| d.usize("reorder_window"))?,
    })
}

fn enc_state(e: &mut Enc, s: &SessionState) {
    for w in s.rng.state_words() {
        e.u64(w);
    }
    e.usize(s.planner.last_stats.n_vars);
    e.usize(s.planner.last_stats.n_constraints);
    e.usize(s.planner.last_stats.pivots);
    // The warm-start basis travels with the checkpoint so a resumed session
    // replans with the same warm/cold history (and therefore the same
    // recorded pivot counts) as the uninterrupted run.
    let basis_words = s.planner.basis.to_words();
    e.usize(basis_words.len());
    for &w in &basis_words {
        e.u64(w);
    }
    enc_opt(e, &s.switcher, |e, sw| {
        let (plan, usage, cur) = sw.parts();
        codec::enc_plan(e, plan);
        e.usize(usage.len());
        for row in usage {
            e.f64s(row);
        }
        e.usize(cur);
    });
    let entries: Vec<(f64, f64)> = s.backlog.entries().collect();
    e.usize(entries.len());
    for (b, w) in &entries {
        e.f64(*b);
        e.f64(*w);
    }
    let (tb, tw) = s.backlog.raw_totals();
    e.f64(tb);
    e.f64(tw);
    e.usizes(&s.history);
    e.usizes(&s.gt_history);
    enc_opt(e, &s.gt_feed, |e, v| e.usizes(v));
    match &s.byte_stats {
        ByteStats::Pinned(st) => {
            e.u8(0);
            e.f64(st.seg_bytes_mean);
            e.f64(st.seg_bytes_max);
        }
        ByteStats::Running { sum, count, max } => {
            e.u8(1);
            e.f64(*sum);
            e.usize(*count);
            e.f64(*max);
        }
    }
    enc_opt(e, &s.drift, |e, det| {
        let (threshold, window, alarm_fraction, history, far_count, alarms) = det.parts();
        e.f64(threshold);
        e.usize(window);
        e.f64(alarm_fraction);
        e.usize(history.len());
        for far in &history {
            e.bool(*far);
        }
        e.usize(far_count);
        e.usize(alarms);
    });
    enc_opt(e, &s.tuned_forecaster, codec::enc_forecaster);
    enc_trace(e, &s.trace);
    enc_opt(e, &s.decision, |e, d| {
        e.usize(d.config);
        e.usize(d.placement);
        e.usize(d.category);
        e.bool(d.deviated);
    });
    enc_opt(e, &s.last_reported, |e, v| e.f64(*v));
    e.u64(s.prev_config as u64);
    e.usize(s.seg_index);
    e.f64(s.cloud_left);
    e.f64(s.cloud_spent_total);
    e.f64(s.work_total);
    e.f64(s.quality_total);
    e.f64(s.buffer_peak);
    e.usize(s.overflows);
    e.usize(s.misclassified);
    e.usize(s.switches);
    e.usize(s.plans);
    e.usize(s.drift_alarms);
    e.bool(s.external_planning);
    enc_opt(e, &s.capacity_override, |e, v| e.f64(*v));
    dedupe::enc_pending(e, &s.dedup_pending);
    dedupe::enc_stats(e, &s.dedup_stats);
    enc_opt(e, &s.dedup_own, |e, c| dedupe::enc_cache(e, c));
    enc_opt(e, &s.gate, enc_reorder_gate);
}

fn dec_state(d: &mut Dec) -> DecodeResult<SessionState> {
    let mut words = [0u64; 4];
    for w in &mut words {
        *w = d.u64("state rng word")?;
    }
    let rng = StdRng::from_state_words(words);
    let last_stats = crate::online::planner::PlannerStats {
        n_vars: d.usize("state planner n_vars")?,
        n_constraints: d.usize("state planner n_constraints")?,
        pivots: d.usize("state planner pivots")?,
    };
    let n_basis_words = d.len(8, "state planner basis words")?;
    let basis_words = (0..n_basis_words)
        .map(|_| d.u64("state planner basis word"))
        .collect::<DecodeResult<Vec<u64>>>()?;
    let basis = vetl_lp::LpBasis::from_words(&basis_words)
        .ok_or_else(|| "malformed planner basis".to_string())?;
    let planner = KnobPlanner { last_stats, basis };
    let switcher = dec_opt(d, "state switcher", |d| {
        let plan = codec::dec_plan(d)?;
        let n = d.len(8, "state usage rows")?;
        let usage = (0..n)
            .map(|_| d.f64s("state usage row"))
            .collect::<DecodeResult<Vec<_>>>()?;
        let cur = d.usize("state cur_config")?;
        KnobSwitcher::from_parts(plan, usage, cur)
            .ok_or_else(|| "inconsistent switcher snapshot".to_string())
    })?;
    let n = d.len(16, "state backlog entries")?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let bytes = d.f64("state backlog bytes")?;
        let work = d.f64("state backlog work")?;
        if !(bytes >= 0.0 && work >= 0.0) {
            return Err("negative or NaN backlog entry".into());
        }
        entries.push((bytes, work));
    }
    let raw_totals = (
        d.f64("state backlog total_bytes")?,
        d.f64("state backlog total_work")?,
    );
    let backlog = Backlog::from_parts(entries, raw_totals);
    let history = d.usizes("state history")?;
    let gt_history = d.usizes("state gt_history")?;
    let gt_feed = dec_opt(d, "state gt_feed", |d| d.usizes("state gt_feed"))?;
    let byte_stats = match d.u8("state byte_stats tag")? {
        0 => ByteStats::Pinned(StreamStats {
            seg_bytes_mean: d.f64("state seg_bytes_mean")?,
            seg_bytes_max: d.f64("state seg_bytes_max")?,
        }),
        1 => ByteStats::Running {
            sum: d.f64("state bytes sum")?,
            count: d.usize("state bytes count")?,
            max: d.f64("state bytes max")?,
        },
        v => return Err(format!("unknown byte_stats tag {v}")),
    };
    let drift = dec_opt(d, "state drift", |d| {
        let threshold = d.f64("drift threshold")?;
        let window = d.usize("drift window")?;
        let alarm_fraction = d.f64("drift alarm_fraction")?;
        let n = d.len(1, "drift history")?;
        let history = (0..n)
            .map(|_| d.bool("drift far flag"))
            .collect::<DecodeResult<Vec<_>>>()?;
        let far_count = d.usize("drift far_count")?;
        let alarms = d.usize("drift alarms")?;
        DriftDetector::from_parts(
            threshold,
            window,
            alarm_fraction,
            history,
            far_count,
            alarms,
        )
        .ok_or_else(|| "inconsistent drift snapshot".to_string())
    })?;
    let tuned_forecaster = dec_opt(d, "state forecaster", codec::dec_forecaster)?;
    let trace = dec_trace(d)?;
    let decision = dec_opt(d, "state decision", |d| {
        Ok(Decision {
            config: d.usize("decision config")?,
            placement: d.usize("decision placement")?,
            category: d.usize("decision category")?,
            deviated: d.bool("decision deviated")?,
        })
    })?;
    let last_reported = dec_opt(d, "state last_reported", |d| d.f64("last_reported"))?;
    let prev_config = d.u64("state prev_config")? as usize;
    let seg_index = d.usize("state seg_index")?;
    let cloud_left = d.f64("state cloud_left")?;
    let cloud_spent_total = d.f64("state cloud_spent_total")?;
    let work_total = d.f64("state work_total")?;
    let quality_total = d.f64("state quality_total")?;
    let buffer_peak = d.f64("state buffer_peak")?;
    let overflows = d.usize("state overflows")?;
    let misclassified = d.usize("state misclassified")?;
    let switches = d.usize("state switches")?;
    let plans = d.usize("state plans")?;
    let drift_alarms = d.usize("state drift_alarms")?;
    let external_planning = d.bool("state external_planning")?;
    let capacity_override = dec_opt(d, "state capacity_override", |d| d.f64("capacity_override"))?;
    let dedup_pending = dedupe::dec_pending(d)?;
    let dedup_pending_idx = dedup_pending
        .iter()
        .enumerate()
        .map(|(i, (k, _))| (*k, i))
        .collect();
    let dedup_stats = dedupe::dec_stats(d)?;
    let dedup_own = dec_opt(d, "state dedup cache", |d| {
        dedupe::dec_cache(d).map(Box::new)
    })?;
    let gate = dec_opt(d, "state reorder gate", dec_reorder_gate)?;
    Ok(SessionState {
        rng,
        planner,
        switcher,
        backlog,
        history,
        gt_history,
        gt_feed,
        byte_stats,
        drift,
        tuned_forecaster,
        trace,
        decision,
        last_reported,
        prev_config,
        seg_index,
        cloud_left,
        cloud_spent_total,
        work_total,
        quality_total,
        buffer_peak,
        overflows,
        misclassified,
        switches,
        plans,
        drift_alarms,
        external_planning,
        capacity_override,
        dedup_pending,
        dedup_pending_idx,
        dedup_stats,
        dedup_own,
        gate,
    })
}

/// The mutable, checkpointable part of a session.
#[derive(Debug, Clone)]
struct SessionState {
    rng: StdRng,
    planner: KnobPlanner,
    /// `None` until the first plan is computed (lazily on first push) or
    /// installed ([`IngestSession::install_plan`]).
    switcher: Option<KnobSwitcher>,
    backlog: Backlog,
    /// Observed category history, seeded with the offline tail — the
    /// forecaster's input.
    history: Vec<usize>,
    /// Ground-truth category of every processed segment (accuracy stats and
    /// the degraded live ground-truth forecast).
    gt_history: Vec<usize>,
    /// Full ground-truth category feed pinned upfront (oracle modes).
    gt_feed: Option<Vec<usize>>,
    byte_stats: ByteStats,
    drift: Option<DriftDetector>,
    tuned_forecaster: Option<Forecaster>,
    trace: Trace,
    decision: Option<Decision>,
    last_reported: Option<f64>,
    prev_config: usize,
    seg_index: usize,
    cloud_left: f64,
    cloud_spent_total: f64,
    work_total: f64,
    quality_total: f64,
    buffer_peak: f64,
    overflows: usize,
    misclassified: usize,
    switches: usize,
    plans: usize,
    drift_alarms: usize,
    /// Planning is driven externally (multi-stream server): the session
    /// never re-runs its own planner and never refills its own wallet.
    external_planning: bool,
    /// Cluster core-seconds retired per segment interval, when the caller
    /// allocates a share of a cluster (multi-stream fair share) instead of
    /// the model's full provisioning.
    capacity_override: Option<f64>,
    /// Dedup entries recorded since the last publication, in recording
    /// order — visible to this session immediately, merged into the shared
    /// (or own) cache only at an epoch barrier.
    dedup_pending: Vec<(DedupKey, DedupEntry)>,
    /// Key → index into `dedup_pending` (kept in lockstep; rebuilt on
    /// decode) so own-pending lookups stay O(1).
    dedup_pending_idx: HashMap<DedupKey, usize>,
    /// Per-stream dedup counters, settled into the outcome.
    dedup_stats: DedupStats,
    /// Private cache of a standalone (internally planned) session, whose
    /// interval replans are its epoch barriers. Externally planned sessions
    /// leave this `None` — the server/runtime injects its shared cache per
    /// push instead.
    dedup_own: Option<Box<DedupCache>>,
    /// Out-of-order arrival gate ([`IngestOptions::reorder_window`]).
    /// `None` when the window is disabled; lives in the checkpointed state
    /// so held segments and the watermark survive checkpoint/resume.
    gate: Option<ReorderGate>,
}

impl SessionState {
    /// Record (or overwrite, latest-wins) a pending dedup entry.
    fn record_dedup_pending(&mut self, key: DedupKey, entry: DedupEntry) {
        match self.dedup_pending_idx.get(&key) {
            Some(&ix) => self.dedup_pending[ix].1 = entry,
            None => {
                self.dedup_pending_idx.insert(key, self.dedup_pending.len());
                self.dedup_pending.push((key, entry));
            }
        }
    }

    /// Drain the pending list for publication (clears the index too).
    fn take_dedup_pending(&mut self) -> Vec<(DedupKey, DedupEntry)> {
        self.dedup_pending_idx.clear();
        std::mem::take(&mut self.dedup_pending)
    }
}

/// Counters for the out-of-order arrival gate, settled per stream. These
/// describe only *accepted* arrivals (holds and forced-advance losses);
/// late rejections happen before any state change and are deliberately not
/// tracked here — a rejected arrival must leave no trace in checkpointable
/// state, or recovery (which never sees rejected arrivals) would diverge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReorderStats {
    /// Arrivals that were held (arrived ahead of the watermark).
    pub held_events: u64,
    /// Peak number of simultaneously held segments.
    pub held_peak: usize,
    /// Segment indices skipped by forced watermark advances — gaps that
    /// were declared lost when the hold window filled, plus gaps released
    /// at session close.
    pub lost: u64,
}

/// Bounded reorder buffer in front of the ingest path.
///
/// The gate anchors its watermark at the first arrival's index, releases
/// in-order arrivals immediately, holds ahead-of-watermark arrivals (up to
/// `window` of them), and rejects behind-the-watermark arrivals with
/// [`SkyError::LateSegment`] *before* any state changes. When more than
/// `window` segments are held, the watermark is forced past the oldest gap
/// and the skipped indices are counted in [`ReorderStats::lost`] — never a
/// panic, never a silent drop. On in-order input the gate passes every
/// segment straight through and its state stays trivial, which is why
/// enabling a window on a clean link is bitwise identical to disabling it.
#[derive(Debug, Clone)]
struct ReorderGate {
    window: usize,
    /// Next index the downstream pipeline expects. Meaningless until
    /// `anchored`.
    expected: u64,
    anchored: bool,
    /// Held segments, sorted by index, no duplicates. At most
    /// `window` entries after every `admit`.
    held: Vec<Segment>,
    stats: ReorderStats,
}

impl ReorderGate {
    fn new(window: usize) -> Self {
        Self {
            window,
            expected: 0,
            anchored: false,
            held: Vec::new(),
            stats: ReorderStats::default(),
        }
    }

    /// Would this arrival be rejected as late? Pure — safe to call before
    /// journaling. Late means behind the watermark, or a duplicate of a
    /// held index.
    fn check(&self, seg: &Segment) -> Result<(), SkyError> {
        let late = self.anchored
            && (seg.index < self.expected || self.held.iter().any(|h| h.index == seg.index));
        if late {
            return Err(SkyError::LateSegment {
                index: seg.index,
                expected: self.expected,
                window: self.window,
            });
        }
        Ok(())
    }

    /// Admit an arrival that passed [`check`](Self::check) and return the
    /// segments released for processing, in index order.
    fn admit(&mut self, seg: Segment) -> Vec<Segment> {
        if !self.anchored {
            // Anchor lazily at the first arrival so a stream whose numbering
            // starts anywhere (e.g. resumed mid-stream) works unchanged.
            self.anchored = true;
            self.expected = seg.index;
        }
        let mut released = Vec::new();
        if seg.index == self.expected {
            self.expected += 1;
            released.push(seg);
        } else {
            debug_assert!(seg.index > self.expected);
            let at = self.held.partition_point(|h| h.index < seg.index);
            self.held.insert(at, seg);
            self.stats.held_events += 1;
            self.stats.held_peak = self.stats.held_peak.max(self.held.len());
        }
        loop {
            if self.held.first().is_some_and(|h| h.index == self.expected) {
                let h = self.held.remove(0);
                self.expected += 1;
                released.push(h);
            } else if self.held.len() > self.window {
                // Window full: force the watermark past the oldest gap and
                // declare the skipped indices lost.
                let front = self.held.remove(0);
                self.stats.lost += front.index - self.expected;
                self.expected = front.index + 1;
                released.push(front);
            } else {
                break;
            }
        }
        released
    }

    /// Release everything still held, in index order, declaring remaining
    /// gaps lost. Used at close/finish so accepted segments are never
    /// dropped.
    fn drain_all(&mut self) -> Vec<Segment> {
        let mut released = Vec::new();
        for h in std::mem::take(&mut self.held) {
            self.stats.lost += h.index - self.expected;
            self.expected = h.index + 1;
            released.push(h);
        }
        released
    }
}

fn enc_reorder_gate(e: &mut Enc, g: &ReorderGate) {
    e.usize(g.window);
    e.u64(g.expected);
    e.bool(g.anchored);
    e.usize(g.held.len());
    for seg in &g.held {
        crate::runtime::wal::enc_segment(e, seg);
    }
    e.u64(g.stats.held_events);
    e.usize(g.stats.held_peak);
    e.u64(g.stats.lost);
}

fn dec_reorder_gate(d: &mut Dec) -> DecodeResult<ReorderGate> {
    let window = d.usize("gate window")?;
    let expected = d.u64("gate expected")?;
    let anchored = d.bool("gate anchored")?;
    let n = d.len(8, "gate held")?;
    let held = (0..n)
        .map(|_| crate::runtime::wal::dec_segment(d))
        .collect::<DecodeResult<Vec<_>>>()?;
    let stats = ReorderStats {
        held_events: d.u64("gate held_events")?,
        held_peak: d.usize("gate held_peak")?,
        lost: d.u64("gate lost")?,
    };
    Ok(ReorderGate {
        window,
        expected,
        anchored,
        held,
        stats,
    })
}

/// Reusable hot-path buffers. Pure derived data — rebuilt from scratch on
/// resume and deliberately **not** part of [`SessionCheckpoint`] — so the
/// steady per-segment path (task graph, simulator arrays, ground-truth
/// quality vector) never touches the allocator. Dropping or re-priming the
/// scratch never changes a bit of any output.
#[derive(Debug, Clone, Default)]
struct HotScratch {
    /// One cached task graph per knob configuration:
    /// [`Workload::task_graph_into`] overwrites the node costs in place.
    graphs: Vec<TaskGraph>,
    /// Simulator finish/scheduled/core arrays ([`simulate_into`]).
    sim: SimScratch,
    /// Ground-truth quality vector
    /// ([`FittedModel::ground_truth_category_with`]).
    qualities: Vec<f64>,
}

/// A streaming ingestion session over one fitted stream.
///
/// Feed segments as they arrive with [`push`](Self::push), inspect each
/// [`StepReport`], and settle with [`finish`](Self::finish). See the
/// [module docs](self) for the batch-compatibility and checkpoint
/// contracts.
pub struct IngestSession<'a, W: Workload + ?Sized> {
    model: &'a FittedModel,
    workload: &'a W,
    options: IngestOptions,
    state: SessionState,
    scratch: HotScratch,
    /// Dedup key scope (model + workload fingerprint) — derived, computed
    /// once at construction; 0 when dedup is disabled.
    dedup_scope: u64,
    /// Observability attachment, shared with the owning runtime. Like the
    /// [`HotScratch`], this is derived wiring: never checkpointed, never
    /// consulted by a decision, re-attached on resume. `None` = recording
    /// off (zero obs work on the push path).
    obs: Option<std::sync::Arc<crate::obs::Obs>>,
}

/// The dedup key scope: cached results are only answers to the *same*
/// extraction question, so keys bind the model and workload identities.
fn dedup_scope<W: Workload + ?Sized>(
    model: &FittedModel,
    workload: &W,
    options: &IngestOptions,
) -> u64 {
    if options.dedup.is_none() {
        return 0;
    }
    Fnv::new()
        .eat(model.fingerprint())
        .eat(workload.fingerprint())
        .finish()
}

impl<'a, W: Workload + ?Sized> IngestSession<'a, W> {
    /// Open a live session: byte statistics are learned from arrivals and
    /// planning is internal (the planner re-runs every planned interval).
    pub fn new(model: &'a FittedModel, workload: &'a W, options: IngestOptions) -> Self {
        Self::build(
            model,
            workload,
            options,
            ByteStats::Running {
                sum: 0.0,
                count: 0,
                max: 0.0,
            },
            false,
        )
    }

    /// Open a session with pinned stream statistics — the batch path, or a
    /// live caller with a trustworthy prior on segment sizes.
    pub fn with_stream_stats(
        model: &'a FittedModel,
        workload: &'a W,
        options: IngestOptions,
        stats: StreamStats,
    ) -> Self {
        Self::build(model, workload, options, ByteStats::Pinned(stats), false)
    }

    /// Open a session whose planning is driven externally: the session never
    /// re-plans or refills its own wallet. The caller must
    /// [`install_plan`](Self::install_plan) before the first push and manage
    /// credits via [`set_cloud_credits`](Self::set_cloud_credits) — this is
    /// the contract the [`crate::multistream::MultiStreamServer`] uses.
    pub fn external(model: &'a FittedModel, workload: &'a W, options: IngestOptions) -> Self {
        Self::build(
            model,
            workload,
            options,
            ByteStats::Running {
                sum: 0.0,
                count: 0,
                max: 0.0,
            },
            true,
        )
    }

    fn build(
        model: &'a FittedModel,
        workload: &'a W,
        options: IngestOptions,
        byte_stats: ByteStats,
        external_planning: bool,
    ) -> Self {
        let state = SessionState {
            rng: StdRng::seed_from_u64(options.seed),
            planner: KnobPlanner::new(),
            switcher: None,
            backlog: Backlog::new(),
            history: model.tail.categories.clone(),
            gt_history: Vec::new(),
            gt_feed: None,
            byte_stats,
            drift: options
                .detect_drift
                .then(|| DriftDetector::for_model(model)),
            tuned_forecaster: options
                .finetune_forecaster
                .then(|| model.forecaster.clone()),
            trace: Trace::new(),
            decision: None,
            last_reported: None,
            prev_config: usize::MAX,
            seg_index: 0,
            cloud_left: options.cloud_budget_usd,
            cloud_spent_total: 0.0,
            work_total: 0.0,
            quality_total: 0.0,
            buffer_peak: 0.0,
            overflows: 0,
            misclassified: 0,
            switches: 0,
            plans: 0,
            drift_alarms: 0,
            external_planning,
            capacity_override: None,
            dedup_pending: Vec::new(),
            dedup_pending_idx: HashMap::new(),
            dedup_stats: DedupStats::default(),
            // Standalone sessions own a private cache; externally planned
            // sessions are fed the server/runtime's shared cache per push.
            dedup_own: options
                .dedup
                .filter(|_| !external_planning)
                .map(|p| Box::new(DedupCache::new(p))),
            gate: options.reorder_window.map(ReorderGate::new),
        };
        Self {
            dedup_scope: dedup_scope(model, workload, &options),
            model,
            workload,
            options,
            state,
            scratch: HotScratch::default(),
            obs: None,
        }
    }

    /// One-shot ingestion of a pre-materialized stream: pins the stream's
    /// byte statistics and ground-truth feed, pushes every segment, and
    /// settles. This is the legacy batch driver, expressed as one loop over
    /// a session.
    pub fn batch(
        model: &'a FittedModel,
        workload: &'a W,
        options: IngestOptions,
        segments: &[Segment],
    ) -> Result<IngestOutcome, SkyError> {
        let mut session = Self::with_stream_stats(
            model,
            workload,
            options,
            StreamStats::from_segments(segments),
        );
        session.pin_ground_truth(
            segments
                .iter()
                .map(|s| model.ground_truth_category(workload, &s.content))
                .collect(),
        );
        for seg in segments {
            session.push(seg)?;
        }
        Ok(session.finish())
    }

    /// Pin the full ground-truth category feed (entry `i` is the category
    /// of the `i`-th pushed segment). Powers the oracle classification and
    /// forecast modes; without it a live session computes ground truth per
    /// segment and the ground-truth *forecast* degrades to the trailing
    /// observed window.
    pub fn pin_ground_truth(&mut self, categories: Vec<usize>) {
        self.state.gt_feed = Some(categories);
    }

    /// Snapshot the carried state. The checkpoint is self-contained (owns
    /// the RNG, switcher, backlog, wallet, trace, …); pair it with the same
    /// model and workload in [`resume`](Self::resume) to continue
    /// bit-for-bit.
    pub fn checkpoint(&self) -> SessionCheckpoint {
        SessionCheckpoint {
            options: self.options.clone(),
            state: self.state.clone(),
        }
    }

    /// Re-attach a checkpoint to its model and workload.
    pub fn resume(model: &'a FittedModel, workload: &'a W, checkpoint: SessionCheckpoint) -> Self {
        Self {
            dedup_scope: dedup_scope(model, workload, &checkpoint.options),
            model,
            workload,
            options: checkpoint.options,
            state: checkpoint.state,
            scratch: HotScratch::default(),
            obs: None,
        }
    }

    /// Attach an observability handle (dedup-lookup timing and counters on
    /// the push path). Recording is bitwise-invisible — see [`crate::obs`].
    pub(crate) fn attach_obs(&mut self, obs: std::sync::Arc<crate::obs::Obs>) {
        self.obs = Some(obs);
    }

    /// Install a plan computed outside the session (joint multi-stream LP)
    /// and reset the switcher's usage counters, exactly as an internal
    /// replan would.
    pub fn install_plan(&mut self, plan: KnobPlan) {
        match &mut self.state.switcher {
            Some(sw) => sw.set_plan(plan),
            None => self.state.switcher = Some(KnobSwitcher::new(self.model, plan)),
        }
        self.state.plans += 1;
    }

    /// Set the cloud credits available to the next push (external wallet).
    pub fn set_cloud_credits(&mut self, usd: f64) {
        self.state.cloud_left = usd;
    }

    /// Cloud credits remaining in the wallet.
    pub fn cloud_credits_left(&self) -> f64 {
        self.state.cloud_left
    }

    /// Cloud dollars spent so far across the whole session.
    pub fn cloud_spent_usd(&self) -> f64 {
        self.state.cloud_spent_total
    }

    /// Current buffer fill in bytes (video set aside for later processing).
    pub fn buffer_bytes(&self) -> f64 {
        self.state.backlog.bytes()
    }

    /// Outstanding backlog work in core-seconds.
    pub fn backlog_work(&self) -> f64 {
        self.state.backlog.work()
    }

    /// Throughput-guarantee violations observed so far.
    pub fn overflows(&self) -> usize {
        self.state.overflows
    }

    /// Override the cluster capacity available to this session, in
    /// core-seconds per segment interval (a fair share of a shared cluster).
    pub fn set_capacity_per_seg(&mut self, core_secs: f64) {
        self.state.capacity_override = Some(core_secs);
    }

    /// The fitted model the session runs against.
    pub fn model(&self) -> &'a FittedModel {
        self.model
    }

    /// Options the session runs under.
    pub fn options(&self) -> &IngestOptions {
        &self.options
    }

    /// Segments processed so far.
    pub fn segments_pushed(&self) -> usize {
        self.state.seg_index
    }

    /// Stream seconds covered so far.
    pub fn elapsed_secs(&self) -> f64 {
        self.state.seg_index as f64 * self.model.seg_len
    }

    /// Observed category history (seeded with the offline tail).
    pub fn history(&self) -> &[usize] {
        &self.state.history
    }

    /// Times the planner ran (internal or installed).
    pub fn plans(&self) -> usize {
        self.state.plans
    }

    /// Dedup counters accumulated so far (all zero when dedup is off).
    pub fn dedup_stats(&self) -> DedupStats {
        self.state.dedup_stats
    }

    /// Drain the dedup entries this session computed since the last drain,
    /// for publication into a shared cache at an epoch barrier.
    pub(crate) fn take_dedup_pending(&mut self) -> Vec<(DedupKey, DedupEntry)> {
        self.state.take_dedup_pending()
    }

    /// Forecast the category distribution for the next planned interval
    /// from the recent history — what an external (joint) planner feeds the
    /// shared LP.
    pub fn forecast_distribution(&self) -> Result<Vec<f64>, SkyError> {
        let seg_len = self.model.seg_len;
        let tail_len = self
            .state
            .history
            .len()
            .min((self.model.hyper.forecast_input_secs / seg_len).round() as usize);
        let recent = &self.state.history[self.state.history.len() - tail_len..];
        self.forecast_r(recent, self.state.seg_index)
    }

    // ---- Derived quantities (pure functions of model + options + state,
    // recomputed per push so checkpoints stay self-contained). ----

    fn capacity_per_seg(&self) -> f64 {
        self.state
            .capacity_override
            .unwrap_or(self.model.hardware.cluster.throughput() * self.model.seg_len)
    }

    fn segs_per_interval(&self) -> f64 {
        (self.model.hyper.planned_interval_secs / self.model.seg_len).max(1.0)
    }

    fn budget_per_seg(&self) -> f64 {
        let cloud_core_secs = if self.options.enable_cloud {
            self.options
                .cost_model
                .cloud_usd_to_core_secs(self.options.cloud_budget_usd)
        } else {
            0.0
        };
        self.capacity_per_seg() + cloud_core_secs / self.segs_per_interval()
    }

    fn switch_every(&self) -> usize {
        let seg_len = self.model.seg_len;
        let period = self
            .options
            .switch_period_secs
            .unwrap_or(self.model.hyper.switch_period_secs)
            .max(seg_len);
        (period / seg_len).round().max(1.0) as usize
    }

    fn limits(&self, stats: StreamStats) -> SwitcherLimits {
        let buffer_capacity = if self.options.enable_buffering {
            self.model.hardware.buffer_bytes
        } else {
            // Without buffering only frame-level pipelining slack remains.
            3.0 * stats.seg_bytes_max
        };
        // The byte reserve uses the worst-case segment size: accepting work
        // against today's calm byte rate must still be safe when a stream
        // spike multiplies arrivals while the backlog drains (MOSEI-LONG).
        SwitcherLimits {
            buffer_capacity,
            seg_bytes_reserve: stats.seg_bytes_max,
            capacity_per_seg: self.capacity_per_seg(),
            safety: self.model.hyper.runtime_safety,
            cloud_enabled: self.options.enable_cloud,
        }
    }

    /// Forecast source dispatch (`r` over categories). `start_seg` indexes
    /// the ground-truth feed for the oracle window.
    fn forecast_r(&self, history: &[usize], start_seg: usize) -> Result<Vec<f64>, SkyError> {
        let model = self.model;
        let n_c = model.n_categories();
        let seg_len = model.seg_len;
        Ok(match self.options.forecast {
            ForecastMode::Model => {
                let tl = CategoryTimeline::new(history.to_vec(), seg_len, n_c)?;
                model.forecaster.forecast(&tl)
            }
            ForecastMode::GroundTruth => {
                let span = self.segs_per_interval() as usize;
                let window: &[usize] = match &self.state.gt_feed {
                    Some(feed) if start_seg < feed.len() => {
                        let end = (start_seg + span).min(feed.len());
                        &feed[start_seg..end.max(start_seg + 1).min(feed.len())]
                    }
                    // No clairvoyant feed: degrade to the trailing observed
                    // ground truth.
                    _ => {
                        let n = self.state.gt_history.len();
                        &self.state.gt_history[n.saturating_sub(span)..]
                    }
                };
                if window.is_empty() {
                    return Ok(vec![1.0 / n_c as f64; n_c]);
                }
                let mut r = vec![0.0; n_c];
                for &c in window {
                    r[c] += 1.0;
                }
                let s: f64 = r.iter().sum();
                if s > 0.0 {
                    r.iter_mut().for_each(|v| *v /= s);
                }
                r
            }
            ForecastMode::Uniform => vec![1.0 / n_c as f64; n_c],
        })
    }

    /// Run the planner (initial plan or interval replan) and install the
    /// result. `initial` selects the bootstrap forecast over the full
    /// seeded history.
    fn replan(&mut self, initial: bool) -> Result<(), SkyError> {
        let model = self.model;
        let seg_len = model.seg_len;
        let n_c = model.n_categories();
        let i = self.state.seg_index;
        let budget = self.budget_per_seg();

        let r = if initial {
            let history = self.state.history.clone();
            self.forecast_r(&history, 0)?
        } else {
            let tail_len = self
                .state
                .history
                .len()
                .min((model.hyper.forecast_input_secs / seg_len).round() as usize);
            let recent_start = self.state.history.len() - tail_len;
            let fine_tuned = matches!(
                (&self.state.tuned_forecaster, self.options.forecast),
                (Some(_), ForecastMode::Model)
            );
            if fine_tuned {
                // §3.3: fine-tune on the recently observed categories before
                // forecasting from them.
                let observed = CategoryTimeline::new(self.state.history.clone(), seg_len, n_c)?;
                let recent = CategoryTimeline::new(
                    self.state.history[recent_start..].to_vec(),
                    seg_len,
                    n_c,
                )?;
                let f = self
                    .state
                    .tuned_forecaster
                    .as_mut()
                    .expect("checked by matches! above");
                let _ = f.fine_tune(&observed, 3, self.options.seed ^ i as u64);
                f.forecast(&recent)
            } else {
                let recent = self.state.history[recent_start..].to_vec();
                self.forecast_r(&recent, i)?
            }
        };

        let plan: KnobPlan = self.state.planner.plan(model, &r, budget)?;
        self.install_plan(plan);
        if !initial {
            self.state.cloud_left = self.options.cloud_budget_usd;
        }
        // A standalone session's interval replan is its epoch barrier:
        // publish pending dedup entries into the private cache.
        if let Some(mut cache) = self.state.dedup_own.take() {
            cache.begin_epoch();
            cache.publish(self.state.take_dedup_pending());
            cache.enforce_capacity();
            self.state.dedup_own = Some(cache);
        }
        Ok(())
    }

    /// Ingest one segment: classify, switch, execute on the simulator, and
    /// settle buffer/backlog/credits. Replans first when a planned-interval
    /// boundary was crossed (internal planning only).
    pub fn push(&mut self, seg: &Segment) -> Result<StepReport, SkyError> {
        self.push_with_cache(seg, None)
    }

    /// [`push`](Self::push) with a shared dedup cache injected — the call
    /// shape the multi-stream server and the sharded runtime use, so one
    /// cache serves entries across all their streams. When `shared` is
    /// `None` a standalone session falls back to its private cache (if
    /// [`IngestOptions::dedup`] is set).
    pub fn push_with_cache(
        &mut self,
        seg: &Segment,
        shared: Option<&DedupCache>,
    ) -> Result<StepReport, SkyError> {
        let model = self.model;
        let seg_len = model.seg_len;
        let i = self.state.seg_index;

        self.state.byte_stats.observe(seg.bytes);
        let stats = self.state.byte_stats.current();
        let limits = self.limits(stats);
        let buffer_capacity = limits.buffer_capacity;
        let capacity_per_seg = limits.capacity_per_seg;
        let switch_every = self.switch_every();

        // ---- Planning: bootstrap on the first push, then at interval
        // boundaries. Externally planned sessions require an installed plan
        // and never replan themselves. ----
        let mut replanned = false;
        if self.state.switcher.is_none() {
            if self.state.external_planning {
                return Err(SkyError::NoPlanInstalled);
            }
            self.replan(true)?;
            replanned = true;
        } else if !self.state.external_planning
            && i > 0
            && i.is_multiple_of(self.segs_per_interval() as usize)
        {
            self.replan(false)?;
            replanned = true;
        }

        // ---- Dedup consult (cross-stream result cache). A hit supplies
        // only the pure, RNG-free computations below (ground-truth
        // category, simulated execution, true quality); every RNG draw
        // still runs, which is what keeps exact mode bitwise identical to
        // dedup-disabled (see `crate::dedupe`). ----
        let dedup_key = self
            .options
            .dedup
            .map(|p| DedupKey::new(self.dedup_scope, seg, p.tolerance));
        let mut dedup_hit: Option<DedupEntry> = None;
        // Lookup timing only when recording is on *and* dedup is on: the
        // dedup-off push path must not pay even the `Instant` read.
        let t_dedup = if self.obs.is_some() && dedup_key.is_some() {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let stale_before = self.state.dedup_stats.stale;
        if let (Some(policy), Some(key)) = (self.options.dedup, &dedup_key) {
            self.state.dedup_stats.lookups += 1;
            // Own pending entries are visible immediately (per-stream order
            // is shard-invariant); the shared/private cache only changes at
            // epoch barriers.
            dedup_hit = match self.state.dedup_pending_idx.get(key) {
                Some(&ix) => Some(self.state.dedup_pending[ix].1),
                None => {
                    let cache = shared.or(self.state.dedup_own.as_deref());
                    match cache {
                        None => None,
                        Some(c) => {
                            c.check_policy(&policy)?;
                            match c.lookup(key) {
                                Ok(found) => found,
                                Err(SkyError::StaleHit { .. }) => {
                                    self.state.dedup_stats.stale += 1;
                                    None
                                }
                                Err(e) => return Err(e),
                            }
                        }
                    }
                }
            };
        }
        if let (Some(o), Some(t)) = (self.obs.as_deref(), t_dedup) {
            o.registry
                .record(crate::obs::HistId::DedupLookup, t.elapsed());
            o.registry.inc(crate::obs::CounterId::DedupLookups);
            if dedup_hit.is_some() {
                o.registry.inc(crate::obs::CounterId::DedupHits);
            }
            if self.state.dedup_stats.stale > stale_before {
                o.registry.inc(crate::obs::CounterId::DedupStale);
            }
        }

        // ---- Ground truth for this segment (accuracy stats + oracles).
        // A dedup hit skips the oracle — its cached category is the same
        // pure function of the same content bits (exact mode) or the
        // bucket representative's (tolerant mode). A pinned feed wins. ----
        let gt_c = match &self.state.gt_feed {
            Some(feed) if i < feed.len() => feed[i],
            _ => match &dedup_hit {
                Some(e) => e.gt_category,
                None => model.ground_truth_category_with(
                    self.workload,
                    &seg.content,
                    &mut self.scratch.qualities,
                ),
            },
        };

        // ---- Classification (§5.6 modes). ----
        let switcher = self
            .state
            .switcher
            .as_mut()
            .expect("plan installed or bootstrapped above");
        let category = match self.options.classification {
            ClassificationMode::Standard => match self.state.last_reported {
                Some(q) => switcher.classify(model, q),
                None => gt_c, // first segment: no observation yet
            },
            ClassificationMode::NoTypeB => {
                let cur = switcher.current_config();
                let q = self.workload.reported_quality(
                    &model.configs[cur].config,
                    &seg.content,
                    &mut self.state.rng,
                );
                switcher.classify(model, q)
            }
            ClassificationMode::GroundTruth => gt_c,
        };
        if category != gt_c {
            self.state.misclassified += 1;
        }

        // ---- Knob switching. ----
        let need_decision = self.state.decision.is_none() || i.is_multiple_of(switch_every) || {
            // Re-decide early when the held decision is no longer
            // affordable or the buffer projection got tight.
            let d: &Decision = self.state.decision.as_ref().expect("checked above");
            let p = &model.configs[d.config].placements[d.placement];
            let drain_segs = (self.state.backlog.work() + p.onprem_work_max * limits.safety)
                / capacity_per_seg.max(1e-9);
            p.cloud_usd > self.state.cloud_left
                || self.state.backlog.bytes() + (drain_segs + 1.0) * limits.seg_bytes_reserve
                    > buffer_capacity
        };
        if need_decision {
            self.state.decision = Some(switcher.decide(
                model,
                category,
                self.state.backlog.bytes(),
                self.state.backlog.work(),
                self.state.cloud_left,
                &limits,
            ));
        }
        let d = self.state.decision.expect("decision just ensured");
        let switched = d.config != self.state.prev_config;
        if switched {
            self.state.switches += usize::from(self.state.prev_config != usize::MAX);
            self.state.prev_config = d.config;
        }

        // ---- Execute the segment on the simulator — unless the dedup
        // entry was computed under the very decision just taken (a *full*
        // hit), in which case the cached execution result and true quality
        // stand in for recomputation. ----
        let full_hit = dedup_hit.filter(|e| e.config == d.config && e.placement == d.placement);
        let profile = &model.configs[d.config];
        let (exec_usd, exec_onprem, exec_cloud_secs, true_q) = match &full_hit {
            Some(e) => (
                e.cloud_usd,
                e.onprem_busy_secs,
                e.cloud_busy_secs,
                e.true_quality,
            ),
            None => {
                // Per-config cached graph + reusable simulator scratch:
                // after the first segment of each configuration, execution
                // allocates nothing and stays bitwise-identical to the
                // allocating `task_graph`/`simulate` pair (see
                // `HotScratch`).
                if self.scratch.graphs.len() < model.configs.len() {
                    self.scratch
                        .graphs
                        .resize_with(model.configs.len(), TaskGraph::new);
                }
                self.workload.task_graph_into(
                    &profile.config,
                    &seg.content,
                    &mut self.scratch.graphs[d.config],
                );
                let placement = &profile.placements[d.placement].placement;
                let result = simulate_into(
                    &self.scratch.graphs[d.config],
                    placement,
                    &model.hardware.cluster,
                    &model.hardware.cloud,
                    &mut self.scratch.sim,
                );
                let true_q = self.workload.true_quality(&profile.config, &seg.content);
                (
                    result.cloud_usd,
                    result.onprem_busy_secs,
                    result.cloud_busy_secs,
                    true_q,
                )
            }
        };

        // A miss (or a hit whose decision moved) feeds the cache: record a
        // pending entry, published at the next epoch barrier.
        if full_hit.is_none() {
            if let Some(key) = dedup_key {
                self.state.record_dedup_pending(
                    key,
                    DedupEntry {
                        gt_category: gt_c,
                        config: d.config,
                        placement: d.placement,
                        true_quality: true_q,
                        cloud_usd: exec_usd,
                        onprem_busy_secs: exec_onprem,
                        cloud_busy_secs: exec_cloud_secs,
                        confidence: 1,
                        born_epoch: 0, // stamped at publication
                    },
                );
            }
        }

        // ---- Charging. Exact mode charges a full hit exactly what
        // recomputation would have (bitwise-equal numbers; the win is the
        // skipped compute). Tolerant mode charges a full hit *nothing* —
        // zero wallet spend, zero queued work — and books the avoided
        // spend as savings. Either way the category history above feeds
        // the forecaster normally, so Eqs. 7–9 inputs stay coherent. ----
        let zero_charge = full_hit.is_some() && self.options.dedup.is_some_and(|p| !p.is_exact());
        let (charge_usd, charge_onprem, charge_cloud_secs) = if zero_charge {
            (0.0, 0.0, 0.0)
        } else {
            (exec_usd, exec_onprem, exec_cloud_secs)
        };
        if full_hit.is_some() {
            self.state.dedup_stats.hits_full += 1;
            self.state.dedup_stats.bytes_saved += seg.bytes;
            self.state.dedup_stats.work_saved_secs += exec_onprem + exec_cloud_secs;
            if zero_charge {
                self.state.dedup_stats.spend_saved_usd += exec_usd;
            }
        } else if dedup_hit.is_some() {
            self.state.dedup_stats.hits_gt += 1;
        }
        self.state.cloud_left -= charge_usd;
        self.state.cloud_spent_total += charge_usd;
        let step_work = charge_onprem + charge_cloud_secs;
        self.state.work_total += step_work;

        // ---- Buffer / backlog settlement (Eq. 1). ----
        self.state.backlog.push(seg.bytes, charge_onprem);
        let _freed = self.state.backlog.process(capacity_per_seg);
        let buffered = self.state.backlog.bytes();
        self.state.buffer_peak = self.state.buffer_peak.max(buffered);
        let overflowed = buffered > buffer_capacity + stats.seg_bytes_max;
        if overflowed {
            self.state.overflows += 1;
        }

        // ---- Quality bookkeeping. ----
        self.state.quality_total += true_q;
        let reported =
            self.workload
                .reported_quality(&profile.config, &seg.content, &mut self.state.rng);
        let mut drift_alarm = false;
        if let Some(det) = self.state.drift.as_mut() {
            if det.observe(&model.categories, d.config, reported) {
                self.state.drift_alarms += 1;
                drift_alarm = true;
            }
        }
        self.state.last_reported = Some(reported);
        self.state.history.push(category);
        self.state.gt_history.push(gt_c);

        if self.options.record_trace {
            self.state.trace.push(TracePoint {
                t_secs: seg.start().as_secs(),
                quality: true_q,
                work_rate: step_work / seg_len,
                buffer_bytes: buffered,
                cloud_usd: self.state.cloud_spent_total,
                config: d.config,
                category,
            });
        }

        self.state.seg_index = i + 1;
        Ok(StepReport {
            seg_index: i,
            t_secs: seg.start().as_secs(),
            category,
            config: d.config,
            placement: d.placement,
            deviated: d.deviated,
            switched,
            replanned,
            buffer_bytes: buffered,
            backlog_work: self.state.backlog.work(),
            cloud_usd_step: charge_usd,
            cloud_credits_left: self.state.cloud_left,
            work_core_secs: step_work,
            reported_quality: reported,
            overflowed,
            drift_alarm,
        })
    }

    /// Ingest a run of segments — exactly a [`push`](Self::push) loop, one
    /// report per segment, with the output buffer reserved once up front.
    /// The session pipeline is inherently sequential (every push reads the
    /// previous segment's state), so unlike the runtime's batched mailbox
    /// path there is nothing to fuse here; the method exists so batch
    /// drivers get the same call shape at both tiers. On a mid-batch error
    /// the session keeps the state of every segment already ingested and
    /// the error is wrapped in [`SkyError::BatchFailed`] with that count.
    pub fn push_batch(&mut self, segs: &[Segment]) -> Result<Vec<StepReport>, SkyError> {
        let mut reports = Vec::with_capacity(segs.len());
        for seg in segs {
            match self.push(seg) {
                Ok(report) => reports.push(report),
                Err(e) => {
                    return Err(SkyError::BatchFailed {
                        accepted: reports.len(),
                        source: Box::new(e),
                    })
                }
            }
        }
        Ok(reports)
    }

    /// Ingest one *arrival* — a segment as the network delivered it, not
    /// necessarily in index order. With [`IngestOptions::reorder_window`]
    /// set, the arrival passes through the reorder gate: in-order arrivals
    /// process immediately, ahead-of-watermark arrivals are held (releasing
    /// zero or more segments once their gap fills or the window forces the
    /// watermark forward), and behind-the-watermark arrivals are rejected
    /// with [`SkyError::LateSegment`] before any state changes. Returns one
    /// [`StepReport`] per segment actually processed by this call — possibly
    /// none (arrival held), possibly several (a gap just filled).
    ///
    /// Without a window this is exactly [`push`](Self::push) (one report).
    /// Callers using this API must
    /// [`flush_reorder_gate`](Self::flush_reorder_gate) before
    /// [`finish`](Self::finish), or
    /// segments still held at the end would be dropped.
    ///
    /// A mid-release processing error is wrapped in
    /// [`SkyError::BatchFailed`] with the count of segments already
    /// processed, like [`push_batch`](Self::push_batch).
    pub fn push_arrival(&mut self, seg: &Segment) -> Result<Vec<StepReport>, SkyError> {
        if self.state.gate.is_none() {
            return Ok(vec![self.push(seg)?]);
        }
        self.gate_check(seg)?;
        let released = self.gate_admit(*seg);
        self.push_released(released)
    }

    /// Release everything the reorder gate still holds (remaining gaps are
    /// declared lost in [`ReorderStats::lost`]) and process it. A no-op
    /// returning an empty `Vec` when no window is configured or nothing is
    /// held.
    pub fn flush_reorder_gate(&mut self) -> Result<Vec<StepReport>, SkyError> {
        let released = self.gate_drain();
        self.push_released(released)
    }

    fn push_released(&mut self, released: Vec<Segment>) -> Result<Vec<StepReport>, SkyError> {
        let mut reports = Vec::with_capacity(released.len());
        for seg in &released {
            match self.push(seg) {
                Ok(report) => reports.push(report),
                Err(e) => {
                    return Err(SkyError::BatchFailed {
                        accepted: reports.len(),
                        source: Box::new(e),
                    })
                }
            }
        }
        Ok(reports)
    }

    /// Counters for the reorder gate (all zero when no window is
    /// configured).
    pub fn reorder_stats(&self) -> ReorderStats {
        self.state
            .gate
            .as_ref()
            .map(|g| g.stats)
            .unwrap_or_default()
    }

    /// Number of segments currently held by the reorder gate.
    pub fn reorder_held(&self) -> usize {
        self.state.gate.as_ref().map_or(0, |g| g.held.len())
    }

    /// Whether a reorder gate is configured. The runtime's ingest front
    /// door checks this once per push so the gate-less hot path stays
    /// allocation-free.
    pub(crate) fn gate_active(&self) -> bool {
        self.state.gate.is_some()
    }

    /// Pure lateness check against the gate watermark — safe to call before
    /// journaling; `Ok` when no gate is configured.
    pub(crate) fn gate_check(&self, seg: &Segment) -> Result<(), SkyError> {
        match &self.state.gate {
            Some(g) => g.check(seg),
            None => Ok(()),
        }
    }

    /// Admit an arrival into the gate, returning the segments released for
    /// processing in index order. Must only be called when
    /// [`gate_active`](Self::gate_active); the caller owns delivering the
    /// released segments downstream.
    pub(crate) fn gate_admit(&mut self, seg: Segment) -> Vec<Segment> {
        match &mut self.state.gate {
            Some(g) => g.admit(seg),
            None => vec![seg],
        }
    }

    /// Drain every held segment (gaps become [`ReorderStats::lost`]);
    /// empty when no gate is configured.
    pub(crate) fn gate_drain(&mut self) -> Vec<Segment> {
        match &mut self.state.gate {
            Some(g) => g.drain_all(),
            None => Vec::new(),
        }
    }

    /// Settle the session into the run's outcome.
    pub fn finish(self) -> IngestOutcome {
        let s = self.state;
        let n = s.seg_index.max(1);
        IngestOutcome {
            trace: s.trace,
            mean_quality: s.quality_total / n as f64,
            work_core_secs: s.work_total,
            cloud_usd: s.cloud_spent_total,
            buffer_peak: s.buffer_peak,
            overflows: s.overflows,
            switches: s.switches,
            misclassification_rate: s.misclassified as f64 / n as f64,
            plans: s.plans,
            segments: s.seg_index,
            duration_secs: s.seg_index as f64 * self.model.seg_len,
            drift_alarms: s.drift_alarms,
            dedup: s.dedup_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SkyscraperConfig;
    use crate::offline::run_offline;
    use crate::testkit::{assert_outcomes_bitwise_equal, ToyWorkload};
    use vetl_sim::HardwareSpec;
    use vetl_video::{ContentParams, Recording, SyntheticCamera};

    fn setup(cores: usize) -> (ToyWorkload, FittedModel, Vec<Segment>) {
        let w = ToyWorkload::new();
        let mut cam = SyntheticCamera::new(ContentParams::traffic_intersection(3), 2.0);
        let labeled = Recording::record(&mut cam, 20.0 * 60.0);
        let unlabeled = Recording::record(&mut cam, 2.0 * 86_400.0);
        let (model, _) = run_offline(
            &w,
            &labeled,
            &unlabeled,
            HardwareSpec::with_cores(cores),
            &SkyscraperConfig::fast_test(),
        )
        .unwrap();
        let online = Recording::record(&mut cam, 4.0 * 3_600.0);
        (w, model, online.segments().to_vec())
    }

    #[test]
    fn manual_push_loop_matches_batch_bitwise() {
        let (w, model, segments) = setup(2);
        for opts in [
            IngestOptions::default(),
            IngestOptions {
                forecast: ForecastMode::GroundTruth,
                record_trace: true,
                ..Default::default()
            },
            IngestOptions {
                classification: ClassificationMode::NoTypeB,
                detect_drift: true,
                ..Default::default()
            },
        ] {
            let batch = IngestSession::batch(&model, &w, opts.clone(), &segments).unwrap();
            let mut session = IngestSession::with_stream_stats(
                &model,
                &w,
                opts,
                StreamStats::from_segments(&segments),
            );
            session.pin_ground_truth(
                segments
                    .iter()
                    .map(|s| model.ground_truth_category(&w, &s.content))
                    .collect(),
            );
            for seg in &segments {
                session.push(seg).unwrap();
            }
            assert_outcomes_bitwise_equal("session bitwise", &batch, &session.finish());
        }
    }

    #[test]
    fn checkpoint_resume_is_bitwise_transparent() {
        let (w, model, segments) = setup(2);
        let opts = IngestOptions {
            record_trace: true,
            ..Default::default()
        };
        let straight = IngestSession::batch(&model, &w, opts.clone(), &segments).unwrap();

        let mut session = IngestSession::with_stream_stats(
            &model,
            &w,
            opts,
            StreamStats::from_segments(&segments),
        );
        session.pin_ground_truth(
            segments
                .iter()
                .map(|s| model.ground_truth_category(&w, &s.content))
                .collect(),
        );
        let mid = segments.len() / 2;
        for seg in &segments[..mid] {
            session.push(seg).unwrap();
        }
        let ckpt = session.checkpoint();
        assert_eq!(ckpt.segments_pushed(), mid);
        drop(session);

        let mut resumed = IngestSession::resume(&model, &w, ckpt);
        for seg in &segments[mid..] {
            resumed.push(seg).unwrap();
        }
        assert_outcomes_bitwise_equal("session bitwise", &straight, &resumed.finish());
    }

    #[test]
    fn live_session_without_pins_keeps_guarantees() {
        let (w, model, segments) = setup(2);
        let mut session = IngestSession::new(&model, &w, IngestOptions::default());
        let mut replans = 0;
        for seg in &segments {
            let report = session.push(seg).unwrap();
            assert!(!report.overflowed, "Eq. 1 must hold live");
            replans += usize::from(report.replanned);
        }
        assert!(replans >= 1, "bootstrap plan must be reported");
        let out = session.finish();
        assert_eq!(out.overflows, 0);
        assert_eq!(out.segments, segments.len());
        assert!(out.mean_quality > 0.3);
    }

    #[test]
    fn step_reports_expose_decisions_and_accounting() {
        let (w, model, segments) = setup(2);
        let mut session = IngestSession::with_stream_stats(
            &model,
            &w,
            IngestOptions::default(),
            StreamStats::from_segments(&segments),
        );
        let mut cloud_sum = 0.0;
        let mut switches = 0;
        for (i, seg) in segments.iter().enumerate() {
            let r = session.push(seg).unwrap();
            assert_eq!(r.seg_index, i);
            assert!(r.config < model.n_configs());
            assert!(r.category < model.n_categories());
            cloud_sum += r.cloud_usd_step;
            switches += usize::from(r.switched && i > 0);
        }
        let out = session.finish();
        assert!((cloud_sum - out.cloud_usd).abs() < 1e-12);
        assert_eq!(switches, out.switches);
    }

    #[test]
    fn external_session_requires_an_installed_plan() {
        let (w, model, segments) = setup(2);
        let mut session = IngestSession::external(&model, &w, IngestOptions::default());
        assert_eq!(
            session.push(&segments[0]).unwrap_err(),
            SkyError::NoPlanInstalled
        );
        let plan =
            KnobPlan::single_config(model.n_categories(), model.n_configs(), model.cheapest());
        session.install_plan(plan);
        session.push(&segments[0]).unwrap();
        assert_eq!(session.plans(), 1);
        // External sessions never replan on their own.
        for seg in &segments[1..200] {
            session.push(seg).unwrap();
        }
        assert_eq!(session.plans(), 1);
    }

    #[test]
    fn forecast_distribution_is_a_distribution() {
        let (w, model, _) = setup(2);
        let session = IngestSession::new(&model, &w, IngestOptions::default());
        let r = session.forecast_distribution().expect("forecast");
        assert_eq!(r.len(), model.n_categories());
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!(r.iter().all(|&v| v >= -1e-12));
    }

    // ---- Legacy batch-driver guarantees, now running through the session
    // wrapper (12-hour streams, as in the original driver tests). ----

    fn setup_long(cores: usize) -> (ToyWorkload, FittedModel, Vec<Segment>) {
        let w = ToyWorkload::new();
        let mut cam = SyntheticCamera::new(ContentParams::traffic_intersection(3), 2.0);
        let labeled = Recording::record(&mut cam, 20.0 * 60.0);
        let unlabeled = Recording::record(&mut cam, 2.0 * 86_400.0);
        let (model, _) = run_offline(
            &w,
            &labeled,
            &unlabeled,
            HardwareSpec::with_cores(cores),
            &SkyscraperConfig::fast_test(),
        )
        .unwrap();
        let online = Recording::record(&mut cam, 12.0 * 3_600.0);
        (w, model, online.segments().to_vec())
    }

    #[test]
    fn ingest_never_violates_the_throughput_guarantee() {
        let (w, model, segments) = setup_long(2);
        let out = IngestSession::batch(&model, &w, IngestOptions::default(), &segments).unwrap();
        assert_eq!(out.overflows, 0, "Eq. 1 must hold");
        assert!(out.buffer_peak <= model.hardware.buffer_bytes + 1e6);
        assert_eq!(out.segments, segments.len());
    }

    #[test]
    fn more_cores_buy_more_quality() {
        let (w2, m2, segs2) = setup_long(1);
        let small = IngestSession::batch(&m2, &w2, IngestOptions::default(), &segs2).unwrap();
        let (w8, m8, segs8) = setup_long(8);
        let large = IngestSession::batch(&m8, &w8, IngestOptions::default(), &segs8).unwrap();
        assert!(
            large.mean_quality >= small.mean_quality,
            "8 cores ({}) must not lose to 1 core ({})",
            large.mean_quality,
            small.mean_quality
        );
    }

    #[test]
    fn skyscraper_beats_always_cheapest_quality() {
        let (w, model, segments) = setup_long(2);
        let out = IngestSession::batch(&model, &w, IngestOptions::default(), &segments).unwrap();
        // Quality of always-cheapest:
        let cheap = &model.configs[model.cheapest()].config;
        let cheap_q: f64 = segments
            .iter()
            .map(|s| w.true_quality(cheap, &s.content))
            .sum::<f64>()
            / segments.len() as f64;
        assert!(
            out.mean_quality > cheap_q + 0.02,
            "adaptive ({}) must beat always-cheapest ({})",
            out.mean_quality,
            cheap_q
        );
    }

    #[test]
    fn disabling_cloud_spends_nothing() {
        let (w, model, segments) = setup_long(2);
        let opts = IngestOptions {
            enable_cloud: false,
            ..Default::default()
        };
        let out = IngestSession::batch(&model, &w, opts, &segments).unwrap();
        assert_eq!(out.cloud_usd, 0.0);
        assert_eq!(out.overflows, 0);
    }

    #[test]
    fn cloud_spending_respects_budget() {
        let (w, model, segments) = setup_long(1);
        let budget = 0.05;
        let opts = IngestOptions {
            cloud_budget_usd: budget,
            ..Default::default()
        };
        let out = IngestSession::batch(&model, &w, opts, &segments).unwrap();
        // Budget is per planned interval; the run covers at most 3 intervals
        // under the fast-test config (4 h each).
        let intervals = (out.duration_secs / model.hyper.planned_interval_secs)
            .ceil()
            .max(1.0);
        assert!(
            out.cloud_usd <= budget * intervals + 1e-9,
            "spent {} over {} intervals of {}",
            out.cloud_usd,
            intervals,
            budget
        );
    }

    #[test]
    fn ground_truth_classification_beats_standard() {
        let (w, model, segments) = setup_long(2);
        let std_out =
            IngestSession::batch(&model, &w, IngestOptions::default(), &segments).unwrap();
        let gt_opts = IngestOptions {
            classification: ClassificationMode::GroundTruth,
            ..Default::default()
        };
        let gt_out = IngestSession::batch(&model, &w, gt_opts, &segments).unwrap();
        assert_eq!(gt_out.misclassification_rate, 0.0);
        assert!(std_out.misclassification_rate >= 0.0);
        assert!(gt_out.mean_quality >= std_out.mean_quality - 0.02);
    }

    #[test]
    fn trace_is_recorded_on_request() {
        let (w, model, segments) = setup_long(2);
        let opts = IngestOptions {
            record_trace: true,
            ..Default::default()
        };
        let out = IngestSession::batch(&model, &w, opts, &segments[..1000]).unwrap();
        assert_eq!(out.trace.len(), 1000);
        assert!(out.trace.mean_quality() > 0.0);
    }

    #[test]
    fn drift_detector_stays_quiet_on_stationary_content() {
        let (w, model, segments) = setup_long(2);
        let opts = IngestOptions {
            detect_drift: true,
            ..Default::default()
        };
        let out = IngestSession::batch(&model, &w, opts, &segments[..5000]).unwrap();
        // The online stream is drawn from the same process the model was
        // fitted on: the alarm must fire on at most a sliver of segments.
        assert!(
            (out.drift_alarms as f64) < 0.02 * 5000.0,
            "{} drift alarms on stationary content",
            out.drift_alarms
        );
    }

    #[test]
    fn finetuned_forecaster_keeps_guarantees_and_quality() {
        let (w, model, segments) = setup_long(2);
        let base = IngestSession::batch(&model, &w, IngestOptions::default(), &segments).unwrap();
        let opts = IngestOptions {
            finetune_forecaster: true,
            ..Default::default()
        };
        let tuned = IngestSession::batch(&model, &w, opts, &segments).unwrap();
        assert_eq!(tuned.overflows, 0);
        assert!(
            tuned.mean_quality > base.mean_quality - 0.05,
            "fine-tuning must not collapse quality: {} vs {}",
            tuned.mean_quality,
            base.mean_quality
        );
    }

    #[test]
    fn encoded_checkpoint_resumes_bitwise_identically() {
        // The durable-checkpoint contract: encode → decode → resume is
        // indistinguishable from resuming the in-memory checkpoint, for a
        // state that exercises every optional field (trace, drift detector,
        // fine-tuned forecaster, pinned ground truth).
        let (w, model, segments) = setup(2);
        let opts = IngestOptions {
            record_trace: true,
            detect_drift: true,
            finetune_forecaster: true,
            ..Default::default()
        };
        let mut session = IngestSession::with_stream_stats(
            &model,
            &w,
            opts,
            StreamStats::from_segments(&segments),
        );
        session.pin_ground_truth(
            segments
                .iter()
                .map(|s| model.ground_truth_category(&w, &s.content))
                .collect(),
        );
        let mid = segments.len() / 2;
        for seg in &segments[..mid] {
            session.push(seg).unwrap();
        }
        let ckpt = session.checkpoint();
        drop(session);

        let bytes = ckpt.encode();
        let decoded = SessionCheckpoint::decode(&bytes).expect("decode");
        decoded.validate_against(&model).expect("validate");
        assert_eq!(decoded.segments_pushed(), mid);

        let mut mem = IngestSession::resume(&model, &w, ckpt);
        let mut disk = IngestSession::resume(&model, &w, decoded);
        for seg in &segments[mid..] {
            let a = mem.push(seg).unwrap();
            let b = disk.push(seg).unwrap();
            assert_eq!(a.reported_quality.to_bits(), b.reported_quality.to_bits());
            assert_eq!(a.config, b.config);
            assert_eq!(a.cloud_usd_step.to_bits(), b.cloud_usd_step.to_bits());
        }
        assert_outcomes_bitwise_equal("bitwise", &mem.finish(), &disk.finish());
    }

    #[test]
    fn corrupt_checkpoint_bytes_are_typed_errors_not_panics() {
        let (w, model, segments) = setup(2);
        let mut session = IngestSession::new(&model, &w, IngestOptions::default());
        for seg in &segments[..50] {
            session.push(seg).unwrap();
        }
        let bytes = session.checkpoint().encode();

        // Truncations at every prefix must fail cleanly.
        for cut in 0..bytes.len().min(256) {
            assert!(SessionCheckpoint::decode(&bytes[..cut]).is_err());
        }
        for cut in (0..bytes.len()).step_by(97) {
            assert!(SessionCheckpoint::decode(&bytes[..cut]).is_err());
        }
        // Single-byte mutations must either fail cleanly or decode into
        // *something* — never panic. (Float payload flips legitimately
        // decode; validate_against then guards the model-dependent parts.)
        for i in (0..bytes.len()).step_by(41) {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x80;
            if let Ok(ckpt) = SessionCheckpoint::decode(&mutated) {
                let _ = ckpt.validate_against(&model);
            }
        }
    }

    #[test]
    fn uniform_forecast_does_not_crash_and_is_reasonable() {
        let (w, model, segments) = setup_long(2);
        let opts = IngestOptions {
            forecast: ForecastMode::Uniform,
            ..Default::default()
        };
        let out = IngestSession::batch(&model, &w, opts, &segments).unwrap();
        assert!(out.mean_quality > 0.3);
        assert_eq!(out.overflows, 0);
    }
}
