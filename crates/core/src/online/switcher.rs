//! The reactive knob switcher (§4.2).
//!
//! Every couple of seconds the switcher:
//!
//! 1. determines the current content category from the *reported quality of
//!    the configuration that just ran* (Eq. 5 — one-dimensional KMeans
//!    classification),
//! 2. looks the category up in the knob plan to get the target histogram
//!    `α_c`, and picks the configuration with the largest planned-minus-
//!    actual frequency deficit (Eq. 6),
//! 3. picks the cheapest placement that cannot overflow the buffer; if none
//!    exists, recursively falls back to the next less qualitative
//!    configuration until a safe (configuration, placement) pair is found.
//!
//! The switcher is deliberately lightweight: its worst case is linear in the
//! total number of placements (Fig. 13, < 1 ms).

use crate::offline::FittedModel;
use crate::online::plan::KnobPlan;

/// Resource limits the switcher enforces.
#[derive(Debug, Clone, Copy)]
pub struct SwitcherLimits {
    /// Buffer capacity in bytes; `0` disables buffering (ablation 1a/1c).
    pub buffer_capacity: f64,
    /// Reserve kept free for arriving video: a typical segment's bytes.
    pub seg_bytes_reserve: f64,
    /// Core-seconds the cluster retires per segment interval.
    pub capacity_per_seg: f64,
    /// Safety factor on profiled worst-case work.
    pub safety: f64,
    /// Whether cloud placements may be used (ablation 1a/1b).
    pub cloud_enabled: bool,
}

/// A switching decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Chosen configuration index.
    pub config: usize,
    /// Chosen placement index within the configuration's Pareto set.
    pub placement: usize,
    /// Category the decision was made for.
    pub category: usize,
    /// True when the buffer/budget checks forced a deviation from the
    /// planned configuration.
    pub deviated: bool,
}

/// The knob switcher.
#[derive(Debug, Clone)]
pub struct KnobSwitcher {
    plan: KnobPlan,
    /// Actual usage counts `α̂[c][k]`.
    usage: Vec<Vec<f64>>,
    /// Configuration currently running (whose quality will be observed).
    cur_config: usize,
}

impl KnobSwitcher {
    /// Create a switcher with an initial plan; starts on the cheapest
    /// configuration.
    pub fn new(model: &FittedModel, plan: KnobPlan) -> Self {
        assert_eq!(
            plan.n_configs(),
            model.n_configs(),
            "plan/model config mismatch"
        );
        assert_eq!(
            plan.n_categories(),
            model.n_categories(),
            "plan/model category mismatch"
        );
        let usage = vec![vec![0.0; model.n_configs()]; model.n_categories()];
        Self {
            plan,
            usage,
            cur_config: model.cheapest(),
        }
    }

    /// Install a fresh plan (new planned interval) and reset usage counts.
    pub fn set_plan(&mut self, plan: KnobPlan) {
        assert_eq!(plan.n_configs(), self.plan.n_configs(), "plan shape change");
        assert_eq!(
            plan.n_categories(),
            self.plan.n_categories(),
            "plan shape change"
        );
        self.plan = plan;
        for row in &mut self.usage {
            row.iter_mut().for_each(|v| *v = 0.0);
        }
    }

    /// The currently running configuration.
    pub fn current_config(&self) -> usize {
        self.cur_config
    }

    /// The active plan.
    pub fn plan(&self) -> &KnobPlan {
        &self.plan
    }

    /// Actual usage histogram for a category, normalized.
    pub fn usage_histogram(&self, category: usize) -> Vec<f64> {
        let row = &self.usage[category];
        let total: f64 = row.iter().sum();
        if total <= 0.0 {
            return vec![0.0; row.len()];
        }
        row.iter().map(|v| v / total).collect()
    }

    /// Eq. 5: classify the current content category from the reported
    /// quality of the configuration that just ran.
    pub fn classify(&self, model: &FittedModel, reported_quality: f64) -> usize {
        model
            .categories
            .classify_single(self.cur_config, reported_quality)
    }

    /// Eq. 6: the planned configuration with the largest deficit between the
    /// planned histogram and actual usage for `category`.
    pub fn planned_config(&self, category: usize) -> usize {
        let actual = self.usage_histogram(category);
        let planned = self.plan.histogram(category);
        let mut best = 0;
        let mut best_deficit = f64::NEG_INFINITY;
        for (k, (&p, &a)) in planned.iter().zip(actual.iter()).enumerate() {
            let deficit = p - a;
            if deficit > best_deficit {
                best_deficit = deficit;
                best = k;
            }
        }
        best
    }

    /// Steps 2–3 of §4.2: pick the next configuration and placement.
    ///
    /// `buffer_bytes` / `backlog_work` describe the current backlog (bytes
    /// set aside and core-seconds still owed to them); `cloud_budget_left`
    /// the remaining cloud credits for the planned interval.
    pub fn decide(
        &mut self,
        model: &FittedModel,
        category: usize,
        buffer_bytes: f64,
        backlog_work: f64,
        cloud_budget_left: f64,
        limits: &SwitcherLimits,
    ) -> Decision {
        let planned = self.planned_config(category);

        // Fallback chain: the planned configuration, then every less
        // qualitative configuration in quality order (§4.2's recursion).
        let rank_pos = model
            .quality_rank
            .iter()
            .position(|&k| k == planned)
            .expect("planned config is ranked");
        let chain = model.quality_rank[rank_pos..].iter().copied();

        for (step, k) in chain.enumerate() {
            for (pi, p) in model.configs[k].placements.iter().enumerate() {
                if !self.placement_allowed(p, buffer_bytes, backlog_work, cloud_budget_left, limits)
                {
                    continue;
                }
                self.commit(category, k);
                return Decision {
                    config: k,
                    placement: pi,
                    category,
                    deviated: step > 0,
                };
            }
        }

        // Last resort: the cheapest configuration on the affordable
        // placement with the least on-premise work — bursting to the cloud
        // is exactly what drains a saturated buffer (Fig. 3's behaviour
        // when the buffer fills at 2 PM).
        let k = model.cheapest();
        let placement = model.configs[k]
            .placements
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                p.cloud_usd == 0.0 || (limits.cloud_enabled && p.cloud_usd <= cloud_budget_left)
            })
            .min_by(|a, b| {
                a.1.onprem_work_max
                    .partial_cmp(&b.1.onprem_work_max)
                    .expect("finite work")
            })
            .map(|(pi, _)| pi)
            .unwrap_or(0);
        self.commit(category, k);
        Decision {
            config: k,
            placement,
            category,
            deviated: k != planned,
        }
    }

    /// Would accepting placement `p` keep the buffer guarantee (Eq. 1)?
    ///
    /// The check is a potential argument: while the outstanding backlog work
    /// `W` (plus this segment's worst-case work) drains at the cluster rate,
    /// `W / capacity` further segments of video arrive and must be buffered.
    /// Accepting only placements whose *projected* fill stays within the
    /// buffer keeps the byte count bounded regardless of how work-dense the
    /// already-buffered segments are.
    fn placement_allowed(
        &self,
        p: &crate::profile::PlacementProfile,
        buffer_bytes: f64,
        backlog_work: f64,
        cloud_budget_left: f64,
        limits: &SwitcherLimits,
    ) -> bool {
        // Cloud gating: disabled cloud admits only free placements; enabled
        // cloud requires remaining credits.
        if p.cloud_usd > 0.0 && (!limits.cloud_enabled || p.cloud_usd > cloud_budget_left) {
            return false;
        }
        let new_work = p.onprem_work_max * limits.safety;
        let drain_segments = (backlog_work + new_work) / limits.capacity_per_seg.max(1e-9);
        let projected = buffer_bytes + (drain_segments + 1.0) * limits.seg_bytes_reserve;
        projected <= limits.buffer_capacity
    }

    /// Snapshot `(plan, usage counts, current config)` — the serialization
    /// surface for durable session checkpoints.
    pub(crate) fn parts(&self) -> (&KnobPlan, &[Vec<f64>], usize) {
        (&self.plan, &self.usage, self.cur_config)
    }

    /// Rebuild a switcher from parts captured with [`Self::parts`]. Returns
    /// `None` when the shapes are inconsistent (a corrupt snapshot), so the
    /// decoder can surface a typed error instead of panicking later.
    pub(crate) fn from_parts(
        plan: KnobPlan,
        usage: Vec<Vec<f64>>,
        cur_config: usize,
    ) -> Option<Self> {
        if usage.len() != plan.n_categories()
            || usage.iter().any(|row| row.len() != plan.n_configs())
            || cur_config >= plan.n_configs()
        {
            return None;
        }
        Some(Self {
            plan,
            usage,
            cur_config,
        })
    }

    /// Record that `config` was used on `category` and make it current.
    fn commit(&mut self, category: usize, config: usize) {
        self.usage[category][config] += 1.0;
        self.cur_config = config;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SkyscraperConfig;
    use crate::offline::run_offline;
    use crate::testkit::ToyWorkload;
    use vetl_sim::HardwareSpec;
    use vetl_video::{ContentParams, Recording, SyntheticCamera};

    fn model() -> FittedModel {
        let w = ToyWorkload::new();
        let mut cam = SyntheticCamera::new(ContentParams::traffic_intersection(3), 2.0);
        let labeled = Recording::record(&mut cam, 20.0 * 60.0);
        let unlabeled = Recording::record(&mut cam, 2.0 * 86_400.0);
        run_offline(
            &w,
            &labeled,
            &unlabeled,
            HardwareSpec::with_cores(4),
            &SkyscraperConfig::fast_test(),
        )
        .unwrap()
        .0
    }

    fn relaxed_limits() -> SwitcherLimits {
        SwitcherLimits {
            buffer_capacity: 4e9,
            seg_bytes_reserve: 2e5,
            capacity_per_seg: 8.0,
            safety: 1.1,
            cloud_enabled: true,
        }
    }

    #[test]
    fn follows_the_plan_when_resources_are_plentiful() {
        let m = model();
        // Plan: always use the most qualitative configuration.
        let best = m.quality_rank[0];
        let plan = KnobPlan::single_config(m.n_categories(), m.n_configs(), best);
        let mut sw = KnobSwitcher::new(&m, plan);
        let d = sw.decide(&m, 0, 0.0, 0.0, 100.0, &relaxed_limits());
        assert_eq!(d.config, best);
        assert!(!d.deviated);
    }

    #[test]
    fn usage_tracks_the_planned_histogram() {
        let m = model();
        // 50/50 plan between the two best configs for category 0.
        let (a, b) = (m.quality_rank[0], m.quality_rank[1]);
        let mut alpha = vec![vec![0.0; m.n_configs()]; m.n_categories()];
        for row in alpha.iter_mut() {
            row[a] = 0.5;
            row[b] = 0.5;
        }
        let mut sw = KnobSwitcher::new(&m, KnobPlan::new(alpha));
        for _ in 0..100 {
            let _ = sw.decide(&m, 0, 0.0, 0.0, 1e9, &relaxed_limits());
        }
        let h = sw.usage_histogram(0);
        assert!((h[a] - 0.5).abs() < 0.02, "usage {h:?}");
        assert!((h[b] - 0.5).abs() < 0.02, "usage {h:?}");
    }

    #[test]
    fn full_buffer_forces_cheapest_fallback() {
        let m = model();
        let best = m.quality_rank[0];
        let plan = KnobPlan::single_config(m.n_categories(), m.n_configs(), best);
        let mut sw = KnobSwitcher::new(&m, plan);
        // A full buffer with no cloud: the projected fill exceeds capacity
        // for every placement, so the recursion must end at the cheapest
        // configuration (which drains the backlog fastest).
        let limits = SwitcherLimits {
            buffer_capacity: 1e6,
            seg_bytes_reserve: 6e5,
            capacity_per_seg: m.configs[m.cheapest()].work_max * 1.2,
            safety: 1.1,
            cloud_enabled: false,
        };
        let d = sw.decide(&m, 0, 1e6, 50.0, 0.0, &limits);
        assert_eq!(
            d.config,
            m.cheapest(),
            "full buffer must fall back to cheapest"
        );
        assert!(d.deviated);
    }

    #[test]
    fn deep_backlog_rejects_expensive_configs_before_bytes_fill() {
        // Even with byte headroom, a work-dense backlog means bytes will
        // keep arriving while it drains — the projection must reject
        // expensive configurations early.
        let m = model();
        let best = m.quality_rank[0];
        let plan = KnobPlan::single_config(m.n_categories(), m.n_configs(), best);
        let mut sw = KnobSwitcher::new(&m, plan);
        let limits = SwitcherLimits {
            buffer_capacity: 4e6,
            seg_bytes_reserve: 2e5,
            capacity_per_seg: 8.0,
            safety: 1.1,
            cloud_enabled: false,
        };
        // Backlog work worth 30 segments of drain ⇒ 6 MB of arrivals > 4 MB.
        let d = sw.decide(&m, 0, 1e6, 240.0, 0.0, &limits);
        assert_eq!(d.config, m.cheapest());
        assert!(d.deviated);
    }

    #[test]
    fn cloud_budget_gates_paid_placements() {
        let m = model();
        let best = m.quality_rank[0];
        let plan = KnobPlan::single_config(m.n_categories(), m.n_configs(), best);
        let mut sw = KnobSwitcher::new(&m, plan);
        let limits = SwitcherLimits {
            cloud_enabled: true,
            ..relaxed_limits()
        };
        // No cloud credits left: any decision must be a free placement.
        let d = sw.decide(&m, 0, 0.0, 0.0, 0.0, &limits);
        assert_eq!(m.configs[d.config].placements[d.placement].cloud_usd, 0.0);
    }

    #[test]
    fn new_plan_resets_usage() {
        let m = model();
        let plan = KnobPlan::single_config(m.n_categories(), m.n_configs(), m.cheapest());
        let mut sw = KnobSwitcher::new(&m, plan.clone());
        let _ = sw.decide(&m, 0, 0.0, 0.0, 1.0, &relaxed_limits());
        assert!(sw.usage_histogram(0).iter().sum::<f64>() > 0.0);
        sw.set_plan(plan);
        assert_eq!(sw.usage_histogram(0).iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn classification_uses_current_config_dimension() {
        let m = model();
        let plan = KnobPlan::single_config(m.n_categories(), m.n_configs(), m.cheapest());
        let sw = KnobSwitcher::new(&m, plan);
        // The classification must be a valid category for any quality.
        for q in [0.0, 0.3, 0.6, 0.95] {
            assert!(sw.classify(&m, q) < m.n_categories());
        }
    }
}
