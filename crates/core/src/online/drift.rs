//! Content-drift detection (Appendix E.2).
//!
//! The offline content categories can become stale if the training data was
//! incomplete ("there is no completely new type of heavy traffic" — but a
//! camera can be remounted, a street re-routed). The paper notes Skyscraper
//! can detect this online: *"the measured quality will then frequently be
//! far from all of the KMeans cluster centers"*. [`DriftDetector`] implements
//! that test with a sliding window over classification residuals. The
//! residual bar is **calibrated from the offline phase**: labelling the
//! unlabeled recording already measures the in-distribution residual
//! distribution (continuum content makes any fixed absolute bar wrong — the
//! categories tile the quality axis), and its high quantile is stored in the
//! fitted model ([`crate::offline::FittedModel::residual_p99`]). The alarm
//! fires when the fraction of residuals beyond the bar exceeds a threshold,
//! letting the user recompute categories (cheap, Appendix E.2, because the
//! offending segments are already identified).

use std::collections::VecDeque;

use crate::category::ContentCategories;

/// Sliding-window detector over classification residuals.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    /// A residual beyond this bar counts as "far from every center".
    pub threshold: f64,
    /// Window length in observations.
    pub window: usize,
    /// Alarm when this fraction of the window is far.
    pub alarm_fraction: f64,
    history: VecDeque<bool>,
    far_count: usize,
    alarms: usize,
}

impl DriftDetector {
    /// Create a detector with an explicit residual bar — normally the
    /// offline phase's `residual_p99` times a small factor.
    pub fn new(threshold: f64, window: usize, alarm_fraction: f64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        assert!(window > 0, "window must be non-empty");
        assert!(
            (0.0..=1.0).contains(&alarm_fraction),
            "fraction must be in [0,1]"
        );
        Self {
            threshold,
            window,
            alarm_fraction,
            history: VecDeque::with_capacity(window),
            far_count: 0,
            alarms: 0,
        }
    }

    /// Calibrated from a fitted model: bar at 1.3× the offline residual p99
    /// (floored above observation noise), 512-observation window, alarm at
    /// 50 % far.
    pub fn for_model(model: &crate::offline::FittedModel) -> Self {
        Self::new((model.residual_p99 * 1.3).max(0.06), 512, 0.5)
    }

    /// The residual Eq. 5 minimizes: distance of the reported quality to the
    /// closest center along the running configuration's dimension.
    fn residual(categories: &ContentCategories, config_idx: usize, reported_quality: f64) -> f64 {
        let c = categories.classify_single(config_idx, reported_quality);
        (categories.avg_quality(config_idx, c) - reported_quality).abs()
    }

    /// Observe one segment's reported quality under the configuration that
    /// processed it. Returns `true` when the drift alarm fires.
    pub fn observe(
        &mut self,
        categories: &ContentCategories,
        config_idx: usize,
        reported_quality: f64,
    ) -> bool {
        let residual = Self::residual(categories, config_idx, reported_quality);
        let far = residual > self.threshold;
        if self.history.len() == self.window && self.history.pop_front() == Some(true) {
            self.far_count -= 1;
        }
        self.history.push_back(far);
        if far {
            self.far_count += 1;
        }

        let full = self.history.len() == self.window;
        let firing = full && (self.far_count as f64 / self.window as f64) >= self.alarm_fraction;
        if firing {
            self.alarms += 1;
        }
        firing
    }

    /// Fraction of the current window that is far from every center.
    pub fn far_fraction(&self) -> f64 {
        if self.history.is_empty() {
            0.0
        } else {
            self.far_count as f64 / self.history.len() as f64
        }
    }

    /// Number of observations where the alarm fired.
    pub fn alarm_count(&self) -> usize {
        self.alarms
    }

    /// Snapshot every carried field — the serialization surface for durable
    /// session checkpoints.
    pub(crate) fn parts(&self) -> (f64, usize, f64, Vec<bool>, usize, usize) {
        (
            self.threshold,
            self.window,
            self.alarm_fraction,
            self.history.iter().copied().collect(),
            self.far_count,
            self.alarms,
        )
    }

    /// Rebuild a detector from parts captured with [`Self::parts`]. Returns
    /// `None` on inconsistent shapes (corrupt snapshot) so decoders can fail
    /// typed instead of panicking.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        threshold: f64,
        window: usize,
        alarm_fraction: f64,
        history: Vec<bool>,
        far_count: usize,
        alarms: usize,
    ) -> Option<Self> {
        if threshold.is_nan()
            || threshold <= 0.0
            || window == 0
            || !(0.0..=1.0).contains(&alarm_fraction)
            || history.len() > window
            || far_count != history.iter().filter(|&&f| f).count()
        {
            return None;
        }
        Some(Self {
            threshold,
            window,
            alarm_fraction,
            history: history.into_iter().collect(),
            far_count,
            alarms,
        })
    }

    /// Reset the window after the categories were recomputed (keeps the
    /// calibrated threshold).
    pub fn reset(&mut self) {
        self.history.clear();
        self.far_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn categories() -> ContentCategories {
        // Two categories discriminated by configuration 0's quality.
        ContentCategories::from_centers(vec![vec![0.2, 0.95], vec![0.8, 0.99]])
    }

    #[test]
    fn in_distribution_quality_never_alarms() {
        let cats = categories();
        let mut d = DriftDetector::new(0.1, 32, 0.4);
        for i in 0..500 {
            let q = if i % 2 == 0 { 0.21 } else { 0.79 };
            assert!(!d.observe(&cats, 0, q));
        }
        assert_eq!(d.alarm_count(), 0);
        assert!(d.far_fraction() < 0.01);
    }

    #[test]
    fn out_of_distribution_quality_alarms() {
        let cats = categories();
        let mut d = DriftDetector::new(0.1, 32, 0.4);
        let mut fired = false;
        for _ in 0..64 {
            // Quality 0.5 sits 0.3 away from both centers on dim 0.
            fired |= d.observe(&cats, 0, 0.5);
        }
        assert!(fired, "persistent far residuals must trip the alarm");
        assert!(d.far_fraction() > 0.9);
    }

    #[test]
    fn alarm_clears_after_reset_and_normal_content() {
        let cats = categories();
        let mut d = DriftDetector::new(0.1, 16, 0.5);
        for _ in 0..16 {
            let _ = d.observe(&cats, 0, 0.5);
        }
        assert!(d.far_fraction() > 0.9);
        d.reset();
        assert_eq!(d.far_fraction(), 0.0);
        for _ in 0..16 {
            assert!(!d.observe(&cats, 0, 0.2));
        }
    }

    #[test]
    fn occasional_outliers_do_not_alarm() {
        let cats = categories();
        let mut d = DriftDetector::new(0.1, 50, 0.4);
        for i in 0..500 {
            let q = if i % 10 == 0 { 0.5 } else { 0.8 };
            assert!(
                !d.observe(&cats, 0, q),
                "10% outliers must stay under a 40% alarm"
            );
        }
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn zero_window_rejected() {
        let _ = DriftDetector::new(0.1, 0, 0.3);
    }
}
