//! The knob plan (§4.1).
//!
//! A plan assigns, to every content category `c`, a histogram `α_c` over
//! knob configurations: how often each configuration should process content
//! of that category over the planned interval. Plans are produced by the
//! [`crate::online::planner::KnobPlanner`] LP and consumed by the
//! [`crate::online::switcher::KnobSwitcher`].

/// A knob plan `P = {α_c | c ∈ C}`.
#[derive(Debug, Clone, PartialEq)]
pub struct KnobPlan {
    /// `alpha[c][k]` — frequency with which configuration `k` should process
    /// content of category `c`. Each row sums to 1 (Eq. 4).
    alpha: Vec<Vec<f64>>,
}

impl KnobPlan {
    /// Build from raw histograms, normalizing each row defensively.
    pub fn new(mut alpha: Vec<Vec<f64>>) -> Self {
        assert!(!alpha.is_empty(), "plan needs at least one category");
        let k = alpha[0].len();
        assert!(k > 0, "plan needs at least one configuration");
        for row in &mut alpha {
            assert_eq!(row.len(), k, "ragged plan rows");
            assert!(row.iter().all(|&v| v >= -1e-9), "negative plan frequency");
            let s: f64 = row.iter().sum();
            if s > 1e-12 {
                row.iter_mut().for_each(|v| *v = (*v / s).max(0.0));
            } else {
                // Degenerate row (category never forecast): uniform.
                row.iter_mut().for_each(|v| *v = 1.0 / k as f64);
            }
        }
        Self { alpha }
    }

    /// Rebuild from rows that are already normalized — the knowledge-base
    /// decoder's constructor. Skips the defensive renormalization of
    /// [`new`](Self::new) so persisted plans reload bitwise identically.
    pub(crate) fn from_normalized(alpha: Vec<Vec<f64>>) -> Self {
        Self { alpha }
    }

    /// A plan that always uses configuration `k` for every category — the
    /// static baseline's plan, and the bootstrap before the first LP solve.
    pub fn single_config(n_categories: usize, n_configs: usize, k: usize) -> Self {
        assert!(k < n_configs, "configuration out of range");
        let mut row = vec![0.0; n_configs];
        row[k] = 1.0;
        Self {
            alpha: vec![row; n_categories],
        }
    }

    /// Number of categories.
    pub fn n_categories(&self) -> usize {
        self.alpha.len()
    }

    /// Number of configurations.
    pub fn n_configs(&self) -> usize {
        self.alpha[0].len()
    }

    /// The histogram `α_c` for a category.
    pub fn histogram(&self, category: usize) -> &[f64] {
        &self.alpha[category]
    }

    /// Planned frequency `α_{k,c}`.
    pub fn frequency(&self, category: usize, config: usize) -> f64 {
        self.alpha[category][config]
    }

    /// Expected quality of the plan under forecast `r` and per-(k,c) quality
    /// `qual(k, c)` (Eq. 2's objective).
    pub fn expected_quality(&self, r: &[f64], qual: impl Fn(usize, usize) -> f64) -> f64 {
        let mut total = 0.0;
        for (c, row) in self.alpha.iter().enumerate() {
            for (k, &a) in row.iter().enumerate() {
                total += a * r[c] * qual(k, c);
            }
        }
        total
    }

    /// Expected cost of the plan under forecast `r` and per-config cost
    /// (Eq. 3's left-hand side).
    pub fn expected_cost(&self, r: &[f64], cost: impl Fn(usize) -> f64) -> f64 {
        let mut total = 0.0;
        for (c, row) in self.alpha.iter().enumerate() {
            for (k, &a) in row.iter().enumerate() {
                total += a * r[c] * cost(k);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_normalized() {
        let plan = KnobPlan::new(vec![vec![2.0, 2.0], vec![0.0, 5.0]]);
        assert!((plan.histogram(0).iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(plan.frequency(0, 0), 0.5);
        assert_eq!(plan.frequency(1, 1), 1.0);
    }

    #[test]
    fn zero_rows_become_uniform() {
        let plan = KnobPlan::new(vec![vec![0.0, 0.0, 0.0]]);
        for k in 0..3 {
            assert!((plan.frequency(0, k) - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn single_config_plan() {
        let plan = KnobPlan::single_config(3, 4, 2);
        for c in 0..3 {
            assert_eq!(plan.frequency(c, 2), 1.0);
            assert_eq!(plan.frequency(c, 0), 0.0);
        }
    }

    #[test]
    fn expected_quality_and_cost() {
        let plan = KnobPlan::new(vec![vec![1.0, 0.0], vec![0.0, 1.0]]);
        let r = [0.7, 0.3];
        let q = plan.expected_quality(&r, |k, _c| if k == 0 { 0.5 } else { 1.0 });
        assert!((q - (0.7 * 0.5 + 0.3 * 1.0)).abs() < 1e-12);
        let cost = plan.expected_cost(&r, |k| if k == 0 { 1.0 } else { 4.0 });
        assert!((cost - (0.7 + 1.2)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = KnobPlan::new(vec![vec![1.0], vec![0.5, 0.5]]);
    }
}
