//! The online ingestion phase (§4): predictive planning + reactive switching.
//!
//! The primary surface is the streaming [`session::IngestSession`] — push
//! segments as they arrive, read a [`session::StepReport`] per step, settle
//! with `finish()`. [`session::IngestSession::batch`] is the one-shot loop
//! over a pre-materialized stream.

pub mod drift;
pub mod plan;
pub mod planner;
pub mod session;
pub mod switcher;

pub use drift::DriftDetector;
pub use plan::KnobPlan;
pub use planner::{KnobPlanner, PlannerStats};
pub use session::{
    ClassificationMode, ForecastMode, IngestOptions, IngestOutcome, IngestSession, ReorderStats,
    SessionCheckpoint, StepReport, StreamStats,
};
pub use switcher::{Decision, KnobSwitcher, SwitcherLimits};
