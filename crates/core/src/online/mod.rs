//! The online ingestion phase (§4): predictive planning + reactive switching.

pub mod drift;
pub mod ingest;
pub mod plan;
pub mod planner;
pub mod switcher;

pub use drift::DriftDetector;
pub use ingest::{ClassificationMode, ForecastMode, IngestDriver, IngestOptions, IngestOutcome};
pub use plan::KnobPlan;
pub use planner::{KnobPlanner, PlannerStats};
pub use switcher::{Decision, KnobSwitcher, SwitcherLimits};
