//! Error types for the Skyscraper engine.

use vetl_lp::LpError;

/// Errors surfaced by the offline and online phases.
#[derive(Debug, Clone, PartialEq)]
pub enum SkyError {
    /// The provisioned hardware cannot run even the cheapest knob
    /// configuration in real time — no throughput guarantee is possible.
    /// Carries the cheapest configuration's profiled work rate
    /// (core-seconds per second of video) and the cluster throughput.
    UnderProvisioned {
        /// Work rate of the cheapest configuration, core-s per stream-s.
        cheapest_work_rate: f64,
        /// Cluster throughput, core-s per wall-s.
        cluster_throughput: f64,
    },
    /// The knob planner's linear program failed to solve.
    PlannerLp(LpError),
    /// The offline phase was given insufficient data.
    InsufficientData {
        /// What was missing.
        what: &'static str,
    },
    /// A method requiring a fitted model was called before fitting.
    NotFitted,
    /// Workload declared no knobs / empty configuration space.
    EmptyConfigSpace,
    /// An externally planned session was pushed to before a plan was
    /// installed (`IngestSession::install_plan`).
    NoPlanInstalled,
    /// A multi-stream operation was invoked with no streams.
    NoStreams,
    /// Parallel multi-stream inputs disagree in length (one entry per
    /// stream expected).
    StreamCountMismatch {
        /// What the mismatched input holds.
        what: &'static str,
        /// Number of streams (models).
        expected: usize,
        /// Entries actually provided.
        got: usize,
    },
    /// A stream's forecast has the wrong number of categories for its model.
    ForecastShape {
        /// Stream index.
        stream: usize,
        /// The model's category count.
        expected: usize,
        /// The forecast's length.
        got: usize,
    },
    /// A server operation referenced a stream id that was never admitted.
    UnknownStream {
        /// The offending stream index.
        id: usize,
    },
    /// A segment was pushed to a stream that was already closed
    /// (`close_stream` or an in-band close marker).
    StreamClosed {
        /// The offending stream index.
        id: usize,
    },
    /// A stream's bounded ingress mailbox is full: it already holds a full
    /// planning epoch of segments and the epoch cannot be dispatched until
    /// the lagging streams catch up. Typed backpressure — the caller should
    /// feed the other streams (or close them) and retry.
    Overloaded {
        /// The back-pressured stream index.
        stream: usize,
        /// Segments currently queued in its mailbox.
        queued: usize,
        /// Mailbox capacity in segments (one epoch quota).
        capacity: usize,
    },
    /// A segment arrived behind its stream's reorder watermark: segments up
    /// to `expected` were already released for processing (or declared
    /// lost), so this arrival can never be ingested in order. Terminal —
    /// late data cannot become timely by retrying; the stream itself keeps
    /// serving. Only raised when an out-of-order tolerance window
    /// ([`IngestOptions::reorder_window`](crate::IngestOptions::reorder_window))
    /// is configured; without one every arrival is processed as-is.
    LateSegment {
        /// The arriving segment's index.
        index: u64,
        /// The watermark: the next index the stream will release.
        expected: u64,
        /// The configured out-of-order tolerance window, segments.
        window: usize,
    },
    /// A stream admission was deferred under a synchronized open storm:
    /// `pending` streams were already admitted since the runtime last
    /// dispatched ingest work, reaching the configured flash-crowd cap.
    /// Retryable backpressure — push segments (letting an epoch dispatch)
    /// or wait, then re-open; the same admission then succeeds.
    AdmissionDeferred {
        /// Streams admitted since the last dispatch.
        pending: usize,
        /// The configured cap on admissions per dispatch interval.
        cap: usize,
    },
    /// A push would advance a stream past the current planning epoch while
    /// other streams have not finished theirs: the joint replanning barrier
    /// cannot fire yet. Feed the lagging streams (or close them) first.
    EpochBarrier {
        /// The stream that ran ahead.
        stream: usize,
        /// Active streams that have not yet exhausted their epoch quota.
        waiting_on: usize,
    },
    /// A per-stream push inside a multi-stream batch failed; carries the
    /// offending stream so one bad stream does not abort the batch opaquely.
    PushFailed {
        /// The stream whose push failed.
        stream: usize,
        /// The underlying per-push error.
        source: Box<SkyError>,
    },
    /// A batched push failed partway through: the first `accepted` segments
    /// were accepted (journaled and enqueued, exactly as a per-segment push
    /// loop would have) before `source` stopped the batch. The caller resumes
    /// from `accepted` after resolving the cause — no accepted segment may be
    /// re-fed.
    BatchFailed {
        /// Segments of the batch accepted before the failure.
        accepted: usize,
        /// The error the per-segment push loop would have returned.
        source: Box<SkyError>,
    },
    /// A caller-supplied value is structurally invalid (non-positive segment
    /// length, zero categories, out-of-range label, …).
    InvalidInput {
        /// What was invalid.
        what: &'static str,
    },
    /// A workload evaluation produced a NaN or infinite statistic the
    /// offline phase cannot rank or plan over.
    NonFinite {
        /// Which statistic was non-finite.
        what: &'static str,
    },
    /// A persisted knowledge-base artifact was written by an incompatible
    /// codec version.
    ArtifactVersionMismatch {
        /// Artifact kind ("profile", "category", "forecast", "plan",
        /// "model", "memo").
        kind: &'static str,
        /// Version found in the file.
        found: u16,
        /// Version this build reads and writes.
        supported: u16,
    },
    /// A knowledge-base artifact does not match the pipeline's current
    /// inputs (different workload, hyperparameters, hardware, data, or a
    /// broken upstream-artifact chain) and must be recomputed.
    StaleArtifact {
        /// What went stale.
        what: &'static str,
    },
    /// A knowledge-base file exists but cannot be decoded (bad magic,
    /// checksum mismatch, truncated or malformed payload).
    CorruptKnowledgeBase {
        /// Decoder context.
        detail: String,
    },
    /// An I/O error while reading or writing a knowledge base.
    KnowledgeBaseIo {
        /// The file or directory involved.
        path: String,
        /// The underlying error, stringified.
        detail: String,
    },
    /// The dedup cache was consulted under a scope or policy that does not
    /// match the one it was built with (different model/workload identity,
    /// different tolerance). Cached results would be answers to a
    /// *different* extraction question, so the consult is rejected typed
    /// instead of silently serving wrong bits. Terminal: re-sending the
    /// same mismatched consult yields the same rejection.
    CachePoisoned {
        /// What disagreed between the consult and the cache.
        detail: String,
    },
    /// A dedup cache hit aged past the staleness bound
    /// (`DedupPolicy::max_age_epochs`) between barriers. Retryable in the
    /// backpressure sense: the caller recomputes (refreshing the entry at
    /// the next barrier) and the same segment succeeds — the session does
    /// exactly that internally, counting the hit as stale.
    StaleHit {
        /// Epochs since the entry was published.
        age_epochs: u64,
        /// The policy's staleness bound.
        max_age_epochs: u64,
    },
    /// A runtime write-ahead log or checkpoint exists but cannot be decoded
    /// or replayed (bad magic, checksum mismatch mid-file, a replay that
    /// diverges from the journaled barrier sequence). A *torn tail* is not
    /// this error — unfinished trailing records are detected and discarded
    /// during recovery, because a crash mid-append is an expected shape.
    CorruptWal {
        /// Decoder / replay context.
        detail: String,
    },
    /// An I/O error while reading or writing the runtime's write-ahead log
    /// or checkpoint.
    WalIo {
        /// The file or directory involved.
        path: String,
        /// The underlying error, stringified.
        detail: String,
    },
}

impl SkyError {
    /// Whether the operation that produced this error can be retried
    /// verbatim once the engine makes progress. Retryable errors are the
    /// typed backpressure shapes — [`SkyError::Overloaded`] (a full
    /// mailbox), [`SkyError::EpochBarrier`] (the joint replanning
    /// barrier cannot fire yet), [`SkyError::StaleHit`] (recompute and
    /// refresh), and [`SkyError::AdmissionDeferred`] (a flash-crowd open
    /// storm; re-open once ingest dispatches) — plus the wrapper variants
    /// ([`SkyError::BatchFailed`], [`SkyError::PushFailed`]) whose *cause*
    /// is retryable. Everything else is terminal: re-sending the same
    /// input yields the same rejection (admission failures, closed or
    /// unknown streams, invalid input, corrupt persistence, …).
    ///
    /// The network front-end maps this directly onto the wire: a
    /// retryable error becomes a `Rejected { retryable: true, .. }` reply
    /// and the client backs off and re-feeds the unacknowledged suffix; a
    /// terminal error is surfaced to the caller unchanged.
    pub fn is_retryable(&self) -> bool {
        match self {
            SkyError::Overloaded { .. }
            | SkyError::EpochBarrier { .. }
            | SkyError::StaleHit { .. }
            | SkyError::AdmissionDeferred { .. } => true,
            SkyError::BatchFailed { source, .. } | SkyError::PushFailed { source, .. } => {
                source.is_retryable()
            }
            _ => false,
        }
    }
}

impl std::fmt::Display for SkyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SkyError::UnderProvisioned {
                cheapest_work_rate,
                cluster_throughput,
            } => write!(
                f,
                "under-provisioned: cheapest configuration needs {cheapest_work_rate:.2} core-s/s \
                 but the cluster only retires {cluster_throughput:.2} core-s/s"
            ),
            SkyError::PlannerLp(e) => write!(f, "knob planner LP failed: {e}"),
            SkyError::InsufficientData { what } => {
                write!(f, "offline phase needs more data: {what}")
            }
            SkyError::NotFitted => write!(f, "Skyscraper must be fitted before online ingestion"),
            SkyError::EmptyConfigSpace => write!(f, "workload has an empty knob space"),
            SkyError::NoPlanInstalled => write!(
                f,
                "externally planned session has no plan installed; call install_plan first"
            ),
            SkyError::NoStreams => write!(f, "multi-stream operation needs at least one stream"),
            SkyError::StreamCountMismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "multi-stream input mismatch: expected one {what} per stream ({expected}), got {got}"
            ),
            SkyError::ForecastShape {
                stream,
                expected,
                got,
            } => write!(
                f,
                "stream {stream}: forecast has {got} categories but the model has {expected}"
            ),
            SkyError::UnknownStream { id } => {
                write!(f, "stream id {id} was never admitted to this server")
            }
            SkyError::StreamClosed { id } => {
                write!(f, "stream id {id} is closed and accepts no more segments")
            }
            SkyError::Overloaded {
                stream,
                queued,
                capacity,
            } => write!(
                f,
                "stream {stream} is overloaded: mailbox holds {queued} of {capacity} segments \
                 and the epoch cannot dispatch until lagging streams catch up"
            ),
            SkyError::LateSegment {
                index,
                expected,
                window,
            } => write!(
                f,
                "segment {index} arrived behind the reorder watermark (next expected \
                 {expected}, tolerance window {window}); late data cannot be ingested in order"
            ),
            SkyError::AdmissionDeferred { pending, cap } => write!(
                f,
                "admission deferred: {pending} stream(s) already admitted since the last \
                 dispatch (flash-crowd cap {cap}); push segments or wait, then retry"
            ),
            SkyError::EpochBarrier { stream, waiting_on } => write!(
                f,
                "stream {stream} reached the epoch barrier; {waiting_on} stream(s) have not \
                 finished their planning epoch yet"
            ),
            SkyError::PushFailed { stream, source } => {
                write!(f, "push to stream {stream} failed: {source}")
            }
            SkyError::BatchFailed { accepted, source } => {
                write!(
                    f,
                    "batched push failed after {accepted} accepted segment(s): {source}"
                )
            }
            SkyError::InvalidInput { what } => write!(f, "invalid input: {what}"),
            SkyError::NonFinite { what } => {
                write!(f, "non-finite statistic in the offline phase: {what}")
            }
            SkyError::ArtifactVersionMismatch {
                kind,
                found,
                supported,
            } => write!(
                f,
                "{kind} artifact has codec version {found}, this build supports {supported}"
            ),
            SkyError::StaleArtifact { what } => write!(
                f,
                "stale artifact: {what} no longer matches the pipeline inputs; rerun the stage"
            ),
            SkyError::CorruptKnowledgeBase { detail } => {
                write!(f, "corrupt knowledge base: {detail}")
            }
            SkyError::KnowledgeBaseIo { path, detail } => {
                write!(f, "knowledge base I/O error at {path}: {detail}")
            }
            SkyError::CachePoisoned { detail } => {
                write!(f, "dedup cache consulted under a mismatched scope: {detail}")
            }
            SkyError::StaleHit {
                age_epochs,
                max_age_epochs,
            } => write!(
                f,
                "dedup hit is stale: entry is {age_epochs} epoch(s) old, bound is \
                 {max_age_epochs}; recompute and refresh"
            ),
            SkyError::CorruptWal { detail } => {
                write!(f, "corrupt write-ahead log: {detail}")
            }
            SkyError::WalIo { path, detail } => {
                write!(f, "write-ahead log I/O error at {path}: {detail}")
            }
        }
    }
}

// `PushFailed` deliberately renders its inner error in `Display` instead of
// exposing it through `Error::source` — error-chain reporters would print
// the cause twice otherwise.
impl std::error::Error for SkyError {}

impl From<LpError> for SkyError {
    fn from(e: LpError) -> Self {
        SkyError::PlannerLp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SkyError::UnderProvisioned {
            cheapest_work_rate: 3.0,
            cluster_throughput: 2.0,
        };
        assert!(e.to_string().contains("under-provisioned"));
        let e = SkyError::PlannerLp(LpError::Infeasible);
        assert!(e.to_string().contains("infeasible"));
        let e = SkyError::StreamCountMismatch {
            what: "forecast",
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("forecast"));
        let e = SkyError::ForecastShape {
            stream: 1,
            expected: 4,
            got: 3,
        };
        assert!(e.to_string().contains("stream 1"));
        assert!(SkyError::NoStreams.to_string().contains("at least one"));
        assert!(SkyError::UnknownStream { id: 7 }.to_string().contains('7'));
        assert!(SkyError::StreamClosed { id: 4 }.to_string().contains('4'));
        let e = SkyError::Overloaded {
            stream: 2,
            queued: 900,
            capacity: 900,
        };
        assert!(e.to_string().contains("overloaded"));
        assert!(e.to_string().contains("900"));
        let e = SkyError::EpochBarrier {
            stream: 1,
            waiting_on: 3,
        };
        assert!(e.to_string().contains("barrier"));
        let e = SkyError::PushFailed {
            stream: 5,
            source: Box::new(SkyError::NoPlanInstalled),
        };
        assert!(e.to_string().contains("stream 5"));
        assert!(e.to_string().contains("install_plan"));
        let e = SkyError::BatchFailed {
            accepted: 17,
            source: Box::new(SkyError::Overloaded {
                stream: 2,
                queued: 900,
                capacity: 900,
            }),
        };
        assert!(e.to_string().contains("17"));
        assert!(e.to_string().contains("overloaded"));
        assert!(SkyError::NoPlanInstalled
            .to_string()
            .contains("install_plan"));
        let e = SkyError::ArtifactVersionMismatch {
            kind: "profile",
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("profile"));
        assert!(e.to_string().contains('9'));
        let e = SkyError::StaleArtifact {
            what: "category artifact",
        };
        assert!(e.to_string().contains("stale"));
        let e = SkyError::CorruptKnowledgeBase {
            detail: "bad magic".into(),
        };
        assert!(e.to_string().contains("bad magic"));
        let e = SkyError::KnowledgeBaseIo {
            path: "/tmp/kb".into(),
            detail: "denied".into(),
        };
        assert!(e.to_string().contains("/tmp/kb"));
        let e = SkyError::CachePoisoned {
            detail: "scope mismatch".into(),
        };
        assert!(e.to_string().contains("scope mismatch"));
        let e = SkyError::StaleHit {
            age_epochs: 5,
            max_age_epochs: 2,
        };
        assert!(e.to_string().contains("stale"));
        assert!(e.to_string().contains('5'));
        let e = SkyError::LateSegment {
            index: 3,
            expected: 9,
            window: 4,
        };
        assert!(e.to_string().contains("behind the reorder watermark"));
        assert!(e.to_string().contains('9'));
        let e = SkyError::AdmissionDeferred { pending: 8, cap: 8 };
        assert!(e.to_string().contains("admission deferred"));
        assert!(e.to_string().contains('8'));
        let e = SkyError::CorruptWal {
            detail: "checksum mismatch at record 7".into(),
        };
        assert!(e.to_string().contains("write-ahead log"));
        assert!(e.to_string().contains("record 7"));
        let e = SkyError::WalIo {
            path: "/tmp/wal".into(),
            detail: "denied".into(),
        };
        assert!(e.to_string().contains("/tmp/wal"));
        assert!(SkyError::NonFinite { what: "work_mean" }
            .to_string()
            .contains("work_mean"));
        assert!(SkyError::InvalidInput { what: "seg_len" }
            .to_string()
            .contains("seg_len"));
    }

    /// The full classification table behind [`SkyError::is_retryable`]:
    /// exactly the backpressure shapes (and wrappers around them) are
    /// retryable, every terminal error stays terminal even when wrapped.
    #[test]
    fn retryable_classification_table() {
        let overloaded = SkyError::Overloaded {
            stream: 0,
            queued: 900,
            capacity: 900,
        };
        let barrier = SkyError::EpochBarrier {
            stream: 1,
            waiting_on: 2,
        };
        let stale = SkyError::StaleHit {
            age_epochs: 5,
            max_age_epochs: 2,
        };
        let deferred = SkyError::AdmissionDeferred { pending: 4, cap: 4 };
        let retryable = [
            overloaded.clone(),
            barrier.clone(),
            stale.clone(),
            deferred.clone(),
        ];
        for e in &retryable {
            assert!(e.is_retryable(), "{e} must be retryable");
            // Wrappers inherit the cause's classification.
            let batch = SkyError::BatchFailed {
                accepted: 3,
                source: Box::new(e.clone()),
            };
            assert!(batch.is_retryable(), "{batch} must be retryable");
            let push = SkyError::PushFailed {
                stream: 0,
                source: Box::new(e.clone()),
            };
            assert!(push.is_retryable(), "{push} must be retryable");
            // Double wrapping (batch of a failing per-stream push).
            let nested = SkyError::BatchFailed {
                accepted: 0,
                source: Box::new(SkyError::PushFailed {
                    stream: 0,
                    source: Box::new(e.clone()),
                }),
            };
            assert!(nested.is_retryable(), "{nested} must be retryable");
        }

        let terminal = [
            SkyError::UnderProvisioned {
                cheapest_work_rate: 3.0,
                cluster_throughput: 2.0,
            },
            SkyError::PlannerLp(LpError::Infeasible),
            SkyError::InsufficientData { what: "segments" },
            SkyError::NotFitted,
            SkyError::EmptyConfigSpace,
            SkyError::NoPlanInstalled,
            SkyError::NoStreams,
            SkyError::StreamCountMismatch {
                what: "forecast",
                expected: 2,
                got: 1,
            },
            SkyError::ForecastShape {
                stream: 0,
                expected: 3,
                got: 2,
            },
            SkyError::UnknownStream { id: 7 },
            SkyError::StreamClosed { id: 4 },
            SkyError::LateSegment {
                index: 2,
                expected: 5,
                window: 3,
            },
            SkyError::InvalidInput { what: "segment" },
            SkyError::NonFinite { what: "quality" },
            SkyError::ArtifactVersionMismatch {
                kind: "model",
                found: 2,
                supported: 1,
            },
            SkyError::StaleArtifact { what: "plan" },
            SkyError::CorruptKnowledgeBase {
                detail: "bad magic".into(),
            },
            SkyError::KnowledgeBaseIo {
                path: "/tmp/kb".into(),
                detail: "denied".into(),
            },
            SkyError::CachePoisoned {
                detail: "tolerance 0.05 vs cache tolerance 0".into(),
            },
            SkyError::CorruptWal {
                detail: "checksum".into(),
            },
            SkyError::WalIo {
                path: "/tmp/wal".into(),
                detail: "denied".into(),
            },
        ];
        for e in &terminal {
            assert!(!e.is_retryable(), "{e} must be terminal");
            let batch = SkyError::BatchFailed {
                accepted: 3,
                source: Box::new(e.clone()),
            };
            assert!(!batch.is_retryable(), "{batch} must stay terminal");
            let push = SkyError::PushFailed {
                stream: 0,
                source: Box::new(e.clone()),
            };
            assert!(!push.is_retryable(), "{push} must stay terminal");
        }
    }
}
