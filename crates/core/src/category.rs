//! Content categories (§3.2).
//!
//! Skyscraper discretizes video content into categories such that every knob
//! configuration achieves similar quality on all segments of one category.
//! Categories are KMeans clusters over `|K|`-dimensional *quality vectors*;
//! a category's center `[q̂(k₁,c), …, q̂(k_|K|,c)]` is the average quality each
//! configuration achieves on that category's content.
//!
//! The knob switcher classifies online using **one dimension only** — the
//! reported quality of the currently running configuration (Eq. 5) — so the
//! offline phase also selects a cheap *discriminating* configuration whose
//! quality separates the categories (footnote 7, Appendix H).

use vetl_ml::{GaussianMixture, GmmConfig, KMeans, KMeansConfig};

/// Clustering algorithm for the categorization (Appendix B.2 ablates GMM
/// against the default KMeans and finds no end-to-end difference).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusteringAlgo {
    /// Lloyd's KMeans with kmeans++ init (the paper's default).
    KMeans,
    /// Diagonal-covariance Gaussian mixture fitted with EM.
    Gmm,
}

/// Fitted content categories, represented by their centers.
#[derive(Debug, Clone)]
pub struct ContentCategories {
    /// One `|K|`-dimensional center per category.
    centers: Vec<Vec<f64>>,
}

impl ContentCategories {
    /// Cluster `quality_vectors` (one `|K|`-vector per sampled segment) into
    /// `n_categories` categories with KMeans.
    pub fn fit(quality_vectors: &[Vec<f64>], n_categories: usize, seed: u64) -> Self {
        Self::fit_with(quality_vectors, n_categories, seed, ClusteringAlgo::KMeans)
    }

    /// Cluster with an explicit algorithm choice (Fig. 17 ablation).
    pub fn fit_with(
        quality_vectors: &[Vec<f64>],
        n_categories: usize,
        seed: u64,
        algo: ClusteringAlgo,
    ) -> Self {
        let centers = match algo {
            ClusteringAlgo::KMeans => {
                let km = KMeans::fit(
                    quality_vectors,
                    &KMeansConfig {
                        k: n_categories,
                        seed,
                        ..Default::default()
                    },
                );
                km.centers().to_vec()
            }
            ClusteringAlgo::Gmm => {
                let gmm = GaussianMixture::fit(
                    quality_vectors,
                    &GmmConfig {
                        k: n_categories,
                        seed,
                        ..Default::default()
                    },
                );
                gmm.means().to_vec()
            }
        };
        Self { centers }
    }

    /// [`fit_with`](Self::fit_with) scattering independent work across a
    /// worker pool: KMeans parallelizes its random restarts (bit-identical
    /// to the sequential fit); GMM's EM iterations are inherently
    /// sequential and run as-is.
    pub fn fit_on(
        quality_vectors: &[Vec<f64>],
        n_categories: usize,
        seed: u64,
        algo: ClusteringAlgo,
        pool: &vetl_exec::ActorPool,
    ) -> Self {
        match algo {
            ClusteringAlgo::KMeans => {
                let km = KMeans::fit_on(
                    quality_vectors,
                    &KMeansConfig {
                        k: n_categories,
                        seed,
                        ..Default::default()
                    },
                    pool,
                );
                Self {
                    centers: km.centers().to_vec(),
                }
            }
            ClusteringAlgo::Gmm => Self::fit_with(quality_vectors, n_categories, seed, algo),
        }
    }

    /// Build directly from known centers (tests, serialization).
    pub fn from_centers(centers: Vec<Vec<f64>>) -> Self {
        assert!(!centers.is_empty(), "need at least one category");
        let dim = centers[0].len();
        assert!(
            centers.iter().all(|c| c.len() == dim),
            "inconsistent center dimensions"
        );
        Self { centers }
    }

    /// Number of categories `|C|`.
    pub fn len(&self) -> usize {
        self.centers.len()
    }

    /// True when no categories exist.
    pub fn is_empty(&self) -> bool {
        self.centers.is_empty()
    }

    /// Average quality `q̂(k, c)` of configuration `k` on category `c`.
    pub fn avg_quality(&self, config_idx: usize, category: usize) -> f64 {
        self.centers[category][config_idx]
    }

    /// The full center of category `c`.
    pub fn center(&self, category: usize) -> &[f64] {
        &self.centers[category]
    }

    /// All centers, one per category (knowledge-base serialization).
    pub fn centers(&self) -> &[Vec<f64>] {
        &self.centers
    }

    /// Offline classification: nearest center in full quality-vector space.
    pub fn classify_full(&self, quality_vector: &[f64]) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (c, center) in self.centers.iter().enumerate() {
            let d: f64 = center
                .iter()
                .zip(quality_vector.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    }

    /// Eq. 5: online classification from the reported quality of the single
    /// configuration `config_idx` that just ran.
    pub fn classify_single(&self, config_idx: usize, reported_quality: f64) -> usize {
        let mut best = 0;
        let mut best_err = f64::INFINITY;
        for (c, center) in self.centers.iter().enumerate() {
            let err = (center[config_idx] - reported_quality).abs();
            if err < best_err {
                best_err = err;
                best = c;
            }
        }
        best
    }

    /// How well configuration `config_idx`'s quality alone separates the
    /// categories: the minimum pairwise center gap along that dimension.
    pub fn discrimination(&self, config_idx: usize) -> f64 {
        let mut min_gap = f64::INFINITY;
        for i in 0..self.centers.len() {
            for j in (i + 1)..self.centers.len() {
                let gap = (self.centers[i][config_idx] - self.centers[j][config_idx]).abs();
                min_gap = min_gap.min(gap);
            }
        }
        if min_gap.is_finite() {
            min_gap
        } else {
            0.0
        }
    }

    /// Pick the cheapest configuration (by the caller-provided cost order,
    /// cheapest first) that discriminates the categories with at least
    /// `min_gap` — footnote 7's "next cheapest configuration that is a good
    /// discriminator". Falls back to the best available discriminator.
    pub fn pick_discriminator(&self, cost_order_cheapest_first: &[usize], min_gap: f64) -> usize {
        for &k in cost_order_cheapest_first {
            if self.discrimination(k) >= min_gap {
                return k;
            }
        }
        // No configuration clears the bar — take the most discriminating one.
        *cost_order_cheapest_first
            .iter()
            .max_by(|&&a, &&b| {
                self.discrimination(a)
                    .partial_cmp(&self.discrimination(b))
                    .expect("finite gaps")
            })
            .expect("at least one configuration")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three synthetic categories over two configurations: cheap config
    /// quality separates them, expensive config saturates at ~1.
    fn vectors() -> Vec<Vec<f64>> {
        let mut v = Vec::new();
        for _ in 0..40 {
            v.push(vec![0.9, 0.99]); // easy content
            v.push(vec![0.5, 0.97]); // medium
            v.push(vec![0.15, 0.95]); // hard
        }
        v
    }

    #[test]
    fn fits_three_clear_categories() {
        let cats = ContentCategories::fit(&vectors(), 3, 1);
        assert_eq!(cats.len(), 3);
        let easy = cats.classify_full(&[0.88, 0.99]);
        let hard = cats.classify_full(&[0.17, 0.94]);
        assert_ne!(easy, hard);
    }

    #[test]
    fn gmm_recovers_the_same_structure() {
        let cats = ContentCategories::fit_with(&vectors(), 3, 1, ClusteringAlgo::Gmm);
        assert_eq!(cats.len(), 3);
        let easy = cats.classify_full(&[0.88, 0.99]);
        let hard = cats.classify_full(&[0.17, 0.94]);
        assert_ne!(easy, hard);
    }

    #[test]
    fn single_dim_classification_matches_full_on_discriminating_dim() {
        let cats = ContentCategories::fit(&vectors(), 3, 1);
        for q in [0.9, 0.5, 0.15] {
            let full = cats.classify_full(&[q, 0.97]);
            let single = cats.classify_single(0, q);
            assert_eq!(full, single, "quality {q}");
        }
    }

    #[test]
    fn discrimination_prefers_the_cheap_config_dimension() {
        let cats = ContentCategories::fit(&vectors(), 3, 1);
        assert!(cats.discrimination(0) > cats.discrimination(1));
    }

    #[test]
    fn discriminator_selection_respects_cost_order_and_gap() {
        let cats = ContentCategories::fit(&vectors(), 3, 1);
        // Expensive config first in cost order but non-discriminating (gap
        // ~0.02): with min_gap 0.1 the cheap config must be chosen.
        let pick = cats.pick_discriminator(&[1, 0], 0.1);
        assert_eq!(pick, 0);
        // With a tiny bar the first (cheapest-listed) config wins.
        let pick = cats.pick_discriminator(&[1, 0], 0.001);
        assert_eq!(pick, 1);
    }

    #[test]
    fn discriminator_falls_back_to_best_gap() {
        let cats = ContentCategories::fit(&vectors(), 3, 1);
        // Impossible bar: fall back to the dimension with the best gap.
        let pick = cats.pick_discriminator(&[1, 0], 10.0);
        assert_eq!(pick, 0);
    }

    #[test]
    fn centers_expose_avg_quality() {
        let cats = ContentCategories::fit(&vectors(), 3, 1);
        let hard = cats.classify_full(&[0.15, 0.95]);
        assert!((cats.avg_quality(0, hard) - 0.15).abs() < 0.05);
        assert!(cats.avg_quality(1, hard) > 0.9);
        assert_eq!(cats.center(hard).len(), 2);
    }

    #[test]
    fn from_centers_roundtrip() {
        let cats = ContentCategories::from_centers(vec![vec![0.1, 0.9], vec![0.8, 1.0]]);
        assert_eq!(cats.len(), 2);
        assert_eq!(cats.classify_full(&[0.12, 0.88]), 0);
    }

    #[test]
    #[should_panic(expected = "at least one category")]
    fn empty_centers_rejected() {
        let _ = ContentCategories::from_centers(vec![]);
    }
}
