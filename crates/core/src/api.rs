//! User-facing facade mirroring the paper's Python API (Appendix F).
//!
//! The paper's example:
//!
//! ```python
//! sky = Skyscraper(aws_key_id, aws_secret_key, fps=30)
//! sky.set_resources(num_cores=8, bufferMB=4000, cloud_budget=1000)
//! sky.register_knob("det_interval", [1, 5, 10])
//! sky.fit(labeled_video, labels, unlabeled_video, proc_frame)
//! while ok: status, state = sky.process(frame, state)
//! ```
//!
//! In this Rust reproduction the knobs and the processing DAG live in the
//! [`Workload`] implementation (the equivalent of `proc_frame` plus the
//! `register_knob` calls), and `process` operates at segment granularity —
//! the unit at which Skyscraper makes decisions anyway.

use vetl_sim::{CostModel, HardwareSpec};
use vetl_video::{Recording, Segment};

use crate::config::SkyscraperConfig;
use crate::error::SkyError;
use crate::offline::{run_offline, FittedModel, OfflineReport};
use crate::online::ingest::{IngestDriver, IngestOptions, IngestOutcome};
use crate::workload::Workload;

/// The Skyscraper system facade.
pub struct Skyscraper<W: Workload> {
    workload: W,
    hardware: HardwareSpec,
    hyper: SkyscraperConfig,
    options: IngestOptions,
    model: Option<FittedModel>,
}

impl<W: Workload> Skyscraper<W> {
    /// Instantiate Skyscraper for a workload (the `Skyscraper(...)`
    /// constructor of Appendix F; cloud credentials are implicit in the
    /// simulated cloud).
    pub fn new(workload: W) -> Self {
        Self {
            workload,
            hardware: HardwareSpec::with_cores(8),
            hyper: SkyscraperConfig::default(),
            options: IngestOptions::default(),
            model: None,
        }
    }

    /// `sky.set_resources(num_cores=…, bufferMB=…, cloud_budget=…)`.
    pub fn set_resources(
        &mut self,
        num_cores: usize,
        buffer_mb: f64,
        cloud_budget_usd: f64,
    ) -> &mut Self {
        self.hardware = HardwareSpec::with_cores(num_cores).with_buffer(buffer_mb * 1e6);
        self.options.cloud_budget_usd = cloud_budget_usd;
        self
    }

    /// Override hyperparameters (Appendix I tuning).
    pub fn set_hyperparameters(&mut self, hyper: SkyscraperConfig) -> &mut Self {
        self.hyper = hyper;
        self
    }

    /// Override ingestion options (ablation gates, cost model, seeds).
    pub fn set_options(&mut self, options: IngestOptions) -> &mut Self {
        self.options = options;
        self
    }

    /// Cost model used for budget conversions.
    pub fn cost_model(&self) -> &CostModel {
        &self.options.cost_model
    }

    /// The workload being ingested.
    pub fn workload(&self) -> &W {
        &self.workload
    }

    /// `sky.fit(labeled_video, labels, unlabeled_video, proc_frame)` — run
    /// the offline preparation phase (§3).
    pub fn fit(
        &mut self,
        labeled: &Recording,
        unlabeled: &Recording,
    ) -> Result<OfflineReport, SkyError> {
        let (model, report) = run_offline(
            &self.workload,
            labeled,
            unlabeled,
            self.hardware,
            &self.hyper,
        )?;
        self.model = Some(model);
        Ok(report)
    }

    /// The fitted model (after [`Self::fit`]).
    pub fn model(&self) -> Result<&FittedModel, SkyError> {
        self.model.as_ref().ok_or(SkyError::NotFitted)
    }

    /// Ingest a stream of segments online (§4). The paper's `sky.process`
    /// frame loop, at segment granularity.
    pub fn ingest(&self, segments: &[Segment]) -> Result<IngestOutcome, SkyError> {
        let model = self.model()?;
        IngestDriver::new(model, &self.workload, self.options.clone()).run(segments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::ToyWorkload;
    use vetl_video::{ContentParams, SyntheticCamera};

    #[test]
    fn facade_runs_the_paper_flow() {
        // Appendix F flow: instantiate → set_resources → fit → process.
        let mut sky = Skyscraper::new(ToyWorkload::new());
        sky.set_resources(4, 4000.0, 1.0);
        sky.set_hyperparameters(SkyscraperConfig::fast_test());

        let mut cam = SyntheticCamera::new(ContentParams::traffic_intersection(3), 2.0);
        let labeled = Recording::record(&mut cam, 20.0 * 60.0);
        let unlabeled = Recording::record(&mut cam, 2.0 * 86_400.0);
        let report = sky.fit(&labeled, &unlabeled).expect("fit succeeds");
        assert!(report.n_configs >= 2);

        let online = Recording::record(&mut cam, 3_600.0);
        let out = sky.ingest(online.segments()).expect("ingestion succeeds");
        assert_eq!(out.overflows, 0);
        assert!(out.mean_quality > 0.0);
    }

    #[test]
    fn ingest_before_fit_errors() {
        let sky = Skyscraper::new(ToyWorkload::new());
        let err = sky.ingest(&[]).unwrap_err();
        assert_eq!(err, SkyError::NotFitted);
    }
}
