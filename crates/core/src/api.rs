//! User-facing facade mirroring the paper's Python API (Appendix F).
//!
//! The paper's example:
//!
//! ```python
//! sky = Skyscraper(aws_key_id, aws_secret_key, fps=30)
//! sky.set_resources(num_cores=8, bufferMB=4000, cloud_budget=1000)
//! sky.register_knob("det_interval", [1, 5, 10])
//! sky.fit(labeled_video, labels, unlabeled_video, proc_frame)
//! while ok: status, state = sky.process(frame, state)
//! ```
//!
//! In this Rust reproduction the knobs and the processing DAG live in the
//! [`Workload`] implementation (the equivalent of `proc_frame` plus the
//! `register_knob` calls), and processing operates at segment granularity —
//! the unit at which Skyscraper makes decisions anyway. The
//! `while ok: sky.process(frame, state)` loop maps onto
//! [`Skyscraper::open_session`] + [`IngestSession::push`]: the session *is*
//! the paper's carried `state`, made explicit (and checkpointable).
//! [`Skyscraper::ingest`] remains as the one-shot convenience over a whole
//! pre-materialized recording.
//!
//! Resource builders are composable and idempotent: each setter touches
//! only the field it names, so `set_cores` after `set_hardware` preserves a
//! custom buffer size or cloud pricing, and calling any setter twice is the
//! same as calling it once.

use std::path::Path;

use vetl_sim::{CostModel, HardwareSpec};
use vetl_video::{Recording, Segment};

use crate::config::SkyscraperConfig;
use crate::error::SkyError;
use crate::offline::{
    EvalMemo, FittedModel, KnowledgeBase, OfflineArtifacts, OfflinePipeline, OfflineReport,
};
use crate::online::session::{IngestOptions, IngestOutcome, IngestSession};
use crate::workload::Workload;

/// The Skyscraper system facade.
pub struct Skyscraper<W: Workload> {
    workload: W,
    hardware: HardwareSpec,
    hyper: SkyscraperConfig,
    options: IngestOptions,
    model: Option<FittedModel>,
    /// Staged artifacts of the last fit (fuel for [`Self::refit`] and
    /// [`Self::save_model`]); absent after [`Self::load_model`] of a bare
    /// model file.
    artifacts: Option<OfflineArtifacts>,
    /// Cross-fit evaluation memo carried between fits.
    memo: EvalMemo,
}

impl<W: Workload> Skyscraper<W> {
    /// Instantiate Skyscraper for a workload (the `Skyscraper(...)`
    /// constructor of Appendix F; cloud credentials are implicit in the
    /// simulated cloud).
    pub fn new(workload: W) -> Self {
        Self {
            workload,
            hardware: HardwareSpec::with_cores(8),
            hyper: SkyscraperConfig::default(),
            options: IngestOptions::default(),
            model: None,
            artifacts: None,
            memo: EvalMemo::new(),
        }
    }

    /// `sky.set_resources(num_cores=…, bufferMB=…, cloud_budget=…)`.
    ///
    /// Equivalent to [`set_cores`](Self::set_cores) +
    /// [`set_buffer_mb`](Self::set_buffer_mb) +
    /// [`set_cloud_budget_usd`](Self::set_cloud_budget_usd); every other
    /// provisioning field (cloud pricing, core speed, …) is left untouched.
    pub fn set_resources(
        &mut self,
        num_cores: usize,
        buffer_mb: f64,
        cloud_budget_usd: f64,
    ) -> &mut Self {
        self.set_cores(num_cores)
            .set_buffer_mb(buffer_mb)
            .set_cloud_budget_usd(cloud_budget_usd)
    }

    /// Resize the on-premise cluster without touching buffer or cloud.
    pub fn set_cores(&mut self, num_cores: usize) -> &mut Self {
        self.hardware.cluster.cores = num_cores;
        self
    }

    /// Resize the video buffer without touching cluster or cloud.
    pub fn set_buffer_mb(&mut self, buffer_mb: f64) -> &mut Self {
        self.hardware.buffer_bytes = buffer_mb * 1e6;
        self
    }

    /// Set the per-interval cloud budget without touching the hardware.
    pub fn set_cloud_budget_usd(&mut self, cloud_budget_usd: f64) -> &mut Self {
        self.options.cloud_budget_usd = cloud_budget_usd;
        self
    }

    /// Install a full provisioning spec (custom cloud pricing, core speed).
    /// Later granular setters compose on top of it.
    pub fn set_hardware(&mut self, hardware: HardwareSpec) -> &mut Self {
        self.hardware = hardware;
        self
    }

    /// The current provisioning.
    pub fn hardware(&self) -> &HardwareSpec {
        &self.hardware
    }

    /// Override hyperparameters (Appendix I tuning).
    pub fn set_hyperparameters(&mut self, hyper: SkyscraperConfig) -> &mut Self {
        self.hyper = hyper;
        self
    }

    /// Override ingestion options (ablation gates, cost model, seeds).
    /// Preserves the cloud budget configured through
    /// [`set_resources`](Self::set_resources) /
    /// [`set_cloud_budget_usd`](Self::set_cloud_budget_usd) — pass a
    /// non-default budget in `options` to change it here instead.
    pub fn set_options(&mut self, options: IngestOptions) -> &mut Self {
        let configured_budget = self.options.cloud_budget_usd;
        let default_budget = IngestOptions::default().cloud_budget_usd;
        self.options = options;
        if self.options.cloud_budget_usd == default_budget {
            self.options.cloud_budget_usd = configured_budget;
        }
        self
    }

    /// Cost model used for budget conversions.
    pub fn cost_model(&self) -> &CostModel {
        &self.options.cost_model
    }

    /// The configured ingestion options (ablation gates, budget, cost
    /// model, seed) — e.g. to admit this instance's fitted workload into a
    /// [`crate::runtime::IngestRuntime`] or
    /// [`crate::multistream::MultiStreamServer`] with the same settings a
    /// plain [`Self::open_session`] would use.
    pub fn ingest_options(&self) -> &IngestOptions {
        &self.options
    }

    /// The workload being ingested.
    pub fn workload(&self) -> &W {
        &self.workload
    }

    /// `sky.fit(labeled_video, labels, unlabeled_video, proc_frame)` — run
    /// the offline preparation phase (§3). A thin wrapper over the staged
    /// [`OfflinePipeline`]: the artifacts and the evaluation memo are kept
    /// for [`Self::refit`] and [`Self::save_model`].
    pub fn fit(
        &mut self,
        labeled: &Recording,
        unlabeled: &Recording,
    ) -> Result<OfflineReport, SkyError> {
        let mut pipeline = OfflinePipeline::new(&self.workload, self.hardware, self.hyper.clone())
            .with_memo(std::mem::take(&mut self.memo));
        let result = pipeline.run(labeled, unlabeled);
        self.memo = pipeline.into_memo();
        let (artifacts, report) = result?;
        self.model = Some(artifacts.model().clone());
        self.artifacts = Some(artifacts);
        Ok(report)
    }

    /// Incrementally refit on (typically grown) recordings: pipeline stages
    /// whose inputs are unchanged are reused, and recomputed stages replay
    /// memoized evaluations from the previous fit — the resulting model is
    /// bitwise identical to a cold [`Self::fit`] on the same data, only
    /// faster. Falls back to a full fit when nothing was fitted yet or the
    /// knob space, hardware, or hyperparameters changed.
    pub fn refit(
        &mut self,
        labeled: &Recording,
        unlabeled: &Recording,
    ) -> Result<OfflineReport, SkyError> {
        let Some(prev) = self.artifacts.take() else {
            return self.fit(labeled, unlabeled);
        };
        let mut pipeline = OfflinePipeline::new(&self.workload, self.hardware, self.hyper.clone())
            .with_memo(std::mem::take(&mut self.memo));
        let result = pipeline.refit(&prev, labeled, unlabeled);
        self.memo = pipeline.into_memo();
        match result {
            Ok((artifacts, report)) => {
                self.model = Some(artifacts.model().clone());
                self.artifacts = Some(artifacts);
                Ok(report)
            }
            Err(e) => {
                // The previous fit is still valid — keep it so a corrected
                // retry can refit incrementally instead of cold.
                self.artifacts = Some(prev);
                Err(e)
            }
        }
    }

    /// Persist the fitted state to a [`KnowledgeBase`] directory: always
    /// the model itself, plus — when this instance fitted it — the staged
    /// artifacts and the evaluation memo, so a later process can both skip
    /// offline prep entirely ([`Self::load_model`]) and refit
    /// incrementally.
    pub fn save_model(&self, path: impl AsRef<Path>) -> Result<(), SkyError> {
        let model = self.model()?;
        let kb = KnowledgeBase::open(path.as_ref())?;
        kb.save_model(model)?;
        if let Some(artifacts) = &self.artifacts {
            kb.save_artifacts(artifacts)?;
            kb.save_memo(&self.memo)?;
        }
        Ok(())
    }

    /// Load a previously saved model from a [`KnowledgeBase`] directory,
    /// skipping offline preparation entirely. The stored hardware spec and
    /// hyperparameters travel with the model and are installed on this
    /// instance so sessions behave exactly as they would have on the
    /// fitting process. Staged artifacts and the memo are picked up too
    /// when present, re-arming incremental [`Self::refit`].
    pub fn load_model(&mut self, path: impl AsRef<Path>) -> Result<&mut Self, SkyError> {
        let kb = KnowledgeBase::open_existing(path.as_ref())?;
        let model = kb.load_model()?;
        if model.workload_name != self.workload.name() {
            return Err(SkyError::StaleArtifact {
                what: "persisted model belongs to a different workload",
            });
        }
        let knobs = self.workload.knobs();
        let in_knob_space = |c: &crate::knob::KnobConfig| {
            c.len() == knobs.len()
                && c.indices()
                    .iter()
                    .zip(knobs)
                    .all(|(&i, k)| i < k.cardinality())
        };
        if !model.configs.iter().all(|p| in_knob_space(&p.config)) {
            return Err(SkyError::StaleArtifact {
                what: "persisted configurations fall outside this workload's knob space",
            });
        }
        self.hardware = model.hardware;
        self.hyper = model.hyper.clone();
        self.artifacts = if kb.has_artifacts() {
            let artifacts = kb.load_artifacts()?;
            if artifacts.profile.meta.workload_fp != self.workload.fingerprint() {
                return Err(SkyError::StaleArtifact {
                    what: "persisted artifacts were fitted on a different workload \
                           (name matches, knob registry or semantics changed)",
                });
            }
            if artifacts.plan.model.fingerprint() != model.fingerprint() {
                return Err(SkyError::CorruptKnowledgeBase {
                    detail: "model.kb does not match the persisted plan artifact \
                             (torn save?)"
                        .to_string(),
                });
            }
            Some(artifacts)
        } else {
            None
        };
        self.memo = if kb.has_memo() {
            kb.load_memo()?
        } else {
            EvalMemo::new()
        };
        self.model = Some(model);
        Ok(self)
    }

    /// The fitted model (after [`Self::fit`] / [`Self::load_model`]).
    pub fn model(&self) -> Result<&FittedModel, SkyError> {
        self.model.as_ref().ok_or(SkyError::NotFitted)
    }

    /// The staged artifacts of the last fit, when available.
    pub fn artifacts(&self) -> Option<&OfflineArtifacts> {
        self.artifacts.as_ref()
    }

    /// Open a streaming ingestion session — the paper's
    /// `while ok: sky.process(frame, state)` loop with the carried state
    /// made explicit. Push segments as they arrive; the session replans
    /// every planned interval and can be checkpointed and resumed.
    pub fn open_session(&self) -> Result<IngestSession<'_, W>, SkyError> {
        let model = self.model()?;
        Ok(IngestSession::new(
            model,
            &self.workload,
            self.options.clone(),
        ))
    }

    /// Ingest a pre-materialized stream of segments online (§4): a thin
    /// one-loop wrapper over a session ([`IngestSession::batch`]).
    pub fn ingest(&self, segments: &[Segment]) -> Result<IngestOutcome, SkyError> {
        let model = self.model()?;
        IngestSession::batch(model, &self.workload, self.options.clone(), segments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::ToyWorkload;
    use vetl_video::{ContentParams, SyntheticCamera};

    #[test]
    fn facade_runs_the_paper_flow() {
        // Appendix F flow: instantiate → set_resources → fit → process.
        let mut sky = Skyscraper::new(ToyWorkload::new());
        sky.set_resources(4, 4000.0, 1.0);
        sky.set_hyperparameters(SkyscraperConfig::fast_test());

        let mut cam = SyntheticCamera::new(ContentParams::traffic_intersection(3), 2.0);
        let labeled = Recording::record(&mut cam, 20.0 * 60.0);
        let unlabeled = Recording::record(&mut cam, 2.0 * 86_400.0);
        let report = sky.fit(&labeled, &unlabeled).expect("fit succeeds");
        assert!(report.n_configs >= 2);

        let online = Recording::record(&mut cam, 3_600.0);
        let out = sky.ingest(online.segments()).expect("ingestion succeeds");
        assert_eq!(out.overflows, 0);
        assert!(out.mean_quality > 0.0);

        // The same stream through an explicit session.
        let mut session = sky.open_session().expect("session opens");
        for seg in online.segments() {
            session.push(seg).expect("push succeeds");
        }
        let streamed = session.finish();
        assert_eq!(streamed.segments, out.segments);
        assert_eq!(streamed.overflows, 0);
    }

    #[test]
    fn save_load_skips_offline_prep_and_rearms_refit() {
        let dir = std::env::temp_dir().join(format!(
            "vetl-api-kb-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let mut cam = SyntheticCamera::new(ContentParams::traffic_intersection(3), 2.0);
        let labeled = Recording::record(&mut cam, 20.0 * 60.0);
        let unlabeled = Recording::record(&mut cam, 43_200.0);
        let online = Recording::record(&mut cam, 1_800.0);

        let mut sky = Skyscraper::new(ToyWorkload::new());
        sky.set_resources(4, 4000.0, 1.0);
        sky.set_hyperparameters(SkyscraperConfig::fast_test());
        sky.fit(&labeled, &unlabeled).expect("fit");
        sky.save_model(&dir).expect("save");
        let fitted_out = sky.ingest(online.segments()).expect("ingest");

        // A fresh process: load instead of fitting.
        let mut sky2 = Skyscraper::new(ToyWorkload::new());
        sky2.load_model(&dir).expect("load");
        assert_eq!(
            sky2.model().unwrap().fingerprint(),
            sky.model().unwrap().fingerprint(),
            "loaded model must be bitwise identical"
        );
        assert!(
            sky2.artifacts().is_some(),
            "artifacts travel with the model"
        );
        let loaded_out = sky2.ingest(online.segments()).expect("ingest on loaded");
        assert_eq!(
            loaded_out.mean_quality.to_bits(),
            fitted_out.mean_quality.to_bits()
        );
        assert_eq!(loaded_out.segments, fitted_out.segments);

        // Refit on the same data reuses everything.
        let report = sky2.refit(&labeled, &unlabeled).expect("refit");
        assert_eq!(report.stages_reused, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn refit_without_prior_fit_is_a_full_fit() {
        let mut cam = SyntheticCamera::new(ContentParams::traffic_intersection(3), 2.0);
        let labeled = Recording::record(&mut cam, 20.0 * 60.0);
        let unlabeled = Recording::record(&mut cam, 43_200.0);
        let mut sky = Skyscraper::new(ToyWorkload::new());
        sky.set_resources(4, 4000.0, 1.0);
        sky.set_hyperparameters(SkyscraperConfig::fast_test());
        let report = sky.refit(&labeled, &unlabeled).expect("refit-as-fit");
        assert_eq!(report.stages_reused, 0);
        assert!(sky.model().is_ok());
    }

    #[test]
    fn save_before_fit_errors_and_load_of_missing_kb_errors() {
        let sky = Skyscraper::new(ToyWorkload::new());
        assert_eq!(
            sky.save_model(std::env::temp_dir().join("vetl-api-nofit"))
                .unwrap_err(),
            SkyError::NotFitted
        );
        let dir = std::env::temp_dir().join(format!("vetl-api-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut sky = Skyscraper::new(ToyWorkload::new());
        let err = sky.load_model(&dir).map(|_| ()).unwrap_err();
        assert!(matches!(err, SkyError::KnowledgeBaseIo { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ingest_before_fit_errors() {
        let sky = Skyscraper::new(ToyWorkload::new());
        let err = sky.ingest(&[]).unwrap_err();
        assert_eq!(err, SkyError::NotFitted);
        assert!(sky.open_session().is_err());
    }

    #[test]
    fn resource_builders_compose_and_stay_idempotent() {
        let mut sky = Skyscraper::new(ToyWorkload::new());

        // A custom provisioning: non-default cloud pricing and buffer.
        let mut custom = HardwareSpec::with_cores(16).with_buffer(2.5e9);
        custom.cloud.usd_per_compute_sec = 9.9e-5;
        custom.cluster.core_speed = 2.0;
        sky.set_hardware(custom);

        // Granular setters must not clobber unrelated fields…
        sky.set_cores(4);
        assert_eq!(sky.hardware().cluster.cores, 4);
        assert_eq!(
            sky.hardware().buffer_bytes,
            2.5e9,
            "buffer survives set_cores"
        );
        assert_eq!(sky.hardware().cloud.usd_per_compute_sec, 9.9e-5);
        assert_eq!(sky.hardware().cluster.core_speed, 2.0);

        // …and neither must the combined setter.
        sky.set_resources(8, 4000.0, 0.7);
        assert_eq!(sky.hardware().cluster.cores, 8);
        assert_eq!(sky.hardware().buffer_bytes, 4e9);
        assert_eq!(
            sky.hardware().cloud.usd_per_compute_sec,
            9.9e-5,
            "custom cloud pricing survives set_resources"
        );
        assert_eq!(sky.hardware().cluster.core_speed, 2.0);

        // Idempotent: calling twice changes nothing.
        let before = *sky.hardware();
        sky.set_resources(8, 4000.0, 0.7);
        assert_eq!(*sky.hardware(), before);
    }

    #[test]
    fn set_options_preserves_a_configured_cloud_budget() {
        let mut sky = Skyscraper::new(ToyWorkload::new());
        sky.set_resources(4, 4000.0, 0.25);
        // Ablation gates off, budget untouched (left at its default in the
        // passed options).
        sky.set_options(IngestOptions {
            enable_buffering: false,
            ..Default::default()
        });
        assert_eq!(sky.options.cloud_budget_usd, 0.25);
        assert!(!sky.options.enable_buffering);
        // An explicit budget in the options wins.
        sky.set_options(IngestOptions {
            cloud_budget_usd: 0.5,
            ..Default::default()
        });
        assert_eq!(sky.options.cloud_budget_usd, 0.5);
    }
}
