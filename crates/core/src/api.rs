//! User-facing facade mirroring the paper's Python API (Appendix F).
//!
//! The paper's example:
//!
//! ```python
//! sky = Skyscraper(aws_key_id, aws_secret_key, fps=30)
//! sky.set_resources(num_cores=8, bufferMB=4000, cloud_budget=1000)
//! sky.register_knob("det_interval", [1, 5, 10])
//! sky.fit(labeled_video, labels, unlabeled_video, proc_frame)
//! while ok: status, state = sky.process(frame, state)
//! ```
//!
//! In this Rust reproduction the knobs and the processing DAG live in the
//! [`Workload`] implementation (the equivalent of `proc_frame` plus the
//! `register_knob` calls), and processing operates at segment granularity —
//! the unit at which Skyscraper makes decisions anyway. The
//! `while ok: sky.process(frame, state)` loop maps onto
//! [`Skyscraper::open_session`] + [`IngestSession::push`]: the session *is*
//! the paper's carried `state`, made explicit (and checkpointable).
//! [`Skyscraper::ingest`] remains as the one-shot convenience over a whole
//! pre-materialized recording.
//!
//! Resource builders are composable and idempotent: each setter touches
//! only the field it names, so `set_cores` after `set_hardware` preserves a
//! custom buffer size or cloud pricing, and calling any setter twice is the
//! same as calling it once.

use vetl_sim::{CostModel, HardwareSpec};
use vetl_video::{Recording, Segment};

use crate::config::SkyscraperConfig;
use crate::error::SkyError;
use crate::offline::{run_offline, FittedModel, OfflineReport};
use crate::online::session::{IngestOptions, IngestOutcome, IngestSession};
use crate::workload::Workload;

/// The Skyscraper system facade.
pub struct Skyscraper<W: Workload> {
    workload: W,
    hardware: HardwareSpec,
    hyper: SkyscraperConfig,
    options: IngestOptions,
    model: Option<FittedModel>,
}

impl<W: Workload> Skyscraper<W> {
    /// Instantiate Skyscraper for a workload (the `Skyscraper(...)`
    /// constructor of Appendix F; cloud credentials are implicit in the
    /// simulated cloud).
    pub fn new(workload: W) -> Self {
        Self {
            workload,
            hardware: HardwareSpec::with_cores(8),
            hyper: SkyscraperConfig::default(),
            options: IngestOptions::default(),
            model: None,
        }
    }

    /// `sky.set_resources(num_cores=…, bufferMB=…, cloud_budget=…)`.
    ///
    /// Equivalent to [`set_cores`](Self::set_cores) +
    /// [`set_buffer_mb`](Self::set_buffer_mb) +
    /// [`set_cloud_budget_usd`](Self::set_cloud_budget_usd); every other
    /// provisioning field (cloud pricing, core speed, …) is left untouched.
    pub fn set_resources(
        &mut self,
        num_cores: usize,
        buffer_mb: f64,
        cloud_budget_usd: f64,
    ) -> &mut Self {
        self.set_cores(num_cores)
            .set_buffer_mb(buffer_mb)
            .set_cloud_budget_usd(cloud_budget_usd)
    }

    /// Resize the on-premise cluster without touching buffer or cloud.
    pub fn set_cores(&mut self, num_cores: usize) -> &mut Self {
        self.hardware.cluster.cores = num_cores;
        self
    }

    /// Resize the video buffer without touching cluster or cloud.
    pub fn set_buffer_mb(&mut self, buffer_mb: f64) -> &mut Self {
        self.hardware.buffer_bytes = buffer_mb * 1e6;
        self
    }

    /// Set the per-interval cloud budget without touching the hardware.
    pub fn set_cloud_budget_usd(&mut self, cloud_budget_usd: f64) -> &mut Self {
        self.options.cloud_budget_usd = cloud_budget_usd;
        self
    }

    /// Install a full provisioning spec (custom cloud pricing, core speed).
    /// Later granular setters compose on top of it.
    pub fn set_hardware(&mut self, hardware: HardwareSpec) -> &mut Self {
        self.hardware = hardware;
        self
    }

    /// The current provisioning.
    pub fn hardware(&self) -> &HardwareSpec {
        &self.hardware
    }

    /// Override hyperparameters (Appendix I tuning).
    pub fn set_hyperparameters(&mut self, hyper: SkyscraperConfig) -> &mut Self {
        self.hyper = hyper;
        self
    }

    /// Override ingestion options (ablation gates, cost model, seeds).
    /// Preserves the cloud budget configured through
    /// [`set_resources`](Self::set_resources) /
    /// [`set_cloud_budget_usd`](Self::set_cloud_budget_usd) — pass a
    /// non-default budget in `options` to change it here instead.
    pub fn set_options(&mut self, options: IngestOptions) -> &mut Self {
        let configured_budget = self.options.cloud_budget_usd;
        let default_budget = IngestOptions::default().cloud_budget_usd;
        self.options = options;
        if self.options.cloud_budget_usd == default_budget {
            self.options.cloud_budget_usd = configured_budget;
        }
        self
    }

    /// Cost model used for budget conversions.
    pub fn cost_model(&self) -> &CostModel {
        &self.options.cost_model
    }

    /// The workload being ingested.
    pub fn workload(&self) -> &W {
        &self.workload
    }

    /// `sky.fit(labeled_video, labels, unlabeled_video, proc_frame)` — run
    /// the offline preparation phase (§3).
    pub fn fit(
        &mut self,
        labeled: &Recording,
        unlabeled: &Recording,
    ) -> Result<OfflineReport, SkyError> {
        let (model, report) = run_offline(
            &self.workload,
            labeled,
            unlabeled,
            self.hardware,
            &self.hyper,
        )?;
        self.model = Some(model);
        Ok(report)
    }

    /// The fitted model (after [`Self::fit`]).
    pub fn model(&self) -> Result<&FittedModel, SkyError> {
        self.model.as_ref().ok_or(SkyError::NotFitted)
    }

    /// Open a streaming ingestion session — the paper's
    /// `while ok: sky.process(frame, state)` loop with the carried state
    /// made explicit. Push segments as they arrive; the session replans
    /// every planned interval and can be checkpointed and resumed.
    pub fn open_session(&self) -> Result<IngestSession<'_, W>, SkyError> {
        let model = self.model()?;
        Ok(IngestSession::new(
            model,
            &self.workload,
            self.options.clone(),
        ))
    }

    /// Ingest a pre-materialized stream of segments online (§4): a thin
    /// one-loop wrapper over a session ([`IngestSession::batch`]).
    pub fn ingest(&self, segments: &[Segment]) -> Result<IngestOutcome, SkyError> {
        let model = self.model()?;
        IngestSession::batch(model, &self.workload, self.options.clone(), segments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::ToyWorkload;
    use vetl_video::{ContentParams, SyntheticCamera};

    #[test]
    fn facade_runs_the_paper_flow() {
        // Appendix F flow: instantiate → set_resources → fit → process.
        let mut sky = Skyscraper::new(ToyWorkload::new());
        sky.set_resources(4, 4000.0, 1.0);
        sky.set_hyperparameters(SkyscraperConfig::fast_test());

        let mut cam = SyntheticCamera::new(ContentParams::traffic_intersection(3), 2.0);
        let labeled = Recording::record(&mut cam, 20.0 * 60.0);
        let unlabeled = Recording::record(&mut cam, 2.0 * 86_400.0);
        let report = sky.fit(&labeled, &unlabeled).expect("fit succeeds");
        assert!(report.n_configs >= 2);

        let online = Recording::record(&mut cam, 3_600.0);
        let out = sky.ingest(online.segments()).expect("ingestion succeeds");
        assert_eq!(out.overflows, 0);
        assert!(out.mean_quality > 0.0);

        // The same stream through an explicit session.
        let mut session = sky.open_session().expect("session opens");
        for seg in online.segments() {
            session.push(seg).expect("push succeeds");
        }
        let streamed = session.finish();
        assert_eq!(streamed.segments, out.segments);
        assert_eq!(streamed.overflows, 0);
    }

    #[test]
    fn ingest_before_fit_errors() {
        let sky = Skyscraper::new(ToyWorkload::new());
        let err = sky.ingest(&[]).unwrap_err();
        assert_eq!(err, SkyError::NotFitted);
        assert!(sky.open_session().is_err());
    }

    #[test]
    fn resource_builders_compose_and_stay_idempotent() {
        let mut sky = Skyscraper::new(ToyWorkload::new());

        // A custom provisioning: non-default cloud pricing and buffer.
        let mut custom = HardwareSpec::with_cores(16).with_buffer(2.5e9);
        custom.cloud.usd_per_compute_sec = 9.9e-5;
        custom.cluster.core_speed = 2.0;
        sky.set_hardware(custom);

        // Granular setters must not clobber unrelated fields…
        sky.set_cores(4);
        assert_eq!(sky.hardware().cluster.cores, 4);
        assert_eq!(
            sky.hardware().buffer_bytes,
            2.5e9,
            "buffer survives set_cores"
        );
        assert_eq!(sky.hardware().cloud.usd_per_compute_sec, 9.9e-5);
        assert_eq!(sky.hardware().cluster.core_speed, 2.0);

        // …and neither must the combined setter.
        sky.set_resources(8, 4000.0, 0.7);
        assert_eq!(sky.hardware().cluster.cores, 8);
        assert_eq!(sky.hardware().buffer_bytes, 4e9);
        assert_eq!(
            sky.hardware().cloud.usd_per_compute_sec,
            9.9e-5,
            "custom cloud pricing survives set_resources"
        );
        assert_eq!(sky.hardware().cluster.core_speed, 2.0);

        // Idempotent: calling twice changes nothing.
        let before = *sky.hardware();
        sky.set_resources(8, 4000.0, 0.7);
        assert_eq!(*sky.hardware(), before);
    }

    #[test]
    fn set_options_preserves_a_configured_cloud_budget() {
        let mut sky = Skyscraper::new(ToyWorkload::new());
        sky.set_resources(4, 4000.0, 0.25);
        // Ablation gates off, budget untouched (left at its default in the
        // passed options).
        sky.set_options(IngestOptions {
            enable_buffering: false,
            ..Default::default()
        });
        assert_eq!(sky.options.cloud_budget_usd, 0.25);
        assert!(!sky.options.enable_buffering);
        // An explicit budget in the options wins.
        sky.set_options(IngestOptions {
            cloud_budget_usd: 0.5,
            ..Default::default()
        });
        assert_eq!(sky.options.cloud_budget_usd, 0.5);
    }
}
